//! Register assignments: the common output of every allocator.
//!
//! A [`RegisterAssignment`] maps each variable of a lowered function to a
//! register (a color `0..k`) or to memory (spilled).  The module also
//! provides the two cost metrics the experiments report:
//!
//! * **move cost** — the total weight (`10^loop_depth`) of the copy
//!   instructions whose source and destination ended up in *different*
//!   registers (or in memory), i.e. the moves that coalescing + biased
//!   coloring failed to remove;
//! * **spill cost** — the number of spilled values and of reload
//!   temporaries the allocator had to introduce.

use coalesce_ir::function::{Function, InstrView, Var};
use coalesce_ir::interference::InterferenceGraph;
use coalesce_ir::liveness::Liveness;
use std::collections::BTreeMap;
use std::fmt;

/// A register assignment for (a lowered version of) a function.
#[derive(Debug, Clone, Default)]
pub struct RegisterAssignment {
    /// Register (color) of each variable that received one.
    registers: BTreeMap<Var, usize>,
    /// Variables that live in memory instead of a register.
    spilled: Vec<Var>,
}

impl RegisterAssignment {
    /// Creates an empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns register `r` to variable `v` (overwriting any previous
    /// assignment and removing `v` from the spilled set).
    pub fn assign(&mut self, v: Var, r: usize) {
        self.registers.insert(v, r);
        self.spilled.retain(|&s| s != v);
    }

    /// Marks `v` as spilled (living in memory).
    pub fn spill(&mut self, v: Var) {
        self.registers.remove(&v);
        if !self.spilled.contains(&v) {
            self.spilled.push(v);
        }
    }

    /// The register assigned to `v`, if any.
    pub fn register_of(&self, v: Var) -> Option<usize> {
        self.registers.get(&v).copied()
    }

    /// `true` if `v` was spilled.
    pub fn is_spilled(&self, v: Var) -> bool {
        self.spilled.contains(&v)
    }

    /// The spilled variables.
    pub fn spilled(&self) -> &[Var] {
        &self.spilled
    }

    /// Number of variables that received a register.
    pub fn num_assigned(&self) -> usize {
        self.registers.len()
    }

    /// Number of distinct registers actually used.
    pub fn registers_used(&self) -> usize {
        let distinct: std::collections::BTreeSet<usize> =
            self.registers.values().copied().collect();
        distinct.len()
    }

    /// Iterates over `(variable, register)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, usize)> + '_ {
        self.registers.iter().map(|(&v, &r)| (v, r))
    }

    /// Validates the assignment against `f`:
    ///
    /// * every variable of `f` either has a register `< k` or is spilled;
    /// * no two *interfering* variables share a register.
    ///
    /// Returns the list of violations (empty means valid).
    pub fn validate(&self, f: &Function, k: usize) -> Vec<Violation> {
        let mut violations = Vec::new();
        let live = Liveness::compute(f);
        let ig = InterferenceGraph::build(f, &live);
        for i in 0..f.num_vars() {
            let v = Var::new(i);
            match self.register_of(v) {
                Some(r) if r >= k => violations.push(Violation::RegisterOutOfRange {
                    var: v,
                    register: r,
                }),
                Some(_) => {}
                None => {
                    if !self.is_spilled(v) {
                        violations.push(Violation::Unassigned { var: v });
                    }
                }
            }
        }
        for (a, b) in ig.graph.edges() {
            let (va, vb) = (Var::new(a.index()), Var::new(b.index()));
            if let (Some(ra), Some(rb)) = (self.register_of(va), self.register_of(vb)) {
                if ra == rb {
                    violations.push(Violation::InterferenceSharesRegister {
                        a: va,
                        b: vb,
                        register: ra,
                    });
                }
            }
        }
        violations
    }

    /// `true` if [`RegisterAssignment::validate`] reports no violation.
    pub fn is_valid(&self, f: &Function, k: usize) -> bool {
        self.validate(f, k).is_empty()
    }

    /// Move-cost metrics of this assignment on `f`.
    pub fn move_costs(&self, f: &Function) -> MoveCosts {
        let mut costs = MoveCosts::default();
        for b in f.block_ids() {
            let weight = 10u64.saturating_pow(f.loop_depth(b));
            for instr in f.block_instrs(b) {
                if let InstrView::Copy { dst, src } = instr {
                    costs.total_moves += 1;
                    costs.total_weight += weight;
                    let same = match (self.register_of(dst), self.register_of(src)) {
                        (Some(rd), Some(rs)) => rd == rs,
                        _ => false,
                    };
                    if same {
                        costs.eliminated_moves += 1;
                        costs.eliminated_weight += weight;
                    }
                }
            }
        }
        costs
    }
}

/// A single validation problem found by [`RegisterAssignment::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A variable has neither a register nor a spill slot.
    Unassigned {
        /// The offending variable.
        var: Var,
    },
    /// A variable was assigned a register `≥ k`.
    RegisterOutOfRange {
        /// The offending variable.
        var: Var,
        /// The out-of-range register.
        register: usize,
    },
    /// Two interfering variables share a register.
    InterferenceSharesRegister {
        /// First variable.
        a: Var,
        /// Second variable.
        b: Var,
        /// The shared register.
        register: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Unassigned { var } => {
                write!(f, "variable {var:?} has no register and no spill slot")
            }
            Violation::RegisterOutOfRange { var, register } => {
                write!(
                    f,
                    "variable {var:?} assigned out-of-range register r{register}"
                )
            }
            Violation::InterferenceSharesRegister { a, b, register } => {
                write!(
                    f,
                    "interfering variables {a:?} and {b:?} both in r{register}"
                )
            }
        }
    }
}

/// Move-removal metrics of an assignment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MoveCosts {
    /// Number of copy instructions in the function.
    pub total_moves: usize,
    /// Copies whose source and destination share a register (removable).
    pub eliminated_moves: usize,
    /// Total weight (`Σ 10^depth`) of all copies.
    pub total_weight: u64,
    /// Weight of the removable copies.
    pub eliminated_weight: u64,
}

impl MoveCosts {
    /// Copies that remain as real machine moves.
    pub fn remaining_moves(&self) -> usize {
        self.total_moves - self.eliminated_moves
    }

    /// Weight of the remaining moves.
    pub fn remaining_weight(&self) -> u64 {
        self.total_weight - self.eliminated_weight
    }

    /// Fraction of the copy weight that was eliminated (1.0 when there is
    /// nothing to eliminate).
    pub fn eliminated_ratio(&self) -> f64 {
        if self.total_weight == 0 {
            1.0
        } else {
            self.eliminated_weight as f64 / self.total_weight as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalesce_ir::function::FunctionBuilder;

    fn two_copy_function() -> (Function, Var, Var, Var) {
        let mut b = FunctionBuilder::new("copies");
        let entry = b.entry_block();
        let x = b.def(entry, "x");
        let y = b.copy(entry, "y", x);
        let z = b.op(entry, "z", &[y]);
        b.ret(entry, &[z, x]);
        (b.finish(), x, y, z)
    }

    #[test]
    fn assignment_round_trips_registers_and_spills() {
        let mut a = RegisterAssignment::new();
        let v0 = Var::new(0);
        a.assign(v0, 1);
        assert_eq!(a.register_of(v0), Some(1));
        a.spill(v0);
        assert!(a.is_spilled(v0));
        assert_eq!(a.register_of(v0), None);
        a.assign(v0, 0);
        assert!(!a.is_spilled(v0));
        assert_eq!(a.registers_used(), 1);
    }

    #[test]
    fn validate_accepts_a_proper_assignment() {
        let (f, x, y, z) = two_copy_function();
        // x interferes with y and z (it is live until the return).
        let mut a = RegisterAssignment::new();
        a.assign(x, 0);
        a.assign(y, 1);
        a.assign(z, 1);
        assert!(a.is_valid(&f, 2));
    }

    #[test]
    fn validate_reports_shared_register_on_interference() {
        let (f, x, y, z) = two_copy_function();
        let mut a = RegisterAssignment::new();
        a.assign(x, 0);
        a.assign(y, 1);
        a.assign(z, 0); // x and z interfere (x is live across z's definition)
        let violations = a.validate(&f, 2);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::InterferenceSharesRegister { .. })));
        assert!(!a.is_valid(&f, 2));
    }

    #[test]
    fn validate_reports_unassigned_and_out_of_range() {
        let (f, x, y, z) = two_copy_function();
        let mut a = RegisterAssignment::new();
        a.assign(x, 5);
        a.assign(y, 0);
        a.spill(z);
        let violations = a.validate(&f, 2);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::RegisterOutOfRange { register: 5, .. })));
        // z is spilled, so it must not be reported as unassigned.
        assert!(!violations
            .iter()
            .any(|v| matches!(v, Violation::Unassigned { var } if *var == z)));
        for v in &violations {
            assert!(!format!("{v}").is_empty());
        }
    }

    #[test]
    fn move_costs_count_same_register_copies_as_eliminated() {
        let (f, x, y, z) = two_copy_function();
        let mut a = RegisterAssignment::new();
        a.assign(x, 0);
        a.assign(y, 1);
        a.assign(z, 1);
        let costs = a.move_costs(&f);
        assert_eq!(costs.total_moves, 1);
        assert_eq!(costs.eliminated_moves, 0);
        assert_eq!(costs.remaining_moves(), 1);

        // Under Chaitin's interference definition the copy-related x and y
        // do not interfere, so giving them the same register is exactly the
        // coalescing outcome — and the move becomes eliminated.
        let mut coalesced = RegisterAssignment::new();
        coalesced.assign(x, 0);
        coalesced.assign(y, 0);
        coalesced.assign(z, 1);
        assert!(coalesced.is_valid(&f, 2));
        let costs = coalesced.move_costs(&f);
        assert_eq!(costs.eliminated_moves, 1);
        assert_eq!(costs.remaining_moves(), 0);
        assert!((costs.eliminated_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn move_costs_weight_by_loop_depth() {
        let mut b = FunctionBuilder::new("weighted");
        let entry = b.entry_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.set_loop_depth(body, 2);
        let x = b.def(entry, "x");
        let c = b.def(entry, "c");
        b.jump(entry, body);
        let y = b.copy(body, "y", x);
        b.effect(body, &[y]);
        b.branch(body, c, body, exit);
        b.ret(exit, &[x]);
        let f = b.finish();
        let a = RegisterAssignment::new();
        let costs = a.move_costs(&f);
        assert_eq!(costs.total_moves, 1);
        assert_eq!(costs.total_weight, 100);
    }
}
