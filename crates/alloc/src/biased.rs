//! Biased coloring: a select phase that removes moves for free.
//!
//! §1 of the paper lists "smarter coloring schemes favoring more
//! coalescing, such as biased coloring" among the refinements of
//! Chaitin-like allocators.  Biased coloring does not merge vertices at
//! all: during the select phase it simply *prefers*, for a move-related
//! vertex, a color already given to one of its affinity partners.  Every
//! move whose two ends happen to land on the same color disappears without
//! ever risking the colorability of the graph, which makes the technique a
//! useful complement to (not a replacement for) conservative coalescing.
//!
//! The entry point [`biased_select`] colors an [`AffinityGraph`] along a
//! caller-provided elimination order (typically the reverse of the
//! simplify order, i.e. the classic Chaitin select order), with `k` colors,
//! and reports which vertices could not be colored.

use coalesce_core::affinity::AffinityGraph;
use coalesce_graph::{greedy, Coloring, VertexId};
use std::collections::BTreeSet;

/// Result of a biased select pass.
#[derive(Debug, Clone)]
pub struct BiasedSelect {
    /// The (partial) coloring produced; uncolorable vertices are absent.
    pub coloring: Coloring,
    /// Vertices that could not receive any of the `k` colors.
    pub uncolored: Vec<VertexId>,
    /// Number of affinities whose endpoints ended up with equal colors.
    pub moves_eliminated: usize,
    /// Number of affinities where the bias had to be overridden (the
    /// preferred color was forbidden by an interference).
    pub bias_blocked: usize,
}

/// Colors the vertices of `ag.graph` in `select_order` with at most `k`
/// colors, preferring for each vertex a color already used by one of its
/// affinity partners.
///
/// Vertices for which no color is free are left uncolored and reported in
/// [`BiasedSelect::uncolored`]; callers treat them as spills.
pub fn biased_select(ag: &AffinityGraph, k: usize, select_order: &[VertexId]) -> BiasedSelect {
    let graph = &ag.graph;
    let mut coloring = Coloring::new(graph.capacity());
    let mut uncolored = Vec::new();
    let mut bias_blocked = 0usize;

    // Affinity partners of each vertex.
    let mut partners: Vec<Vec<VertexId>> = vec![Vec::new(); graph.capacity()];
    for aff in &ag.affinities {
        partners[aff.a.index()].push(aff.b);
        partners[aff.b.index()].push(aff.a);
    }

    for &v in select_order {
        let forbidden: BTreeSet<usize> = graph
            .neighbors(v)
            .filter_map(|n| coloring.color_of(n))
            .collect();
        // Preferred colors: those of already-colored affinity partners, by
        // decreasing total affinity weight towards that color.
        let mut preference: Vec<(u64, usize)> = Vec::new();
        for aff in &ag.affinities {
            let other = if aff.a == v {
                Some(aff.b)
            } else if aff.b == v {
                Some(aff.a)
            } else {
                None
            };
            if let Some(other) = other {
                if let Some(c) = coloring.color_of(other) {
                    if let Some(entry) = preference.iter_mut().find(|(_, pc)| *pc == c) {
                        entry.0 += aff.weight;
                    } else {
                        preference.push((aff.weight, c));
                    }
                }
            }
        }
        preference.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        let mut chosen = None;
        for &(_, c) in &preference {
            if c < k && !forbidden.contains(&c) {
                chosen = Some(c);
                break;
            }
        }
        if chosen.is_none() && !preference.is_empty() {
            bias_blocked += 1;
        }
        if chosen.is_none() {
            chosen = (0..k).find(|c| !forbidden.contains(c));
        }
        match chosen {
            Some(c) => coloring.assign(v, c),
            None => uncolored.push(v),
        }
    }

    let moves_eliminated = ag
        .affinities
        .iter()
        .filter(|aff| {
            matches!(
                (coloring.color_of(aff.a), coloring.color_of(aff.b)),
                (Some(ca), Some(cb)) if ca == cb
            )
        })
        .count();

    BiasedSelect {
        coloring,
        uncolored,
        moves_eliminated,
        bias_blocked,
    }
}

/// Convenience wrapper: colors `ag` with `k` colors in smallest-last
/// select order (the order a Chaitin-style simplify phase pops its stack
/// in, which uses at most `col(G)` colors), with biased color choice.
pub fn biased_coloring(ag: &AffinityGraph, k: usize) -> BiasedSelect {
    let order = greedy::smallest_last_order(&ag.graph);
    biased_select(ag, k, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalesce_core::affinity::Affinity;
    use coalesce_graph::Graph;

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn bias_gives_affinity_partners_the_same_color_when_possible() {
        // 0 - 1 interfere; 2 is affine to 0 and interferes with 1.
        let g = Graph::with_edges(3, [(v(0), v(1)), (v(1), v(2))]);
        let ag = AffinityGraph::new(g, vec![Affinity::new(v(0), v(2))]);
        let result = biased_coloring(&ag, 2);
        assert!(result.uncolored.is_empty());
        assert_eq!(result.moves_eliminated, 1);
        assert_eq!(
            result.coloring.color_of(v(0)),
            result.coloring.color_of(v(2))
        );
    }

    #[test]
    fn unbiased_is_never_worse_than_zero_moves() {
        // With no affinities the pass degenerates to plain greedy select.
        let g = Graph::with_edges(3, [(v(0), v(1)), (v(1), v(2)), (v(0), v(2))]);
        let ag = AffinityGraph::new(g, vec![]);
        let result = biased_coloring(&ag, 3);
        assert!(result.uncolored.is_empty());
        assert_eq!(result.moves_eliminated, 0);
        assert!(result.coloring.is_proper(&ag.graph));
    }

    #[test]
    fn bias_is_overridden_when_the_preferred_color_is_forbidden() {
        // 0 and 2 are affine but both interfere with each other's only free
        // color through vertex 1: force a blocked bias.
        // Graph: 0-1, 1-2, 0-2 is NOT an edge but 2 also interferes with 3
        // which will take the color of 0.
        let g = Graph::with_edges(4, [(v(0), v(1)), (v(1), v(2)), (v(2), v(3)), (v(0), v(2))]);
        let ag = AffinityGraph::new(g, vec![Affinity::new(v(0), v(3))]);
        let result = biased_select(&ag, 2, &[v(0), v(1), v(2), v(3)]);
        // 0 -> color 0, 1 -> color 1, 2 -> color 0 is forbidden (edge 0-2),
        // so 2 -> ... wait for k = 2: 2 is adjacent to 0 (c0) and 1 (c1): no
        // color left, so 2 is uncolored; 3 prefers 0's color 0 and its only
        // colored neighbor is 2 (uncolored), so the bias succeeds.
        assert_eq!(result.coloring.color_of(v(0)), Some(0));
        assert_eq!(result.coloring.color_of(v(3)), Some(0));
        assert_eq!(result.moves_eliminated, 1);
        assert_eq!(result.uncolored, vec![v(2)]);
    }

    #[test]
    fn coloring_is_always_proper_on_the_colored_part() {
        let g = Graph::with_edges(
            6,
            [
                (v(0), v(1)),
                (v(1), v(2)),
                (v(2), v(3)),
                (v(3), v(4)),
                (v(4), v(5)),
                (v(5), v(0)),
                (v(0), v(3)),
            ],
        );
        let ag = AffinityGraph::new(
            g,
            vec![Affinity::new(v(1), v(4)), Affinity::new(v(2), v(5))],
        );
        let result = biased_coloring(&ag, 3);
        assert!(result.uncolored.is_empty());
        assert!(result.coloring.is_proper(&ag.graph));
    }

    #[test]
    fn weight_breaks_ties_between_preferred_colors() {
        // Vertex 4 is affine to 0 (weight 1, color 0) and to 1 (weight 10,
        // color 1); it must prefer color 1.
        let g = Graph::with_edges(5, [(v(0), v(1)), (v(2), v(3))]);
        let ag = AffinityGraph::new(
            g,
            vec![
                Affinity::weighted(v(4), v(0), 1),
                Affinity::weighted(v(4), v(1), 10),
            ],
        );
        let result = biased_select(&ag, 2, &[v(0), v(1), v(2), v(3), v(4)]);
        assert_eq!(
            result.coloring.color_of(v(1)),
            result.coloring.color_of(v(4))
        );
        assert_eq!(result.moves_eliminated, 1);
    }
}
