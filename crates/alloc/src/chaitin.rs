//! The Chaitin–Briggs allocation loop: build, color/coalesce, spill, repeat.
//!
//! This is the "classical approach" of §1: spilling, coalescing and
//! coloring live in a single framework.  Each round builds the interference
//! graph of the current function, runs the iterated-register-coalescing
//! engine of [`coalesce_core::irc`] (simplify / conservative coalesce /
//! freeze / potential spill / select with optimistic coloring), and — if
//! some vertices ended up as *actual spills* — rewrites the function with
//! spill code and starts over.  The loop ends when a round completes with
//! no actual spill or when the configured round limit is reached.

use crate::assignment::RegisterAssignment;
use coalesce_core::affinity::AffinityGraph;
use coalesce_core::irc;
use coalesce_ir::function::{Function, Var};
use coalesce_ir::interference::InterferenceGraph;
use coalesce_ir::liveness::Liveness;
use coalesce_ir::spill;

/// Configuration of the Chaitin–Briggs loop.
#[derive(Debug, Clone, Copy)]
pub struct ChaitinConfig {
    /// Number of registers.
    pub registers: usize,
    /// Maximum number of build/color/spill rounds before giving up (any
    /// vertex still uncolored after the last round stays spilled).
    pub max_rounds: usize,
}

impl ChaitinConfig {
    /// Creates a configuration with the default round limit (8).
    pub fn new(registers: usize) -> Self {
        ChaitinConfig {
            registers,
            max_rounds: 8,
        }
    }
}

/// Outcome of running [`chaitin_allocate`].
#[derive(Debug, Clone)]
pub struct ChaitinOutcome {
    /// The rewritten function (spill code inserted).
    pub function: Function,
    /// The final register assignment.
    pub assignment: RegisterAssignment,
    /// Number of build/color rounds executed.
    pub rounds: usize,
    /// Variables spilled across all rounds (original, pre-rewrite names of
    /// each round).
    pub spilled_values: Vec<Var>,
    /// Reload temporaries inserted across all rounds.
    pub reloads_inserted: usize,
    /// Moves coalesced by the conservative coalescing of the final round.
    pub moves_coalesced: usize,
}

/// Runs the Chaitin–Briggs allocation loop on a copy of `f`.
///
/// The input may be in SSA form or not; φ-functions are treated by the
/// interference builder as affinities and by the allocator as ordinary
/// definitions, so callers that want the out-of-SSA copies to be visible to
/// the allocator should lower the function first (see
/// [`crate::ssa_based`]).
pub fn chaitin_allocate(f: &Function, config: ChaitinConfig) -> ChaitinOutcome {
    let k = config.registers;
    let mut function = f.clone();
    let mut spilled_values: Vec<Var> = Vec::new();
    let mut reloads_inserted = 0usize;
    let mut rounds = 0usize;
    let mut last_result: Option<(irc::IrcResult, AffinityGraph)> = None;

    while rounds < config.max_rounds.max(1) {
        rounds += 1;
        let liveness = Liveness::compute(&function);
        let ig = InterferenceGraph::build(&function, &liveness);
        let ag = AffinityGraph::from_interference(&ig);
        let result = irc::allocate(&ag, k);
        let spills: Vec<Var> = result.spilled.iter().map(|v| Var::new(v.index())).collect();
        if spills.is_empty() || rounds == config.max_rounds.max(1) {
            last_result = Some((result, ag));
            break;
        }
        // Insert spill code for every actual spill and rebuild.
        let mut spill_result = spill::SpillResult::default();
        for victim in &spills {
            spill::spill_everywhere(&mut function, *victim, &mut spill_result);
        }
        reloads_inserted += spill_result.reloads;
        spilled_values.extend(spills);
        last_result = Some((result, ag));
    }

    let (result, _ag) = last_result.expect("at least one round ran");
    let mut assignment = RegisterAssignment::new();
    for i in 0..function.num_vars() {
        let var = Var::new(i);
        let vertex = coalesce_graph::VertexId::new(i);
        match result.color_of(vertex) {
            Some(c) => assignment.assign(var, c),
            None => assignment.spill(var),
        }
    }
    // Anything spilled in earlier rounds no longer exists as a register
    // candidate in the final function (its uses were rewritten to reload
    // temporaries), but the variable index is still valid: mark it spilled
    // if the final round did not give it a color.
    for &v in &spilled_values {
        if assignment.register_of(v).is_none() {
            assignment.spill(v);
        }
    }

    ChaitinOutcome {
        assignment,
        rounds,
        spilled_values,
        reloads_inserted,
        moves_coalesced: result.stats.coalesced,
        function,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalesce_ir::function::FunctionBuilder;

    fn diamond_with_copies() -> Function {
        let mut b = FunctionBuilder::new("diamond");
        let entry = b.entry_block();
        let (t, e, join) = (b.new_block(), b.new_block(), b.new_block());
        let x = b.def(entry, "x");
        let c = b.def(entry, "c");
        b.branch(entry, c, t, e);
        let y = b.copy(t, "y", x);
        b.jump(t, join);
        let z = b.copy(e, "z", x);
        b.jump(e, join);
        let w = b.phi(join, "w", &[(t, y), (e, z)]);
        b.ret(join, &[w]);
        b.finish()
    }

    #[test]
    fn allocates_a_small_function_without_spills() {
        let f = diamond_with_copies();
        let outcome = chaitin_allocate(&f, ChaitinConfig::new(3));
        assert_eq!(outcome.rounds, 1);
        assert!(outcome.spilled_values.is_empty());
        assert!(outcome.assignment.is_valid(&outcome.function, 3));
    }

    #[test]
    fn coalesces_the_phi_related_copies_when_registers_allow() {
        let f = diamond_with_copies();
        let outcome = chaitin_allocate(&f, ChaitinConfig::new(4));
        // y, z and w are φ-related; the conservative coalescer should merge
        // at least some of those moves.
        assert!(outcome.moves_coalesced >= 1);
        let costs = outcome.assignment.move_costs(&outcome.function);
        assert!(costs.eliminated_moves >= 1);
    }

    #[test]
    fn spills_under_extreme_pressure_and_stays_valid() {
        // Eight values all live at once, two registers: spilling is
        // unavoidable, the result must still be a valid assignment of the
        // rewritten function.
        let mut b = FunctionBuilder::new("pressure");
        let entry = b.entry_block();
        let vars: Vec<Var> = (0..8).map(|i| b.def(entry, format!("v{i}"))).collect();
        for pair in vars.chunks(2) {
            b.effect(entry, pair);
        }
        b.ret(entry, &[]);
        let f = b.finish();

        let outcome = chaitin_allocate(&f, ChaitinConfig::new(2));
        assert!(!outcome.spilled_values.is_empty());
        assert!(outcome.rounds >= 2);
        assert!(outcome.assignment.is_valid(&outcome.function, 2));
        assert!(outcome.reloads_inserted > 0);
    }

    #[test]
    fn round_limit_is_respected() {
        let mut b = FunctionBuilder::new("tight");
        let entry = b.entry_block();
        let vars: Vec<Var> = (0..6).map(|i| b.def(entry, format!("v{i}"))).collect();
        let sum = b.op(entry, "sum", &vars);
        b.ret(entry, &[sum]);
        let f = b.finish();
        // With one register and a six-operand instruction, the allocator can
        // never fully succeed; it must still stop at the round limit.
        let outcome = chaitin_allocate(
            &f,
            ChaitinConfig {
                registers: 1,
                max_rounds: 3,
            },
        );
        assert!(outcome.rounds <= 3);
    }

    #[test]
    fn zero_round_config_is_clamped_to_one() {
        let f = diamond_with_copies();
        let outcome = chaitin_allocate(
            &f,
            ChaitinConfig {
                registers: 3,
                max_rounds: 0,
            },
        );
        assert_eq!(outcome.rounds, 1);
    }
}
