//! End-to-end register allocators built on top of the coalescing library.
//!
//! *On the Complexity of Register Coalescing* frames every coalescing
//! problem inside a register allocator: either a Chaitin-like allocator
//! where spilling, coalescing and coloring share one framework (§1), or the
//! newer **two-phase** allocators (Appel–George, Hack et al.) where a first
//! phase spills down to `Maxlive ≤ k` and a second phase colors and
//! coalesces with *no additional spill* (§1, §4).  The end-to-end
//! experiments (E8 and the allocator ablation E10) need both allocator
//! families as executable artefacts; this crate provides them, operating on
//! the [`coalesce_ir`] functions and reporting a common
//! [`assignment::RegisterAssignment`]:
//!
//! * [`chaitin`] — the classic iterate-until-no-spill Chaitin–Briggs
//!   allocator: build the interference graph, run the IRC
//!   simplify/coalesce/freeze/spill/select engine of
//!   [`coalesce_core::irc`], insert spill code for the actual spills, and
//!   repeat;
//! * [`ssa_based`] — the two-phase allocator: spill the strict-SSA function
//!   to `Maxlive ≤ k`, translate out of SSA (which materialises the
//!   parallel-copy affinities), coalesce with a configurable strategy, and
//!   color the coalesced graph with a biased select phase;
//! * [`biased`] — biased coloring: a select phase that prefers giving
//!   affinity-related vertices the same color, removing moves *for free*
//!   on top of whatever the coalescer achieved (§1 mentions it among the
//!   "smarter coloring schemes");
//! * [`assignment`] — the common output type: a register (color) per
//!   variable, validation against the program's interference, and the move
//!   / spill cost metrics the experiment tables report;
//! * [`pipeline`] — one-call comparison of every allocator configuration on
//!   the same input function, producing the rows of the E8/E10 tables.
//!
//! # Example
//!
//! ```
//! use coalesce_alloc::pipeline::{run_allocator, AllocatorKind};
//! use coalesce_ir::function::FunctionBuilder;
//!
//! let mut b = FunctionBuilder::new("example");
//! let entry = b.entry_block();
//! let x = b.def(entry, "x");
//! let y = b.op(entry, "y", &[x]);
//! let z = b.copy(entry, "z", y);
//! b.ret(entry, &[z, x]);
//! let f = b.finish();
//!
//! let report = run_allocator(&f, 2, AllocatorKind::ChaitinBriggs);
//! assert!(report.valid);
//! assert_eq!(report.spilled_values, 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod assignment;
pub mod biased;
pub mod chaitin;
pub mod pipeline;
pub mod ssa_based;

pub use assignment::RegisterAssignment;
pub use chaitin::{chaitin_allocate, ChaitinConfig, ChaitinOutcome};
pub use pipeline::{
    compare_allocators, run_allocator, run_allocator_with_artifacts, AllocationArtifacts,
    AllocationReport, AllocatorKind,
};
pub use ssa_based::{ssa_allocate, ssa_allocate_with_spiller, CoalescingStrategy, SsaAllocOutcome};
