//! One-call comparison of the allocator configurations.
//!
//! The end-to-end experiments (E8, E10) ask the same question the paper's
//! introduction asks: *for a given program and register count, how do the
//! allocator families compare in spills and in remaining moves?*  This
//! module runs every configuration on the same input function and collects
//! one [`AllocationReport`] per configuration — the rows of the printed
//! tables.

use crate::assignment::{MoveCosts, RegisterAssignment};
use crate::chaitin::{chaitin_allocate, ChaitinConfig};
use crate::ssa_based::{ssa_allocate, CoalescingStrategy};
use coalesce_ir::function::Function;
use std::fmt;

/// An allocator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocatorKind {
    /// The Chaitin–Briggs loop (iterated register coalescing inside, spill
    /// code insertion and rebuild outside).
    ChaitinBriggs,
    /// The two-phase SSA-based allocator with the given coalescing strategy
    /// for its second phase.
    SsaBased(CoalescingStrategy),
}

impl AllocatorKind {
    /// Every configuration the comparison tables report, in order.
    pub fn all() -> Vec<AllocatorKind> {
        let mut kinds = vec![AllocatorKind::ChaitinBriggs];
        kinds.extend(
            CoalescingStrategy::ALL
                .iter()
                .map(|&s| AllocatorKind::SsaBased(s)),
        );
        kinds
    }

    /// Short name used in tables.
    pub fn name(self) -> String {
        match self {
            AllocatorKind::ChaitinBriggs => "chaitin-briggs".to_string(),
            AllocatorKind::SsaBased(s) => format!("ssa/{}", s.name()),
        }
    }
}

impl fmt::Display for AllocatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// The measurements reported for one allocator configuration on one input.
#[derive(Debug, Clone)]
pub struct AllocationReport {
    /// Which configuration produced this row.
    pub kind: AllocatorKind,
    /// Number of registers the run targeted.
    pub registers: usize,
    /// Whether the final assignment passed validation.
    pub valid: bool,
    /// Values spilled to memory (first-phase spills plus any vertex the
    /// coloring could not handle).
    pub spilled_values: usize,
    /// Reload temporaries inserted by spill code.
    pub reloads_inserted: usize,
    /// Move metrics of the final assignment on the final (lowered) function.
    pub moves: MoveCosts,
    /// Number of distinct registers actually used.
    pub registers_used: usize,
    /// `Maxlive` of the final (lowered) function — the lower bound any
    /// spill-free coloring must meet, reported so tables can show colors
    /// vs. pressure side by side.
    pub maxlive: usize,
}

impl AllocationReport {
    /// Formats the report as one row of a comparison table.
    pub fn row(&self) -> String {
        format!(
            "{:<22} k={:<2} spills={:<3} reloads={:<3} moves {}/{} removed (weight {}/{}) regs={} maxlive={} {}",
            self.kind.name(),
            self.registers,
            self.spilled_values,
            self.reloads_inserted,
            self.moves.eliminated_moves,
            self.moves.total_moves,
            self.moves.eliminated_weight,
            self.moves.total_weight,
            self.registers_used,
            self.maxlive,
            if self.valid { "ok" } else { "INVALID" },
        )
    }
}

impl fmt::Display for AllocationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.row())
    }
}

/// The concrete outputs of one allocator run: the final lowered function
/// and the register assignment over its variables.  [`run_allocator`]
/// summarises these into an [`AllocationReport`]; the verifier audits them
/// directly.
#[derive(Debug)]
pub struct AllocationArtifacts {
    /// The final function, with spill/reload code inserted.
    pub function: Function,
    /// The final register assignment over `function`'s variables.
    pub assignment: RegisterAssignment,
}

/// Runs one allocator configuration on `f` with `k` registers, returning
/// both the summary report and the final function + assignment.
pub fn run_allocator_with_artifacts(
    f: &Function,
    k: usize,
    kind: AllocatorKind,
) -> (AllocationReport, AllocationArtifacts) {
    let lowered_maxlive = |function: &Function| {
        coalesce_ir::liveness::Liveness::compute(function).maxlive_precise(function)
    };
    match kind {
        AllocatorKind::ChaitinBriggs => {
            let outcome = chaitin_allocate(f, ChaitinConfig::new(k));
            let moves = outcome.assignment.move_costs(&outcome.function);
            let report = AllocationReport {
                kind,
                registers: k,
                valid: outcome.assignment.is_valid(&outcome.function, k),
                spilled_values: outcome.spilled_values.len()
                    + outcome
                        .assignment
                        .spilled()
                        .iter()
                        .filter(|v| !outcome.spilled_values.contains(v))
                        .count(),
                reloads_inserted: outcome.reloads_inserted,
                moves,
                registers_used: outcome.assignment.registers_used(),
                maxlive: lowered_maxlive(&outcome.function),
            };
            (
                report,
                AllocationArtifacts {
                    function: outcome.function,
                    assignment: outcome.assignment,
                },
            )
        }
        AllocatorKind::SsaBased(strategy) => {
            let outcome = ssa_allocate(f, k, strategy);
            let moves = outcome.assignment.move_costs(&outcome.function);
            let report = AllocationReport {
                kind,
                registers: k,
                valid: outcome.assignment.is_valid(&outcome.function, k),
                spilled_values: outcome.spilled_values.len() + outcome.uncolored.len(),
                reloads_inserted: outcome.reloads_inserted,
                moves,
                registers_used: outcome.assignment.registers_used(),
                maxlive: outcome.maxlive,
            };
            (
                report,
                AllocationArtifacts {
                    function: outcome.function,
                    assignment: outcome.assignment,
                },
            )
        }
    }
}

/// Runs one allocator configuration on `f` with `k` registers.
pub fn run_allocator(f: &Function, k: usize, kind: AllocatorKind) -> AllocationReport {
    let _span = coalesce_stats::span!("alloc/run");
    coalesce_stats::counter!("alloc.runs");
    run_allocator_with_artifacts(f, k, kind).0
}

/// Runs every allocator configuration on `f` with `k` registers.
pub fn compare_allocators(f: &Function, k: usize) -> Vec<AllocationReport> {
    AllocatorKind::all()
        .into_iter()
        .map(|kind| run_allocator(f, k, kind))
        .collect()
}

/// Formats a full comparison as a printable multi-line table.
pub fn comparison_table(reports: &[AllocationReport]) -> String {
    let mut out = String::new();
    for r in reports {
        out.push_str(&r.row());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalesce_ir::function::FunctionBuilder;

    fn sample_function() -> Function {
        let mut b = FunctionBuilder::new("sample");
        let entry = b.entry_block();
        let (t, e, join) = (b.new_block(), b.new_block(), b.new_block());
        let a = b.def(entry, "a");
        let c = b.def(entry, "c");
        b.branch(entry, c, t, e);
        let x = b.op(t, "x", &[a]);
        b.jump(t, join);
        let y = b.op(e, "y", &[a]);
        b.jump(e, join);
        let m = b.phi(join, "m", &[(t, x), (e, y)]);
        let n = b.copy(join, "n", m);
        b.ret(join, &[n]);
        b.finish()
    }

    #[test]
    fn every_configuration_produces_a_valid_report_on_an_easy_input() {
        let f = sample_function();
        let reports = compare_allocators(&f, 4);
        assert_eq!(reports.len(), AllocatorKind::all().len());
        for r in &reports {
            assert!(r.valid, "{} produced an invalid allocation", r.kind);
            assert_eq!(r.spilled_values, 0, "{} spilled on an easy input", r.kind);
            assert!(r.registers_used <= 4);
        }
    }

    #[test]
    fn reports_render_as_single_rows() {
        let f = sample_function();
        let reports = compare_allocators(&f, 3);
        let table = comparison_table(&reports);
        assert_eq!(table.lines().count(), reports.len());
        for r in &reports {
            assert!(!r.row().is_empty());
            assert!(format!("{r}").contains("k=3"));
        }
    }

    #[test]
    fn coalescing_strategies_never_remove_fewer_weighted_moves_than_no_coalescing() {
        let f = sample_function();
        let none = run_allocator(&f, 3, AllocatorKind::SsaBased(CoalescingStrategy::None));
        let brute = run_allocator(
            &f,
            3,
            AllocatorKind::SsaBased(CoalescingStrategy::BruteForce),
        );
        assert!(brute.moves.eliminated_weight + 1 >= none.moves.eliminated_weight);
    }

    #[test]
    fn allocator_names_are_unique() {
        let names: std::collections::BTreeSet<String> =
            AllocatorKind::all().into_iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), AllocatorKind::all().len());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(AllocatorKind::ChaitinBriggs.to_string(), "chaitin-briggs");
        assert_eq!(
            AllocatorKind::SsaBased(CoalescingStrategy::Optimistic).to_string(),
            "ssa/optimistic"
        );
    }
}
