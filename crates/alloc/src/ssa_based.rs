//! The two-phase, SSA-based register allocator.
//!
//! The paper's §1 describes the allocator architecture that recent SSA
//! results enable (Appel–George, Hack–Grund–Goos, Bouchez et al., Brisk et
//! al., Pereira–Palsberg): because the interference graph of a strict SSA
//! program is chordal with `ω = Maxlive` (Theorem 1), one can
//!
//! 1. **spill first**, bringing `Maxlive` down to the number of registers
//!    `k` while the graph is still chordal and easy to reason about;
//! 2. **then color and coalesce**, with *no additional spill*: the graph is
//!    `k`-colorable by construction, and the whole difficulty moves to the
//!    coalescing of the many copies that the out-of-SSA translation (and
//!    any live-range splitting) introduced — exactly the regime in which
//!    the paper shows conservative coalescing is hard and local rules are
//!    too weak.
//!
//! [`ssa_allocate`] implements that pipeline on top of the rest of the
//! workspace: spill to pressure (`coalesce_ir::spill`), translate out of
//! SSA (`coalesce_ir::out_of_ssa`), coalesce with a configurable strategy
//! (`coalesce_core`), then run a biased select phase ([`crate::biased`])
//! over the coalesced graph.

use crate::assignment::RegisterAssignment;
use crate::biased;
use coalesce_core::affinity::AffinityGraph;
use coalesce_core::affinity::Coalescing;
use coalesce_core::conservative::{conservative_coalesce, ConservativeRule};
use coalesce_core::optimistic::optimistic_coalesce;
use coalesce_graph::{greedy, VertexId};
use coalesce_ir::function::{Function, Var};
use coalesce_ir::interference::InterferenceGraph;
use coalesce_ir::liveness::Liveness;
use coalesce_ir::spill::SpillerKind;
use coalesce_ir::{out_of_ssa, ssa};

/// Which coalescing strategy the second phase uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoalescingStrategy {
    /// No coalescing at all: rely only on the biased select phase.
    None,
    /// Incremental conservative coalescing with Briggs' rule.
    Briggs,
    /// Incremental conservative coalescing with Briggs' and George's rules.
    BriggsGeorge,
    /// Incremental conservative coalescing with the brute-force test
    /// (merge, then check greedy-`k`-colorability of the whole graph).
    BruteForce,
    /// Optimistic coalescing: aggressive merge then de-coalescing.
    Optimistic,
}

impl CoalescingStrategy {
    /// All strategies, in the order the comparison tables report them.
    pub const ALL: [CoalescingStrategy; 5] = [
        CoalescingStrategy::None,
        CoalescingStrategy::Briggs,
        CoalescingStrategy::BriggsGeorge,
        CoalescingStrategy::BruteForce,
        CoalescingStrategy::Optimistic,
    ];

    /// Short human-readable name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            CoalescingStrategy::None => "none",
            CoalescingStrategy::Briggs => "briggs",
            CoalescingStrategy::BriggsGeorge => "briggs+george",
            CoalescingStrategy::BruteForce => "brute-force",
            CoalescingStrategy::Optimistic => "optimistic",
        }
    }
}

/// Outcome of the two-phase allocator.
#[derive(Debug, Clone)]
pub struct SsaAllocOutcome {
    /// The lowered function (spilled, out of SSA).
    pub function: Function,
    /// The final register assignment.
    pub assignment: RegisterAssignment,
    /// Values spilled by the first phase.
    pub spilled_values: Vec<Var>,
    /// Reload temporaries inserted by the first phase.
    pub reloads_inserted: usize,
    /// `Maxlive` of the lowered function (after spilling).
    pub maxlive: usize,
    /// Whether the pre-spill SSA interference graph was chordal (it always
    /// should be — recorded as a sanity signal for the experiments).
    pub ssa_graph_chordal: bool,
    /// Number of affinities (move-related pairs) in the lowered function.
    pub affinities: usize,
    /// Affinities removed by the coalescing phase (same class).
    pub coalesced: usize,
    /// Additional moves removed "for free" by the biased select phase
    /// (endpoints in different classes that still got the same color).
    pub bias_eliminated: usize,
    /// Vertices the select phase could not color (should be empty when the
    /// spilling phase reached `Maxlive ≤ k`; non-empty values are counted
    /// as extra spills by the report).
    pub uncolored: Vec<Var>,
}

/// Runs the two-phase SSA-based allocator with `k` registers and the given
/// coalescing strategy.
///
/// The input is converted to SSA first if it is not already in SSA form.
/// Spilling uses the default [`SpillerKind::PressureGreedy`] strategy; use
/// [`ssa_allocate_with_spiller`] to pick another spiller from the zoo.
pub fn ssa_allocate(f: &Function, k: usize, strategy: CoalescingStrategy) -> SsaAllocOutcome {
    ssa_allocate_with_spiller(f, k, strategy, SpillerKind::PressureGreedy)
}

/// Like [`ssa_allocate`], with the pressure-lowering phase delegated to an
/// explicit [`SpillerKind`] (both the main round on the SSA form and the
/// corrective round after the out-of-SSA translation use it).
pub fn ssa_allocate_with_spiller(
    f: &Function,
    k: usize,
    strategy: CoalescingStrategy,
    spiller: SpillerKind,
) -> SsaAllocOutcome {
    let mut function = if ssa::is_ssa(f) {
        f.clone()
    } else {
        ssa::construct_ssa(f)
    };

    // Record the Theorem 1 sanity signal on the SSA form before any rewrite.
    let ssa_graph_chordal = {
        let live = Liveness::compute(&function);
        let ig = InterferenceGraph::build(&function, &live);
        coalesce_graph::chordal::is_chordal(&ig.graph)
    };

    // Phase 1: spill to pressure, then translate out of SSA.
    let spill_result = spiller.run(&mut function, k);
    out_of_ssa::destruct_ssa(&mut function);
    // Lowering can locally bump the pressure back up (copy cycles need a
    // temporary); one cheap corrective round keeps the promise of the
    // two-phase design as close as the spiller allows.
    let correction = spiller.run(&mut function, k);

    let liveness = Liveness::compute(&function);
    let maxlive = liveness.maxlive_precise(&function);
    let ig = InterferenceGraph::build(&function, &liveness);
    let ag = AffinityGraph::from_interference(&ig);

    // Phase 2: coalesce, then biased select on the coalesced graph.
    let coalescing = match strategy {
        CoalescingStrategy::None => Coalescing::identity(&ag.graph),
        CoalescingStrategy::Briggs => {
            conservative_coalesce(&ag, k, ConservativeRule::Briggs).coalescing
        }
        CoalescingStrategy::BriggsGeorge => {
            conservative_coalesce(&ag, k, ConservativeRule::BriggsGeorge).coalescing
        }
        CoalescingStrategy::BruteForce => {
            conservative_coalesce(&ag, k, ConservativeRule::BruteForce).coalescing
        }
        CoalescingStrategy::Optimistic => optimistic_coalesce(&ag, k).coalescing,
    };
    let mut coalescing = coalescing;
    let coalesced = ag
        .affinities
        .iter()
        .filter(|aff| coalescing.class_of(aff.a) == coalescing.class_of(aff.b))
        .count();

    // Build the residual affinity graph on class representatives so that the
    // biased select can still chase the uncoalesced moves.
    let merged_graph = coalescing.merged_graph.clone();
    let residual_affinities: Vec<coalesce_core::affinity::Affinity> = ag
        .affinities
        .iter()
        .filter_map(|aff| {
            let (ra, rb) = (coalescing.class_of(aff.a), coalescing.class_of(aff.b));
            if ra == rb || merged_graph.has_edge(ra, rb) {
                None
            } else {
                Some(coalesce_core::affinity::Affinity::weighted(
                    ra, rb, aff.weight,
                ))
            }
        })
        .collect();
    let residual = AffinityGraph {
        graph: merged_graph,
        affinities: residual_affinities,
    };

    // `smallest_last_order` already returns the select (stack-pop) order,
    // which uses at most `col(G)` colors — so a greedy-`k`-colorable merged
    // graph is always fully colored here.
    let order = greedy::smallest_last_order(&residual.graph);
    let select = biased::biased_select(&residual, k, &order);

    // Count the moves removed purely by color coincidence (not by class
    // merging).
    let bias_eliminated = ag
        .affinities
        .iter()
        .filter(|aff| {
            let (ra, rb) = (coalescing.class_of(aff.a), coalescing.class_of(aff.b));
            ra != rb
                && matches!(
                    (select.coloring.color_of(ra), select.coloring.color_of(rb)),
                    (Some(ca), Some(cb)) if ca == cb
                )
        })
        .count();

    // Expand class colors to variables.
    let mut assignment = RegisterAssignment::new();
    let mut uncolored = Vec::new();
    for i in 0..function.num_vars() {
        let var = Var::new(i);
        let vertex = VertexId::new(i);
        if !ag.graph.is_live(vertex) {
            continue;
        }
        let rep = coalescing.class_of(vertex);
        match select.coloring.color_of(rep) {
            Some(c) => assignment.assign(var, c),
            None => {
                assignment.spill(var);
                uncolored.push(var);
            }
        }
    }

    let mut spilled_values = spill_result.spilled;
    spilled_values.extend(correction.spilled);

    SsaAllocOutcome {
        assignment,
        spilled_values,
        reloads_inserted: spill_result.reloads + correction.reloads,
        maxlive,
        ssa_graph_chordal,
        affinities: ag.num_affinities(),
        coalesced,
        bias_eliminated,
        uncolored,
        function,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalesce_ir::function::FunctionBuilder;

    fn diamond_chain() -> Function {
        let mut b = FunctionBuilder::new("chain");
        let entry = b.entry_block();
        let mut current = entry;
        let mut x = b.def(entry, "x0");
        for d in 0..3 {
            let c = b.def(current, format!("c{d}"));
            let (t, e, join) = (b.new_block(), b.new_block(), b.new_block());
            b.branch(current, c, t, e);
            let yt = b.op(t, format!("t{d}"), &[x]);
            b.jump(t, join);
            let ye = b.op(e, format!("e{d}"), &[x]);
            b.jump(e, join);
            x = b.phi(join, format!("x{}", d + 1), &[(t, yt), (e, ye)]);
            current = join;
        }
        b.ret(current, &[x]);
        b.finish()
    }

    #[test]
    fn two_phase_allocation_is_valid_and_spill_free_at_generous_k() {
        let f = diamond_chain();
        for strategy in CoalescingStrategy::ALL {
            let outcome = ssa_allocate(&f, 4, strategy);
            assert!(outcome.ssa_graph_chordal, "{strategy:?}");
            assert!(outcome.spilled_values.is_empty(), "{strategy:?}");
            assert!(outcome.uncolored.is_empty(), "{strategy:?}");
            assert!(
                outcome.assignment.is_valid(&outcome.function, 4),
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn out_of_ssa_lowering_creates_affinities_and_coalescing_removes_them() {
        let f = diamond_chain();
        let none = ssa_allocate(&f, 4, CoalescingStrategy::None);
        assert!(none.affinities > 0);
        let brute = ssa_allocate(&f, 4, CoalescingStrategy::BruteForce);
        assert!(brute.coalesced >= 1);
        // Coalescing (plus bias) never removes fewer moves than bias alone.
        let removed_none = none.coalesced + none.bias_eliminated;
        let removed_brute = brute.coalesced + brute.bias_eliminated;
        assert!(removed_brute >= removed_none.min(brute.affinities));
    }

    #[test]
    fn pressure_is_reduced_to_k_under_tight_registers() {
        let f = diamond_chain();
        let outcome = ssa_allocate(&f, 2, CoalescingStrategy::BriggsGeorge);
        assert!(
            outcome.maxlive <= 2 + 1,
            "maxlive {} too high",
            outcome.maxlive
        );
        assert!(outcome.assignment.is_valid(&outcome.function, 2));
    }

    #[test]
    fn non_ssa_input_is_converted_first() {
        let mut b = FunctionBuilder::new("non_ssa");
        let entry = b.entry_block();
        let next = b.new_block();
        let x = b.def(entry, "x");
        b.jump(entry, next);
        let y = b.op(next, "y", &[x]);
        b.copy_to(next, x, y); // redefinition: not SSA
        b.ret(next, &[x]);
        let f = b.finish();
        assert!(!ssa::is_ssa(&f));
        let outcome = ssa_allocate(&f, 2, CoalescingStrategy::Briggs);
        assert!(outcome.assignment.is_valid(&outcome.function, 2));
    }

    #[test]
    fn every_spiller_kind_yields_a_valid_allocation() {
        let f = diamond_chain();
        for spiller in SpillerKind::ALL {
            let outcome =
                ssa_allocate_with_spiller(&f, 3, CoalescingStrategy::BriggsGeorge, spiller);
            assert!(
                outcome.assignment.is_valid(&outcome.function, 3),
                "{spiller:?}"
            );
            assert!(outcome.uncolored.is_empty(), "{spiller:?}");
        }
    }

    #[test]
    fn default_spiller_matches_the_explicit_pressure_greedy_path() {
        let f = diamond_chain();
        let a = ssa_allocate(&f, 3, CoalescingStrategy::Briggs);
        let b = ssa_allocate_with_spiller(
            &f,
            3,
            CoalescingStrategy::Briggs,
            SpillerKind::PressureGreedy,
        );
        assert_eq!(a.spilled_values, b.spilled_values);
        assert_eq!(a.reloads_inserted, b.reloads_inserted);
        assert_eq!(a.maxlive, b.maxlive);
    }

    #[test]
    fn strategy_names_are_distinct() {
        let names: std::collections::BTreeSet<&str> =
            CoalescingStrategy::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), CoalescingStrategy::ALL.len());
    }
}
