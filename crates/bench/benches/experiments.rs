//! The benchmark harness: one Criterion group per experiment E1–E9 of
//! DESIGN.md / EXPERIMENTS.md.
//!
//! Each group both *measures* (runtime of the algorithms involved) and
//! *prints* the quantities the corresponding paper artifact is about
//! (equivalence of optima, heuristic gaps, strategy comparison tables), so
//! `cargo bench` regenerates every table/figure-equivalent of the
//! reproduction in one run.

use coalesce_core::affinity::AffinityGraph;
use coalesce_core::conservative::{conservative_coalesce, ConservativeRule};
use coalesce_core::incremental::{chordal_incremental, incremental_exact};
use coalesce_core::optimistic::{decoalesce_exact, optimistic_coalesce};
use coalesce_core::{aggressive_exact, aggressive_heuristic};
use coalesce_gen::challenge::{challenge_instance, ChallengeParams};
use coalesce_gen::graphs::{random_graph, random_interval_graph};
use coalesce_gen::permutation::permutation_instance;
use coalesce_gen::programs::{random_ssa_program, ProgramParams};
use coalesce_graph::lift::lift_by_clique;
use coalesce_graph::{chordal, greedy, VertexId};
use coalesce_ir::interference::{BuildOptions, InterferenceGraph, InterferenceKind};
use coalesce_ir::liveness::Liveness;
use coalesce_reduce::{colorability, multiway_cut, sat, vertex_cover};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn v(i: usize) -> VertexId {
    VertexId::new(i)
}

/// E1 — Theorem 2 / Figure 1: multiway cut ↔ aggressive coalescing.
fn e1_aggressive(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_aggressive");
    println!("\n[E1] multiway cut vs optimal aggressive coalescing (must be equal)");
    for seed in 0..4u64 {
        let mut rng = coalesce_gen::rng(seed);
        let g = random_graph(7, 0.4, &mut rng);
        let instance = multiway_cut::MultiwayCutInstance::new(g, vec![v(0), v(1), v(2)]);
        let cut = instance.minimum_cut();
        let reduction = multiway_cut::reduce_to_aggressive(&instance);
        let exact = aggressive_exact(&reduction.instance);
        let heur = aggressive_heuristic(&reduction.instance);
        println!(
            "  seed {seed}: min cut = {cut}, exact uncoalesced = {}, heuristic uncoalesced = {}",
            exact.stats.uncoalesced(),
            heur.stats.uncoalesced()
        );
        if seed == 0 {
            group.bench_function(BenchmarkId::new("exact", seed), |b| {
                b.iter(|| aggressive_exact(&reduction.instance))
            });
            group.bench_function(BenchmarkId::new("heuristic", seed), |b| {
                b.iter(|| aggressive_heuristic(&reduction.instance))
            });
        }
    }
    group.finish();
}

/// E2 — Theorem 3 / Figure 2: k-colorability ↔ conservative coalescing.
fn e2_conservative(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_conservative");
    println!("\n[E2] k-colorability vs zero-budget conservative coalescing (must match)");
    for seed in 0..3u64 {
        let mut rng = coalesce_gen::rng(10 + seed);
        let g = random_graph(6, 0.5, &mut rng);
        let reduction = colorability::reduce_to_conservative(&g);
        for k in [2usize, 3] {
            let exact = coalesce_core::conservative::conservative_exact(&reduction.instance, k, false);
            println!(
                "  seed {seed} k={k}: colorable = {}, all coalesced = {}",
                colorability::is_k_colorable(&g, k),
                exact.stats.uncoalesced() == 0
            );
        }
    }
    let mut rng = coalesce_gen::rng(10);
    let g = random_graph(6, 0.5, &mut rng);
    let reduction = colorability::reduce_to_conservative(&g);
    group.bench_function("exact_k3", |b| {
        b.iter(|| coalesce_core::conservative::conservative_exact(&reduction.instance, 3, false))
    });
    group.finish();
}

/// E3 — Figure 3: local rules vs simultaneous coalescing on permutations.
fn e3_local_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_local_rules");
    println!("\n[E3] permutation gadgets: moves coalesced by each strategy");
    println!("  {:>4} {:>4} {:>8} {:>8} {:>8} {:>12}", "n", "k", "briggs", "george", "brute", "simultaneous");
    for &n in &[3usize, 4, 6] {
        let k = n + 2;
        let ag = permutation_instance(n, 2);
        let briggs = conservative_coalesce(&ag, k, ConservativeRule::Briggs);
        let george = conservative_coalesce(&ag, k, ConservativeRule::George);
        let brute = conservative_coalesce(&ag, k, ConservativeRule::BruteForce);
        let all = aggressive_heuristic(&ag);
        let simultaneous_ok =
            greedy::is_greedy_k_colorable(&all.coalescing.merged_graph, k) && all.stats.uncoalesced() == 0;
        println!(
            "  {:>4} {:>4} {:>8} {:>8} {:>8} {:>12}",
            n,
            k,
            briggs.stats.coalesced,
            george.stats.coalesced,
            brute.stats.coalesced,
            if simultaneous_ok { n } else { 0 }
        );
        group.bench_with_input(BenchmarkId::new("briggs", n), &n, |b, _| {
            b.iter(|| conservative_coalesce(&ag, k, ConservativeRule::Briggs))
        });
    }
    group.finish();
}

/// E4 — Theorem 4 / Figure 4: 3SAT ↔ incremental coalescibility.
fn e4_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_incremental");
    println!("\n[E4] random 3SAT near the phase transition: SAT vs coalescible (must match)");
    use rand::Rng;
    let mut agreement = 0;
    let total = 6;
    for seed in 0..total as u64 {
        let mut rng = coalesce_gen::rng(40 + seed);
        let clauses: Vec<Vec<sat::Literal>> = (0..9)
            .map(|_| {
                (0..3)
                    .map(|_| {
                        let var = rng.gen_range(0..4);
                        if rng.gen_bool(0.5) {
                            sat::Literal::pos(var)
                        } else {
                            sat::Literal::neg(var)
                        }
                    })
                    .collect()
            })
            .collect();
        let formula = sat::Cnf::new(4, clauses);
        let reduction = sat::reduce_3sat_to_incremental(&formula);
        let answer = incremental_exact(&reduction.graph, 3, reduction.x, reduction.y);
        let is_sat = formula.is_satisfiable();
        if answer.is_coalescible() == is_sat {
            agreement += 1;
        }
        println!(
            "  seed {seed}: satisfiable = {is_sat}, coalescible = {} ({} graph vertices)",
            answer.is_coalescible(),
            reduction.graph.num_vertices()
        );
    }
    println!("  agreement: {agreement}/{total}");
    let mut rng = coalesce_gen::rng(41);
    let clauses: Vec<Vec<sat::Literal>> = (0..6)
        .map(|_| (0..3).map(|_| sat::Literal::pos(rand::Rng::gen_range(&mut rng, 0..4))).collect())
        .collect();
    let formula = sat::Cnf::new(4, clauses);
    let reduction = sat::reduce_3sat_to_incremental(&formula);
    group.bench_function("incremental_exact", |b| {
        b.iter(|| incremental_exact(&reduction.graph, 3, reduction.x, reduction.y))
    });
    group.finish();
}

/// E5 — Theorem 5 / Figure 5: polynomial chordal algorithm vs exact search.
fn e5_chordal(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_chordal");
    println!("\n[E5] chordal incremental coalescing: agreement and scaling");
    for &n in &[15usize, 30, 60] {
        let mut rng = coalesce_gen::rng(n as u64);
        let (graph, _) = random_interval_graph(n, 3 * n, n / 2 + 2, &mut rng);
        let omega = chordal::chordal_clique_number(&graph).unwrap();
        let pairs: Vec<(VertexId, VertexId)> = (0..n)
            .flat_map(|a| ((a + 1)..n).map(move |b| (v(a), v(b))))
            .filter(|&(a, b)| !graph.has_edge(a, b))
            .take(30)
            .collect();
        let mut agree = 0;
        for &(a, b) in &pairs {
            let fast = chordal_incremental(&graph, omega, a, b).unwrap().is_coalescible();
            if n <= 30 {
                let slow = incremental_exact(&graph, omega, a, b).is_coalescible();
                if fast == slow {
                    agree += 1;
                }
            }
        }
        println!(
            "  n = {n}, omega = {omega}: {} queries, agreement with exact = {}",
            pairs.len(),
            if n <= 30 { format!("{agree}/{}", pairs.len()) } else { "(skipped)".into() }
        );
        group.bench_with_input(BenchmarkId::new("polynomial", n), &n, |b, _| {
            b.iter(|| {
                for &(a, bb) in &pairs {
                    let _ = chordal_incremental(&graph, omega, a, bb);
                }
            })
        });
        if n <= 30 {
            group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
                b.iter(|| {
                    for &(a, bb) in &pairs {
                        let _ = incremental_exact(&graph, omega, a, bb);
                    }
                })
            });
        }
    }
    group.finish();
}

/// E6 — Theorem 6 / Figures 6–7: vertex cover ↔ optimistic de-coalescing.
fn e6_optimistic(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_optimistic");
    println!("\n[E6] vertex cover vs minimum de-coalescing (must be equal); heuristic gap");
    let cases: Vec<(&str, coalesce_graph::Graph)> = vec![
        ("P4", coalesce_graph::Graph::with_edges(4, [(v(0), v(1)), (v(1), v(2)), (v(2), v(3))])),
        ("C4", coalesce_graph::Graph::with_edges(4, (0..4).map(|i| (v(i), v((i + 1) % 4))))),
        ("C5", coalesce_graph::Graph::with_edges(5, (0..5).map(|i| (v(i), v((i + 1) % 5))))),
    ];
    for (name, g) in &cases {
        let instance = vertex_cover::VertexCoverInstance::new(g.clone());
        let cover = instance.minimum_cover();
        let reduction = vertex_cover::reduce_to_optimistic(&instance);
        let (exact, _) = decoalesce_exact(&reduction.instance, reduction.k).unwrap();
        let heuristic = optimistic_coalesce(&reduction.instance, reduction.k);
        println!(
            "  {name}: min cover = {cover}, exact de-coalescing = {exact}, heuristic gives up = {}",
            heuristic.stats.uncoalesced()
        );
    }
    let instance = vertex_cover::VertexCoverInstance::new(cases[1].1.clone());
    let reduction = vertex_cover::reduce_to_optimistic(&instance);
    group.bench_function("heuristic_C4", |b| {
        b.iter(|| optimistic_coalesce(&reduction.instance, reduction.k))
    });
    group.bench_function("exact_C4", |b| {
        b.iter(|| decoalesce_exact(&reduction.instance, reduction.k))
    });
    group.finish();
}

/// E7 — Theorem 1 / Property 1: SSA interference graphs are chordal.
fn e7_ssa_chordal(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_ssa_chordal");
    println!("\n[E7] SSA interference graphs: chordal, omega = Maxlive, greedy-omega-colorable");
    let mut all_hold = true;
    for seed in 0..10u64 {
        let mut rng = coalesce_gen::rng(70 + seed);
        let f = random_ssa_program(&ProgramParams::default(), &mut rng);
        let live = Liveness::compute(&f);
        let ig = InterferenceGraph::build_with(
            &f,
            &live,
            BuildOptions {
                kind: InterferenceKind::Intersection,
                ..Default::default()
            },
        );
        let chordal_ok = chordal::is_chordal(&ig.graph);
        let omega = chordal::chordal_clique_number(&ig.graph);
        let holds = chordal_ok
            && omega == Some(live.maxlive_precise(&f))
            && greedy::is_greedy_k_colorable(&ig.graph, omega.unwrap_or(0));
        all_hold &= holds;
    }
    println!("  Theorem 1 + Property 1 hold on 10/10 generated programs: {all_hold}");
    let mut rng = coalesce_gen::rng(77);
    let f = random_ssa_program(
        &ProgramParams {
            diamonds: 8,
            ..Default::default()
        },
        &mut rng,
    );
    let live = Liveness::compute(&f);
    group.bench_function("build_interference", |b| {
        b.iter(|| InterferenceGraph::build(&f, &live))
    });
    let ig = InterferenceGraph::build(&f, &live);
    group.bench_function("chordality_check", |b| b.iter(|| chordal::is_chordal(&ig.graph)));
    group.finish();
}

/// E8 — the coalescing-challenge-style strategy comparison.
fn e8_challenge(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_challenge");
    group.sample_size(10);
    println!("\n[E8] challenge-style instances: % affinity weight coalesced / IRC spills");
    println!(
        "  {:>4} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6}",
        "seed", "affs", "aggr%", "briggs%", "b+g%", "brute%", "optim%", "spills"
    );
    let params = ChallengeParams::default();
    for seed in 0..6u64 {
        let mut rng = coalesce_gen::rng(80 + seed);
        let inst = challenge_instance(&params, &mut rng);
        let ag = &inst.affinity_graph;
        let k = inst.registers.max(inst.maxlive);
        let pct = |w: u64| {
            if ag.total_weight() == 0 {
                100.0
            } else {
                100.0 * w as f64 / ag.total_weight() as f64
            }
        };
        let aggr = aggressive_heuristic(ag);
        let briggs = conservative_coalesce(ag, k, ConservativeRule::Briggs);
        let bg = conservative_coalesce(ag, k, ConservativeRule::BriggsGeorge);
        let brute = conservative_coalesce(ag, k, ConservativeRule::BruteForce);
        let optim = optimistic_coalesce(ag, k);
        let alloc = coalesce_core::irc::allocate(ag, inst.registers);
        println!(
            "  {:>4} {:>6} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>6}",
            seed,
            ag.num_affinities(),
            pct(aggr.stats.coalesced_weight),
            pct(briggs.stats.coalesced_weight),
            pct(bg.stats.coalesced_weight),
            pct(brute.stats.coalesced_weight),
            pct(optim.stats.coalesced_weight),
            alloc.num_spills()
        );
    }
    let mut rng = coalesce_gen::rng(80);
    let inst = challenge_instance(&params, &mut rng);
    let k = inst.registers.max(inst.maxlive);
    group.bench_function("briggs_george", |b| {
        b.iter(|| conservative_coalesce(&inst.affinity_graph, k, ConservativeRule::BriggsGeorge))
    });
    group.bench_function("brute_force", |b| {
        b.iter(|| conservative_coalesce(&inst.affinity_graph, k, ConservativeRule::BruteForce))
    });
    group.bench_function("optimistic", |b| {
        b.iter(|| optimistic_coalesce(&inst.affinity_graph, k))
    });
    group.finish();
}

/// E9 — Property 2: clique lifting preserves the structural predicates.
fn e9_lifting(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_lifting");
    println!("\n[E9] Property 2 lifting: predicates preserved from k to k + p");
    let mut rng = coalesce_gen::rng(90);
    let (g, _) = random_interval_graph(15, 25, 5, &mut rng);
    let omega = chordal::chordal_clique_number(&g).unwrap();
    for p in 1..=3usize {
        let lifted = lift_by_clique(&g, p);
        println!(
            "  p = {p}: chordal {} -> {}, greedy-{} {} -> greedy-{} {}",
            chordal::is_chordal(&g),
            chordal::is_chordal(&lifted.graph),
            omega,
            greedy::is_greedy_k_colorable(&g, omega),
            omega + p,
            greedy::is_greedy_k_colorable(&lifted.graph, omega + p),
        );
    }
    group.bench_function("lift_p2", |b| b.iter(|| lift_by_clique(&g, 2)));
    group.finish();
}

fn strategy_instance() -> (AffinityGraph, usize) {
    let mut rng = coalesce_gen::rng(99);
    let inst = challenge_instance(&ChallengeParams::default(), &mut rng);
    let k = inst.registers.max(inst.maxlive);
    (inst.affinity_graph, k)
}

/// Throughput of the core strategies on one fixed mid-size instance (used
/// for regression tracking rather than a paper artifact).
fn core_throughput(c: &mut Criterion) {
    let (ag, k) = strategy_instance();
    let mut group = c.benchmark_group("core_throughput");
    group.bench_function("aggressive_heuristic", |b| b.iter(|| aggressive_heuristic(&ag)));
    group.bench_function("conservative_briggs", |b| {
        b.iter(|| conservative_coalesce(&ag, k, ConservativeRule::Briggs))
    });
    group.bench_function("irc_allocate", |b| b.iter(|| coalesce_core::irc::allocate(&ag, k)));
    group.finish();
}

/// E10 — §1 framing: end-to-end allocator comparison (Chaitin–Briggs vs the
/// two-phase SSA-based allocator with each coalescing strategy).
fn e10_allocators(c: &mut Criterion) {
    use coalesce_alloc::pipeline::{compare_allocators, run_allocator, AllocatorKind};
    use coalesce_alloc::ssa_based::CoalescingStrategy;

    let mut group = c.benchmark_group("e10_allocators");
    group.sample_size(10);
    println!("\n[E10] end-to-end allocators: spills and remaining moves per configuration");
    let params = ProgramParams {
        diamonds: 4,
        ops_per_block: 4,
        pressure: 6,
        phis_per_join: 2,
    };
    for (seed, k) in [(21u64, 4usize), (22, 6)] {
        let mut rng = coalesce_gen::rng(seed);
        let f = random_ssa_program(&params, &mut rng);
        println!("  program seed {seed}, k = {k}:");
        for report in compare_allocators(&f, k) {
            println!("    {}", report.row());
            assert!(report.valid);
        }
    }
    let mut rng = coalesce_gen::rng(21);
    let f = random_ssa_program(&params, &mut rng);
    group.bench_function("chaitin_briggs_k4", |b| {
        b.iter(|| run_allocator(&f, 4, AllocatorKind::ChaitinBriggs))
    });
    group.bench_function("ssa_briggs_george_k4", |b| {
        b.iter(|| run_allocator(&f, 4, AllocatorKind::SsaBased(CoalescingStrategy::BriggsGeorge)))
    });
    group.bench_function("ssa_optimistic_k4", |b| {
        b.iter(|| run_allocator(&f, 4, AllocatorKind::SsaBased(CoalescingStrategy::Optimistic)))
    });
    group.finish();
}

/// E11 — §4 discussion after Theorem 5: the chordal (Theorem-5-guided)
/// strategy against the local rules, and the witness-class vs fill-in
/// repair policies.
fn e11_chordal_strategy(c: &mut Criterion) {
    use coalesce_core::chordal_strategy::{chordal_conservative_coalesce, ChordalMode};
    use coalesce_core::affinity::Affinity;

    let mut group = c.benchmark_group("e11_chordal_strategy");
    println!("\n[E11] Theorem-5-guided coalescing on chordal instances (weight removed / total)");
    let mut instances = Vec::new();
    for seed in 0..4u64 {
        let mut rng = coalesce_gen::rng(110 + seed);
        let (g, _) = random_interval_graph(16, 24, 4, &mut rng);
        let omega = chordal::chordal_clique_number(&g).unwrap_or(1).max(1);
        let k = omega;
        let live: Vec<VertexId> = g.vertices().collect();
        let mut affinities = Vec::new();
        for (i, &a) in live.iter().enumerate() {
            for &b in &live[i + 1..] {
                if !g.has_edge(a, b) && affinities.len() < 10 {
                    affinities.push(Affinity::weighted(a, b, 1 + (a.index() as u64 % 3)));
                }
            }
        }
        let ag = AffinityGraph::new(g, affinities);
        let total = ag.total_weight();
        let witness = chordal_conservative_coalesce(&ag, k, ChordalMode::MergeWitnessClass).unwrap();
        let fill = chordal_conservative_coalesce(&ag, k, ChordalMode::FillIn).unwrap();
        let briggs = conservative_coalesce(&ag, k, ConservativeRule::Briggs);
        let brute = conservative_coalesce(&ag, k, ConservativeRule::BruteForce);
        println!(
            "  seed {seed} (k = ω = {k}): witness {}/{total} (artificial {}), fill-in {}/{total} (fills {}), briggs {}/{total}, brute {}/{total}",
            witness.stats.coalesced_weight,
            witness.artificial_merges,
            fill.stats.coalesced_weight,
            fill.fill_edges_added,
            briggs.stats.coalesced_weight,
            brute.stats.coalesced_weight,
        );
        instances.push((ag, k));
    }
    let (ag, k) = instances.swap_remove(0);
    group.bench_function("theorem5_witness", |b| {
        b.iter(|| chordal_conservative_coalesce(&ag, k, ChordalMode::MergeWitnessClass))
    });
    group.bench_function("theorem5_fillin", |b| {
        b.iter(|| chordal_conservative_coalesce(&ag, k, ChordalMode::FillIn))
    });
    group.bench_function("brute_force_rule", |b| {
        b.iter(|| conservative_coalesce(&ag, k, ConservativeRule::BruteForce))
    });
    group.finish();
}

/// E12 — §1 motivation: the splitting / coalescing interplay.  Splitting at
/// block boundaries inflates the number of moves; the strategies then try
/// to remove them again at a fixed register count.
fn e12_splitting(c: &mut Criterion) {
    use coalesce_ir::splitting::split_at_block_boundaries;

    let mut group = c.benchmark_group("e12_splitting");
    println!("\n[E12] live-range splitting then coalescing (moves removed / moves added)");
    let params = ProgramParams {
        diamonds: 4,
        ops_per_block: 3,
        pressure: 5,
        phis_per_join: 2,
    };
    let k = 6;
    for seed in 0..3u64 {
        let mut rng = coalesce_gen::rng(120 + seed);
        let mut f = random_ssa_program(&params, &mut rng);
        let before_affinities = {
            let live = Liveness::compute(&f);
            let ig = InterferenceGraph::build(&f, &live);
            AffinityGraph::from_interference(&ig).num_affinities()
        };
        let stats = split_at_block_boundaries(&mut f);
        let live = Liveness::compute(&f);
        let ig = InterferenceGraph::build(&f, &live);
        let ag = AffinityGraph::from_interference(&ig);
        let briggs_george = conservative_coalesce(&ag, k, ConservativeRule::BriggsGeorge);
        let extended = conservative_coalesce(&ag, k, ConservativeRule::ExtendedGeorge);
        let optimistic = optimistic_coalesce(&ag, k);
        println!(
            "  seed {seed}: affinities {before_affinities} -> {} (+{} split copies); removed: briggs+george {}, extended-george {}, optimistic {}",
            ag.num_affinities(),
            stats.copies_inserted,
            briggs_george.stats.coalesced,
            extended.stats.coalesced,
            optimistic.stats.coalesced,
        );
    }
    let mut rng = coalesce_gen::rng(120);
    let mut f = random_ssa_program(&params, &mut rng);
    split_at_block_boundaries(&mut f);
    let live = Liveness::compute(&f);
    let ig = InterferenceGraph::build(&f, &live);
    let ag = AffinityGraph::from_interference(&ig);
    group.bench_function("split_then_briggs_george", |b| {
        b.iter(|| conservative_coalesce(&ag, k, ConservativeRule::BriggsGeorge))
    });
    group.bench_function("split_then_optimistic", |b| b.iter(|| optimistic_coalesce(&ag, k)));
    group.finish();
}

criterion_group!(
    name = experiments;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(600)).warm_up_time(std::time::Duration::from_millis(150));
    targets = e1_aggressive, e2_conservative, e3_local_rules, e4_incremental, e5_chordal,
              e6_optimistic, e7_ssa_chordal, e8_challenge, e9_lifting, e10_allocators,
              e11_chordal_strategy, e12_splitting, core_throughput
);
criterion_main!(experiments);
