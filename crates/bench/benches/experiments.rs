//! Thin Criterion timing wrapper over the `coalesce-bench` library.
//!
//! The experiment logic (instance generation, exact-vs-heuristic
//! comparison, table computation) lives in `coalesce_bench::experiments`;
//! this harness only (a) prints each experiment's report, exactly as the
//! `run-experiments` CLI would, and (b) times the hot code paths on the
//! library-built instances, so the measured code is the reported code.

use coalesce_alloc::pipeline::{run_allocator, AllocatorKind};
use coalesce_alloc::ssa_based::CoalescingStrategy;
use coalesce_bench::experiments::{
    allocators, reductions, regalloc, scaling, strategies, structure,
};
use coalesce_bench::{run_experiment, ExperimentId};
use coalesce_core::chordal_strategy::{chordal_conservative_coalesce, ChordalMode};
use coalesce_core::conservative::{conservative_coalesce, ConservativeRule};
use coalesce_core::incremental::{chordal_incremental, incremental_exact};
use coalesce_core::optimistic::{decoalesce_exact, optimistic_coalesce};
use coalesce_core::{aggressive_exact, aggressive_heuristic};
use coalesce_graph::chordal;
use coalesce_graph::lift::lift_by_clique;
use coalesce_ir::interference::InterferenceGraph;
use coalesce_ir::liveness::Liveness;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Prints the report of `id` (the tables the paper artifacts correspond
/// to), mirroring what the original in-bench implementation printed.
fn print_report(id: ExperimentId) {
    println!("\n{}", run_experiment(id, 0).render_text());
}

/// E1 — Theorem 2 / Figure 1: multiway cut ↔ aggressive coalescing.
fn e1_aggressive(c: &mut Criterion) {
    print_report(ExperimentId::E1);
    let (_, reduction) = reductions::e1_instance(0);
    let mut group = c.benchmark_group("e1_aggressive");
    group.bench_function(BenchmarkId::new("exact", 0), |b| {
        b.iter(|| aggressive_exact(&reduction.instance))
    });
    group.bench_function(BenchmarkId::new("heuristic", 0), |b| {
        b.iter(|| aggressive_heuristic(&reduction.instance))
    });
    group.finish();
}

/// E2 — Theorem 3 / Figure 2: k-colorability ↔ conservative coalescing.
fn e2_conservative(c: &mut Criterion) {
    print_report(ExperimentId::E2);
    let (_, reduction) = reductions::e2_instance(10);
    let mut group = c.benchmark_group("e2_conservative");
    group.bench_function("exact_k3", |b| {
        b.iter(|| coalesce_core::conservative::conservative_exact(&reduction.instance, 3, false))
    });
    group.finish();
}

/// E3 — Figure 3: local rules vs simultaneous coalescing on permutations.
fn e3_local_rules(c: &mut Criterion) {
    print_report(ExperimentId::E3);
    let mut group = c.benchmark_group("e3_local_rules");
    for n in [3usize, 4, 6] {
        let ag = strategies::e3_instance(n);
        group.bench_with_input(BenchmarkId::new("briggs", n), &n, |b, _| {
            b.iter(|| conservative_coalesce(&ag, n + 2, ConservativeRule::Briggs))
        });
    }
    group.finish();
}

/// E4 — Theorem 4 / Figure 4: 3SAT ↔ incremental coalescibility.
fn e4_incremental(c: &mut Criterion) {
    print_report(ExperimentId::E4);
    let reduction = reductions::e4_reduction(41);
    let mut group = c.benchmark_group("e4_incremental");
    group.bench_function("incremental_exact", |b| {
        b.iter(|| incremental_exact(&reduction.graph, 3, reduction.x, reduction.y))
    });
    group.finish();
}

/// E5 — Theorem 5 / Figure 5: polynomial chordal algorithm vs exact search.
fn e5_chordal(c: &mut Criterion) {
    print_report(ExperimentId::E5);
    let mut group = c.benchmark_group("e5_chordal");
    for n in [15usize, 30, 60] {
        let inst = structure::e5_instance(0, n);
        group.bench_with_input(BenchmarkId::new("polynomial", n), &n, |b, _| {
            b.iter(|| {
                for &(x, y) in &inst.pairs {
                    let _ = chordal_incremental(&inst.graph, inst.omega, x, y);
                }
            })
        });
        if n <= 30 {
            group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
                b.iter(|| {
                    for &(x, y) in &inst.pairs {
                        let _ = incremental_exact(&inst.graph, inst.omega, x, y);
                    }
                })
            });
        }
    }
    group.finish();
}

/// E6 — Theorem 6 / Figures 6–7: vertex cover ↔ optimistic de-coalescing.
fn e6_optimistic(c: &mut Criterion) {
    print_report(ExperimentId::E6);
    let reduction = reductions::e6_reduction(1); // C4
    let mut group = c.benchmark_group("e6_optimistic");
    group.bench_function("heuristic_C4", |b| {
        b.iter(|| optimistic_coalesce(&reduction.instance, reduction.k))
    });
    group.bench_function("exact_C4", |b| {
        b.iter(|| decoalesce_exact(&reduction.instance, reduction.k))
    });
    group.finish();
}

/// E7 — Theorem 1 / Property 1: SSA interference graphs are chordal.
fn e7_ssa_chordal(c: &mut Criterion) {
    print_report(ExperimentId::E7);
    let f = allocators::e10_program(77);
    let live = Liveness::compute(&f);
    let mut group = c.benchmark_group("e7_ssa_chordal");
    group.bench_function("build_interference", |b| {
        b.iter(|| InterferenceGraph::build(&f, &live))
    });
    let ig = InterferenceGraph::build(&f, &live);
    group.bench_function("chordality_check", |b| {
        b.iter(|| chordal::is_chordal(&ig.graph))
    });
    group.finish();
}

/// E8 — the coalescing-challenge-style strategy comparison.
fn e8_challenge(c: &mut Criterion) {
    print_report(ExperimentId::E8);
    let inst = strategies::e8_instance(80);
    let k = inst.registers.max(inst.maxlive);
    let mut group = c.benchmark_group("e8_challenge");
    group.sample_size(10);
    group.bench_function("briggs_george", |b| {
        b.iter(|| conservative_coalesce(&inst.affinity_graph, k, ConservativeRule::BriggsGeorge))
    });
    group.bench_function("brute_force", |b| {
        b.iter(|| conservative_coalesce(&inst.affinity_graph, k, ConservativeRule::BruteForce))
    });
    group.bench_function("optimistic", |b| {
        b.iter(|| optimistic_coalesce(&inst.affinity_graph, k))
    });
    group.finish();
}

/// E9 — Property 2: clique lifting preserves the structural predicates.
fn e9_lifting(c: &mut Criterion) {
    print_report(ExperimentId::E9);
    let (g, _) = structure::e9_instance(0);
    let mut group = c.benchmark_group("e9_lifting");
    group.bench_function("lift_p2", |b| b.iter(|| lift_by_clique(&g, 2)));
    group.finish();
}

/// E10 — §1 framing: end-to-end allocator comparison.
fn e10_allocators(c: &mut Criterion) {
    print_report(ExperimentId::E10);
    let f = allocators::e10_program(21);
    let mut group = c.benchmark_group("e10_allocators");
    group.sample_size(10);
    group.bench_function("chaitin_briggs_k4", |b| {
        b.iter(|| run_allocator(&f, 4, AllocatorKind::ChaitinBriggs))
    });
    group.bench_function("ssa_briggs_george_k4", |b| {
        b.iter(|| {
            run_allocator(
                &f,
                4,
                AllocatorKind::SsaBased(CoalescingStrategy::BriggsGeorge),
            )
        })
    });
    group.bench_function("ssa_optimistic_k4", |b| {
        b.iter(|| {
            run_allocator(
                &f,
                4,
                AllocatorKind::SsaBased(CoalescingStrategy::Optimistic),
            )
        })
    });
    group.finish();
}

/// E11 — the Theorem-5-guided strategy against the local rules.
fn e11_chordal_strategy(c: &mut Criterion) {
    print_report(ExperimentId::E11);
    let (ag, k) = strategies::e11_instance(110);
    let mut group = c.benchmark_group("e11_chordal_strategy");
    group.bench_function("theorem5_witness", |b| {
        b.iter(|| chordal_conservative_coalesce(&ag, k, ChordalMode::MergeWitnessClass))
    });
    group.bench_function("theorem5_fillin", |b| {
        b.iter(|| chordal_conservative_coalesce(&ag, k, ChordalMode::FillIn))
    });
    group.bench_function("brute_force_rule", |b| {
        b.iter(|| conservative_coalesce(&ag, k, ConservativeRule::BruteForce))
    });
    group.finish();
}

/// E12 — §1 motivation: the splitting / coalescing interplay.
fn e12_splitting(c: &mut Criterion) {
    print_report(ExperimentId::E12);
    let (ag, _, _) = allocators::e12_instance(120);
    let k = 6;
    let mut group = c.benchmark_group("e12_splitting");
    group.bench_function("split_then_briggs_george", |b| {
        b.iter(|| conservative_coalesce(&ag, k, ConservativeRule::BriggsGeorge))
    });
    group.bench_function("split_then_optimistic", |b| {
        b.iter(|| optimistic_coalesce(&ag, k))
    });
    group.finish();
}

/// E13 — structured-CFG workloads through the end-to-end allocators.
fn e13_cfg_workloads(c: &mut Criterion) {
    print_report(ExperimentId::E13);
    use coalesce_gen::cfg::{PressureLevel, ShapeProfile};
    let mut group = c.benchmark_group("e13_cfg_workloads");
    for profile in ShapeProfile::ALL {
        group.bench_function(format!("generate_{}", profile.name()), |b| {
            b.iter(|| regalloc::workload_program(42, profile, PressureLevel::Medium))
        });
    }
    group.bench_function("allocate_fp_loopnest_medium", |b| {
        b.iter(|| regalloc::e13_rows(42, ShapeProfile::FpLoopNest, PressureLevel::Medium))
    });
    group.finish();
}

/// E14 — generated corpus through the strategy zoo.
fn e14_strategy_zoo(c: &mut Criterion) {
    print_report(ExperimentId::E14);
    use coalesce_gen::cfg::ShapeProfile;
    let (ag, _) = regalloc::e14_instance(42, ShapeProfile::IntBranchy, 6);
    let mut group = c.benchmark_group("e14_strategy_zoo");
    group.bench_function("strategy_zoo_int_branchy", |b| {
        b.iter(|| regalloc::run_strategy_zoo(&ag, 6))
    });
    group.finish();
}

/// E15 — data-structure scaling: bulk graph construction, clique trees,
/// bitset liveness and incremental spilling at production-ish sizes.
fn e15_scaling(c: &mut Criterion) {
    use coalesce_gen::cfg::ShapeProfile;
    use coalesce_graph::cliquetree::CliqueTree;
    use coalesce_ir::spill::spill_to_pressure;
    let mut group = c.benchmark_group("e15_scaling");
    group.sample_size(10);
    for n in [5_000usize, 20_000] {
        group.bench_with_input(BenchmarkId::new("interval_build", n), &n, |b, &n| {
            b.iter(|| scaling::e15_interval_graph(42, n))
        });
        let g = scaling::e15_interval_graph(42, n);
        group.bench_with_input(BenchmarkId::new("clique_tree", n), &n, |b, _| {
            b.iter(|| CliqueTree::build(&g).expect("interval graphs are chordal"))
        });
    }
    let f = scaling::e15_cfg_program(42, ShapeProfile::IntBranchy);
    group.bench_function("cfg_liveness_2k_blocks", |b| {
        b.iter(|| Liveness::compute(&f))
    });
    let live = Liveness::compute(&f);
    group.bench_function("cfg_interference_2k_blocks", |b| {
        b.iter(|| InterferenceGraph::build(&f, &live))
    });
    let k = (live.maxlive_precise(&f) / 2).max(3);
    // The shim criterion has no `iter_batched`, so the spill measurement
    // necessarily includes one `Function::clone` per iteration; the clone
    // is benchmarked on its own line so the setup cost can be read off and
    // subtracted rather than silently inflating the spill number.
    group.bench_function("cfg_clone_2k_blocks", |b| b.iter(|| f.clone()));
    group.bench_function("cfg_spill_2k_blocks", |b| {
        b.iter(|| spill_to_pressure(&mut f.clone(), k))
    });
    group.finish();
}

/// Throughput of the core strategies on one fixed mid-size instance (used
/// for regression tracking rather than a paper artifact).
fn core_throughput(c: &mut Criterion) {
    let inst = strategies::e8_instance(99);
    let k = inst.registers.max(inst.maxlive);
    let ag = inst.affinity_graph;
    let mut group = c.benchmark_group("core_throughput");
    group.bench_function("aggressive_heuristic", |b| {
        b.iter(|| aggressive_heuristic(&ag))
    });
    group.bench_function("conservative_briggs", |b| {
        b.iter(|| conservative_coalesce(&ag, k, ConservativeRule::Briggs))
    });
    group.bench_function("irc_allocate", |b| {
        b.iter(|| coalesce_core::irc::allocate(&ag, k))
    });
    group.finish();
}

criterion_group!(
    name = experiments;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_millis(600)).warm_up_time(std::time::Duration::from_millis(150));
    targets = e1_aggressive, e2_conservative, e3_local_rules, e4_incremental, e5_chordal,
              e6_optimistic, e7_ssa_chordal, e8_challenge, e9_lifting, e10_allocators,
              e11_chordal_strategy, e12_splitting, e13_cfg_workloads, e14_strategy_zoo,
              e15_scaling, core_throughput
);
criterion_main!(experiments);
