//! `bench-diff` — structural comparison of two `run-experiments --json`
//! artifacts (the fresh `BENCH_pr.json` vs the committed baseline).
//!
//! ```text
//! bench-diff [--require-all] BENCH_pr.json BENCH_baseline.json
//! ```
//!
//! The comparison is deliberately *structural* rather than byte-for-byte:
//! row counts, experiment identities and every invariant field (the
//! boolean `agree` / `equal` / theorem-holds columns and the summary
//! quantities) must match, while instrumentation counters
//! (`nodes_expanded`, `memo_*`) may drift as the solver evolves across
//! PRs.  Experiments are matched *by name*, so a single-experiment
//! artifact diffs cleanly against the full baseline; the CI full-sweep
//! diff passes `--require-all`, which additionally fails the run when any
//! baseline experiment is missing from the current artifact (a sweep that
//! silently dropped an experiment would otherwise pass every per-pair
//! check).  On top of the baseline comparison, a set of *domain invariants*
//! is checked inside the current artifact itself: no coloring may use
//! fewer colors than `Maxlive` without spilling (the E13 `chordal_colors`
//! vs `maxlive` columns), and every spill-count field (any `*spill*` key
//! except the `spiller` strategy label) must be a non-negative number.  Experiments that carry a wall-clock regression
//! guard embed their declared budget as a `budget_ms` summary field; the
//! diff checks that every guarded experiment still declares it, that the
//! value matches the library's [`ExperimentId::budget_ms`] table, and that
//! it never grew past the baseline's (loosening a budget is a reviewed
//! baseline change, not a drive-by).  Measured throughput summaries
//! (E16's `functions_per_sec`) are exempt from equality but must not
//! collapse below a quarter of the baseline.  Exit code 0 means no
//! regression; 1 lists every difference.

use coalesce_bench::{ExperimentId, Json};
use std::process::ExitCode;

/// How one exempted field class is treated by the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Exemption {
    /// Measured instrumentation: exempt from equality.  Throughput is
    /// still guarded — by the floor check in [`check_throughput_floor`],
    /// not by equality.
    PerfCounter,
    /// A name, not a quantity: exempt from the numeric domain checks
    /// (e.g. E17's `spiller` strategy column among the `*spill*` keys).
    Label,
}

/// A key pattern of the exemption table.
#[derive(Debug, Clone, Copy)]
enum Matcher {
    Exact(&'static str),
    Contains(&'static str),
    EndsWith(&'static str),
}

impl Matcher {
    fn matches(self, key: &str) -> bool {
        match self {
            Matcher::Exact(name) => key == name,
            Matcher::Contains(needle) => key.contains(needle),
            Matcher::EndsWith(suffix) => key.ends_with(suffix),
        }
    }
}

/// The single source of truth for field exemptions: every key that the
/// structural comparison treats specially, with the class deciding *how*.
/// First match wins; keys matching nothing are fully checked invariants.
const EXEMPTIONS: &[(Matcher, Exemption)] = &[
    // Search instrumentation: drifts as the solver evolves across PRs.
    (Matcher::Contains("nodes_expanded"), Exemption::PerfCounter),
    (Matcher::Contains("memo"), Exemption::PerfCounter),
    // Measured wall clock and throughput (E16's `functions_per_sec`,
    // the `*_elapsed_ms` counters of E16/E17).
    (Matcher::EndsWith("_per_sec"), Exemption::PerfCounter),
    (Matcher::Contains("elapsed"), Exemption::PerfCounter),
    // The embedded pass-counter objects (`coalesce-stats`): the dotted
    // fields inside (`solver.nodes`, `spill.victims`, `mcs.bucket_ops`,
    // `liveness.worklist_iterations`, `coalesce.merges_accepted`, …) are
    // seed-deterministic but drift across PRs as the passes evolve, so the
    // whole object is exempt from baseline equality — the seed-42 fixtures
    // pin the exact values instead.
    (Matcher::Exact("stats"), Exemption::PerfCounter),
    // Strategy labels: `spiller` is the one spill-related key that is a
    // name, not a quantity.
    (Matcher::Contains("spiller"), Exemption::Label),
];

/// Looks a key up in [`EXEMPTIONS`] (first match wins).
fn exemption_of(key: &str) -> Option<Exemption> {
    EXEMPTIONS
        .iter()
        .find(|(matcher, _)| matcher.matches(key))
        .map(|&(_, class)| class)
}

/// Summary/row keys that are allowed to drift between runs.
fn is_perf_counter(key: &str) -> bool {
    exemption_of(key) == Some(Exemption::PerfCounter)
}

/// Keys that hold names rather than quantities.
fn is_label(key: &str) -> bool {
    exemption_of(key) == Some(Exemption::Label)
}

fn experiments_of(doc: &Json) -> Vec<&Json> {
    match doc.get("experiments").and_then(Json::as_array) {
        Some(items) => items.iter().collect(),
        // A single-experiment file is its own report object.
        None => vec![doc],
    }
}

fn experiment_name(e: &Json) -> &str {
    e.get("experiment")
        .and_then(Json::as_str)
        .unwrap_or("<unnamed>")
}

fn compare(current: &Json, baseline: &Json, require_all: bool, problems: &mut Vec<String>) {
    let current_experiments = experiments_of(current);
    let baseline_experiments = experiments_of(baseline);

    // Experiments are matched by name, not position: a single-experiment
    // artifact is a valid diff input against the full baseline.  An
    // experiment the baseline has never seen cannot be checked — that is
    // an error, not a skip.
    if require_all {
        for base in &baseline_experiments {
            let name = experiment_name(base);
            if !current_experiments
                .iter()
                .any(|e| experiment_name(e) == name)
            {
                problems.push(format!(
                    "{name}: baseline experiment missing from the current artifact \
                     (--require-all)"
                ));
            }
        }
    }

    for experiment in &current_experiments {
        let name = experiment_name(experiment);
        let Some(base) = baseline_experiments
            .iter()
            .find(|e| experiment_name(e) == name)
        else {
            problems.push(format!("{name}: experiment not present in the baseline"));
            continue;
        };
        let rows = experiment
            .get("rows")
            .and_then(Json::as_array)
            .unwrap_or(&[]);
        let base_rows = base.get("rows").and_then(Json::as_array).unwrap_or(&[]);
        if rows.len() != base_rows.len() {
            problems.push(format!(
                "{name}: row count changed: {} vs baseline {}",
                rows.len(),
                base_rows.len()
            ));
            continue;
        }
        for (i, (row, base_row)) in rows.iter().zip(base_rows).enumerate() {
            let (Json::Object(pairs), Json::Object(base_pairs)) = (row, base_row) else {
                continue;
            };
            // Every invariant (boolean) column of the baseline must hold
            // identically in the current run.
            for (key, base_value) in base_pairs {
                if is_perf_counter(key) {
                    continue;
                }
                if !matches!(base_value, Json::Bool(_)) {
                    continue;
                }
                match pairs.iter().find(|(k, _)| k == key) {
                    Some((_, value)) if value == base_value => {}
                    Some((_, value)) => problems.push(format!(
                        "{name} row {i}: invariant `{key}` changed: {value} vs baseline {base_value}"
                    )),
                    None => problems.push(format!(
                        "{name} row {i}: invariant `{key}` disappeared"
                    )),
                }
            }
        }
        // Summary quantities (agreement counts, gap totals) are invariants.
        if let (Some(Json::Object(pairs)), Some(Json::Object(base_pairs))) =
            (experiment.get("summary"), base.get("summary"))
        {
            for (key, base_value) in base_pairs {
                if is_perf_counter(key) {
                    continue;
                }
                match pairs.iter().find(|(k, _)| k == key) {
                    Some((_, value)) if value == base_value => {}
                    Some((_, value)) => problems.push(format!(
                        "{name} summary `{key}` changed: {value} vs baseline {base_value}"
                    )),
                    None => problems.push(format!("{name} summary `{key}` disappeared")),
                }
            }
        }
    }
}

/// Domain invariants of the current artifact: `chordal_colors ≥ maxlive`
/// wherever both appear in one object (a proper coloring can never beat
/// the clique bound `ω = Maxlive`), and every `*spill*` field holds a
/// non-negative number.  Values are visited recursively so nested
/// per-allocator arrays are covered too.
fn check_domain_invariants(context: &str, value: &Json, problems: &mut Vec<String>) {
    match value {
        Json::Object(pairs) => {
            let field = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v);
            if let (Some(colors), Some(maxlive)) = (
                field("chordal_colors").and_then(Json::as_u64),
                field("maxlive").and_then(Json::as_u64),
            ) {
                if colors < maxlive {
                    problems.push(format!(
                        "{context}: chordal_colors {colors} below maxlive {maxlive}"
                    ));
                }
            }
            for (key, v) in pairs {
                if key.contains("spill")
                    && !is_label(key)
                    && !matches!(v, Json::Object(_) | Json::Array(_))
                {
                    match v.as_u64() {
                        Some(_) => {}
                        None => problems.push(format!(
                            "{context}: spill field `{key}` is not a non-negative number: {v}"
                        )),
                    }
                }
                check_domain_invariants(context, v, problems);
            }
        }
        Json::Array(items) => {
            for item in items {
                check_domain_invariants(context, item, problems);
            }
        }
        _ => {}
    }
}

fn check_current_invariants(current: &Json, problems: &mut Vec<String>) {
    for experiment in experiments_of(current) {
        let name = experiment
            .get("experiment")
            .and_then(Json::as_str)
            .unwrap_or("<unnamed>");
        if let Some(rows) = experiment.get("rows").and_then(Json::as_array) {
            for (i, row) in rows.iter().enumerate() {
                check_domain_invariants(&format!("{name} row {i}"), row, problems);
            }
        }
    }
}

/// Timing fields live ONLY at the top level of an experiment summary
/// (`budget_ms`, `elapsed_ms`, `*_elapsed_ms`): a `_ns`/`_us`/`_ms` key in
/// a row, or nested anywhere inside a summary value (such as a `stats`
/// pass-counter object), would leak nondeterministic wall clock into
/// byte-compared or fixture-pinned data.  Wall clock belongs in the
/// summary top level or the `--trace-out` sidecar, nowhere else.
fn check_timing_placement(current: &Json, problems: &mut Vec<String>) {
    fn reject_timing_keys(context: &str, value: &Json, problems: &mut Vec<String>) {
        match value {
            Json::Object(pairs) => {
                for (key, v) in pairs {
                    if key.ends_with("_ns") || key.ends_with("_us") || key.ends_with("_ms") {
                        problems.push(format!(
                            "{context}: timing field `{key}` outside the summary top level"
                        ));
                    }
                    reject_timing_keys(context, v, problems);
                }
            }
            Json::Array(items) => {
                for item in items {
                    reject_timing_keys(context, item, problems);
                }
            }
            _ => {}
        }
    }
    for experiment in experiments_of(current) {
        let name = experiment_name(experiment);
        if let Some(rows) = experiment.get("rows").and_then(Json::as_array) {
            for (i, row) in rows.iter().enumerate() {
                reject_timing_keys(&format!("{name} row {i}"), row, problems);
            }
        }
        if let Some(Json::Object(pairs)) = experiment.get("summary") {
            for (key, v) in pairs {
                // The top-level key itself is the sanctioned home for
                // timing; only its *nested* contents are checked.
                reject_timing_keys(&format!("{name} summary `{key}`"), v, problems);
            }
        }
    }
}

/// The per-experiment wall-clock budget fields: every *guarded*
/// experiment present in the current artifact ([`ExperimentId::budget_ms`]
/// declares a budget for it) must carry the field in its summary with
/// exactly the declared value, and the current artifact's budget must
/// never exceed the baseline's.  Experiments absent from the artifact are
/// not required — single-experiment files are valid diff inputs — unless
/// `--require-all` is in force, where a missing guarded experiment means
/// its wall-clock guard silently stopped running.
fn check_budget_fields(
    current: &Json,
    baseline: &Json,
    require_all: bool,
    problems: &mut Vec<String>,
) {
    fn report_of(doc: &Json, id: ExperimentId) -> Option<&Json> {
        experiments_of(doc)
            .into_iter()
            .find(|e| e.get("experiment").and_then(Json::as_str) == Some(id.as_str()))
    }
    fn budget_of(doc: &Json, id: ExperimentId) -> Option<u64> {
        report_of(doc, id)
            .and_then(|e| e.get("summary"))
            .and_then(|s| s.get("budget_ms"))
            .and_then(Json::as_u64)
    }
    for id in ExperimentId::ALL {
        let Some(declared) = id.budget_ms() else {
            continue;
        };
        if report_of(current, id).is_none() {
            if require_all {
                problems.push(format!(
                    "{id}: guarded experiment absent from the current artifact (--require-all)"
                ));
            }
            continue;
        }
        match budget_of(current, id) {
            None => problems.push(format!(
                "{id}: guarded experiment is missing its `budget_ms` summary field"
            )),
            Some(ms) if ms != declared => problems.push(format!(
                "{id}: `budget_ms` {ms} does not match the declared budget {declared}"
            )),
            Some(ms) => {
                if let Some(base) = budget_of(baseline, id) {
                    if ms > base {
                        problems.push(format!(
                            "{id}: `budget_ms` grew from {base} to {ms} — budgets only tighten \
                             without a baseline review"
                        ));
                    }
                }
            }
        }
    }
}

/// Measured throughput (E16's `functions_per_sec`) drifts run to run —
/// the equality comparison exempts it as a perf counter — but a *collapse*
/// is a regression: every summary `*_per_sec` field present in both
/// artifacts must stay at or above a quarter of the baseline value.
fn check_throughput_floor(current: &Json, baseline: &Json, problems: &mut Vec<String>) {
    let baseline_experiments = experiments_of(baseline);
    for experiment in experiments_of(current) {
        let name = experiment
            .get("experiment")
            .and_then(Json::as_str)
            .unwrap_or("<unnamed>");
        let base_summary = baseline_experiments
            .iter()
            .find(|e| e.get("experiment").and_then(Json::as_str) == Some(name))
            .and_then(|e| e.get("summary"));
        let (Some(Json::Object(pairs)), Some(Json::Object(base_pairs))) =
            (experiment.get("summary"), base_summary)
        else {
            continue;
        };
        for (key, base_value) in base_pairs {
            if !key.ends_with("_per_sec") {
                continue;
            }
            let current_value = pairs
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_u64());
            let (Some(base), Some(now)) = (base_value.as_u64(), current_value) else {
                problems.push(format!(
                    "{name}: throughput `{key}` missing or non-numeric in the current artifact"
                ));
                continue;
            };
            if now < base / 4 {
                problems.push(format!(
                    "{name}: throughput `{key}` collapsed: {now} vs baseline {base} \
                     (floor: baseline / 4)"
                ));
            }
        }
    }
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let before = args.len();
    args.retain(|a| a != "--require-all");
    let require_all = args.len() != before;
    let [current_path, baseline_path] = args.as_slice() else {
        eprintln!("usage: bench-diff [--require-all] <current.json> <baseline.json>");
        return ExitCode::FAILURE;
    };
    let (current, baseline) = match (load(current_path), load(baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (c, b) => {
            for err in [c.err(), b.err()].into_iter().flatten() {
                eprintln!("error: {err}");
            }
            return ExitCode::FAILURE;
        }
    };

    let mut problems = Vec::new();
    compare(&current, &baseline, require_all, &mut problems);
    check_current_invariants(&current, &mut problems);
    check_timing_placement(&current, &mut problems);
    check_budget_fields(&current, &baseline, require_all, &mut problems);
    check_throughput_floor(&current, &baseline, &mut problems);
    if problems.is_empty() {
        println!("bench-diff: {current_path} matches the invariants of {baseline_path}");
        ExitCode::SUCCESS
    } else {
        for problem in &problems {
            eprintln!("bench-diff: {problem}");
        }
        eprintln!("bench-diff: {} problem(s)", problems.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instrumentation_and_wall_clock_keys_are_perf_counters() {
        for key in [
            "nodes_expanded",
            "exact_nodes_expanded",
            "memo_hits",
            "memo_entries",
            "functions_per_sec",
            "elapsed_ms",
            "everywhere_elapsed_ms",
            "pressure-greedy_elapsed_ms",
            "belady_elapsed_ms",
        ] {
            assert!(is_perf_counter(key), "{key} must be exempt from equality");
            assert!(!is_label(key), "{key} is a counter, not a label");
        }
    }

    #[test]
    fn strategy_names_are_labels_not_quantities() {
        assert!(is_label("spiller"));
        assert!(!is_perf_counter("spiller"));
    }

    #[test]
    fn spill_quantities_stay_fully_checked() {
        for key in [
            "spilled",
            "total_spilled",
            "spill_weight",
            "aggregate_spill_weight",
            "irc_spills",
            "everywhere_spill_weight",
        ] {
            assert_eq!(
                exemption_of(key),
                None,
                "{key} is an invariant and must not be exempted"
            );
        }
    }

    #[test]
    fn unexempted_invariants_are_compared() {
        for key in ["chordal", "maxlive", "all_assignments_valid", "rows"] {
            assert_eq!(exemption_of(key), None);
        }
    }

    #[test]
    fn first_match_wins_in_table_order() {
        // A hypothetical key matching both a counter pattern and the
        // label pattern resolves to the earlier (counter) entry, keeping
        // it exempt from equality like the old hand-written logic did.
        assert_eq!(
            exemption_of("spiller_elapsed_total"),
            Some(Exemption::PerfCounter)
        );
    }

    #[test]
    fn stats_counter_objects_are_exempt_from_baseline_equality() {
        assert!(is_perf_counter("stats"), "the pass-counter object drifts");
        // Exact means exact: derived keys stay fully checked invariants.
        assert_eq!(exemption_of("stats_total"), None);
        assert_eq!(exemption_of("substats"), None);
    }

    #[test]
    fn timing_keys_are_rejected_outside_the_summary_top_level() {
        // A row smuggling wall clock, and a stats object doing the same.
        let doc = Json::object([
            ("experiment", Json::from("e16")),
            (
                "rows",
                Json::Array(vec![Json::object([
                    ("spilled", Json::from(3u64)),
                    ("elapsed_ns", Json::from(12u64)),
                ])]),
            ),
            (
                "summary",
                Json::object([
                    ("elapsed_ms", Json::from(5u64)),
                    ("budget_ms", Json::from(10_000u64)),
                    (
                        "stats",
                        Json::object([("spill.victims_us", Json::from(9u64))]),
                    ),
                ]),
            ),
        ]);
        let mut problems = Vec::new();
        check_timing_placement(&doc, &mut problems);
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(problems[0].contains("elapsed_ns"));
        assert!(problems[1].contains("spill.victims_us"));
    }

    #[test]
    fn summary_top_level_timing_keys_are_allowed() {
        let doc = Json::object([
            ("experiment", Json::from("e16")),
            ("rows", Json::Array(vec![])),
            (
                "summary",
                Json::object([
                    ("functions_per_sec", Json::from(100u64)),
                    ("elapsed_ms", Json::from(5u64)),
                    ("stats", Json::object([("solver.nodes", Json::from(1u64))])),
                ]),
            ),
        ]);
        let mut problems = Vec::new();
        check_timing_placement(&doc, &mut problems);
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn domain_check_accepts_labels_and_rejects_bad_quantities() {
        let good = Json::object([
            ("spiller", Json::from("belady")),
            ("spill_weight", Json::from(7u64)),
        ]);
        let mut problems = Vec::new();
        check_domain_invariants("row", &good, &mut problems);
        assert!(problems.is_empty(), "{problems:?}");

        let bad = Json::object([("spill_weight", Json::from("seven"))]);
        check_domain_invariants("row", &bad, &mut problems);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("spill_weight"));
    }
}
