//! `run-experiments` — deterministic CLI driver for the E1–E18 experiments
//! and the streaming corpus analyzer.
//!
//! ```text
//! run-experiments --experiment e1 --seed 0 --json out.json
//! run-experiments --experiment all --json all.json
//! run-experiments --experiment e13 --stats --trace-out trace.json
//! run-experiments --corpus instances/ --jobs 8 --json corpus.jsonl
//! run-experiments --list
//! ```
//!
//! The JSON output is byte-identical across runs for a fixed experiment
//! and seed, so the files can be diffed and archived as `BENCH_*.json`
//! perf-trajectory artifacts.  `--stats` and `--trace-out` only add
//! observability side channels (a stderr table and a chrome://tracing
//! sidecar) — they never change the report JSON.  Corpus mode streams one
//! JSON Lines row per instance file (batched, bounded memory) instead of
//! building a report in memory.

use coalesce_bench::corpus::{collect_corpus_paths, run_corpus, CorpusConfig};
use coalesce_bench::experiments::UnknownExperiment;
use coalesce_bench::report::ExperimentReport;
use coalesce_bench::verify::{verify_corpus, verify_experiment};
use coalesce_bench::{run_reports_filtered, ExperimentId, Json};
use coalesce_gen::cfg::{ShapeProfile, UnknownProfile};
use coalesce_verify::VerifyLevel;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

/// One CLI flag: the single source of truth for both the parser and the
/// `--help` text, so the two can never drift apart again.
struct FlagSpec {
    long: &'static str,
    short: Option<&'static str>,
    /// Value metavariable (`<ID>`); `None` for boolean flags.
    metavar: Option<&'static str>,
    help: &'static [&'static str],
}

/// Every flag the parser accepts, in help order.  The parse loop looks
/// arguments up HERE (an arg missing from this table is an unknown
/// argument), and [`usage`] renders the help text from the same rows.
const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        long: "--experiment",
        short: Some("-e"),
        metavar: Some("<ID>"),
        help: &[
            "Experiment to run: e1..e18, or `all` (default: all);",
            "repeatable",
        ],
    },
    FlagSpec {
        long: "--seed",
        short: Some("-s"),
        metavar: Some("<N>"),
        help: &["Base seed offsetting every internal seed (default: 0)"],
    },
    FlagSpec {
        long: "--jobs",
        short: None,
        metavar: Some("<N>"),
        help: &[
            "Worker threads fanning out experiments and rows",
            "(default: 1; output is byte-identical for any N)",
        ],
    },
    FlagSpec {
        long: "--profile",
        short: Some("-p"),
        metavar: Some("<NAME>"),
        help: &[
            "Restrict the E13/E14 workload sweeps to a shape",
            "profile (int-branchy, fp-loopnest, call-heavy);",
            "repeatable, default: all profiles",
        ],
    },
    FlagSpec {
        long: "--json",
        short: Some("-j"),
        metavar: Some("<PATH>"),
        help: &["Write the JSON report to PATH (`-` for stdout)"],
    },
    FlagSpec {
        long: "--corpus",
        short: None,
        metavar: Some("<PATH>"),
        help: &[
            "Analyze a DIMACS/challenge instance file or directory",
            "instead of running experiments; repeatable.  Rows are",
            "streamed as JSON Lines to --json (default: stdout)",
        ],
    },
    FlagSpec {
        long: "--batch",
        short: None,
        metavar: Some("<N>"),
        help: &["Corpus instances processed per batch (default: 64)"],
    },
    FlagSpec {
        long: "--verify",
        short: None,
        metavar: Some("<LEVEL>"),
        help: &[
            "Audit the pipeline boundaries after the run by",
            "regenerating each experiment's inputs and checking",
            "them against independent reference implementations",
            "(off, boundaries, paranoid; default: off).  Exits",
            "nonzero if any violation is found; the JSON report",
            "is unaffected",
        ],
    },
    FlagSpec {
        long: "--stats",
        short: None,
        metavar: None,
        help: &[
            "Print each experiment's pass-counter totals (and,",
            "with --trace-out, the per-span wall-clock totals) as",
            "a table on stderr.  The JSON report is unaffected",
        ],
    },
    FlagSpec {
        long: "--trace-out",
        short: None,
        metavar: Some("<PATH>"),
        help: &[
            "Record hierarchical pass timings and write them to",
            "PATH in chrome://tracing \"trace event format\" JSON",
            "(open in chrome://tracing or Perfetto).  Timings live",
            "only in this sidecar, never in the byte-compared",
            "report",
        ],
    },
    FlagSpec {
        long: "--timeout-ms",
        short: None,
        metavar: Some("<MS>"),
        help: &[
            "Per-experiment wall-clock ceiling.  An experiment",
            "still running after MS milliseconds is abandoned and",
            "its report is replaced by a deterministic stub whose",
            "summary carries `timed_out: true` and the ceiling, so",
            "archived JSON stays diffable even when a run is cut",
            "short",
        ],
    },
    FlagSpec {
        long: "--quiet",
        short: Some("-q"),
        metavar: None,
        help: &["Suppress the human-readable tables on stdout"],
    },
    FlagSpec {
        long: "--list",
        short: None,
        metavar: None,
        help: &["List experiment ids and titles, then exit"],
    },
    FlagSpec {
        long: "--help",
        short: Some("-h"),
        metavar: None,
        help: &["Show this help"],
    },
];

/// Renders the `--help` text from [`FLAGS`] — the usage can't drift from
/// the parser because both read the same table.
fn usage() -> String {
    let mut out = String::from(
        "run-experiments: run the E1-E18 coalescing experiments deterministically\n\
         \n\
         USAGE:\n\
         \x20   run-experiments [OPTIONS]\n\
         \n\
         OPTIONS:\n",
    );
    for spec in FLAGS {
        let mut head = String::new();
        head.push_str(spec.long);
        if let Some(metavar) = spec.metavar {
            head.push(' ');
            head.push_str(metavar);
        }
        for (i, line) in spec.help.iter().enumerate() {
            if i == 0 {
                out.push_str(&format!("    {head:<20}{line}\n"));
            } else {
                out.push_str(&format!("    {:<20}{line}\n", ""));
            }
        }
        if let Some(short) = spec.short {
            out.push_str(&format!("    {:<20}(short: {short})\n", ""));
        }
    }
    out
}

#[derive(Debug)]
struct Options {
    experiments: Vec<ExperimentId>,
    seed: u64,
    jobs: usize,
    profiles: Vec<ShapeProfile>,
    json_path: Option<String>,
    corpus: Vec<PathBuf>,
    batch_size: usize,
    verify: VerifyLevel,
    stats: bool,
    trace_out: Option<String>,
    timeout_ms: Option<u64>,
    quiet: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut experiments: Option<Vec<ExperimentId>> = None;
    let mut seed: Option<u64> = None;
    let mut jobs = 1usize;
    let mut profiles: Vec<ShapeProfile> = Vec::new();
    let mut json_path = None;
    let mut corpus: Vec<PathBuf> = Vec::new();
    let mut batch_size: Option<usize> = None;
    let mut verify = VerifyLevel::Off;
    let mut stats = false;
    let mut trace_out: Option<String> = None;
    let mut timeout_ms: Option<u64> = None;
    let mut quiet = false;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        // The flag table is the parser's vocabulary: an argument that
        // doesn't resolve to a spec is unknown, and every spec row is
        // handled by exactly one dispatch arm below.
        let Some(spec) = FLAGS
            .iter()
            .find(|spec| spec.long == arg.as_str() || spec.short == Some(arg.as_str()))
        else {
            return Err(format!("unknown argument `{arg}`\n\n{}", usage()));
        };
        let value = if spec.metavar.is_some() {
            Some(
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{} requires a value", spec.long))?,
            )
        } else {
            None
        };
        let value = |()| value.clone().expect("value parsed for metavar flags");
        match spec.long {
            "--help" => {
                print!("{}", usage());
                return Ok(None);
            }
            "--list" => {
                for id in ExperimentId::ALL {
                    println!("{:<4} {}", id.as_str(), id.title());
                }
                return Ok(None);
            }
            "--experiment" => {
                let value = value(());
                let list = experiments.get_or_insert_with(Vec::new);
                if value.eq_ignore_ascii_case("all") {
                    list.extend(ExperimentId::ALL);
                } else {
                    list.push(
                        value
                            .parse()
                            .map_err(|e: UnknownExperiment| e.to_string())?,
                    );
                }
            }
            "--seed" => {
                let value = value(());
                seed =
                    Some(value.parse().map_err(|_| {
                        format!("--seed expects an unsigned integer, got `{value}`")
                    })?);
            }
            "--jobs" => {
                let value = value(());
                jobs = value
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n >= 1)
                    .ok_or(format!("--jobs expects a positive integer, got `{value}`"))?;
            }
            "--profile" => {
                profiles.push(
                    value(())
                        .parse()
                        .map_err(|e: UnknownProfile| e.to_string())?,
                );
            }
            "--json" => json_path = Some(value(())),
            "--corpus" => corpus.push(PathBuf::from(value(()))),
            "--batch" => {
                let value = value(());
                batch_size = Some(
                    value
                        .parse()
                        .ok()
                        .filter(|&n: &usize| n >= 1)
                        .ok_or(format!("--batch expects a positive integer, got `{value}`"))?,
                );
            }
            "--verify" => verify = value(()).parse()?,
            "--stats" => stats = true,
            "--trace-out" => trace_out = Some(value(())),
            "--timeout-ms" => {
                let value = value(());
                timeout_ms = Some(value.parse().ok().filter(|&n: &u64| n >= 1).ok_or(format!(
                    "--timeout-ms expects a positive integer, got `{value}`"
                ))?);
            }
            "--quiet" => quiet = true,
            other => unreachable!("flag `{other}` is in FLAGS but not dispatched"),
        }
    }

    // Each mode rejects the other's flags rather than silently ignoring
    // them: --experiment/--seed drive only the experiment runner, --batch
    // only the corpus analyzer.
    if !corpus.is_empty() && (experiments.is_some() || seed.is_some() || !profiles.is_empty()) {
        return Err("--corpus cannot be combined with --experiment, --seed or --profile".into());
    }
    if corpus.is_empty() && batch_size.is_some() {
        return Err("--batch only applies to --corpus mode".into());
    }
    if !corpus.is_empty() && (stats || trace_out.is_some() || timeout_ms.is_some()) {
        return Err("--stats, --trace-out and --timeout-ms only apply to experiment mode".into());
    }

    // Dedupe while preserving first-occurrence order, so mixes of `all`
    // and explicit ids never run an experiment twice.
    let mut seen = std::collections::BTreeSet::new();
    let experiments: Vec<ExperimentId> = experiments
        .unwrap_or_else(|| ExperimentId::ALL.to_vec())
        .into_iter()
        .filter(|&id| seen.insert(id))
        .collect();

    // Dedupe profiles the same way.
    let mut seen_profiles = std::collections::BTreeSet::new();
    let profiles: Vec<ShapeProfile> = profiles
        .into_iter()
        .filter(|&p| seen_profiles.insert(p))
        .collect();

    // Like --batch, --profile is mode-specific: reject it rather than
    // silently ignoring it when no selected experiment consumes it.
    if !profiles.is_empty()
        && !experiments
            .iter()
            .any(|&id| id == ExperimentId::E13 || id == ExperimentId::E14)
    {
        return Err("--profile only applies to experiments e13/e14".into());
    }

    Ok(Some(Options {
        experiments,
        seed: seed.unwrap_or(0),
        jobs,
        profiles,
        json_path,
        corpus,
        batch_size: batch_size.unwrap_or(64),
        verify,
        stats,
        trace_out,
        timeout_ms,
        quiet,
    }))
}

/// Corpus mode: expand the corpus arguments, stream JSON Lines rows to the
/// `--json` destination (stdout by default), print the summary.
fn run_corpus_mode(options: &Options) -> ExitCode {
    let mut paths = Vec::new();
    for root in &options.corpus {
        match collect_corpus_paths(root) {
            Ok(found) => paths.extend(found),
            Err(e) => {
                eprintln!("error: cannot read corpus {}: {e}", root.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let config = CorpusConfig {
        jobs: options.jobs,
        batch_size: options.batch_size,
    };
    let summary = match options.json_path.as_deref() {
        Some(path) if path != "-" => {
            let file = match std::fs::File::create(path) {
                Ok(file) => file,
                Err(e) => {
                    eprintln!("error: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut writer = std::io::BufWriter::new(file);
            let summary = run_corpus(&paths, config, &mut writer);
            summary.and_then(|s| writer.flush().map(|()| s))
        }
        _ => {
            let stdout = std::io::stdout();
            let mut writer = std::io::BufWriter::new(stdout.lock());
            let summary = run_corpus(&paths, config, &mut writer);
            summary.and_then(|s| writer.flush().map(|()| s))
        }
    };
    // Certificate audit of the corpus claims: re-parse each instance
    // independently of the streamed pipeline, so the JSON Lines output
    // above is untouched.
    if options.verify.is_on() {
        let flagged = verify_corpus(&paths, options.verify);
        if !flagged.is_empty() {
            for (path, violations) in &flagged {
                for v in violations {
                    eprintln!("verify: {}: {v}", path.display());
                }
            }
            return ExitCode::FAILURE;
        }
        if !options.quiet {
            eprintln!(
                "verify: corpus certificates clean at level `{}`",
                options.verify
            );
        }
    }
    match summary {
        Ok(summary) => {
            if !options.quiet {
                eprintln!(
                    "corpus: {} file(s), {} parse error(s), {} chordal, {} vertices, \
                     {} interferences, {} affinities, {} weight coalesced (best), \
                     {} IRC spills",
                    summary.files,
                    summary.parse_errors,
                    summary.chordal,
                    summary.total_vertices,
                    summary.total_interferences,
                    summary.total_affinities,
                    summary.total_best_coalesced_weight,
                    summary.total_irc_spills,
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: corpus run failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The deterministic stand-in for an experiment that blew its
/// `--timeout-ms` ceiling: no rows, and a summary that says so.  The
/// bytes depend only on the id, seed and ceiling, so archived runs with
/// timeouts still diff cleanly.
fn timed_out_report(id: ExperimentId, base_seed: u64, timeout_ms: u64) -> ExperimentReport {
    ExperimentReport {
        id,
        title: id.title(),
        base_seed,
        rows: Vec::new(),
        summary: vec![
            ("timed_out".into(), Json::Bool(true)),
            ("timeout_ms".into(), Json::from(timeout_ms)),
        ],
    }
}

/// Runs each selected experiment on its own thread and waits at most
/// `timeout_ms` for it.  A laggard is abandoned — its thread keeps
/// computing detached, since arbitrary compute can't be cancelled safely
/// — and its slot is filled by [`timed_out_report`].  A worker that dies
/// (panics) is reported the same way rather than taking the driver down.
fn run_reports_with_timeout(options: &Options, timeout_ms: u64) -> Vec<ExperimentReport> {
    options
        .experiments
        .iter()
        .map(|&id| {
            let (tx, rx) = std::sync::mpsc::channel();
            let seed = options.seed;
            let jobs = options.jobs;
            let profiles = options.profiles.clone();
            std::thread::spawn(move || {
                let report = run_reports_filtered(&[id], seed, jobs, &profiles);
                let _ = tx.send(report);
            });
            match rx.recv_timeout(std::time::Duration::from_millis(timeout_ms)) {
                Ok(mut reports) => reports.remove(0),
                Err(_) => {
                    eprintln!(
                        "warning: {} exceeded --timeout-ms {timeout_ms}; emitting stub report",
                        id.as_str()
                    );
                    timed_out_report(id, seed, timeout_ms)
                }
            }
        })
        .collect()
}

/// Prints each report's summary `"stats"` counter object as a stderr
/// table — the human exporter of the pass-counter machinery.
fn print_stats_tables(reports: &[ExperimentReport]) {
    for report in reports {
        let Some(Json::Object(counters)) = report
            .summary
            .iter()
            .find(|(key, _)| key == "stats")
            .map(|(_, v)| v)
        else {
            continue;
        };
        eprintln!("stats: {} (seed {})", report.id.as_str(), report.base_seed);
        for (name, value) in counters {
            if let Some(n) = value.as_u64() {
                eprintln!("  {name:<32}{n:>14}");
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(Some(options)) => options,
        Ok(None) => return ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    if !options.corpus.is_empty() {
        return run_corpus_mode(&options);
    }

    // Tracing is opt-in per run: raise the default level so the spans in
    // the experiment harness and the passes start recording.  Counters
    // are always collected (they are deterministic report fields), so
    // neither flag changes the JSON below by a single byte.
    if options.trace_out.is_some() {
        coalesce_stats::set_default_level(coalesce_stats::Level::Trace);
    }

    let reports = match options.timeout_ms {
        Some(timeout_ms) => run_reports_with_timeout(&options, timeout_ms),
        None => run_reports_filtered(
            &options.experiments,
            options.seed,
            options.jobs,
            &options.profiles,
        ),
    };

    if !options.quiet {
        for report in &reports {
            print!("{}", report.render_text());
        }
    }

    let json = if reports.len() == 1 {
        reports[0].to_json()
    } else {
        Json::object([
            ("base_seed", Json::from(options.seed)),
            (
                "experiments",
                Json::Array(reports.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    };

    match options.json_path.as_deref() {
        Some("-") => print!("{}", json.to_pretty_string()),
        Some(path) => {
            if let Err(e) = std::fs::write(path, json.to_pretty_string()) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            if !options.quiet {
                println!("wrote {path}");
            }
        }
        None => {}
    }

    if options.stats {
        print_stats_tables(&reports);
    }

    // The timing side channel: drain the recorded spans into the
    // chrome://tracing sidecar (and, with --stats, a stderr span table).
    // Wall clock never reaches the byte-compared report above.
    if let Some(path) = options.trace_out.as_deref() {
        let events = coalesce_stats::trace::take_events();
        if options.stats {
            eprintln!("spans: {} event(s)", events.len());
            for line in coalesce_stats::trace::summary_lines(&events) {
                eprintln!("  {line}");
            }
        }
        let trace = coalesce_stats::trace::chrome_trace_json(&events);
        if let Err(e) = std::fs::write(path, trace) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        if !options.quiet {
            println!("wrote {path} ({} span(s))", events.len());
        }
    }

    // Boundary verification: regenerate each experiment's pipeline from
    // the same seeds and audit it against the independent reference
    // implementations.  The report above is already written — the audit
    // can only fail the process, never change the JSON.
    if options.verify.is_on() {
        let mut total = 0usize;
        for &id in &options.experiments {
            let violations = verify_experiment(id, options.seed, options.verify, options.jobs);
            for v in &violations {
                eprintln!("verify: {}: {v}", id.as_str());
            }
            total += violations.len();
        }
        if total > 0 {
            eprintln!("verify: {total} violation(s) found");
            return ExitCode::FAILURE;
        }
        if !options.quiet {
            eprintln!(
                "verify: all pipeline boundaries clean at level `{}`",
                options.verify
            );
        }
    }

    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Option<Options>, String> {
        parse_args(&args.iter().map(ToString::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn every_flag_in_the_table_is_parsed_and_documented() {
        // Parse each boolean flag and each value flag with a dummy value:
        // a FLAGS row without a dispatch arm would hit the unreachable
        // arm, and a row missing from usage() can't happen by
        // construction.  (--help/--list short-circuit to Ok(None).)
        for spec in FLAGS {
            let args: Vec<&str> = match (spec.long, spec.metavar) {
                ("--experiment", _) => vec![spec.long, "e13"],
                ("--profile", _) => vec![spec.long, "int-branchy", "-e", "e13"],
                ("--corpus", _) => vec![spec.long, "some-dir"],
                ("--batch", _) => vec![spec.long, "1", "--corpus", "some-dir"],
                ("--verify", _) => vec![spec.long, "boundaries"],
                ("--json" | "--trace-out", _) => vec![spec.long, "out.json"],
                (_, Some(_)) => vec![spec.long, "1"],
                (_, None) => vec![spec.long],
            };
            assert!(opts(&args).is_ok(), "flag {} must parse", spec.long);
            let text = usage();
            assert!(
                text.contains(spec.long),
                "usage() must document {}",
                spec.long
            );
            if let Some(short) = spec.short {
                assert!(
                    text.contains(&format!("(short: {short})")),
                    "usage() must document the {short} alias"
                );
            }
        }
    }

    #[test]
    fn short_aliases_resolve_to_their_long_flags() {
        let options = opts(&["-e", "e13", "-s", "7", "-q"]).unwrap().unwrap();
        assert_eq!(options.experiments, vec![ExperimentId::E13]);
        assert_eq!(options.seed, 7);
        assert!(options.quiet);
    }

    #[test]
    fn unknown_arguments_are_rejected_with_the_usage_text() {
        let err = opts(&["--nope"]).unwrap_err();
        assert!(err.contains("unknown argument `--nope`"));
        assert!(err.contains("OPTIONS:"), "error must embed the usage");
    }

    #[test]
    fn stats_and_trace_out_are_experiment_mode_only() {
        assert!(opts(&["--stats"]).unwrap().unwrap().stats);
        let err = opts(&["--corpus", "dir", "--stats"]).unwrap_err();
        assert!(err.contains("experiment mode"));
        let err = opts(&["--corpus", "dir", "--trace-out", "t.json"]).unwrap_err();
        assert!(err.contains("experiment mode"));
    }

    #[test]
    fn value_flags_require_a_value() {
        let err = opts(&["--trace-out"]).unwrap_err();
        assert!(err.contains("--trace-out requires a value"));
    }

    #[test]
    fn timeout_ms_parses_and_is_experiment_mode_only() {
        let options = opts(&["--timeout-ms", "5000"]).unwrap().unwrap();
        assert_eq!(options.timeout_ms, Some(5000));
        assert!(opts(&[]).unwrap().unwrap().timeout_ms.is_none());
        let err = opts(&["--timeout-ms", "0"]).unwrap_err();
        assert!(err.contains("positive integer"));
        let err = opts(&["--corpus", "dir", "--timeout-ms", "10"]).unwrap_err();
        assert!(err.contains("experiment mode"));
    }

    #[test]
    fn timed_out_stub_reports_are_deterministic() {
        let a = timed_out_report(ExperimentId::E18, 42, 7)
            .to_json()
            .to_pretty_string();
        let b = timed_out_report(ExperimentId::E18, 42, 7)
            .to_json()
            .to_pretty_string();
        assert_eq!(a, b);
        assert!(a.contains("\"timed_out\": true"));
        assert!(a.contains("\"timeout_ms\": 7"));
        assert!(a.contains("\"rows\": []"));
    }

    #[test]
    fn an_over_budget_experiment_is_replaced_by_the_stub() {
        // A 1ms ceiling trips before any experiment can answer; the stub
        // must fill its slot so the report count (and order) still match
        // the request.
        let options = opts(&["-e", "e16", "--timeout-ms", "1", "-q"])
            .unwrap()
            .unwrap();
        let reports = run_reports_with_timeout(&options, 1);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].id, ExperimentId::E16);
        assert!(reports[0]
            .summary
            .iter()
            .any(|(k, v)| k == "timed_out" && *v == Json::Bool(true)));
    }
}
