//! `run-experiments` — deterministic CLI driver for the E1–E16 experiments
//! and the streaming corpus analyzer.
//!
//! ```text
//! run-experiments --experiment e1 --seed 0 --json out.json
//! run-experiments --experiment all --json all.json
//! run-experiments --corpus instances/ --jobs 8 --json corpus.jsonl
//! run-experiments --list
//! ```
//!
//! The JSON output is byte-identical across runs for a fixed experiment
//! and seed, so the files can be diffed and archived as `BENCH_*.json`
//! perf-trajectory artifacts.  Corpus mode streams one JSON Lines row per
//! instance file (batched, bounded memory) instead of building a report
//! in memory.

use coalesce_bench::corpus::{collect_corpus_paths, run_corpus, CorpusConfig};
use coalesce_bench::experiments::UnknownExperiment;
use coalesce_bench::verify::{verify_corpus, verify_experiment};
use coalesce_bench::{run_reports_filtered, ExperimentId, Json};
use coalesce_gen::cfg::{ShapeProfile, UnknownProfile};
use coalesce_verify::VerifyLevel;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
run-experiments: run the E1-E16 coalescing experiments deterministically

USAGE:
    run-experiments [OPTIONS]

OPTIONS:
    --experiment <ID>   Experiment to run: e1..e16, or `all` (default: all)
    --seed <N>          Base seed offsetting every internal seed (default: 0)
    --jobs <N>          Worker threads fanning out experiments and rows
                        (default: 1; output is byte-identical for any N)
    --profile <NAME>    Restrict the E13/E14 workload sweeps to a shape
                        profile (int-branchy, fp-loopnest, call-heavy);
                        repeatable, default: all profiles
    --json <PATH>       Write the JSON report to PATH (`-` for stdout)
    --corpus <PATH>     Analyze a DIMACS/challenge instance file or directory
                        instead of running experiments; repeatable.  Rows are
                        streamed as JSON Lines to --json (default: stdout)
    --batch <N>         Corpus instances processed per batch (default: 64)
    --verify <LEVEL>    Audit the pipeline boundaries after the run by
                        regenerating each experiment's inputs and checking
                        them against independent reference implementations
                        (off, boundaries, paranoid; default: off).  Exits
                        nonzero if any violation is found; the JSON report
                        is unaffected
    --quiet             Suppress the human-readable tables on stdout
    --list              List experiment ids and titles, then exit
    --help              Show this help
";

struct Options {
    experiments: Vec<ExperimentId>,
    seed: u64,
    jobs: usize,
    profiles: Vec<ShapeProfile>,
    json_path: Option<String>,
    corpus: Vec<PathBuf>,
    batch_size: usize,
    verify: VerifyLevel,
    quiet: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut experiments: Option<Vec<ExperimentId>> = None;
    let mut seed: Option<u64> = None;
    let mut jobs = 1usize;
    let mut profiles: Vec<ShapeProfile> = Vec::new();
    let mut json_path = None;
    let mut corpus: Vec<PathBuf> = Vec::new();
    let mut batch_size: Option<usize> = None;
    let mut verify = VerifyLevel::Off;
    let mut quiet = false;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_for = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(None);
            }
            "--list" => {
                for id in ExperimentId::ALL {
                    println!("{:<4} {}", id.as_str(), id.title());
                }
                return Ok(None);
            }
            "--experiment" | "-e" => {
                let value = value_for("--experiment")?;
                let list = experiments.get_or_insert_with(Vec::new);
                if value.eq_ignore_ascii_case("all") {
                    list.extend(ExperimentId::ALL);
                } else {
                    list.push(
                        value
                            .parse()
                            .map_err(|e: UnknownExperiment| e.to_string())?,
                    );
                }
            }
            "--seed" | "-s" => {
                let value = value_for("--seed")?;
                seed =
                    Some(value.parse().map_err(|_| {
                        format!("--seed expects an unsigned integer, got `{value}`")
                    })?);
            }
            "--jobs" => {
                let value = value_for("--jobs")?;
                jobs = value
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n >= 1)
                    .ok_or(format!("--jobs expects a positive integer, got `{value}`"))?;
            }
            "--profile" | "-p" => {
                let value = value_for("--profile")?;
                profiles.push(value.parse().map_err(|e: UnknownProfile| e.to_string())?);
            }
            "--json" | "-j" => json_path = Some(value_for("--json")?),
            "--corpus" => corpus.push(PathBuf::from(value_for("--corpus")?)),
            "--batch" => {
                let value = value_for("--batch")?;
                batch_size = Some(
                    value
                        .parse()
                        .ok()
                        .filter(|&n: &usize| n >= 1)
                        .ok_or(format!("--batch expects a positive integer, got `{value}`"))?,
                );
            }
            "--verify" => verify = value_for("--verify")?.parse()?,
            "--quiet" | "-q" => quiet = true,
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }

    // Each mode rejects the other's flags rather than silently ignoring
    // them: --experiment/--seed drive only the experiment runner, --batch
    // only the corpus analyzer.
    if !corpus.is_empty() && (experiments.is_some() || seed.is_some() || !profiles.is_empty()) {
        return Err("--corpus cannot be combined with --experiment, --seed or --profile".into());
    }
    if corpus.is_empty() && batch_size.is_some() {
        return Err("--batch only applies to --corpus mode".into());
    }

    // Dedupe while preserving first-occurrence order, so mixes of `all`
    // and explicit ids never run an experiment twice.
    let mut seen = std::collections::BTreeSet::new();
    let experiments: Vec<ExperimentId> = experiments
        .unwrap_or_else(|| ExperimentId::ALL.to_vec())
        .into_iter()
        .filter(|&id| seen.insert(id))
        .collect();

    // Dedupe profiles the same way.
    let mut seen_profiles = std::collections::BTreeSet::new();
    let profiles: Vec<ShapeProfile> = profiles
        .into_iter()
        .filter(|&p| seen_profiles.insert(p))
        .collect();

    // Like --batch, --profile is mode-specific: reject it rather than
    // silently ignoring it when no selected experiment consumes it.
    if !profiles.is_empty()
        && !experiments
            .iter()
            .any(|&id| id == ExperimentId::E13 || id == ExperimentId::E14)
    {
        return Err("--profile only applies to experiments e13/e14".into());
    }

    Ok(Some(Options {
        experiments,
        seed: seed.unwrap_or(0),
        jobs,
        profiles,
        json_path,
        corpus,
        batch_size: batch_size.unwrap_or(64),
        verify,
        quiet,
    }))
}

/// Corpus mode: expand the corpus arguments, stream JSON Lines rows to the
/// `--json` destination (stdout by default), print the summary.
fn run_corpus_mode(options: &Options) -> ExitCode {
    let mut paths = Vec::new();
    for root in &options.corpus {
        match collect_corpus_paths(root) {
            Ok(found) => paths.extend(found),
            Err(e) => {
                eprintln!("error: cannot read corpus {}: {e}", root.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let config = CorpusConfig {
        jobs: options.jobs,
        batch_size: options.batch_size,
    };
    let summary = match options.json_path.as_deref() {
        Some(path) if path != "-" => {
            let file = match std::fs::File::create(path) {
                Ok(file) => file,
                Err(e) => {
                    eprintln!("error: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut writer = std::io::BufWriter::new(file);
            let summary = run_corpus(&paths, config, &mut writer);
            summary.and_then(|s| writer.flush().map(|()| s))
        }
        _ => {
            let stdout = std::io::stdout();
            let mut writer = std::io::BufWriter::new(stdout.lock());
            let summary = run_corpus(&paths, config, &mut writer);
            summary.and_then(|s| writer.flush().map(|()| s))
        }
    };
    // Certificate audit of the corpus claims: re-parse each instance
    // independently of the streamed pipeline, so the JSON Lines output
    // above is untouched.
    if options.verify.is_on() {
        let flagged = verify_corpus(&paths, options.verify);
        if !flagged.is_empty() {
            for (path, violations) in &flagged {
                for v in violations {
                    eprintln!("verify: {}: {v}", path.display());
                }
            }
            return ExitCode::FAILURE;
        }
        if !options.quiet {
            eprintln!(
                "verify: corpus certificates clean at level `{}`",
                options.verify
            );
        }
    }
    match summary {
        Ok(summary) => {
            if !options.quiet {
                eprintln!(
                    "corpus: {} file(s), {} parse error(s), {} chordal, {} vertices, \
                     {} interferences, {} affinities, {} weight coalesced (best), \
                     {} IRC spills",
                    summary.files,
                    summary.parse_errors,
                    summary.chordal,
                    summary.total_vertices,
                    summary.total_interferences,
                    summary.total_affinities,
                    summary.total_best_coalesced_weight,
                    summary.total_irc_spills,
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: corpus run failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(Some(options)) => options,
        Ok(None) => return ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    if !options.corpus.is_empty() {
        return run_corpus_mode(&options);
    }

    let reports = run_reports_filtered(
        &options.experiments,
        options.seed,
        options.jobs,
        &options.profiles,
    );

    if !options.quiet {
        for report in &reports {
            print!("{}", report.render_text());
        }
    }

    let json = if reports.len() == 1 {
        reports[0].to_json()
    } else {
        Json::object([
            ("base_seed", Json::from(options.seed)),
            (
                "experiments",
                Json::Array(reports.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    };

    match options.json_path.as_deref() {
        Some("-") => print!("{}", json.to_pretty_string()),
        Some(path) => {
            if let Err(e) = std::fs::write(path, json.to_pretty_string()) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            if !options.quiet {
                println!("wrote {path}");
            }
        }
        None => {}
    }

    // Boundary verification: regenerate each experiment's pipeline from
    // the same seeds and audit it against the independent reference
    // implementations.  The report above is already written — the audit
    // can only fail the process, never change the JSON.
    if options.verify.is_on() {
        let mut total = 0usize;
        for &id in &options.experiments {
            let violations = verify_experiment(id, options.seed, options.verify, options.jobs);
            for v in &violations {
                eprintln!("verify: {}: {v}", id.as_str());
            }
            total += violations.len();
        }
        if total > 0 {
            eprintln!("verify: {total} violation(s) found");
            return ExitCode::FAILURE;
        }
        if !options.quiet {
            eprintln!(
                "verify: all pipeline boundaries clean at level `{}`",
                options.verify
            );
        }
    }

    ExitCode::SUCCESS
}
