//! `run-experiments` — deterministic CLI driver for the E1–E12 experiments.
//!
//! ```text
//! run-experiments --experiment e1 --seed 0 --json out.json
//! run-experiments --experiment all --json all.json
//! run-experiments --list
//! ```
//!
//! The JSON output is byte-identical across runs for a fixed experiment
//! and seed, so the files can be diffed and archived as `BENCH_*.json`
//! perf-trajectory artifacts.

use coalesce_bench::experiments::UnknownExperiment;
use coalesce_bench::{run_reports, ExperimentId, Json};
use std::process::ExitCode;

const USAGE: &str = "\
run-experiments: run the E1-E12 coalescing experiments deterministically

USAGE:
    run-experiments [OPTIONS]

OPTIONS:
    --experiment <ID>   Experiment to run: e1..e12, or `all` (default: all)
    --seed <N>          Base seed offsetting every internal seed (default: 0)
    --jobs <N>          Worker threads fanning out experiments and rows
                        (default: 1; output is byte-identical for any N)
    --json <PATH>       Write the JSON report to PATH (`-` for stdout)
    --quiet             Suppress the human-readable tables on stdout
    --list              List experiment ids and titles, then exit
    --help              Show this help
";

struct Options {
    experiments: Vec<ExperimentId>,
    seed: u64,
    jobs: usize,
    json_path: Option<String>,
    quiet: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut experiments: Option<Vec<ExperimentId>> = None;
    let mut seed = 0u64;
    let mut jobs = 1usize;
    let mut json_path = None;
    let mut quiet = false;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_for = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(None);
            }
            "--list" => {
                for id in ExperimentId::ALL {
                    println!("{:<4} {}", id.as_str(), id.title());
                }
                return Ok(None);
            }
            "--experiment" | "-e" => {
                let value = value_for("--experiment")?;
                let list = experiments.get_or_insert_with(Vec::new);
                if value.eq_ignore_ascii_case("all") {
                    list.extend(ExperimentId::ALL);
                } else {
                    list.push(
                        value
                            .parse()
                            .map_err(|e: UnknownExperiment| e.to_string())?,
                    );
                }
            }
            "--seed" | "-s" => {
                let value = value_for("--seed")?;
                seed = value
                    .parse()
                    .map_err(|_| format!("--seed expects an unsigned integer, got `{value}`"))?;
            }
            "--jobs" => {
                let value = value_for("--jobs")?;
                jobs = value
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n >= 1)
                    .ok_or(format!("--jobs expects a positive integer, got `{value}`"))?;
            }
            "--json" | "-j" => json_path = Some(value_for("--json")?),
            "--quiet" | "-q" => quiet = true,
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }

    // Dedupe while preserving first-occurrence order, so mixes of `all`
    // and explicit ids never run an experiment twice.
    let mut seen = std::collections::BTreeSet::new();
    let experiments: Vec<ExperimentId> = experiments
        .unwrap_or_else(|| ExperimentId::ALL.to_vec())
        .into_iter()
        .filter(|&id| seen.insert(id))
        .collect();

    Ok(Some(Options {
        experiments,
        seed,
        jobs,
        json_path,
        quiet,
    }))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(Some(options)) => options,
        Ok(None) => return ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    let reports = run_reports(&options.experiments, options.seed, options.jobs);

    if !options.quiet {
        for report in &reports {
            print!("{}", report.render_text());
        }
    }

    let json = if reports.len() == 1 {
        reports[0].to_json()
    } else {
        Json::object([
            ("base_seed", Json::from(options.seed)),
            (
                "experiments",
                Json::Array(reports.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    };

    match options.json_path.as_deref() {
        Some("-") => print!("{}", json.to_pretty_string()),
        Some(path) => {
            if let Err(e) = std::fs::write(path, json.to_pretty_string()) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            if !options.quiet {
                println!("wrote {path}");
            }
        }
        None => {}
    }

    ExitCode::SUCCESS
}
