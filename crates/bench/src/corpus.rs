//! Streaming corpus runner: structural analysis of a directory of
//! DIMACS / challenge instance files at large-corpus scale.
//!
//! The experiment reports of [`crate::experiments`] accumulate all their
//! rows in memory before serializing, which is fine for a 12-experiment
//! sweep but wrong for corpora of thousands of instance files (the
//! Appel–George challenge suite shape the parsers in
//! [`coalesce_graph::format`] target).  This module processes a corpus in
//! **batches**: each batch is fanned over the worker pool, its rows are
//! written to the output as JSON Lines *immediately*, and only a small
//! running [`CorpusSummary`] survives the batch — memory stays bounded by
//! the batch size regardless of corpus size.
//!
//! Per instance the analysis is the linear structural pipeline this
//! repository is built around: parse, count, chordality via the
//! Blair–Peyton MCS sweep, and — when chordal — `ω(G)` and the clique-tree
//! node count read off the same construction.  On top of the structural
//! stats, every parsed instance is fed through the polynomial coalescing
//! strategies of `coalesce_core` (aggressive, Briggs, Briggs+George,
//! brute-force, optimistic, chordal where applicable, and IRC with its
//! resulting spills), so a corpus run reports *how the strategies fare*,
//! not just what the graphs look like.  The superlinear zoo members
//! (brute force, chordal) are size-bounded so streaming over
//! multi-thousand-vertex files stays near the structural pass's cost.

use crate::experiments::regalloc::{
    run_strategy_zoo_with, strategies_json, StrategyOutcome, ZooConfig,
};
use crate::json::Json;
use crate::par::par_map;
use coalesce_core::affinity::{Affinity, AffinityGraph};
use coalesce_graph::cliquetree::CliqueTree;
use coalesce_graph::format::{self, ChallengeFile};
use coalesce_graph::Graph;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Options of a corpus run.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Worker threads per batch (1 = serial).
    pub jobs: usize,
    /// Instances analyzed (and rows held in memory) at a time.
    pub batch_size: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            jobs: 1,
            batch_size: 64,
        }
    }
}

/// Running totals of a corpus run; the only state that outlives a batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorpusSummary {
    /// Files processed (parsed or not).
    pub files: usize,
    /// Files that failed to parse.
    pub parse_errors: usize,
    /// Parsed instances whose interference graph is chordal.
    pub chordal: usize,
    /// Total vertices over parsed instances.
    pub total_vertices: usize,
    /// Total interference edges over parsed instances.
    pub total_interferences: usize,
    /// Total affinities over parsed instances.
    pub total_affinities: usize,
    /// Total affinity weight coalesced by the best strategy per instance.
    pub total_best_coalesced_weight: u64,
    /// Total actual spills of the IRC allocator over parsed instances.
    pub total_irc_spills: usize,
}

impl CorpusSummary {
    /// The summary as a JSON object (the trailing line of a corpus file).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("summary", Json::from(true)),
            ("files", Json::from(self.files)),
            ("parse_errors", Json::from(self.parse_errors)),
            ("chordal", Json::from(self.chordal)),
            ("total_vertices", Json::from(self.total_vertices)),
            ("total_interferences", Json::from(self.total_interferences)),
            ("total_affinities", Json::from(self.total_affinities)),
            (
                "total_best_coalesced_weight",
                Json::from(self.total_best_coalesced_weight),
            ),
            ("total_irc_spills", Json::from(self.total_irc_spills)),
        ])
    }
}

/// Expands a corpus argument into instance file paths: a file stands for
/// itself, a directory for its (non-recursive) instance files, sorted by
/// name so runs are deterministic.  Hidden files and obvious non-instance
/// byproducts (`.json` / `.jsonl` output, `.md`, `.log`) are skipped, so
/// writing the `--json` output into the corpus directory does not turn it
/// into a parse-error row on the next run.
pub fn collect_corpus_paths(root: &Path) -> io::Result<Vec<PathBuf>> {
    if root.is_file() {
        return Ok(vec![root.to_path_buf()]);
    }
    let mut paths: Vec<PathBuf> = std::fs::read_dir(root)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_file() && !is_non_instance(p))
        .collect();
    paths.sort();
    Ok(paths)
}

/// Files a corpus directory may plausibly contain that are never instance
/// files: hidden files and common output/document extensions.
fn is_non_instance(path: &Path) -> bool {
    let hidden = path
        .file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.starts_with('.'));
    hidden
        || matches!(
            path.extension().and_then(|e| e.to_str()),
            Some("json") | Some("jsonl") | Some("md") | Some("log")
        )
}

/// How a file's contents are interpreted, from its extension: `.col` /
/// `.dimacs` are DIMACS coloring files, everything else the challenge
/// format.
fn is_dimacs(path: &Path) -> bool {
    matches!(
        path.extension().and_then(|e| e.to_str()),
        Some("col") | Some("dimacs")
    )
}

/// The outcome of analyzing one instance file.
#[derive(Debug, Clone)]
pub struct CorpusRow {
    /// The analyzed file.
    pub path: PathBuf,
    /// Parse outcome: the instance, or the parse error message.
    pub outcome: Result<CorpusInstance, String>,
}

/// The structural numbers of one parsed instance.
#[derive(Debug, Clone)]
pub struct CorpusInstance {
    /// `"dimacs"` or `"challenge"`.
    pub format: &'static str,
    /// Live vertices of the interference graph.
    pub vertices: usize,
    /// Interference edges.
    pub interferences: usize,
    /// Affinities (0 for DIMACS files).
    pub affinities: usize,
    /// Register count recorded in the file, if any.
    pub registers: Option<usize>,
    /// Maximum degree of the interference graph.
    pub max_degree: usize,
    /// Whether the interference graph is chordal.
    pub chordal: bool,
    /// `ω(G)` when chordal.
    pub omega: Option<usize>,
    /// Clique-tree nodes (maximal cliques) when chordal.
    pub clique_tree_nodes: Option<usize>,
    /// Register count the strategies ran at: the file's `k` when present,
    /// else `ω(G)` when chordal, else `max_degree + 1` (always colorable).
    pub k: usize,
    /// Per-strategy results, in fixed strategy order (the superlinear zoo
    /// members are skipped on instances beyond [`ZooConfig::bounded`]).
    pub strategies: Vec<StrategyOutcome>,
    /// Actual spills of the IRC allocator at `k`.
    pub irc_spills: usize,
}

impl CorpusRow {
    /// The row as a JSON Lines object.
    pub fn to_json(&self) -> Json {
        let path = Json::from(self.path.display().to_string());
        match &self.outcome {
            Err(message) => Json::object([("path", path), ("error", Json::from(message.as_str()))]),
            Ok(inst) => Json::object([
                ("path", path),
                ("format", Json::from(inst.format)),
                ("vertices", Json::from(inst.vertices)),
                ("interferences", Json::from(inst.interferences)),
                ("affinities", Json::from(inst.affinities)),
                ("registers", inst.registers.map_or(Json::Null, Json::from)),
                ("max_degree", Json::from(inst.max_degree)),
                ("chordal", Json::from(inst.chordal)),
                ("omega", inst.omega.map_or(Json::Null, Json::from)),
                (
                    "clique_tree_nodes",
                    inst.clique_tree_nodes.map_or(Json::Null, Json::from),
                ),
                ("k", Json::from(inst.k)),
                ("strategies", strategies_json(&inst.strategies)),
                ("irc_spills", Json::from(inst.irc_spills)),
            ]),
        }
    }
}

/// Analyzes one instance file (parse + linear structural pipeline).
pub fn analyze_file(path: &Path) -> CorpusRow {
    let outcome = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read file: {e}"))
        .and_then(|text| analyze_text(path, &text));
    CorpusRow {
        path: path.to_path_buf(),
        outcome,
    }
}

fn analyze_text(path: &Path, text: &str) -> Result<CorpusInstance, String> {
    let (fmt, graph, affinities, registers) = if is_dimacs(path) {
        let graph = format::from_dimacs(text).map_err(|e| e.to_string())?;
        ("dimacs", graph, Vec::new(), None)
    } else {
        let ChallengeFile {
            graph,
            affinities,
            registers,
        } = format::from_challenge(text).map_err(|e| e.to_string())?;
        ("challenge", graph, affinities, registers)
    };
    Ok(analyze_graph(fmt, graph, &affinities, registers))
}

fn analyze_graph(
    fmt: &'static str,
    graph: Graph,
    affinities: &[(coalesce_graph::VertexId, coalesce_graph::VertexId, u64)],
    registers: Option<usize>,
) -> CorpusInstance {
    let tree = CliqueTree::build(&graph);
    let omega = tree.as_ref().map(CliqueTree::clique_number);
    // The register count the strategies target: the instance's own `k`
    // when the file records one, otherwise `ω(G)` (the tightest spill-free
    // count) on chordal graphs, otherwise the always-sufficient
    // `max_degree + 1`.
    let k = registers
        .or(omega)
        .unwrap_or_else(|| graph.max_degree() + 1)
        .max(1);
    let vertices = graph.num_vertices();
    let interferences = graph.num_edges();
    let max_degree = graph.max_degree();
    let ag = AffinityGraph::new(
        graph,
        affinities
            .iter()
            .map(|&(u, v, w)| Affinity::weighted(u, v, w))
            .collect(),
    );
    // Streaming runs must stay near the structural pass's cost on huge
    // instances, so the superlinear zoo members are size-bounded.
    let zoo_config = ZooConfig::bounded(interferences, affinities.len());
    let (strategies, irc_spills) = run_strategy_zoo_with(&ag, k, zoo_config);
    CorpusInstance {
        format: fmt,
        vertices,
        interferences,
        affinities: affinities.len(),
        registers,
        max_degree,
        chordal: tree.is_some(),
        omega,
        clique_tree_nodes: tree.as_ref().map(CliqueTree::num_nodes),
        k,
        strategies,
        irc_spills,
    }
}

/// Runs the corpus: analyzes `paths` in batches of
/// [`CorpusConfig::batch_size`], streams one JSON Lines row per file to
/// `out` as each batch completes, appends a final summary line, and
/// returns the summary.
///
/// Rows appear in input order (the per-batch fan-out is order-preserving),
/// so the output is byte-identical for any `jobs` value.
pub fn run_corpus(
    paths: &[PathBuf],
    config: CorpusConfig,
    out: &mut dyn Write,
) -> io::Result<CorpusSummary> {
    let mut summary = CorpusSummary::default();
    let batch_size = config.batch_size.max(1);
    for batch in paths.chunks(batch_size) {
        let rows = par_map(batch, config.jobs, |path| analyze_file(path));
        for row in &rows {
            summary.files += 1;
            match &row.outcome {
                Err(_) => summary.parse_errors += 1,
                Ok(inst) => {
                    summary.chordal += inst.chordal as usize;
                    summary.total_vertices += inst.vertices;
                    summary.total_interferences += inst.interferences;
                    summary.total_affinities += inst.affinities;
                    summary.total_best_coalesced_weight += inst
                        .strategies
                        .iter()
                        .map(|s| s.stats.coalesced_weight)
                        .max()
                        .unwrap_or(0);
                    summary.total_irc_spills += inst.irc_spills;
                }
            }
            writeln!(out, "{}", row.to_json().to_compact_string())?;
        }
        // The batch's rows (and parsed graphs) are dropped here; memory
        // use is bounded by the batch, not the corpus.
    }
    writeln!(out, "{}", summary.to_json().to_compact_string())?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_corpus(name: &str, files: &[(&str, &str)]) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("coalesce-corpus-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for (file, contents) in files {
            std::fs::write(dir.join(file), contents).unwrap();
        }
        dir
    }

    #[test]
    fn corpus_rows_stream_in_order_with_a_summary_line() {
        let dir = temp_corpus(
            "basic",
            &[
                ("a.col", "p edge 3 2\ne 1 2\ne 2 3\n"),
                ("b.cg", "p coalesce 4 1 1\nk 2\ne 1 2\na 3 4 5\n"),
                ("broken.cg", "p coalesce 2 1 0\n"),
            ],
        );
        let paths = collect_corpus_paths(&dir).unwrap();
        assert_eq!(paths.len(), 3);
        let mut out = Vec::new();
        let summary = run_corpus(&paths, CorpusConfig::default(), &mut out).unwrap();
        assert_eq!(summary.files, 3);
        assert_eq!(summary.parse_errors, 1);
        assert_eq!(summary.chordal, 2);
        assert_eq!(summary.total_vertices, 7);
        assert_eq!(summary.total_affinities, 1);

        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "3 rows + 1 summary: {text}");
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("format").and_then(Json::as_str), Some("dimacs"));
        assert_eq!(first.get("chordal").and_then(Json::as_bool), Some(true));
        let second = Json::parse(lines[1]).unwrap();
        assert_eq!(
            second.get("format").and_then(Json::as_str),
            Some("challenge")
        );
        // The challenge instance (k 2, one affinity 3-4 of weight 5 with no
        // interference between them) is fully coalesced by every strategy.
        assert_eq!(second.get("k").and_then(Json::as_u64), Some(2));
        let strategies = second.get("strategies").unwrap();
        for name in ["aggressive", "briggs_george", "optimistic", "irc"] {
            let s = strategies.get(name).unwrap_or_else(|| panic!("{name}"));
            assert_eq!(s.get("coalesced_weight").and_then(Json::as_u64), Some(5));
        }
        assert_eq!(second.get("irc_spills").and_then(Json::as_u64), Some(0));
        let third = Json::parse(lines[2]).unwrap();
        assert!(third.get("error").is_some());
        let last = Json::parse(lines[3]).unwrap();
        assert_eq!(last.get("summary").and_then(Json::as_bool), Some(true));
        assert_eq!(
            last.get("total_best_coalesced_weight")
                .and_then(Json::as_u64),
            Some(5)
        );
        assert_eq!(last.get("total_irc_spills").and_then(Json::as_u64), Some(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batching_and_jobs_do_not_change_the_output() {
        let files: Vec<(String, String)> = (0..9)
            .map(|i| {
                (
                    format!("g{i}.cg"),
                    format!("p coalesce 3 2 0\ne 1 2\ne {} 3\n", 1 + i % 2),
                )
            })
            .collect();
        let refs: Vec<(&str, &str)> = files
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        let dir = temp_corpus("batching", &refs);
        let paths = collect_corpus_paths(&dir).unwrap();
        let mut reference = Vec::new();
        run_corpus(
            &paths,
            CorpusConfig {
                jobs: 1,
                batch_size: 1,
            },
            &mut reference,
        )
        .unwrap();
        for (jobs, batch_size) in [(1, 4), (4, 2), (8, 64)] {
            let mut out = Vec::new();
            run_corpus(&paths, CorpusConfig { jobs, batch_size }, &mut out).unwrap();
            assert_eq!(
                out, reference,
                "jobs={jobs} batch={batch_size} must be byte-identical"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn output_byproducts_and_hidden_files_are_not_corpus_instances() {
        let dir = temp_corpus(
            "filter",
            &[
                ("a.col", "p edge 2 1\ne 1 2\n"),
                ("out.jsonl", "{\"summary\":true}\n"),
                ("notes.md", "# corpus\n"),
                (".hidden.cg", "p coalesce 1 0 0\n"),
                ("run.log", "done\n"),
            ],
        );
        let paths = collect_corpus_paths(&dir).unwrap();
        assert_eq!(paths, vec![dir.join("a.col")]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_chordal_instances_report_null_omega() {
        let dir = temp_corpus(
            "c4",
            &[("c4.col", "p edge 4 4\ne 1 2\ne 2 3\ne 3 4\ne 4 1\n")],
        );
        let paths = collect_corpus_paths(&dir).unwrap();
        let mut out = Vec::new();
        let summary = run_corpus(&paths, CorpusConfig::default(), &mut out).unwrap();
        assert_eq!(summary.chordal, 0);
        let text = String::from_utf8(out).unwrap();
        let row = Json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(row.get("chordal").and_then(Json::as_bool), Some(false));
        assert_eq!(row.get("omega"), Some(&Json::Null));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn single_file_argument_is_its_own_corpus() {
        let dir = temp_corpus("single", &[("one.cg", "p coalesce 2 0 1\na 1 2\n")]);
        let file = dir.join("one.cg");
        let paths = collect_corpus_paths(&file).unwrap();
        assert_eq!(paths, vec![file]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
