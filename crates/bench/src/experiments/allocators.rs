//! E10, E12 — the end-to-end allocator comparison and the live-range
//! splitting / coalescing interplay.

use crate::json::Json;
use crate::report::ExperimentReport;
use crate::ExperimentId;
use coalesce_alloc::pipeline::{compare_allocators, AllocationReport};
use coalesce_core::affinity::AffinityGraph;
use coalesce_core::conservative::{conservative_coalesce, ConservativeRule};
use coalesce_core::optimistic::optimistic_coalesce;
use coalesce_gen::programs::{random_ssa_program, ProgramParams};
use coalesce_ir::interference::InterferenceGraph;
use coalesce_ir::liveness::Liveness;
use coalesce_ir::splitting::split_at_block_boundaries;
use coalesce_ir::Function;

// ---------------------------------------------------------------------------
// E10 — end-to-end allocator comparison.
// ---------------------------------------------------------------------------

/// The program shape E10 and E12 allocate.
pub fn e10_params() -> ProgramParams {
    ProgramParams {
        diamonds: 4,
        ops_per_block: 4,
        pressure: 6,
        phis_per_join: 2,
    }
}

/// Generates the E10 input program for one seed.
pub fn e10_program(seed: u64) -> Function {
    random_ssa_program(&e10_params(), &mut coalesce_gen::rng(seed))
}

/// One E10 configuration run (seed, register count, per-allocator reports).
#[derive(Debug, Clone)]
pub struct E10Row {
    /// Seed of the generated program.
    pub seed: u64,
    /// Register count of the run.
    pub k: usize,
    /// One report per allocator configuration.
    pub reports: Vec<AllocationReport>,
}

/// Computes one E10 row by running every allocator configuration.
pub fn e10_row(seed: u64, k: usize) -> E10Row {
    let f = e10_program(seed);
    E10Row {
        seed,
        k,
        reports: compare_allocators(&f, k),
    }
}

fn allocation_report_json(r: &AllocationReport) -> Json {
    Json::object([
        ("allocator", Json::from(r.kind.name())),
        ("valid", Json::from(r.valid)),
        ("spilled_values", Json::from(r.spilled_values)),
        ("reloads_inserted", Json::from(r.reloads_inserted)),
        ("total_moves", Json::from(r.moves.total_moves)),
        ("eliminated_moves", Json::from(r.moves.eliminated_moves)),
        ("total_weight", Json::from(r.moves.total_weight)),
        ("eliminated_weight", Json::from(r.moves.eliminated_weight)),
        ("registers_used", Json::from(r.registers_used)),
        ("maxlive", Json::from(r.maxlive)),
    ])
}

/// Runs E10 and packages the report.
pub fn e10_report(base_seed: u64) -> ExperimentReport {
    let rows: Vec<E10Row> = [(21u64, 4usize), (22, 6)]
        .iter()
        .map(|&(seed, k)| e10_row(base_seed + seed, k))
        .collect();
    let all_valid = rows.iter().all(|row| row.reports.iter().all(|r| r.valid));
    ExperimentReport {
        id: ExperimentId::E10,
        title: ExperimentId::E10.title(),
        base_seed,
        rows: rows
            .iter()
            .map(|row| {
                Json::object([
                    ("seed", Json::from(row.seed)),
                    ("k", Json::from(row.k)),
                    (
                        "allocators",
                        Json::Array(row.reports.iter().map(allocation_report_json).collect()),
                    ),
                ])
            })
            .collect(),
        summary: vec![("all_assignments_valid".into(), Json::from(all_valid))],
    }
}

// ---------------------------------------------------------------------------
// E12 — live-range splitting then coalescing.
// ---------------------------------------------------------------------------

/// The program shape E12 splits.
pub fn e12_params() -> ProgramParams {
    ProgramParams {
        diamonds: 4,
        ops_per_block: 3,
        pressure: 5,
        phis_per_join: 2,
    }
}

/// Builds the E12 affinity graph for one seed: generate, split at block
/// boundaries, extract interference + affinities.  Returns the graph, the
/// affinity count before splitting and the number of split copies added.
pub fn e12_instance(seed: u64) -> (AffinityGraph, usize, usize) {
    let mut rng = coalesce_gen::rng(seed);
    let mut f = random_ssa_program(&e12_params(), &mut rng);
    let before_affinities = {
        let live = Liveness::compute(&f);
        let ig = InterferenceGraph::build(&f, &live);
        AffinityGraph::from_interference(&ig).num_affinities()
    };
    let stats = split_at_block_boundaries(&mut f);
    let live = Liveness::compute(&f);
    let ig = InterferenceGraph::build(&f, &live);
    (
        AffinityGraph::from_interference(&ig),
        before_affinities,
        stats.copies_inserted,
    )
}

/// One E12 table row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E12Row {
    /// Seed of the generated program.
    pub seed: u64,
    /// Affinities before splitting.
    pub affinities_before: usize,
    /// Affinities after splitting at block boundaries.
    pub affinities_after: usize,
    /// Split copies inserted.
    pub split_copies: usize,
    /// Moves removed by Briggs+George.
    pub briggs_george: usize,
    /// Moves removed by extended George.
    pub extended_george: usize,
    /// Moves removed by optimistic coalescing.
    pub optimistic: usize,
}

/// Computes one E12 row at `k = 6` registers.
pub fn e12_row(seed: u64) -> E12Row {
    let k = 6;
    let (ag, before, copies) = e12_instance(seed);
    let briggs_george = conservative_coalesce(&ag, k, ConservativeRule::BriggsGeorge);
    let extended = conservative_coalesce(&ag, k, ConservativeRule::ExtendedGeorge);
    let optimistic = optimistic_coalesce(&ag, k);
    E12Row {
        seed,
        affinities_before: before,
        affinities_after: ag.num_affinities(),
        split_copies: copies,
        briggs_george: briggs_george.stats.coalesced,
        extended_george: extended.stats.coalesced,
        optimistic: optimistic.stats.coalesced,
    }
}

/// Runs E12 and packages the report.
pub fn e12_report(base_seed: u64) -> ExperimentReport {
    let rows: Vec<E12Row> = (0..3u64).map(|s| e12_row(base_seed + 120 + s)).collect();
    let total_copies: usize = rows.iter().map(|r| r.split_copies).sum();
    ExperimentReport {
        id: ExperimentId::E12,
        title: ExperimentId::E12.title(),
        base_seed,
        rows: rows
            .iter()
            .map(|r| {
                Json::object([
                    ("seed", Json::from(r.seed)),
                    ("affinities_before", Json::from(r.affinities_before)),
                    ("affinities_after", Json::from(r.affinities_after)),
                    ("split_copies", Json::from(r.split_copies)),
                    ("briggs_george", Json::from(r.briggs_george)),
                    ("extended_george", Json::from(r.extended_george)),
                    ("optimistic", Json::from(r.optimistic)),
                ])
            })
            .collect(),
        summary: vec![("total_split_copies".into(), Json::from(total_copies))],
    }
}
