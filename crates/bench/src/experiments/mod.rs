//! The E1–E18 experiments of the reproduction, as reusable library code.
//!
//! Each experiment is a function from a *base seed* to an
//! [`ExperimentReport`]; base seed 0 reproduces the tables the original
//! in-bench implementation printed.  The per-experiment modules also expose
//! the instance builders the Criterion bench times, so the measured code
//! path is exactly the reported one.

pub mod allocators;
pub mod module;
pub mod reductions;
pub mod regalloc;
pub mod scaling;
pub mod soak;
pub mod spillers;
pub mod strategies;
pub mod structure;

use crate::json::Json;
use crate::report::ExperimentReport;
use coalesce_gen::cfg::ShapeProfile;
use coalesce_graph::VertexId;
use std::fmt;
use std::str::FromStr;

/// Shorthand used throughout the experiment modules.
pub(crate) fn v(i: usize) -> VertexId {
    VertexId::new(i)
}

/// Identifier of one experiment (E1–E17).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExperimentId {
    /// Theorem 2 / Figure 1: multiway cut vs optimal aggressive coalescing.
    E1,
    /// Theorem 3 / Figure 2: k-colorability vs conservative coalescing.
    E2,
    /// Figure 3: local conservative rules vs simultaneous coalescing.
    E3,
    /// Theorem 4 / Figure 4: 3SAT vs incremental coalescibility.
    E4,
    /// Theorem 5 / Figure 5: polynomial chordal algorithm vs exact search.
    E5,
    /// Theorem 6 / Figures 6–7: vertex cover vs optimistic de-coalescing.
    E6,
    /// Theorem 1 / Property 1: SSA interference graphs are chordal.
    E7,
    /// Challenge-style strategy comparison table.
    E8,
    /// Property 2: clique lifting preserves the structural predicates.
    E9,
    /// End-to-end allocator comparison (Chaitin–Briggs vs SSA-based).
    E10,
    /// Theorem-5-guided chordal strategy vs the local rules.
    E11,
    /// Live-range splitting / coalescing interplay.
    E12,
    /// Structured-CFG generator sweep through the end-to-end allocators.
    E13,
    /// Generated program corpus through the coalescing strategies.
    E14,
    /// Data-structure scaling: flat graphs, bitset liveness, incremental
    /// spilling at production-ish sizes.
    E15,
    /// Whole-module parallel allocation over the flat IR: a 1000-function
    /// generated module spilled to tight `k`, fanned over `--jobs`.
    E16,
    /// Rival spilling strategies: spill-everywhere vs pressure-greedy vs
    /// Belady MIN over the E13 workload grid and an E16 module slice,
    /// reporting loop-weighted spill weight and wall clock per spiller.
    E17,
    /// Chaos soak of the allocation service: a seeded fault-injected
    /// request trace through the `coalesce-serve` worker pool, asserting
    /// the zero-crash invariant.
    E18,
}

impl ExperimentId {
    /// Every experiment, in order.
    pub const ALL: [ExperimentId; 18] = [
        ExperimentId::E1,
        ExperimentId::E2,
        ExperimentId::E3,
        ExperimentId::E4,
        ExperimentId::E5,
        ExperimentId::E6,
        ExperimentId::E7,
        ExperimentId::E8,
        ExperimentId::E9,
        ExperimentId::E10,
        ExperimentId::E11,
        ExperimentId::E12,
        ExperimentId::E13,
        ExperimentId::E14,
        ExperimentId::E15,
        ExperimentId::E16,
        ExperimentId::E17,
        ExperimentId::E18,
    ];

    /// The wall-clock budget (milliseconds) the experiment's hot path must
    /// stay within in release builds, for the experiments that carry a
    /// perf-regression guard.  The value is embedded in the report summary
    /// (deterministic — it is a constant), `bench-diff` cross-checks it
    /// against the baseline, and `tests/experiment_runner.rs` enforces the
    /// actual wall clock.
    pub fn budget_ms(self) -> Option<u64> {
        match self {
            ExperimentId::E4 => Some(2_000),
            ExperimentId::E5 => Some(5_000),
            ExperimentId::E15 => Some(5_000),
            ExperimentId::E16 => Some(10_000),
            ExperimentId::E17 => Some(10_000),
            ExperimentId::E18 => Some(10_000),
            _ => None,
        }
    }

    /// One-line description of what the experiment checks; used as the
    /// report title and by the CLI's `--list`.
    pub fn title(self) -> &'static str {
        match self {
            ExperimentId::E1 => "multiway cut vs optimal aggressive coalescing (must be equal)",
            ExperimentId::E2 => {
                "k-colorability vs zero-budget conservative coalescing (must match)"
            }
            ExperimentId::E3 => "permutation gadgets: moves coalesced by each strategy",
            ExperimentId::E4 => {
                "random 3SAT near the phase transition: SAT vs coalescible (must match)"
            }
            ExperimentId::E5 => {
                "chordal incremental coalescing: agreement with exact search and scaling"
            }
            ExperimentId::E6 => {
                "vertex cover vs minimum de-coalescing (must be equal); heuristic gap"
            }
            ExperimentId::E7 => {
                "SSA interference graphs: chordal, omega = Maxlive, greedy-omega-colorable"
            }
            ExperimentId::E8 => {
                "challenge-style instances: % affinity weight coalesced / IRC spills"
            }
            ExperimentId::E9 => "Property 2 lifting: predicates preserved from k to k + p",
            ExperimentId::E10 => {
                "end-to-end allocators: spills and remaining moves per configuration"
            }
            ExperimentId::E11 => {
                "Theorem-5-guided coalescing on chordal instances (weight removed / total)"
            }
            ExperimentId::E12 => {
                "live-range splitting then coalescing (moves removed / moves added)"
            }
            ExperimentId::E13 => {
                "SPEC-like CFG workloads: end-to-end allocators per shape profile x pressure"
            }
            ExperimentId::E14 => {
                "generated program corpus through the coalescing strategies (weight / spills)"
            }
            ExperimentId::E15 => {
                "data-structure scaling: bulk graphs, bitset liveness, incremental spilling"
            }
            ExperimentId::E16 => {
                "whole-module parallel allocation: 1000-function module over the flat IR"
            }
            ExperimentId::E17 => {
                "rival spillers: everywhere vs pressure-greedy vs Belady (weight / wall clock)"
            }
            ExperimentId::E18 => {
                "chaos soak: fault-injected request trace through the allocation service"
            }
        }
    }

    /// The lowercase id used on the command line and in JSON ("e1"…"e12").
    pub fn as_str(self) -> &'static str {
        match self {
            ExperimentId::E1 => "e1",
            ExperimentId::E2 => "e2",
            ExperimentId::E3 => "e3",
            ExperimentId::E4 => "e4",
            ExperimentId::E5 => "e5",
            ExperimentId::E6 => "e6",
            ExperimentId::E7 => "e7",
            ExperimentId::E8 => "e8",
            ExperimentId::E9 => "e9",
            ExperimentId::E10 => "e10",
            ExperimentId::E11 => "e11",
            ExperimentId::E12 => "e12",
            ExperimentId::E13 => "e13",
            ExperimentId::E14 => "e14",
            ExperimentId::E15 => "e15",
            ExperimentId::E16 => "e16",
            ExperimentId::E17 => "e17",
            ExperimentId::E18 => "e18",
        }
    }
}

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when parsing an unknown experiment id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownExperiment(pub String);

impl fmt::Display for UnknownExperiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown experiment `{}` (expected e1..e{})",
            self.0,
            ExperimentId::ALL.len()
        )
    }
}

impl std::error::Error for UnknownExperiment {}

impl FromStr for ExperimentId {
    type Err = UnknownExperiment;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        ExperimentId::ALL
            .into_iter()
            .find(|id| id.as_str() == lower)
            .ok_or_else(|| UnknownExperiment(s.to_owned()))
    }
}

/// Runs one experiment with the given base seed, serially.
pub fn run_experiment(id: ExperimentId, base_seed: u64) -> ExperimentReport {
    run_experiment_with_jobs(id, base_seed, 1)
}

/// Runs one experiment with the given base seed, fanning its per-seed /
/// per-size rows over up to `jobs` worker threads where the experiment
/// supports it (E1, E4, E5, E7, E13–E17 — the ones whose rows
/// are independent and heavy enough to matter).  Row order, and therefore
/// the serialized report's deterministic fields, is identical for every
/// `jobs` value (E16's two measured throughput counters are the only
/// fields that vary).
pub fn run_experiment_with_jobs(id: ExperimentId, base_seed: u64, jobs: usize) -> ExperimentReport {
    run_experiment_filtered(id, base_seed, jobs, &[])
}

/// Like [`run_experiment_with_jobs`], restricting the E13/E14 workload
/// sweeps to the given shape profiles (empty = all profiles; the filter is
/// ignored by every other experiment).  This is the function behind the
/// CLI's `--profile`.
pub fn run_experiment_filtered(
    id: ExperimentId,
    base_seed: u64,
    jobs: usize,
    profiles: &[ShapeProfile],
) -> ExperimentReport {
    let _span = coalesce_stats::span!(id.as_str());
    let mut report = match id {
        ExperimentId::E1 => reductions::e1_report_with_jobs(base_seed, jobs),
        ExperimentId::E2 => reductions::e2_report(base_seed),
        ExperimentId::E3 => strategies::e3_report(base_seed),
        ExperimentId::E4 => reductions::e4_report_with_jobs(base_seed, jobs),
        ExperimentId::E5 => structure::e5_report_with_jobs(base_seed, jobs),
        ExperimentId::E6 => reductions::e6_report(base_seed),
        ExperimentId::E7 => structure::e7_report_with_jobs(base_seed, jobs),
        ExperimentId::E8 => strategies::e8_report(base_seed),
        ExperimentId::E9 => structure::e9_report(base_seed),
        ExperimentId::E10 => allocators::e10_report(base_seed),
        ExperimentId::E11 => strategies::e11_report(base_seed),
        ExperimentId::E12 => allocators::e12_report(base_seed),
        ExperimentId::E13 => regalloc::e13_report_filtered(base_seed, jobs, profiles),
        ExperimentId::E14 => regalloc::e14_report_filtered(base_seed, jobs, profiles),
        ExperimentId::E15 => scaling::e15_report_with_jobs(base_seed, jobs),
        ExperimentId::E16 => module::e16_report_with_jobs(base_seed, jobs),
        ExperimentId::E17 => spillers::e17_report_with_jobs(base_seed, jobs),
        ExperimentId::E18 => soak::e18_report_with_jobs(base_seed, jobs),
    };
    // Experiments with a wall-clock regression guard carry their declared
    // budget in the summary so `bench-diff` can cross-check it against the
    // baseline artifact (the value is a constant, so reports stay
    // byte-identical across runs and `--jobs` values).
    if let Some(ms) = id.budget_ms() {
        report.summary.push(("budget_ms".into(), Json::from(ms)));
    }
    report
}

/// Runs a batch of experiments, fanning whole experiments (and, within
/// each, its rows) over worker threads.  The `jobs` budget is split
/// between the two levels — `min(jobs, #experiments)` outer workers, and
/// the remaining factor to each experiment's row fan-out — so the total
/// thread count stays ~`jobs` rather than `jobs²`.  The reports come
/// back in input order, so the serialized output of a `jobs = N` run is
/// byte-identical to the serial one.  This is the function behind the
/// CLI's `--jobs`.
pub fn run_reports(ids: &[ExperimentId], base_seed: u64, jobs: usize) -> Vec<ExperimentReport> {
    run_reports_filtered(ids, base_seed, jobs, &[])
}

/// Like [`run_reports`], restricting the E13/E14 sweeps to the given shape
/// profiles (empty = all).
pub fn run_reports_filtered(
    ids: &[ExperimentId],
    base_seed: u64,
    jobs: usize,
    profiles: &[ShapeProfile],
) -> Vec<ExperimentReport> {
    let outer_jobs = jobs.clamp(1, ids.len().max(1));
    let row_jobs = (jobs / outer_jobs).max(1);
    crate::par::par_map(ids, outer_jobs, |&id| {
        run_experiment_filtered(id, base_seed, row_jobs, profiles)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drops the measured-throughput summary lines (E16's
    /// `functions_per_sec` / `elapsed_ms`) so byte-compares only see the
    /// deterministic part of a report.
    fn mask_timing(s: &str) -> String {
        s.lines()
            .filter(|l| !l.contains("_per_sec") && !l.contains("elapsed_ms"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn ids_round_trip_through_strings() {
        for id in ExperimentId::ALL {
            assert_eq!(id.as_str().parse::<ExperimentId>().unwrap(), id);
            assert_eq!(
                id.as_str().to_uppercase().parse::<ExperimentId>().unwrap(),
                id
            );
        }
        assert!("e19".parse::<ExperimentId>().is_err());
        assert!("".parse::<ExperimentId>().is_err());
    }

    #[test]
    fn experiments_run_and_serialize_deterministically() {
        // Since the pruned `ExactSolver` landed, even E4's exact
        // incremental searches are fast enough to run here in debug.
        for id in ExperimentId::ALL {
            let a = mask_timing(&run_experiment(id, 0).to_json().to_pretty_string());
            let b = mask_timing(&run_experiment(id, 0).to_json().to_pretty_string());
            assert_eq!(a, b, "{id} must serialize identically across runs");
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn row_parallelism_does_not_change_reports() {
        for id in [
            ExperimentId::E1,
            ExperimentId::E4,
            ExperimentId::E7,
            ExperimentId::E13,
            ExperimentId::E14,
            ExperimentId::E15,
            ExperimentId::E16,
            ExperimentId::E17,
        ] {
            let serial = mask_timing(
                &run_experiment_with_jobs(id, 3, 1)
                    .to_json()
                    .to_pretty_string(),
            );
            let parallel = mask_timing(
                &run_experiment_with_jobs(id, 3, 4)
                    .to_json()
                    .to_pretty_string(),
            );
            assert_eq!(serial, parallel, "{id} rows must not depend on --jobs");
        }
    }
}
