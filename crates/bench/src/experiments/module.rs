//! E16 — whole-module parallel allocation over the flat IR.
//!
//! The flat-arena IR of PR 6 exists so that allocator-scale workloads are
//! *modules*, not single functions: a [`coalesce_gen::module`] translation
//! unit of 1000 functions (profile × pressure × size drawn per function
//! from one seeded mix) is generated, analysed and spilled to a tight `k`,
//! with the per-function work fanned over the scoped worker pool.  Each
//! [`FunctionSpec`] carries an independent seed, so the fan-out is
//! embarrassingly parallel and the report is **byte-identical for every
//! `--jobs` value**: all row fields are deterministic integers, aggregated
//! in a fixed profile × pressure order.
//!
//! The two measured throughput quantities (`functions_per_sec`,
//! `elapsed_ms`) live only in the summary; the byte-compare tests mask
//! those lines, and `bench-diff` treats them as perf counters while
//! flagging a functions/sec collapse against the baseline.

use crate::json::Json;
use crate::par::par_map;
use crate::report::ExperimentReport;
use crate::ExperimentId;
use coalesce_gen::cfg::{PressureLevel, ShapeProfile};
use coalesce_gen::module::{module_specs, FunctionSpec, ModuleParams};
use coalesce_ir::liveness::Liveness;
use coalesce_ir::{spill, ssa};

/// Number of functions in the E16 module.
pub const E16_FUNCTIONS: usize = 1000;

/// The specs of the E16 module (seeded by `base_seed + 1600`); the budget
/// test and the Criterion harness build their instances here, so the timed
/// code path is exactly the reported one.
pub fn e16_specs(base_seed: u64) -> Vec<FunctionSpec> {
    module_specs(
        &ModuleParams {
            functions: E16_FUNCTIONS,
        },
        base_seed + 1600,
    )
}

/// Deterministic per-function allocation statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E16FnStats {
    /// Shape profile drawn for the function.
    pub profile: ShapeProfile,
    /// Pressure level drawn for the function.
    pub pressure: PressureLevel,
    /// Instructions (φs and bodies, terminators excluded).
    pub instrs: usize,
    /// Arena footprint of the function in bytes ([`ir_bytes`]).
    ///
    /// [`ir_bytes`]: coalesce_ir::Function::ir_bytes
    pub ir_bytes: usize,
    /// Basic blocks.
    pub blocks: usize,
    /// Variables before spilling.
    pub vars: usize,
    /// φ-functions.
    pub phis: usize,
    /// The generated function is strict SSA.
    pub strict_ssa: bool,
    /// Precise `Maxlive`.
    pub maxlive: usize,
    /// The tight register count the function was spilled to.
    pub k: usize,
    /// Variables spilled by `spill_to_pressure` at `k`.
    pub spilled: usize,
    /// Reload temporaries the rewrite inserted.
    pub reloads: usize,
    /// Total spill cost (`Σ 10^depth` store/reload weight) of the victims.
    pub spill_weight: u64,
    /// Pass counters of the function's analyses and spill (deterministic
    /// in the spec alone, like every other field).
    pub counters: coalesce_stats::Counters,
}

/// Generates, analyses and spills one module function.  Deterministic in
/// the spec alone, so it can run on any worker thread.
pub fn e16_fn_stats(spec: &FunctionSpec) -> E16FnStats {
    let _span = coalesce_stats::span!("e16/function");
    let f = spec.generate();
    let ((maxlive, k, result, spill_weight), counters) = coalesce_stats::collect(|| {
        let live = Liveness::compute(&f);
        let maxlive = live.maxlive_precise(&f);
        let k = (maxlive / 2).max(3);
        // Costs are taken on the pre-spill program: the reported weight is
        // the price of the chosen victims, not of the rewrite's temps.
        let costs = spill::spill_costs(&f);
        let mut spilled_f = f.clone();
        let result = spill::spill_to_pressure(&mut spilled_f, k);
        let spill_weight = result.spilled.iter().map(|v| costs[v.index()]).sum::<u64>();
        (maxlive, k, result, spill_weight)
    });
    E16FnStats {
        profile: spec.profile,
        pressure: spec.pressure,
        instrs: f.num_instrs_total(),
        ir_bytes: f.ir_bytes(),
        blocks: f.num_blocks(),
        vars: f.num_vars(),
        phis: f.num_phis(),
        strict_ssa: ssa::is_strict(&f),
        maxlive,
        k,
        spilled: result.spilled.len(),
        reloads: result.reloads,
        spill_weight,
        counters,
    }
}

/// One aggregate row: every module function of one profile × pressure
/// cell, summed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct E16Row {
    /// Functions in the cell.
    pub functions: usize,
    /// Total instructions.
    pub instrs: usize,
    /// Total arena bytes.
    pub ir_bytes: usize,
    /// Total basic blocks.
    pub blocks: usize,
    /// Total variables.
    pub vars: usize,
    /// Total φ-functions.
    pub phis: usize,
    /// Total spilled variables.
    pub spilled: usize,
    /// Total reload temporaries.
    pub reloads: usize,
    /// Total spill weight.
    pub spill_weight: u64,
    /// Merged pass counters of the cell's functions.
    pub counters: coalesce_stats::Counters,
}

impl E16Row {
    fn add(&mut self, s: &E16FnStats) {
        self.functions += 1;
        self.instrs += s.instrs;
        self.ir_bytes += s.ir_bytes;
        self.blocks += s.blocks;
        self.vars += s.vars;
        self.phis += s.phis;
        self.spilled += s.spilled;
        self.reloads += s.reloads;
        self.spill_weight += s.spill_weight;
        self.counters.merge(&s.counters);
    }

    /// Arena bytes per instruction × 100 (fixed-point, two decimals), so
    /// the footprint rides in the report without float formatting.
    pub fn bytes_per_instr_x100(&self) -> u64 {
        if self.instrs == 0 {
            0
        } else {
            (self.ir_bytes as u64 * 100) / self.instrs as u64
        }
    }
}

fn row_json(profile: ShapeProfile, pressure: PressureLevel, r: &E16Row) -> Json {
    Json::object([
        ("profile", Json::from(profile.name())),
        ("pressure", Json::from(pressure.name())),
        ("functions", Json::from(r.functions)),
        ("instrs", Json::from(r.instrs)),
        ("ir_bytes", Json::from(r.ir_bytes)),
        ("bytes_per_instr_x100", Json::from(r.bytes_per_instr_x100())),
        ("blocks", Json::from(r.blocks)),
        ("vars", Json::from(r.vars)),
        ("phis", Json::from(r.phis)),
        ("spilled", Json::from(r.spilled)),
        ("reloads", Json::from(r.reloads)),
        ("spill_weight", Json::from(r.spill_weight)),
        ("stats", Json::counters(&r.counters)),
    ])
}

/// Runs E16 serially and packages the report.
pub fn e16_report(base_seed: u64) -> ExperimentReport {
    e16_report_with_jobs(base_seed, 1)
}

/// Runs E16 with the per-function work fanned over `jobs` workers.
///
/// The specs are drawn serially (cheap), the functions are processed in
/// parallel, and the stats come back in module order before aggregation,
/// so every deterministic field of the report is byte-identical for any
/// `jobs` value; only the summary's two throughput counters vary.
pub fn e16_report_with_jobs(base_seed: u64, jobs: usize) -> ExperimentReport {
    let specs = e16_specs(base_seed);
    let started = std::time::Instant::now();
    let stats: Vec<E16FnStats> = par_map(&specs, jobs, e16_fn_stats);
    let elapsed_ms = started.elapsed().as_millis() as u64;

    // Aggregate in the fixed profile × pressure sweep order.
    let mut rows = Vec::new();
    let mut strict_ssa_all = true;
    let mut totals = E16Row::default();
    for s in &stats {
        strict_ssa_all &= s.strict_ssa;
        totals.add(s);
    }
    for profile in ShapeProfile::ALL {
        for pressure in PressureLevel::ALL {
            let mut cell = E16Row::default();
            for s in stats
                .iter()
                .filter(|s| s.profile == profile && s.pressure == pressure)
            {
                cell.add(s);
            }
            rows.push(row_json(profile, pressure, &cell));
        }
    }

    let functions_per_sec = (totals.functions as u64 * 1000) / elapsed_ms.max(1);
    ExperimentReport {
        id: ExperimentId::E16,
        title: ExperimentId::E16.title(),
        base_seed,
        rows,
        summary: vec![
            ("functions".into(), Json::from(totals.functions)),
            ("total_instrs".into(), Json::from(totals.instrs)),
            ("total_ir_bytes".into(), Json::from(totals.ir_bytes)),
            (
                "bytes_per_instr_x100".into(),
                Json::from(totals.bytes_per_instr_x100()),
            ),
            ("total_spilled".into(), Json::from(totals.spilled)),
            ("total_reloads".into(), Json::from(totals.reloads)),
            (
                "aggregate_spill_weight".into(),
                Json::from(totals.spill_weight),
            ),
            ("strict_ssa_all".into(), Json::from(strict_ssa_all)),
            ("stats".into(), Json::counters(&totals.counters)),
            // Measured, not deterministic: masked by the byte-compare
            // tests, treated as perf counters by `bench-diff`.
            ("functions_per_sec".into(), Json::from(functions_per_sec)),
            ("elapsed_ms".into(), Json::from(elapsed_ms)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_stats_are_deterministic_and_consistent() {
        let specs = e16_specs(0);
        assert_eq!(specs.len(), E16_FUNCTIONS);
        let s1 = e16_fn_stats(&specs[0]);
        let s2 = e16_fn_stats(&specs[0]);
        assert_eq!(s1, s2);
        assert!(s1.strict_ssa);
        assert!(s1.instrs > 0);
        assert!(s1.ir_bytes >= s1.instrs * 16);
        assert!(s1.k >= 3);
    }

    #[test]
    fn rows_cover_the_full_profile_pressure_grid() {
        // A tiny module exercises the aggregation without the full sweep.
        let specs = module_specs(&ModuleParams { functions: 60 }, 1600);
        let stats: Vec<E16FnStats> = specs.iter().map(e16_fn_stats).collect();
        let mut total = 0;
        for profile in ShapeProfile::ALL {
            for pressure in PressureLevel::ALL {
                total += stats
                    .iter()
                    .filter(|s| s.profile == profile && s.pressure == pressure)
                    .count();
            }
        }
        assert_eq!(total, 60, "every function lands in exactly one cell");
    }

    #[test]
    fn bytes_per_instr_fixed_point_rounds_down() {
        let row = E16Row {
            functions: 1,
            instrs: 3,
            ir_bytes: 50,
            ..Default::default()
        };
        assert_eq!(row.bytes_per_instr_x100(), 1666);
        assert_eq!(E16Row::default().bytes_per_instr_x100(), 0);
    }
}
