//! E1, E2, E4, E6 — the four NP-completeness reductions, run both ways:
//! the source problem solved exactly vs the coalescing problem solved
//! exactly (the paper's equivalences), plus the heuristic gaps.

use super::v;
use crate::json::Json;
use crate::par::par_map;
use crate::report::ExperimentReport;
use crate::ExperimentId;
use coalesce_core::incremental::incremental_exact_with;
use coalesce_core::optimistic::{decoalesce_exact, optimistic_coalesce};
use coalesce_core::{aggressive_exact, aggressive_heuristic};
use coalesce_gen::graphs::random_graph;
use coalesce_graph::solver::ExactSolver;
use coalesce_graph::Graph;
use coalesce_reduce::multiway_cut::{self, AggressiveReduction, MultiwayCutInstance};
use coalesce_reduce::vertex_cover::{self, OptimisticReduction, VertexCoverInstance};
use coalesce_reduce::{colorability, sat};
use rand::Rng;

// ---------------------------------------------------------------------------
// E1 — Theorem 2 / Figure 1: multiway cut ↔ aggressive coalescing.
// ---------------------------------------------------------------------------

/// One E1 table row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E1Row {
    /// Seed of the generated multiway-cut instance.
    pub seed: u64,
    /// Minimum multiway cut of the source instance.
    pub min_cut: usize,
    /// Uncoalesced affinities of the optimal aggressive coalescing.
    pub exact_uncoalesced: usize,
    /// Uncoalesced affinities of the greedy aggressive heuristic.
    pub heuristic_uncoalesced: usize,
}

impl E1Row {
    /// Theorem 2's equivalence: the minimum cut equals the optimum.
    pub fn invariant_holds(&self) -> bool {
        self.min_cut == self.exact_uncoalesced
    }
}

/// Builds the E1 instance for one seed: a random 7-vertex graph with three
/// terminals, reduced to an aggressive-coalescing instance.
pub fn e1_instance(seed: u64) -> (MultiwayCutInstance, AggressiveReduction) {
    let mut rng = coalesce_gen::rng(seed);
    let g = random_graph(7, 0.4, &mut rng);
    let instance = MultiwayCutInstance::new(g, vec![v(0), v(1), v(2)]);
    let reduction = multiway_cut::reduce_to_aggressive(&instance);
    (instance, reduction)
}

/// Computes one E1 row.
pub fn e1_row(seed: u64) -> E1Row {
    let (instance, reduction) = e1_instance(seed);
    let exact = aggressive_exact(&reduction.instance);
    let heur = aggressive_heuristic(&reduction.instance);
    E1Row {
        seed,
        min_cut: instance.minimum_cut(),
        exact_uncoalesced: exact.stats.uncoalesced(),
        heuristic_uncoalesced: heur.stats.uncoalesced(),
    }
}

/// Computes the E1 rows for `count` consecutive seeds.
pub fn e1_rows(base_seed: u64, count: u64) -> Vec<E1Row> {
    e1_rows_with_jobs(base_seed, count, 1)
}

/// Computes the E1 rows for `count` consecutive seeds over `jobs` threads.
pub fn e1_rows_with_jobs(base_seed: u64, count: u64, jobs: usize) -> Vec<E1Row> {
    let seeds: Vec<u64> = (0..count).map(|s| base_seed + s).collect();
    par_map(&seeds, jobs, |&s| e1_row(s))
}

/// Runs E1 and packages the report.
pub fn e1_report(base_seed: u64) -> ExperimentReport {
    e1_report_with_jobs(base_seed, 1)
}

/// Runs E1 with row-level parallelism and packages the report.
pub fn e1_report_with_jobs(base_seed: u64, jobs: usize) -> ExperimentReport {
    let rows = e1_rows_with_jobs(base_seed, 4, jobs);
    let equal = rows.iter().filter(|r| r.invariant_holds()).count();
    ExperimentReport {
        id: ExperimentId::E1,
        title: ExperimentId::E1.title(),
        base_seed,
        rows: rows
            .iter()
            .map(|r| {
                Json::object([
                    ("seed", Json::from(r.seed)),
                    ("min_cut", Json::from(r.min_cut)),
                    ("exact_uncoalesced", Json::from(r.exact_uncoalesced)),
                    ("heuristic_uncoalesced", Json::from(r.heuristic_uncoalesced)),
                    ("equal", Json::from(r.invariant_holds())),
                ])
            })
            .collect(),
        summary: vec![
            ("instances".into(), Json::from(rows.len())),
            ("exact_matches_cut".into(), Json::from(equal)),
        ],
    }
}

// ---------------------------------------------------------------------------
// E2 — Theorem 3 / Figure 2: k-colorability ↔ conservative coalescing.
// ---------------------------------------------------------------------------

/// One E2 table row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E2Row {
    /// Seed of the generated source graph.
    pub seed: u64,
    /// Register count of the query.
    pub k: usize,
    /// Whether the source graph is k-colorable.
    pub colorable: bool,
    /// Whether zero-budget conservative coalescing coalesced everything.
    pub all_coalesced: bool,
}

impl E2Row {
    /// Theorem 3's equivalence.
    pub fn invariant_holds(&self) -> bool {
        self.colorable == self.all_coalesced
    }
}

/// Builds the E2 source graph and its conservative reduction for one seed.
pub fn e2_instance(seed: u64) -> (Graph, colorability::ConservativeReduction) {
    let mut rng = coalesce_gen::rng(seed);
    let g = random_graph(6, 0.5, &mut rng);
    let reduction = colorability::reduce_to_conservative(&g);
    (g, reduction)
}

/// Computes the E2 rows (three seeds, `k ∈ {2, 3}` each).
pub fn e2_rows(base_seed: u64) -> Vec<E2Row> {
    let mut rows = Vec::new();
    for s in 0..3u64 {
        let seed = base_seed + 10 + s;
        let (g, reduction) = e2_instance(seed);
        for k in [2usize, 3] {
            let exact =
                coalesce_core::conservative::conservative_exact(&reduction.instance, k, false);
            rows.push(E2Row {
                seed,
                k,
                colorable: colorability::is_k_colorable(&g, k),
                all_coalesced: exact.stats.uncoalesced() == 0,
            });
        }
    }
    rows
}

/// Runs E2 and packages the report.
pub fn e2_report(base_seed: u64) -> ExperimentReport {
    let rows = e2_rows(base_seed);
    let matches = rows.iter().filter(|r| r.invariant_holds()).count();
    ExperimentReport {
        id: ExperimentId::E2,
        title: ExperimentId::E2.title(),
        base_seed,
        rows: rows
            .iter()
            .map(|r| {
                Json::object([
                    ("seed", Json::from(r.seed)),
                    ("k", Json::from(r.k)),
                    ("colorable", Json::from(r.colorable)),
                    ("all_coalesced", Json::from(r.all_coalesced)),
                    ("agree", Json::from(r.invariant_holds())),
                ])
            })
            .collect(),
        summary: vec![
            ("queries".into(), Json::from(rows.len())),
            ("agreement".into(), Json::from(matches)),
        ],
    }
}

// ---------------------------------------------------------------------------
// E4 — Theorem 4 / Figure 4: 3SAT ↔ incremental coalescibility.
// ---------------------------------------------------------------------------

/// One E4 table row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E4Row {
    /// Seed of the generated formula.
    pub seed: u64,
    /// Whether the 3SAT formula is satisfiable.
    pub satisfiable: bool,
    /// Whether the reduced incremental query is coalescible.
    pub coalescible: bool,
    /// Vertex count of the reduced graph.
    pub graph_vertices: usize,
    /// Search-tree nodes the exact solver expanded on the query.
    pub nodes_expanded: u64,
    /// Transposition-table hits during the query.
    pub memo_hits: u64,
}

impl E4Row {
    /// Theorem 4's equivalence.
    pub fn invariant_holds(&self) -> bool {
        self.satisfiable == self.coalescible
    }
}

/// Generates the E4 random 3SAT formula for one seed (4 variables, 9
/// clauses near the phase transition).
pub fn e4_formula(seed: u64) -> sat::Cnf {
    let mut rng = coalesce_gen::rng(seed);
    let clauses: Vec<Vec<sat::Literal>> = (0..9)
        .map(|_| {
            (0..3)
                .map(|_| {
                    let var = rng.gen_range(0..4);
                    if rng.gen_bool(0.5) {
                        sat::Literal::pos(var)
                    } else {
                        sat::Literal::neg(var)
                    }
                })
                .collect()
        })
        .collect();
    sat::Cnf::new(4, clauses)
}

/// Builds the E4 incremental reduction for one seed.
pub fn e4_reduction(seed: u64) -> sat::IncrementalReduction {
    sat::reduce_3sat_to_incremental(&e4_formula(seed))
}

/// Computes one E4 row, including the exact solver's instrumentation.
pub fn e4_row(seed: u64) -> E4Row {
    let formula = e4_formula(seed);
    let reduction = sat::reduce_3sat_to_incremental(&formula);
    let mut solver = ExactSolver::new();
    let answer = incremental_exact_with(&mut solver, &reduction.graph, 3, reduction.x, reduction.y);
    let stats = solver.take_stats();
    E4Row {
        seed,
        satisfiable: formula.is_satisfiable(),
        coalescible: answer.is_coalescible(),
        graph_vertices: reduction.graph.num_vertices(),
        nodes_expanded: stats.nodes_expanded,
        memo_hits: stats.memo_hits,
    }
}

/// Runs E4 and packages the report.
pub fn e4_report(base_seed: u64) -> ExperimentReport {
    e4_report_with_jobs(base_seed, 1)
}

/// Runs E4 with row-level parallelism and packages the report.
pub fn e4_report_with_jobs(base_seed: u64, jobs: usize) -> ExperimentReport {
    let seeds: Vec<u64> = (0..6u64).map(|s| base_seed + 40 + s).collect();
    let rows: Vec<E4Row> = par_map(&seeds, jobs, |&s| e4_row(s));
    let agreement = rows.iter().filter(|r| r.invariant_holds()).count();
    ExperimentReport {
        id: ExperimentId::E4,
        title: ExperimentId::E4.title(),
        base_seed,
        rows: rows
            .iter()
            .map(|r| {
                Json::object([
                    ("seed", Json::from(r.seed)),
                    ("satisfiable", Json::from(r.satisfiable)),
                    ("coalescible", Json::from(r.coalescible)),
                    ("graph_vertices", Json::from(r.graph_vertices)),
                    ("nodes_expanded", Json::from(r.nodes_expanded)),
                    ("memo_hits", Json::from(r.memo_hits)),
                    ("agree", Json::from(r.invariant_holds())),
                ])
            })
            .collect(),
        summary: vec![
            ("formulas".into(), Json::from(rows.len())),
            ("agreement".into(), Json::from(agreement)),
        ],
    }
}

// ---------------------------------------------------------------------------
// E6 — Theorem 6 / Figures 6–7: vertex cover ↔ optimistic de-coalescing.
// ---------------------------------------------------------------------------

/// One E6 table row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E6Row {
    /// Name of the fixed source graph (P4, C4, C5).
    pub name: &'static str,
    /// Minimum vertex cover of the source graph.
    pub min_cover: usize,
    /// Minimum number of de-coalescings restoring greedy-k-colorability.
    pub exact_decoalescing: usize,
    /// Affinities the optimistic heuristic gave up on.
    pub heuristic_gave_up: usize,
}

impl E6Row {
    /// Theorem 6's equivalence.
    pub fn invariant_holds(&self) -> bool {
        self.min_cover == self.exact_decoalescing
    }
}

/// The three fixed degree-≤3 source graphs E6 uses.
pub fn e6_cases() -> Vec<(&'static str, Graph)> {
    vec![
        (
            "P4",
            Graph::with_edges(4, [(v(0), v(1)), (v(1), v(2)), (v(2), v(3))]),
        ),
        (
            "C4",
            Graph::with_edges(4, (0..4).map(|i| (v(i), v((i + 1) % 4)))),
        ),
        (
            "C5",
            Graph::with_edges(5, (0..5).map(|i| (v(i), v((i + 1) % 5)))),
        ),
    ]
}

/// Builds the E6 optimistic reduction of one fixed case (by index).
pub fn e6_reduction(case: usize) -> OptimisticReduction {
    let (_, g) = e6_cases().swap_remove(case);
    vertex_cover::reduce_to_optimistic(&VertexCoverInstance::new(g))
}

/// Computes the E6 rows (the fixed graphs are seed-independent).
pub fn e6_rows() -> Vec<E6Row> {
    e6_cases()
        .into_iter()
        .map(|(name, g)| {
            let instance = VertexCoverInstance::new(g);
            let cover = instance.minimum_cover();
            let reduction = vertex_cover::reduce_to_optimistic(&instance);
            let (exact, _) = decoalesce_exact(&reduction.instance, reduction.k)
                .expect("Theorem 6 instances admit a de-coalescing");
            let heuristic = optimistic_coalesce(&reduction.instance, reduction.k);
            E6Row {
                name,
                min_cover: cover,
                exact_decoalescing: exact,
                heuristic_gave_up: heuristic.stats.uncoalesced(),
            }
        })
        .collect()
}

/// Runs E6 and packages the report.
pub fn e6_report(base_seed: u64) -> ExperimentReport {
    let rows = e6_rows();
    let equal = rows.iter().filter(|r| r.invariant_holds()).count();
    ExperimentReport {
        id: ExperimentId::E6,
        title: ExperimentId::E6.title(),
        base_seed,
        rows: rows
            .iter()
            .map(|r| {
                Json::object([
                    ("graph", Json::from(r.name)),
                    ("min_cover", Json::from(r.min_cover)),
                    ("exact_decoalescing", Json::from(r.exact_decoalescing)),
                    ("heuristic_gave_up", Json::from(r.heuristic_gave_up)),
                    ("equal", Json::from(r.invariant_holds())),
                ])
            })
            .collect(),
        summary: vec![
            ("cases".into(), Json::from(rows.len())),
            ("exact_matches_cover".into(), Json::from(equal)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_min_cut_equals_exact_aggressive_on_three_seeds() {
        for row in e1_rows(0, 3) {
            assert!(
                row.invariant_holds(),
                "seed {}: min cut {} != exact uncoalesced {}",
                row.seed,
                row.min_cut,
                row.exact_uncoalesced
            );
        }
    }

    #[test]
    fn e6_exact_decoalescing_matches_minimum_cover() {
        for row in e6_rows() {
            assert!(row.invariant_holds(), "{}: {:?}", row.name, row);
        }
    }
}
