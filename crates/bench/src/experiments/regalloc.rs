//! E13, E14 — the program-level workload experiments.
//!
//! These experiments close the loop between the structured-CFG generator
//! (`coalesce_gen::cfg`), the `ir` liveness/interference pipeline, the
//! end-to-end allocators (`coalesce_alloc::pipeline`) and the coalescing
//! strategies (`coalesce_core`):
//!
//! * **E13** sweeps every [`ShapeProfile`] × [`PressureLevel`] pair, pipes
//!   each generated program through liveness/interference, checks the
//!   Theorem 1 invariants (chordal SSA graph, chordal coloring with
//!   exactly `Maxlive` colors) and runs every [`AllocatorKind`] at both a
//!   generous (`k = Maxlive`) and a tight register count, reporting
//!   spills, remaining move weight and colors vs. `Maxlive` per row;
//! * **E14** lowers the same workloads into challenge-style coalescing
//!   instances (spill to `k`, out of SSA) and runs the `coalesce_core`
//!   strategy zoo — aggressive, Briggs, Briggs+George, brute-force,
//!   optimistic, IRC, chordal — head-to-head on the affinity graphs.

use crate::json::Json;
use crate::par::par_map;
use crate::report::ExperimentReport;
use crate::ExperimentId;
use coalesce_alloc::pipeline::{compare_allocators, AllocationReport};
use coalesce_core::affinity::AffinityGraph;
use coalesce_core::chordal_strategy::{chordal_conservative_coalesce, ChordalMode};
use coalesce_core::conservative::{conservative_coalesce, ConservativeRule};
use coalesce_core::optimistic::optimistic_coalesce;
use coalesce_core::{aggressive_heuristic, irc, CoalescingStats};
use coalesce_gen::cfg::{generate, PressureLevel, ShapeProfile};
use coalesce_graph::chordal;
use coalesce_ir::interference::{BuildOptions, InterferenceGraph, InterferenceKind};
use coalesce_ir::liveness::Liveness;
use coalesce_ir::loops::{is_reducible, LoopInfo};
use coalesce_ir::{out_of_ssa, spill, ssa, Function};

/// Resolves a profile filter: an empty filter means the full sweep.
fn sweep_profiles(filter: &[ShapeProfile]) -> Vec<ShapeProfile> {
    if filter.is_empty() {
        ShapeProfile::ALL.to_vec()
    } else {
        filter.to_vec()
    }
}

// ---------------------------------------------------------------------------
// E13 — generator sweep through the end-to-end allocators.
// ---------------------------------------------------------------------------

/// Deterministic seed offset of one (profile, pressure) cell, independent
/// of any `--profile` filtering so filtered runs reproduce the same rows.
fn cell_seed(base_seed: u64, profile: ShapeProfile, level: PressureLevel) -> u64 {
    let p = ShapeProfile::ALL
        .iter()
        .position(|&x| x == profile)
        .unwrap() as u64;
    let l = PressureLevel::ALL.iter().position(|&x| x == level).unwrap() as u64;
    base_seed + 1300 + p * 10 + l
}

/// Generates the E13/E14 input program of one sweep cell.
pub fn workload_program(base_seed: u64, profile: ShapeProfile, level: PressureLevel) -> Function {
    let params = profile.params(level.pressure());
    generate(
        &params,
        &mut coalesce_gen::rng(cell_seed(base_seed, profile, level)),
    )
}

/// One E13 row: the structural facts of one generated program and the
/// allocator comparison at one register count.
#[derive(Debug, Clone)]
pub struct E13Row {
    /// Shape profile of the generated program.
    pub profile: ShapeProfile,
    /// Pressure level of the generated program.
    pub pressure: PressureLevel,
    /// Seed the program was generated from.
    pub seed: u64,
    /// Register count of this row's allocator runs.
    pub k: usize,
    /// Basic blocks of the program.
    pub blocks: usize,
    /// Variables of the program.
    pub vars: usize,
    /// φ-functions of the program.
    pub phis: usize,
    /// Arena footprint of the program in bytes
    /// ([`Function::ir_bytes`]).
    pub ir_bytes: usize,
    /// Natural loops detected in the CFG.
    pub loops: usize,
    /// Maximum loop-nesting depth.
    pub max_loop_depth: u32,
    /// `Maxlive` of the SSA form.
    pub maxlive: usize,
    /// The program is strict SSA (always true — recorded as an invariant).
    pub strict_ssa: bool,
    /// The CFG is reducible (always true without the irreducible knob).
    pub reducible: bool,
    /// The SSA interference graph is chordal (Theorem 1).
    pub chordal: bool,
    /// Colors used by the chordal (perfect-elimination) coloring of the
    /// SSA interference graph; equals `maxlive` by Theorem 1.
    pub chordal_colors: usize,
    /// One report per allocator configuration at `k` registers.
    pub reports: Vec<AllocationReport>,
    /// Pass counters collected while the row was computed: the shared
    /// facts passes (liveness, interference, chordal coloring) plus this
    /// row's allocator runs.  Seed-deterministic.
    pub stats: coalesce_stats::Counters,
}

impl E13Row {
    /// The acceptance invariant: the chordal allocator colors the SSA
    /// interference graph with exactly `Maxlive` colors.
    pub fn chordal_colors_eq_maxlive(&self) -> bool {
        self.chordal && self.chordal_colors == self.maxlive
    }
}

/// Computes the two E13 rows (generous and tight `k`) of one sweep cell.
pub fn e13_rows(base_seed: u64, profile: ShapeProfile, level: PressureLevel) -> Vec<E13Row> {
    let _span = coalesce_stats::span!("e13/cell");
    let f = workload_program(base_seed, profile, level);
    // Pass counters of the shared facts passes, collected once per cell
    // and merged into every row of the cell.
    let (facts, facts_stats) = coalesce_stats::collect(|| {
        let _span = coalesce_stats::span!("e13/facts");
        let live = Liveness::compute(&f);
        let maxlive = live.maxlive_precise(&f);
        let ig = InterferenceGraph::build_with(
            &f,
            &live,
            BuildOptions {
                kind: InterferenceKind::Intersection,
                ..Default::default()
            },
        );
        let chordal_coloring = chordal::chordal_coloring(&ig.graph);
        let chordal_colors = chordal_coloring.as_ref().map_or(0, |c| c.num_colors());
        let info = LoopInfo::compute(&f);
        E13Row {
            profile,
            pressure: level,
            seed: cell_seed(base_seed, profile, level),
            k: 0,
            blocks: f.num_blocks(),
            vars: f.num_vars(),
            phis: f.num_phis(),
            ir_bytes: f.ir_bytes(),
            loops: info.num_loops(),
            max_loop_depth: info.depth.iter().copied().max().unwrap_or(0),
            maxlive,
            strict_ssa: ssa::is_strict(&f),
            reducible: is_reducible(&f),
            chordal: chordal_coloring.is_some(),
            chordal_colors,
            reports: Vec::new(),
            stats: coalesce_stats::Counters::default(),
        }
    });
    let maxlive = facts.maxlive;
    let tight = (maxlive / 2).max(3);
    let mut ks = vec![maxlive.max(1)];
    if tight < maxlive {
        ks.push(tight);
    }
    ks.into_iter()
        .map(|k| {
            let _span = coalesce_stats::span!("e13/alloc");
            let (reports, mut stats) = coalesce_stats::collect(|| compare_allocators(&f, k));
            stats.merge(&facts_stats);
            E13Row {
                k,
                reports,
                stats,
                ..facts.clone()
            }
        })
        .collect()
}

fn allocator_json(r: &AllocationReport) -> Json {
    Json::object([
        ("allocator", Json::from(r.kind.name())),
        ("valid", Json::from(r.valid)),
        ("spilled_values", Json::from(r.spilled_values)),
        ("reloads_inserted", Json::from(r.reloads_inserted)),
        ("total_moves", Json::from(r.moves.total_moves)),
        ("eliminated_moves", Json::from(r.moves.eliminated_moves)),
        ("total_weight", Json::from(r.moves.total_weight)),
        ("remaining_weight", Json::from(r.moves.remaining_weight())),
        ("registers_used", Json::from(r.registers_used)),
        ("maxlive", Json::from(r.maxlive)),
    ])
}

fn e13_row_json(row: &E13Row) -> Json {
    Json::object([
        ("profile", Json::from(row.profile.name())),
        ("pressure", Json::from(row.pressure.name())),
        ("seed", Json::from(row.seed)),
        ("k", Json::from(row.k)),
        ("blocks", Json::from(row.blocks)),
        ("vars", Json::from(row.vars)),
        ("phis", Json::from(row.phis)),
        ("ir_bytes", Json::from(row.ir_bytes)),
        ("loops", Json::from(row.loops)),
        ("max_loop_depth", Json::from(row.max_loop_depth as u64)),
        ("maxlive", Json::from(row.maxlive)),
        ("strict_ssa", Json::from(row.strict_ssa)),
        ("reducible", Json::from(row.reducible)),
        ("chordal", Json::from(row.chordal)),
        ("chordal_colors", Json::from(row.chordal_colors)),
        (
            "chordal_colors_eq_maxlive",
            Json::from(row.chordal_colors_eq_maxlive()),
        ),
        (
            "allocators",
            Json::Array(row.reports.iter().map(allocator_json).collect()),
        ),
        ("stats", Json::counters(&row.stats)),
    ])
}

/// Runs E13 with an explicit profile filter (empty = all) and a row-level
/// worker fan-out.
pub fn e13_report_filtered(
    base_seed: u64,
    jobs: usize,
    profiles: &[ShapeProfile],
) -> ExperimentReport {
    let cells: Vec<(ShapeProfile, PressureLevel)> = sweep_profiles(profiles)
        .into_iter()
        .flat_map(|p| PressureLevel::ALL.into_iter().map(move |l| (p, l)))
        .collect();
    let rows: Vec<E13Row> = par_map(&cells, jobs, |&(p, l)| e13_rows(base_seed, p, l))
        .into_iter()
        .flatten()
        .collect();
    let all_valid = rows.iter().all(|r| r.reports.iter().all(|a| a.valid));
    let all_chordal_eq = rows.iter().all(E13Row::chordal_colors_eq_maxlive);
    let all_strict = rows.iter().all(|r| r.strict_ssa);
    let all_reducible = rows.iter().all(|r| r.reducible);
    let mut totals = coalesce_stats::Counters::default();
    for row in &rows {
        totals.merge(&row.stats);
    }
    ExperimentReport {
        id: ExperimentId::E13,
        title: ExperimentId::E13.title(),
        base_seed,
        rows: rows.iter().map(e13_row_json).collect(),
        summary: vec![
            ("rows".into(), Json::from(rows.len())),
            ("all_strict_ssa".into(), Json::from(all_strict)),
            ("all_reducible".into(), Json::from(all_reducible)),
            (
                "all_chordal_colors_eq_maxlive".into(),
                Json::from(all_chordal_eq),
            ),
            ("all_assignments_valid".into(), Json::from(all_valid)),
            ("stats".into(), Json::counters(&totals)),
        ],
    }
}

/// Runs E13 over the full profile × pressure sweep.
pub fn e13_report_with_jobs(base_seed: u64, jobs: usize) -> ExperimentReport {
    e13_report_filtered(base_seed, jobs, &[])
}

// ---------------------------------------------------------------------------
// E14 — generated corpus through the coalescing strategies.
// ---------------------------------------------------------------------------

/// One strategy's outcome on an E14 instance.
#[derive(Debug, Clone)]
pub struct StrategyOutcome {
    /// Strategy name as reported in JSON.
    pub name: &'static str,
    /// Coalescing statistics against the instance affinities.
    pub stats: CoalescingStats,
}

/// One E14 row: a lowered workload and every strategy's result on it.
#[derive(Debug, Clone)]
pub struct E14Row {
    /// Shape profile of the source program.
    pub profile: ShapeProfile,
    /// Seed the program was generated from.
    pub seed: u64,
    /// Register count the instance was spilled to.
    pub k: usize,
    /// Interference-graph vertices of the lowered program.
    pub vertices: usize,
    /// Interference edges.
    pub interferences: usize,
    /// Affinities (coalescing candidates).
    pub affinities: usize,
    /// Total affinity weight.
    pub total_weight: u64,
    /// Whether the lowered interference graph is still chordal.
    pub chordal: bool,
    /// Per-strategy outcomes, in fixed order.
    pub strategies: Vec<StrategyOutcome>,
    /// Actual spills of the IRC allocator at `k`.
    pub irc_spills: usize,
    /// Pass counters collected across the whole row (lowering plus the
    /// strategy zoo).  Seed-deterministic.
    pub stats: coalesce_stats::Counters,
}

/// Deterministic seed of one profile's E14 instance (offset from the E13
/// cell seed so the two sweeps draw distinct programs).
pub fn e14_seed(base_seed: u64, profile: ShapeProfile) -> u64 {
    cell_seed(base_seed, profile, PressureLevel::Medium) + 100
}

/// Generates the pre-spill program of one profile's E14 instance — the
/// [`e14_instance`] input before spilling and SSA destruction, exposed so
/// the verification harness can regenerate and re-audit the lowering.
pub fn e14_program(base_seed: u64, profile: ShapeProfile) -> Function {
    let params = profile.params(PressureLevel::Medium.pressure());
    generate(
        &params,
        &mut coalesce_gen::rng(e14_seed(base_seed, profile)),
    )
}

/// Builds the E14 instance of one profile: generate at medium pressure,
/// spill to `k`, translate out of SSA, extract the affinity graph.
pub fn e14_instance(base_seed: u64, profile: ShapeProfile, k: usize) -> (AffinityGraph, u64) {
    let seed = e14_seed(base_seed, profile);
    let mut f = e14_program(base_seed, profile);
    spill::spill_to_pressure(&mut f, k);
    out_of_ssa::destruct_ssa(&mut f);
    let live = Liveness::compute(&f);
    let ig = InterferenceGraph::build(&f, &live);
    (AffinityGraph::from_interference(&ig), seed)
}

/// Which of the expensive zoo members to run; the cheap polynomial
/// strategies (aggressive, Briggs, Briggs+George, optimistic, IRC) always
/// run.
#[derive(Debug, Clone, Copy)]
pub struct ZooConfig {
    /// Run [`ConservativeRule::BruteForce`] (a full greedy `k`-coloring
    /// check per candidate — quadratic-ish in instance size).
    pub brute_force: bool,
    /// Run the Theorem-5 chordal strategy where applicable (a prepared
    /// clique-tree session per graph state, rebuilt after each accepted
    /// merge).
    pub chordal: bool,
}

impl Default for ZooConfig {
    fn default() -> Self {
        ZooConfig {
            brute_force: true,
            chordal: true,
        }
    }
}

impl ZooConfig {
    /// A configuration that drops the superlinear members on instances too
    /// large for them — the bound corpus mode applies so a streaming run
    /// over multi-thousand-vertex files stays near the structural pass's
    /// cost.
    pub fn bounded(edges: usize, affinities: usize) -> Self {
        let small = edges <= 100_000 && affinities <= 2_000;
        ZooConfig {
            brute_force: small,
            chordal: small,
        }
    }
}

/// Runs the strategy zoo on one affinity instance at `k` registers.
pub fn run_strategy_zoo(ag: &AffinityGraph, k: usize) -> (Vec<StrategyOutcome>, usize) {
    run_strategy_zoo_with(ag, k, ZooConfig::default())
}

/// Runs the strategy zoo with an explicit [`ZooConfig`].
pub fn run_strategy_zoo_with(
    ag: &AffinityGraph,
    k: usize,
    config: ZooConfig,
) -> (Vec<StrategyOutcome>, usize) {
    let mut strategies = vec![StrategyOutcome {
        name: "aggressive",
        stats: aggressive_heuristic(ag).stats,
    }];
    for (name, rule) in [
        ("briggs", ConservativeRule::Briggs),
        ("briggs_george", ConservativeRule::BriggsGeorge),
    ] {
        strategies.push(StrategyOutcome {
            name,
            stats: conservative_coalesce(ag, k, rule).stats,
        });
    }
    if config.brute_force {
        strategies.push(StrategyOutcome {
            name: "brute_force",
            stats: conservative_coalesce(ag, k, ConservativeRule::BruteForce).stats,
        });
    }
    strategies.push(StrategyOutcome {
        name: "optimistic",
        stats: optimistic_coalesce(ag, k).stats,
    });
    if config.chordal {
        if let Some(result) = chordal_conservative_coalesce(ag, k, ChordalMode::MergeWitnessClass) {
            strategies.push(StrategyOutcome {
                name: "chordal",
                stats: result.stats,
            });
        }
    }
    let irc = irc::allocate(ag, k);
    strategies.push(StrategyOutcome {
        name: "irc",
        stats: irc.stats,
    });
    (strategies, irc.num_spills())
}

/// The per-strategy JSON object shared by the E14 rows and the corpus
/// runner: `{name: {coalesced, coalesced_weight}, ...}` in zoo order.
pub fn strategies_json(strategies: &[StrategyOutcome]) -> Json {
    Json::Object(
        strategies
            .iter()
            .map(|s| {
                (
                    s.name.to_string(),
                    Json::object([
                        ("coalesced", Json::from(s.stats.coalesced)),
                        ("coalesced_weight", Json::from(s.stats.coalesced_weight)),
                    ]),
                )
            })
            .collect(),
    )
}

/// Computes one E14 row.
pub fn e14_row(base_seed: u64, profile: ShapeProfile) -> E14Row {
    let _span = coalesce_stats::span!("e14/row");
    let k = 6;
    let ((ag, seed, strategies, irc_spills), stats) = coalesce_stats::collect(|| {
        let (ag, seed) = e14_instance(base_seed, profile, k);
        let (strategies, irc_spills) = run_strategy_zoo(&ag, k);
        (ag, seed, strategies, irc_spills)
    });
    E14Row {
        profile,
        seed,
        k,
        vertices: ag.graph.num_vertices(),
        interferences: ag.graph.num_edges(),
        affinities: ag.num_affinities(),
        total_weight: ag.total_weight(),
        chordal: chordal::is_chordal(&ag.graph),
        strategies,
        irc_spills,
        stats,
    }
}

impl E14Row {
    /// Sanity invariant: no strategy reports more coalesced weight than
    /// the instance has.
    pub fn weights_within_total(&self) -> bool {
        self.strategies.iter().all(|s| {
            s.stats.coalesced_weight <= self.total_weight && s.stats.coalesced <= s.stats.total
        })
    }
}

fn e14_row_json(row: &E14Row) -> Json {
    Json::object([
        ("profile", Json::from(row.profile.name())),
        ("seed", Json::from(row.seed)),
        ("k", Json::from(row.k)),
        ("vertices", Json::from(row.vertices)),
        ("interferences", Json::from(row.interferences)),
        ("affinities", Json::from(row.affinities)),
        ("total_weight", Json::from(row.total_weight)),
        ("chordal", Json::from(row.chordal)),
        ("strategies", strategies_json(&row.strategies)),
        ("irc_spills", Json::from(row.irc_spills)),
        (
            "weights_within_total",
            Json::from(row.weights_within_total()),
        ),
        ("stats", Json::counters(&row.stats)),
    ])
}

/// Runs E14 with an explicit profile filter (empty = all) and a row-level
/// worker fan-out.
pub fn e14_report_filtered(
    base_seed: u64,
    jobs: usize,
    profiles: &[ShapeProfile],
) -> ExperimentReport {
    let profiles = sweep_profiles(profiles);
    let rows: Vec<E14Row> = par_map(&profiles, jobs, |&p| e14_row(base_seed, p));
    let all_within = rows.iter().all(E14Row::weights_within_total);
    let total_weight: u64 = rows.iter().map(|r| r.total_weight).sum();
    let mut totals = coalesce_stats::Counters::default();
    for row in &rows {
        totals.merge(&row.stats);
    }
    ExperimentReport {
        id: ExperimentId::E14,
        title: ExperimentId::E14.title(),
        base_seed,
        rows: rows.iter().map(e14_row_json).collect(),
        summary: vec![
            ("rows".into(), Json::from(rows.len())),
            ("total_weight".into(), Json::from(total_weight)),
            ("all_weights_within_total".into(), Json::from(all_within)),
            ("stats".into(), Json::counters(&totals)),
        ],
    }
}

/// Runs E14 over the full profile sweep.
pub fn e14_report_with_jobs(base_seed: u64, jobs: usize) -> ExperimentReport {
    e14_report_filtered(base_seed, jobs, &[])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_rows_satisfy_the_acceptance_invariants() {
        for profile in ShapeProfile::ALL {
            let rows = e13_rows(0, profile, PressureLevel::Low);
            assert!(!rows.is_empty());
            for row in &rows {
                assert!(row.strict_ssa);
                assert!(row.reducible);
                assert!(row.chordal);
                assert!(row.chordal_colors_eq_maxlive(), "{profile}");
                for report in &row.reports {
                    assert!(report.valid, "{profile} {}", report.kind);
                }
            }
        }
    }

    #[test]
    fn e13_generous_k_needs_no_ssa_spills() {
        let rows = e13_rows(0, ShapeProfile::FpLoopNest, PressureLevel::Medium);
        let generous = &rows[0];
        assert_eq!(generous.k, generous.maxlive);
        for report in &generous.reports {
            // The SSA-based allocators spill to pressure first: at
            // k = Maxlive there is nothing to spill.
            if report.kind.name().starts_with("ssa/") {
                assert_eq!(report.spilled_values, 0, "{}", report.kind);
            }
        }
    }

    #[test]
    fn e14_rows_run_every_strategy() {
        let row = e14_row(0, ShapeProfile::IntBranchy);
        assert!(row.affinities > 0, "lowering must create affinities");
        let names: Vec<&str> = row.strategies.iter().map(|s| s.name).collect();
        for expected in [
            "aggressive",
            "briggs",
            "briggs_george",
            "brute_force",
            "optimistic",
            "irc",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        assert!(row.weights_within_total());
    }

    #[test]
    fn profile_filter_restricts_the_sweep() {
        let full = e13_report_filtered(0, 1, &[]);
        let filtered = e13_report_filtered(0, 1, &[ShapeProfile::IntBranchy]);
        assert!(filtered.rows.len() < full.rows.len());
        // Filtered rows are a prefix of the full sweep (same seeds).
        for (a, b) in filtered.rows.iter().zip(&full.rows) {
            assert_eq!(a.to_compact_string(), b.to_compact_string());
        }
    }
}
