//! E15 — data-structure scaling: flat-graph construction, bitset liveness
//! and incremental spilling at production-ish sizes.
//!
//! The complexity results of the paper only matter at scale; this
//! experiment drives the PR-5 data-structure work end to end:
//!
//! * **interval rows** (`n ∈ {5 000, 20 000, 50 000}`) bulk-build
//!   bounded-degree random interval graphs ([`Graph::from_edges`] under
//!   [`random_interval_graph`]), construct the clique tree, and answer a
//!   batch of Theorem-5 queries through one prepared session — the same
//!   pipeline the E5 sweep runs at a tenth of the size;
//! * **CFG rows** generate structured programs of *thousands of blocks*
//!   ([`ShapeProfile`] region grammars scaled up), run the bitset liveness
//!   and the streaming interference construction, check the Theorem 1
//!   invariants, and spill to a tight `k` — the path whose per-victim full
//!   liveness recomputation used to dominate E13-style sweeps.
//!
//! Every row field is deterministic (sizes, edge counts, ω, spill counts),
//! so the report is byte-identical for any `--jobs`; the wall-clock side
//! is enforced by the budget tests in `tests/experiment_runner.rs` and the
//! `e15_scaling` Criterion group, and the experiment's declared
//! `budget_ms` rides in the summary for `bench-diff` to cross-check.

use crate::json::Json;
use crate::par::par_map;
use crate::report::ExperimentReport;
use crate::ExperimentId;
use coalesce_core::incremental::PreparedChordal;
use coalesce_gen::cfg::{generate, CfgParams, ShapeProfile};
use coalesce_gen::graphs::random_interval_graph;
use coalesce_graph::{Graph, VertexId};
use coalesce_ir::interference::{BuildOptions, InterferenceGraph, InterferenceKind};
use coalesce_ir::liveness::Liveness;
use coalesce_ir::{spill, ssa, Function};

/// Vertex counts of the interval-graph rows.
///
/// Unlike the E5 sweep (whose interval lengths grow with `n`, giving the
/// ~2-million-edge `n = 5000` instance), the scaling rows keep the maximum
/// interval length **fixed**, so degree is bounded and the edge count grows
/// linearly — the regime where the flat adjacency representation, not the
/// asymptotics, decides the wall clock.
pub const E15_INTERVAL_SIZES: [usize; 3] = [5_000, 20_000, 50_000];

/// Maximum interval length of the scaling instances (span is `4n`).
pub const E15_MAX_LEN: usize = 257;

/// The CFG-row profiles, swept at thousands-of-blocks scale.
pub const E15_CFG_PROFILES: [ShapeProfile; 2] =
    [ShapeProfile::IntBranchy, ShapeProfile::FpLoopNest];

/// Builds the interval graph of one scaling row (seeded by
/// `base_seed + 1500 + n`); the Criterion group and the budget tests build
/// their instances here, so the timed code path is exactly the reported
/// one.
pub fn e15_interval_graph(base_seed: u64, n: usize) -> Graph {
    let mut rng = coalesce_gen::rng(base_seed + 1500 + n as u64);
    random_interval_graph(n, 4 * n, E15_MAX_LEN, &mut rng).0
}

/// Generator parameters of one CFG scaling row: the profile's region mix
/// with the top-level region count scaled until the program has thousands
/// of basic blocks (the per-profile counts are tuned so every row lands
/// above 2 000 blocks without ballooning the densest profile).
pub fn e15_cfg_params(profile: ShapeProfile) -> CfgParams {
    let mut params = profile.params(8);
    params.regions = match profile {
        ShapeProfile::FpLoopNest => 180,
        _ => 400,
    };
    params
}

/// Generates the program of one CFG scaling row (seeded by
/// `base_seed + 1550 +` the profile's sweep position).
pub fn e15_cfg_program(base_seed: u64, profile: ShapeProfile) -> Function {
    let position = ShapeProfile::ALL
        .iter()
        .position(|&p| p == profile)
        .unwrap() as u64;
    generate(
        &e15_cfg_params(profile),
        &mut coalesce_gen::rng(base_seed + 1550 + position),
    )
}

/// One interval-graph scaling row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E15IntervalRow {
    /// Number of vertices.
    pub n: usize,
    /// Number of interference edges of the built graph.
    pub edges: usize,
    /// Clique number, read off the clique tree.
    pub omega: usize,
    /// Number of clique-tree nodes (maximal cliques).
    pub tree_nodes: usize,
    /// Theorem-5 queries answered through the prepared session.
    pub queries: usize,
    /// How many of the queried pairs were coalescible at `k = ω`.
    pub coalescible: usize,
}

/// Computes one interval scaling row: bulk build, clique tree, and a batch
/// of prepared-session queries at `k = ω`.
pub fn e15_interval_row(base_seed: u64, n: usize) -> E15IntervalRow {
    let graph = e15_interval_graph(base_seed, n);
    let session = PreparedChordal::prepare(&graph).expect("interval graphs are chordal");
    let omega = session.omega();
    // The first 30 non-adjacent pairs by ascending vertex order, exactly
    // like the E5 pairing, but found by scanning the sorted neighbor rows.
    let pairs: Vec<(VertexId, VertexId)> = (0..n)
        .flat_map(|a| ((a + 1)..n).map(move |b| (VertexId::new(a), VertexId::new(b))))
        .filter(|&(a, b)| !graph.has_edge(a, b))
        .take(30)
        .collect();
    let coalescible = pairs
        .iter()
        .filter(|&&(a, b)| {
            session
                .query(&graph, omega, a, b)
                .expect("chordal instance within hypotheses")
                .is_coalescible()
        })
        .count();
    E15IntervalRow {
        n,
        edges: graph.num_edges(),
        omega,
        tree_nodes: session.tree().num_nodes(),
        queries: pairs.len(),
        coalescible,
    }
}

/// One CFG scaling row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E15CfgRow {
    /// Shape profile of the generated program.
    pub profile: ShapeProfile,
    /// Basic blocks of the program.
    pub blocks: usize,
    /// Variables of the program (before spilling).
    pub vars: usize,
    /// φ-functions of the program.
    pub phis: usize,
    /// Arena footprint of the program in bytes
    /// ([`Function::ir_bytes`]).
    pub ir_bytes: usize,
    /// The program is strict SSA.
    pub strict_ssa: bool,
    /// Precise `Maxlive` of the SSA form.
    pub maxlive: usize,
    /// Interference edges of the SSA interference graph.
    pub interference_edges: usize,
    /// Affinities extracted alongside the interferences.
    pub affinities: usize,
    /// The SSA interference graph is chordal with ω = `Maxlive`
    /// (Theorem 1).
    pub chordal_omega_is_maxlive: bool,
    /// The tight register count the program was spilled to.
    pub k: usize,
    /// Variables spilled by `spill_to_pressure` at `k`.
    pub spilled: usize,
    /// Reload temporaries the rewrite inserted.
    pub reloads: usize,
    /// Precise `Maxlive` after spilling (≤ `k` unless an instruction's
    /// operands alone exceed it).
    pub maxlive_after: usize,
}

/// Computes one CFG scaling row: generate, analyse, and spill to a tight
/// `k` with the incrementally patched liveness.
pub fn e15_cfg_row(base_seed: u64, profile: ShapeProfile) -> E15CfgRow {
    let f = e15_cfg_program(base_seed, profile);
    let live = Liveness::compute(&f);
    let maxlive = live.maxlive_precise(&f);
    let ig = InterferenceGraph::build_with(
        &f,
        &live,
        BuildOptions {
            kind: InterferenceKind::Intersection,
            ..Default::default()
        },
    );
    let omega = PreparedChordal::prepare(&ig.graph).map(|s| s.omega());
    let k = (maxlive / 2).max(3);
    let mut spilled_f = f.clone();
    let result = spill::spill_to_pressure(&mut spilled_f, k);
    let live_after = Liveness::compute(&spilled_f);
    E15CfgRow {
        profile,
        blocks: f.num_blocks(),
        vars: f.num_vars(),
        phis: f.num_phis(),
        ir_bytes: f.ir_bytes(),
        strict_ssa: ssa::is_strict(&f),
        maxlive,
        interference_edges: ig.graph.num_edges(),
        affinities: ig.affinities.len(),
        chordal_omega_is_maxlive: omega == Some(maxlive),
        k,
        spilled: result.spilled.len(),
        reloads: result.reloads,
        maxlive_after: live_after.maxlive_precise(&spilled_f),
    }
}

/// The row descriptors of the E15 sweep, in report order.
#[derive(Debug, Clone, Copy)]
enum RowSpec {
    Interval(usize),
    Cfg(ShapeProfile),
}

fn row_specs() -> Vec<RowSpec> {
    E15_INTERVAL_SIZES
        .iter()
        .map(|&n| RowSpec::Interval(n))
        .chain(E15_CFG_PROFILES.iter().map(|&p| RowSpec::Cfg(p)))
        .collect()
}

fn interval_row_json(r: &E15IntervalRow) -> Json {
    Json::object([
        ("kind", Json::from("interval")),
        ("n", Json::from(r.n)),
        ("edges", Json::from(r.edges)),
        ("omega", Json::from(r.omega)),
        ("tree_nodes", Json::from(r.tree_nodes)),
        ("queries", Json::from(r.queries)),
        ("coalescible", Json::from(r.coalescible)),
    ])
}

fn cfg_row_json(r: &E15CfgRow) -> Json {
    Json::object([
        ("kind", Json::from("cfg")),
        ("profile", Json::from(r.profile.name())),
        ("blocks", Json::from(r.blocks)),
        ("vars", Json::from(r.vars)),
        ("phis", Json::from(r.phis)),
        ("ir_bytes", Json::from(r.ir_bytes)),
        ("strict_ssa", Json::from(r.strict_ssa)),
        ("maxlive", Json::from(r.maxlive)),
        ("interference_edges", Json::from(r.interference_edges)),
        ("affinities", Json::from(r.affinities)),
        (
            "chordal_omega_is_maxlive",
            Json::from(r.chordal_omega_is_maxlive),
        ),
        ("k", Json::from(r.k)),
        ("spilled", Json::from(r.spilled)),
        ("reloads", Json::from(r.reloads)),
        ("maxlive_after", Json::from(r.maxlive_after)),
    ])
}

/// Runs E15 and packages the report.
pub fn e15_report(base_seed: u64) -> ExperimentReport {
    e15_report_with_jobs(base_seed, 1)
}

/// Runs E15 with row-level parallelism and packages the report; the rows
/// fan over the worker pool and come back in spec order, so the serialized
/// report is byte-identical for every `jobs` value.
pub fn e15_report_with_jobs(base_seed: u64, jobs: usize) -> ExperimentReport {
    let specs = row_specs();
    let computed: Vec<(Json, coalesce_stats::Counters)> = par_map(&specs, jobs, |&spec| {
        let _span = coalesce_stats::span!("e15/row");
        let (mut row, stats) = coalesce_stats::collect(|| match spec {
            RowSpec::Interval(n) => interval_row_json(&e15_interval_row(base_seed, n)),
            RowSpec::Cfg(profile) => cfg_row_json(&e15_cfg_row(base_seed, profile)),
        });
        row.push_counters(&stats);
        (row, stats)
    });
    let mut totals = coalesce_stats::Counters::default();
    for (_, stats) in &computed {
        totals.merge(stats);
    }
    let rows: Vec<Json> = computed.into_iter().map(|(row, _)| row).collect();
    let total_edges: u64 = rows
        .iter()
        .filter_map(|r| {
            r.get("edges")
                .or_else(|| r.get("interference_edges"))
                .and_then(Json::as_u64)
        })
        .sum();
    let min_cfg_blocks = rows
        .iter()
        .filter_map(|r| r.get("blocks").and_then(Json::as_u64))
        .min()
        .unwrap_or(0);
    let invariants_hold = rows.iter().all(|r| {
        ["strict_ssa", "chordal_omega_is_maxlive"]
            .iter()
            .all(|key| r.get(key).and_then(Json::as_bool) != Some(false))
    });
    ExperimentReport {
        id: ExperimentId::E15,
        title: ExperimentId::E15.title(),
        base_seed,
        rows,
        summary: vec![
            ("interval_rows".into(), Json::from(E15_INTERVAL_SIZES.len())),
            ("cfg_rows".into(), Json::from(E15_CFG_PROFILES.len())),
            ("total_edges".into(), Json::from(total_edges)),
            ("min_cfg_blocks".into(), Json::from(min_cfg_blocks)),
            ("invariants_hold".into(), Json::from(invariants_hold)),
            ("stats".into(), Json::counters(&totals)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_row_is_bounded_degree_and_chordal() {
        // A small off-sweep size keeps this unit test quick while pinning
        // the row semantics (the sweep sizes run in the integration suite).
        let row = e15_interval_row(0, 600);
        assert_eq!(row.n, 600);
        assert!(row.edges > 0);
        assert!(row.omega >= 1 && row.omega < 600);
        assert!(row.tree_nodes >= 1);
        assert_eq!(row.queries, 30);
    }

    #[test]
    fn cfg_rows_reach_thousands_of_blocks_and_hold_theorem_1() {
        for profile in E15_CFG_PROFILES {
            let f = e15_cfg_program(42, profile);
            assert!(
                f.num_blocks() >= 2000,
                "{profile}: {} blocks, wanted >= 2000",
                f.num_blocks()
            );
        }
    }

    #[test]
    fn report_rows_cover_both_kinds_in_order() {
        let specs = row_specs();
        assert_eq!(
            specs.len(),
            E15_INTERVAL_SIZES.len() + E15_CFG_PROFILES.len()
        );
        assert!(matches!(specs[0], RowSpec::Interval(5_000)));
        assert!(matches!(specs[specs.len() - 1], RowSpec::Cfg(_)));
    }
}
