//! E18 — chaos soak of the allocation service.
//!
//! Replays a seeded mixed-workload request trace (`coalesce_gen::trace`)
//! through an in-process `coalesce-serve` worker pool with fault
//! injection layered on top: a deterministic ≥5% of the lines are
//! corrupted — instance texts mutated by the verifier's
//! [`TextFault`] catalogue, truncated JSON, unknown request kinds,
//! oversized lines, and deliberate `panic` requests (chaos mode) — while
//! the rest carry the trace's sprinkle of expired deadlines and tiny
//! work budgets.  Every response is re-verified (`--verify boundaries`
//! semantics) before it is counted.
//!
//! The report's rows bucket outcomes per request kind and per fault
//! flavour; everything in them is deterministic for a fixed base seed
//! and identical for every `--jobs` value (submission is blocking, so
//! queue timing never reaches an outcome).  The measured quantities —
//! `instances_per_sec`, `elapsed_ms`, `p50_elapsed_ms`,
//! `p99_elapsed_ms` — live only in the summary, where the byte-compare
//! tests mask them and `bench-diff` applies its throughput floor.
//!
//! The headline invariant is **zero crashes**: every injected fault must
//! come back as a structured response (never a dead worker), which the
//! summary pins as `clean_worker_exits == workers` and
//! `verify_failures == 0`.

use crate::json::Json;
use crate::report::ExperimentReport;
use coalesce_gen::trace::{trace, TraceParams};
use coalesce_serve::{Engine, EngineConfig, Response, Server, ServerConfig};
use coalesce_verify::mutation::TextFault;
use coalesce_verify::VerifyLevel;
use rand::Rng;
use std::collections::BTreeMap;
use std::sync::mpsc::channel;
use std::time::Instant;

/// Requests in the soak trace (before fault injection, which rewrites
/// lines in place rather than adding more).
const TRACE_REQUESTS: usize = 240;

/// Percent of lines corrupted by fault injection (the acceptance floor
/// is 5%).
const FAULT_PERCENT: u32 = 8;

/// One line of the soak workload: the wire line plus the deterministic
/// labels the report buckets by.
struct SoakLine {
    /// Request kind from the trace, or `"fault"` for injected lines.
    kind: &'static str,
    /// Fault flavour label (`None` for clean lines).
    fault: Option<&'static str>,
    line: String,
}

/// Replaces the embedded `text` field of a request line with a corrupted
/// version.  Falls back to JSON truncation when the line carries no text
/// (cfg / module_slice requests).
fn corrupt_text(line: &str, fault: TextFault) -> Option<String> {
    let doc = Json::parse(line).ok()?;
    let text = doc.get("text")?.as_str()?.to_owned();
    let Json::Object(pairs) = doc else {
        return None;
    };
    let rewritten: Vec<(String, Json)> = pairs
        .into_iter()
        .map(|(k, v)| {
            if k == "text" {
                let corrupted = fault.apply(&text);
                (k, Json::from(corrupted))
            } else {
                (k, v)
            }
        })
        .collect();
    Some(Json::Object(rewritten).to_compact_string())
}

/// Builds the deterministic fault-injected workload for `base_seed`.
fn build_workload(base_seed: u64) -> Vec<SoakLine> {
    let params = TraceParams {
        requests: TRACE_REQUESTS,
        ..TraceParams::default()
    };
    let requests = trace(&params, base_seed ^ 0xE18);
    let mut rng = coalesce_gen::rng(base_seed ^ 0x050A_CE18);
    requests
        .into_iter()
        .map(|req| {
            if rng.gen_range(0..100) >= FAULT_PERCENT {
                return SoakLine {
                    kind: req.kind,
                    fault: None,
                    line: req.line,
                };
            }
            // Pick a fault flavour; the TextFault catalogue applies to
            // text-carrying requests, the protocol-level flavours to any.
            let text_fault = TextFault::ALL[rng.gen_range(0..TextFault::ALL.len())];
            let flavour = rng.gen_range(0..10u32);
            let (fault, line) = match flavour {
                // Corrupted instance text (dominant — it exercises the
                // typed parser errors end to end).
                0..=5 => match corrupt_text(&req.line, text_fault) {
                    Some(line) => (text_fault.name(), line),
                    // No text field: degrade to truncated JSON.
                    None => ("truncated-json", req.line[..req.line.len() / 2].to_owned()),
                },
                6 => ("truncated-json", req.line[..req.line.len() / 2].to_owned()),
                7 => (
                    "unknown-kind",
                    format!(r#"{{"id":{},"kind":"transmogrify"}}"#, req.id),
                ),
                8 => (
                    "oversized-line",
                    format!(
                        r#"{{"id":{},"kind":"dimacs","text":"{}"}}"#,
                        req.id,
                        "x".repeat(coalesce_serve::protocol::MAX_REQUEST_BYTES)
                    ),
                ),
                _ => ("panic", format!(r#"{{"id":{},"kind":"panic"}}"#, req.id)),
            };
            SoakLine {
                kind: "fault",
                fault: Some(fault),
                line,
            }
        })
        .collect()
}

/// Runs the E18 chaos soak.  `jobs` sizes the worker pool; outcomes are
/// identical for every value (only the masked timing summary varies).
pub fn e18_report_with_jobs(base_seed: u64, jobs: usize) -> ExperimentReport {
    let workload = build_workload(base_seed);
    let workers = jobs.max(2);
    let engine = EngineConfig {
        verify: VerifyLevel::Boundaries,
        chaos: true,
        ..EngineConfig::default()
    };
    let server = Server::start(
        std::sync::Arc::new(Engine::new(engine)),
        &ServerConfig {
            workers,
            queue_depth: 64,
            retry_after_ms: 25,
        },
    );

    let started = Instant::now();
    // Blocking submission: the queue applies backpressure by waiting, so
    // no request is ever bounced and outcomes cannot depend on timing.
    // Each request gets its own reply channel; responses are collected in
    // submission order.
    let mut pending = Vec::with_capacity(workload.len());
    for item in &workload {
        let (tx, rx) = channel();
        let submitted = Instant::now();
        server.submit_blocking(item.line.clone(), &tx);
        pending.push((submitted, rx));
    }
    let mut latencies_us: Vec<u64> = Vec::with_capacity(pending.len());
    let mut responses: Vec<Response> = Vec::with_capacity(pending.len());
    for (submitted, rx) in pending {
        let response = rx.recv().unwrap_or(Response::Error {
            id: None,
            code: coalesce_serve::ErrorCode::InternalError,
            message: "reply channel died".to_owned(),
        });
        latencies_us.push(submitted.elapsed().as_micros() as u64);
        responses.push(response);
    }
    let elapsed_ms = started.elapsed().as_millis() as u64;
    let summary_counters = server.shutdown();

    // Deterministic outcome buckets.
    let mut buckets: BTreeMap<(&'static str, &'static str), u64> = BTreeMap::new();
    let mut degraded = 0u64;
    let mut degrade_reasons: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut verified_ok = 0u64;
    let mut verify_failures = 0u64;
    for (item, response) in workload.iter().zip(&responses) {
        let label = item.fault.unwrap_or(item.kind);
        *buckets.entry((item.kind, response.outcome())).or_default() += 1;
        if item.fault.is_some() {
            *buckets.entry((label, response.outcome())).or_default() += 1;
        }
        if let Response::Ok {
            degraded: d,
            degrade_reason,
            verified,
            ..
        } = response
        {
            if *d {
                degraded += 1;
                if let Some(reason) = degrade_reason {
                    *degrade_reasons.entry(reason).or_default() += 1;
                }
            }
            match verified {
                Some(true) => verified_ok += 1,
                Some(false) => verify_failures += 1,
                None => {}
            }
        }
    }
    let rows: Vec<Json> = buckets
        .iter()
        .map(|(&(bucket, outcome), &count)| {
            Json::object([
                ("bucket", Json::from(bucket)),
                ("outcome", Json::from(outcome)),
                ("count", Json::from(count)),
            ])
        })
        .collect();

    let faults = workload.iter().filter(|l| l.fault.is_some()).count();
    let ok = responses
        .iter()
        .filter(|r| {
            matches!(
                r,
                Response::Ok {
                    degraded: false,
                    ..
                }
            )
        })
        .count();
    let errors = responses
        .iter()
        .filter(|r| matches!(r, Response::Error { .. } | Response::InternalError { .. }))
        .count();

    latencies_us.sort_unstable();
    let percentile_ms = |p: usize| -> u64 {
        if latencies_us.is_empty() {
            return 0;
        }
        let idx = (latencies_us.len() - 1) * p / 100;
        latencies_us[idx] / 1000
    };
    let instances_per_sec = (workload.len() as u64 * 1000) / elapsed_ms.max(1);

    let mut summary = vec![
        ("requests".to_owned(), Json::from(workload.len())),
        ("fault_lines".to_owned(), Json::from(faults)),
        ("fault_percent_min".to_owned(), Json::from(5usize)),
        ("ok".to_owned(), Json::from(ok)),
        ("degraded".to_owned(), Json::from(degraded)),
        ("errors".to_owned(), Json::from(errors)),
        ("verified_ok".to_owned(), Json::from(verified_ok)),
        ("verify_failures".to_owned(), Json::from(verify_failures)),
        (
            "panics_isolated".to_owned(),
            Json::from(summary_counters.panics_isolated),
        ),
        ("workers".to_owned(), Json::from(workers)),
        // The zero-crash invariant: every worker exited its loop
        // normally at shutdown, no matter what the trace threw at it.
        (
            "clean_worker_exits".to_owned(),
            Json::from(summary_counters.clean_worker_exits),
        ),
        (
            "zero_crashes".to_owned(),
            Json::Bool(summary_counters.clean_worker_exits == workers && verify_failures == 0),
        ),
    ];
    for (reason, count) in degrade_reasons {
        summary.push((format!("degraded_{reason}"), Json::from(count)));
    }
    // Measured quantities last, masked by the byte-compare tests and
    // floor-guarded (instances_per_sec) by bench-diff.
    summary.push((
        "instances_per_sec".to_owned(),
        Json::from(instances_per_sec),
    ));
    summary.push(("elapsed_ms".to_owned(), Json::from(elapsed_ms)));
    summary.push(("p50_elapsed_ms".to_owned(), Json::from(percentile_ms(50))));
    summary.push(("p99_elapsed_ms".to_owned(), Json::from(percentile_ms(99))));

    ExperimentReport {
        id: super::ExperimentId::E18,
        title: super::ExperimentId::E18.title(),
        base_seed,
        rows,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_workload_is_deterministic_and_faulty_enough() {
        let a = build_workload(0);
        let b = build_workload(0);
        assert_eq!(a.len(), TRACE_REQUESTS);
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.line == y.line && x.fault == y.fault));
        let faults = a.iter().filter(|l| l.fault.is_some()).count();
        assert!(
            faults * 100 >= TRACE_REQUESTS * 5,
            "fault rate must be >= 5% (got {faults}/{TRACE_REQUESTS})"
        );
        assert!(
            a.iter().any(|l| l.fault == Some("panic")),
            "the soak must include deliberate worker panics"
        );
    }

    #[test]
    fn corrupt_text_rewrites_only_the_text_field() {
        let line = r#"{"id":5,"kind":"dimacs","text":"p edge 2 1\ne 1 2\n","k":2}"#;
        let out = corrupt_text(line, TextFault::TruncateTail).expect("has text");
        let doc = Json::parse(&out).expect("still valid JSON");
        assert_eq!(doc.get("id").and_then(Json::as_u64), Some(5));
        assert_eq!(doc.get("k").and_then(Json::as_u64), Some(2));
        assert_ne!(
            doc.get("text").and_then(Json::as_str),
            Some("p edge 2 1\ne 1 2\n"),
            "text must actually be corrupted"
        );
        assert!(corrupt_text(r#"{"id":1,"kind":"panic"}"#, TextFault::SelfLoop).is_none());
    }
}
