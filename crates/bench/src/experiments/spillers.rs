//! E17 — rival spilling strategies head-to-head.
//!
//! PR 7 grew the first phase of the two-phase allocator into a *strategy
//! zoo* ([`SpillerKind`]): the naive spill-everywhere baseline, the
//! sublinear pressure-greedy spiller, and the Braun–Hack-style Belady MIN
//! spiller with next-use distances and block-boundary live-range
//! splitting.  This experiment races the three over
//!
//! * the full **E13 workload grid** — every [`ShapeProfile`] ×
//!   [`PressureLevel`] cell, regenerated with [`regalloc::workload_program`]
//!   so the inputs are byte-identical to E13's;
//! * one **windowed cell** — the `FpLoopNest` × `Medium` shape regenerated
//!   with `reuse_window = 3`, which shortens next-use distances and gives
//!   the Belady heuristic locality to exploit;
//! * a **module slice** — the first [`E17_MODULE_FUNCTIONS`] functions of
//!   the E16 module, aggregated per spiller.
//!
//! Every row reports the loop-weighted spill weight (`Σ` pre-spill
//! [`spill::spill_costs`] over the victims), the reload temporaries the
//! rewrite inserted and the precise `Maxlive` after spilling.  Wall clock
//! is *summary-only*: one `<spiller>_elapsed_ms` counter per strategy,
//! masked by the byte-compare tests and treated as a perf counter by
//! `bench-diff`, so the report stays byte-identical for every `--jobs`
//! value.
//!
//! [`regalloc::workload_program`]: crate::experiments::regalloc::workload_program

use crate::json::Json;
use crate::par::par_map;
use crate::report::ExperimentReport;
use crate::ExperimentId;
use coalesce_gen::cfg::{generate, PressureLevel, ShapeProfile};
use coalesce_ir::liveness::Liveness;
use coalesce_ir::spill::{self, SpillerKind};
use coalesce_ir::Function;

use super::{module, regalloc};

/// Functions of the E16 module raced through every spiller (the full
/// 1000-function module would dominate the run; a fixed prefix keeps the
/// experiment inside its budget while still sampling every profile ×
/// pressure mix).
pub const E17_MODULE_FUNCTIONS: usize = 150;

/// `reuse_window` of the windowed grid cell.
pub const E17_REUSE_WINDOW: usize = 3;

/// The windowed-cell program: the `FpLoopNest` × `Medium` shape with
/// `reuse_window = 3` (seeded by `base_seed + 1700`), so operands are
/// drawn from the most recent defs and next-use distances stay short.
pub fn windowed_program(base_seed: u64) -> Function {
    let mut params = ShapeProfile::FpLoopNest.params(PressureLevel::Medium.pressure());
    params.reuse_window = E17_REUSE_WINDOW;
    generate(&params, &mut coalesce_gen::rng(base_seed + 1700))
}

/// Deterministic result of one spiller on one input function, plus the
/// measured wall clock of the spill call (summary-only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E17CellStats {
    /// The strategy that produced the row.
    pub spiller: SpillerKind,
    /// Precise `Maxlive` of the input.
    pub maxlive: usize,
    /// The register bound the spiller was asked to reach
    /// (`(maxlive / 2).max(3)`, the E16 convention).
    pub k: usize,
    /// Variables the strategy spilled.
    pub spilled: usize,
    /// Reload temporaries the rewrite inserted.
    pub reloads: usize,
    /// `Σ` pre-spill [`spill::spill_costs`] over the victims.
    pub spill_weight: u64,
    /// Precise `Maxlive` after the rewrite.
    pub maxlive_after: usize,
    /// Measured spill-call wall clock in nanoseconds.  **Not** part of any
    /// report row — aggregated into the summary's perf counters only.
    pub elapsed_nanos: u64,
    /// Pass counters of the cell's analyses and spill call (deterministic,
    /// unlike `elapsed_nanos` — these do ride in the rows).
    pub counters: coalesce_stats::Counters,
}

/// Runs one spiller on (a clone of) `f` at the E16-convention `k` and
/// packages the deterministic statistics.
pub fn e17_cell_stats(f: &Function, spiller: SpillerKind) -> E17CellStats {
    let _span = coalesce_stats::span!("e17/cell");
    let ((maxlive, k, result, elapsed_nanos, spill_weight, maxlive_after), counters) =
        coalesce_stats::collect(|| {
            let maxlive = Liveness::compute(f).maxlive_precise(f);
            let k = (maxlive / 2).max(3);
            // Costs on the pre-spill program: the reported weight is the
            // price of the chosen victims, not of the rewrite's temps.
            let costs = spill::spill_costs(f);
            let mut spilled_f = f.clone();
            let started = std::time::Instant::now();
            let result = spiller.run(&mut spilled_f, k);
            let elapsed_nanos = started.elapsed().as_nanos() as u64;
            let spill_weight = result.spilled.iter().map(|v| costs[v.index()]).sum::<u64>();
            let maxlive_after = Liveness::compute(&spilled_f).maxlive_precise(&spilled_f);
            (
                maxlive,
                k,
                result,
                elapsed_nanos,
                spill_weight,
                maxlive_after,
            )
        });
    E17CellStats {
        spiller,
        maxlive,
        k,
        spilled: result.spilled.len(),
        reloads: result.reloads,
        spill_weight,
        maxlive_after,
        elapsed_nanos,
        counters,
    }
}

/// One grid work unit: a (profile, pressure) cell, optionally windowed.
#[derive(Debug, Clone, Copy)]
struct GridCell {
    profile: ShapeProfile,
    pressure: PressureLevel,
    reuse_window: usize,
}

impl GridCell {
    fn program(&self, base_seed: u64) -> Function {
        if self.reuse_window == 0 {
            regalloc::workload_program(base_seed, self.profile, self.pressure)
        } else {
            windowed_program(base_seed)
        }
    }
}

fn grid_cells() -> Vec<GridCell> {
    let mut cells = Vec::new();
    for profile in ShapeProfile::ALL {
        for pressure in PressureLevel::ALL {
            cells.push(GridCell {
                profile,
                pressure,
                reuse_window: 0,
            });
        }
    }
    cells.push(GridCell {
        profile: ShapeProfile::FpLoopNest,
        pressure: PressureLevel::Medium,
        reuse_window: E17_REUSE_WINDOW,
    });
    cells
}

fn grid_row_json(cell: &GridCell, f: &Function, s: &E17CellStats) -> Json {
    Json::object([
        ("scope", Json::from("grid")),
        ("spiller", Json::from(s.spiller.name())),
        ("profile", Json::from(cell.profile.name())),
        ("pressure", Json::from(cell.pressure.name())),
        ("reuse_window", Json::from(cell.reuse_window)),
        ("blocks", Json::from(f.num_blocks())),
        ("vars", Json::from(f.num_vars())),
        ("maxlive", Json::from(s.maxlive)),
        ("k", Json::from(s.k)),
        ("spilled", Json::from(s.spilled)),
        ("reloads", Json::from(s.reloads)),
        ("spill_weight", Json::from(s.spill_weight)),
        ("maxlive_after", Json::from(s.maxlive_after)),
        ("stats", Json::counters(&s.counters)),
    ])
}

/// Aggregate of one spiller over the module slice.
#[derive(Debug, Clone, Default)]
struct ModuleAgg {
    functions: usize,
    spilled: usize,
    reloads: usize,
    spill_weight: u64,
    within_k: usize,
    elapsed_nanos: u64,
    counters: coalesce_stats::Counters,
}

impl ModuleAgg {
    fn add(&mut self, s: &E17CellStats) {
        self.functions += 1;
        self.spilled += s.spilled;
        self.reloads += s.reloads;
        self.spill_weight += s.spill_weight;
        self.within_k += usize::from(s.maxlive_after <= s.k);
        self.elapsed_nanos += s.elapsed_nanos;
        self.counters.merge(&s.counters);
    }
}

/// Runs E17 serially and packages the report.
pub fn e17_report(base_seed: u64) -> ExperimentReport {
    e17_report_with_jobs(base_seed, 1)
}

/// Runs E17 with the grid cells and module functions fanned over `jobs`
/// workers.  Work units come back in input order before aggregation, so
/// every deterministic field of the report is byte-identical for any
/// `jobs` value; only the summary's measured `*_elapsed_ms` counters vary.
pub fn e17_report_with_jobs(base_seed: u64, jobs: usize) -> ExperimentReport {
    let started = std::time::Instant::now();
    let mut per_spiller_nanos = [0u64; SpillerKind::ALL.len()];
    let mut per_spiller_weight = [0u64; SpillerKind::ALL.len()];

    // Grid sweep: each work unit regenerates its program (deterministic in
    // the seed alone, so it can run on any worker) and races the zoo.
    let cells = grid_cells();
    let cell_results: Vec<(Function, Vec<E17CellStats>)> = par_map(&cells, jobs, |cell| {
        let f = cell.program(base_seed);
        let stats = SpillerKind::ALL
            .iter()
            .map(|&sp| e17_cell_stats(&f, sp))
            .collect();
        (f, stats)
    });
    let mut rows = Vec::new();
    for (cell, (f, stats)) in cells.iter().zip(&cell_results) {
        for (i, s) in stats.iter().enumerate() {
            rows.push(grid_row_json(cell, f, s));
            per_spiller_nanos[i] += s.elapsed_nanos;
            per_spiller_weight[i] += s.spill_weight;
        }
    }

    // Module slice: a fixed prefix of the E16 module, aggregated per
    // spiller in spec order.
    let specs: Vec<_> = module::e16_specs(base_seed)
        .into_iter()
        .take(E17_MODULE_FUNCTIONS)
        .collect();
    let module_stats: Vec<Vec<E17CellStats>> = par_map(&specs, jobs, |spec| {
        let f = spec.generate();
        SpillerKind::ALL
            .iter()
            .map(|&sp| e17_cell_stats(&f, sp))
            .collect()
    });
    let mut aggs: [ModuleAgg; SpillerKind::ALL.len()] =
        std::array::from_fn(|_| ModuleAgg::default());
    for per_fn in &module_stats {
        for (i, s) in per_fn.iter().enumerate() {
            aggs[i].add(s);
        }
    }
    for (i, spiller) in SpillerKind::ALL.into_iter().enumerate() {
        let a = &aggs[i];
        per_spiller_nanos[i] += a.elapsed_nanos;
        per_spiller_weight[i] += a.spill_weight;
        rows.push(Json::object([
            ("scope", Json::from("module")),
            ("spiller", Json::from(spiller.name())),
            ("functions", Json::from(a.functions)),
            ("spilled", Json::from(a.spilled)),
            ("reloads", Json::from(a.reloads)),
            ("spill_weight", Json::from(a.spill_weight)),
            ("within_k", Json::from(a.within_k)),
            ("stats", Json::counters(&a.counters)),
        ]));
    }

    let mut summary = vec![
        ("grid_cells".to_owned(), Json::from(cells.len())),
        ("module_functions".to_owned(), Json::from(specs.len())),
    ];
    for (i, spiller) in SpillerKind::ALL.into_iter().enumerate() {
        summary.push((
            format!("{}_spill_weight", spiller.name()),
            Json::from(per_spiller_weight[i]),
        ));
    }
    let mut totals = coalesce_stats::Counters::default();
    for (_, stats) in &cell_results {
        for s in stats {
            totals.merge(&s.counters);
        }
    }
    for a in &aggs {
        totals.merge(&a.counters);
    }
    summary.push(("stats".to_owned(), Json::counters(&totals)));
    // Measured, not deterministic: masked by the byte-compare tests,
    // treated as perf counters by `bench-diff`.
    for (i, spiller) in SpillerKind::ALL.into_iter().enumerate() {
        summary.push((
            format!("{}_elapsed_ms", spiller.name()),
            Json::from(per_spiller_nanos[i] / 1_000_000),
        ));
    }
    summary.push((
        "elapsed_ms".to_owned(),
        Json::from(started.elapsed().as_millis() as u64),
    ));

    ExperimentReport {
        id: ExperimentId::E17,
        title: ExperimentId::E17.title(),
        base_seed,
        rows,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_stats_are_deterministic_per_spiller() {
        let f = regalloc::workload_program(0, ShapeProfile::IntBranchy, PressureLevel::High);
        for spiller in SpillerKind::ALL {
            let mut a = e17_cell_stats(&f, spiller);
            let mut b = e17_cell_stats(&f, spiller);
            // Only the measured wall clock may differ between runs.
            a.elapsed_nanos = 0;
            b.elapsed_nanos = 0;
            assert_eq!(a, b, "{} must be deterministic", spiller.name());
            assert!(a.spilled > 0, "a High-pressure cell must force spills");
            assert!(
                a.maxlive_after <= a.maxlive,
                "{} must not raise Maxlive",
                spiller.name()
            );
        }
    }

    #[test]
    fn windowed_cell_differs_from_the_default_grid_cell() {
        // Same shape parameters and seed, window on vs off: the operand
        // choices (and through the shared RNG stream, possibly the shape)
        // must differ, and both programs must be well-formed.
        let params = ShapeProfile::FpLoopNest.params(PressureLevel::Medium.pressure());
        let plain = generate(&params, &mut coalesce_gen::rng(1700));
        let windowed = windowed_program(0);
        assert!(plain.validate().is_ok());
        assert!(windowed.validate().is_ok());
        assert_ne!(
            format!("{plain:?}"),
            format!("{windowed:?}"),
            "reuse_window = 3 must reshape operand choices"
        );
    }

    #[test]
    fn grid_covers_every_cell_plus_the_windowed_one() {
        let cells = grid_cells();
        assert_eq!(
            cells.len(),
            ShapeProfile::ALL.len() * PressureLevel::ALL.len() + 1
        );
        assert_eq!(cells.last().unwrap().reuse_window, E17_REUSE_WINDOW);
    }
}
