//! E3, E8, E11 — the coalescing-strategy comparisons: local rules on
//! permutation gadgets, challenge-style tables, and the Theorem-5-guided
//! chordal strategy.

use crate::json::Json;
use crate::report::ExperimentReport;
use crate::ExperimentId;
use coalesce_core::affinity::{Affinity, AffinityGraph};
use coalesce_core::aggressive_heuristic;
use coalesce_core::chordal_strategy::{chordal_conservative_coalesce, ChordalMode};
use coalesce_core::conservative::{conservative_coalesce, ConservativeRule};
use coalesce_core::optimistic::optimistic_coalesce;
use coalesce_gen::challenge::{challenge_instance, ChallengeInstance, ChallengeParams};
use coalesce_gen::graphs::random_interval_graph;
use coalesce_gen::permutation::permutation_instance;
use coalesce_graph::{chordal, greedy, VertexId};

// ---------------------------------------------------------------------------
// E3 — Figure 3: local rules vs simultaneous coalescing on permutations.
// ---------------------------------------------------------------------------

/// One E3 table row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E3Row {
    /// Size of the permutation gadget.
    pub n: usize,
    /// Register count (`n + 2`).
    pub k: usize,
    /// Moves coalesced by the Briggs rule.
    pub briggs: usize,
    /// Moves coalesced by the George rule.
    pub george: usize,
    /// Moves coalesced by the brute-force local rule.
    pub brute: usize,
    /// Moves coalesced when merging all affinities simultaneously (the
    /// full permutation if the merged graph stays colorable, else 0).
    pub simultaneous: usize,
}

/// Builds the E3 permutation gadget for size `n`.
pub fn e3_instance(n: usize) -> AffinityGraph {
    permutation_instance(n, 2)
}

/// Computes one E3 row.
pub fn e3_row(n: usize) -> E3Row {
    let k = n + 2;
    let ag = e3_instance(n);
    let briggs = conservative_coalesce(&ag, k, ConservativeRule::Briggs);
    let george = conservative_coalesce(&ag, k, ConservativeRule::George);
    let brute = conservative_coalesce(&ag, k, ConservativeRule::BruteForce);
    let all = aggressive_heuristic(&ag);
    let simultaneous_ok = greedy::is_greedy_k_colorable(&all.coalescing.merged_graph, k)
        && all.stats.uncoalesced() == 0;
    E3Row {
        n,
        k,
        briggs: briggs.stats.coalesced,
        george: george.stats.coalesced,
        brute: brute.stats.coalesced,
        simultaneous: if simultaneous_ok { n } else { 0 },
    }
}

/// Runs E3 and packages the report (the gadgets are seed-independent).
pub fn e3_report(base_seed: u64) -> ExperimentReport {
    let rows: Vec<E3Row> = [3usize, 4, 6].iter().map(|&n| e3_row(n)).collect();
    let local_beaten = rows
        .iter()
        .filter(|r| r.simultaneous > r.briggs.max(r.george).max(r.brute))
        .count();
    ExperimentReport {
        id: ExperimentId::E3,
        title: ExperimentId::E3.title(),
        base_seed,
        rows: rows
            .iter()
            .map(|r| {
                Json::object([
                    ("n", Json::from(r.n)),
                    ("k", Json::from(r.k)),
                    ("briggs", Json::from(r.briggs)),
                    ("george", Json::from(r.george)),
                    ("brute", Json::from(r.brute)),
                    ("simultaneous", Json::from(r.simultaneous)),
                ])
            })
            .collect(),
        summary: vec![(
            "gadgets_where_simultaneous_beats_local_rules".into(),
            Json::from(local_beaten),
        )],
    }
}

// ---------------------------------------------------------------------------
// E8 — the coalescing-challenge-style strategy comparison.
// ---------------------------------------------------------------------------

/// One E8 table row: percentage of affinity weight coalesced per strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct E8Row {
    /// Seed of the generated challenge instance.
    pub seed: u64,
    /// Number of affinities of the instance.
    pub affinities: usize,
    /// % weight coalesced by aggressive coalescing.
    pub aggressive_pct: f64,
    /// % weight coalesced by the Briggs rule.
    pub briggs_pct: f64,
    /// % weight coalesced by Briggs+George.
    pub briggs_george_pct: f64,
    /// % weight coalesced by the brute-force rule.
    pub brute_pct: f64,
    /// % weight coalesced by optimistic coalescing.
    pub optimistic_pct: f64,
    /// Spills of the full IRC allocation.
    pub irc_spills: usize,
}

/// Builds the E8 challenge instance for one seed.
pub fn e8_instance(seed: u64) -> ChallengeInstance {
    let mut rng = coalesce_gen::rng(seed);
    challenge_instance(&ChallengeParams::default(), &mut rng)
}

/// Computes one E8 row.
pub fn e8_row(seed: u64) -> E8Row {
    let inst = e8_instance(seed);
    let ag = &inst.affinity_graph;
    let k = inst.registers.max(inst.maxlive);
    let pct = |w: u64| {
        if ag.total_weight() == 0 {
            100.0
        } else {
            100.0 * w as f64 / ag.total_weight() as f64
        }
    };
    let aggr = aggressive_heuristic(ag);
    let briggs = conservative_coalesce(ag, k, ConservativeRule::Briggs);
    let bg = conservative_coalesce(ag, k, ConservativeRule::BriggsGeorge);
    let brute = conservative_coalesce(ag, k, ConservativeRule::BruteForce);
    let optim = optimistic_coalesce(ag, k);
    let alloc = coalesce_core::irc::allocate(ag, inst.registers);
    E8Row {
        seed,
        affinities: ag.num_affinities(),
        aggressive_pct: pct(aggr.stats.coalesced_weight),
        briggs_pct: pct(briggs.stats.coalesced_weight),
        briggs_george_pct: pct(bg.stats.coalesced_weight),
        brute_pct: pct(brute.stats.coalesced_weight),
        optimistic_pct: pct(optim.stats.coalesced_weight),
        irc_spills: alloc.num_spills(),
    }
}

/// Runs E8 and packages the report.
pub fn e8_report(base_seed: u64) -> ExperimentReport {
    let rows: Vec<E8Row> = (0..6u64).map(|s| e8_row(base_seed + 80 + s)).collect();
    let total_spills: usize = rows.iter().map(|r| r.irc_spills).sum();
    ExperimentReport {
        id: ExperimentId::E8,
        title: ExperimentId::E8.title(),
        base_seed,
        rows: rows
            .iter()
            .map(|r| {
                Json::object([
                    ("seed", Json::from(r.seed)),
                    ("affinities", Json::from(r.affinities)),
                    ("aggressive_pct", Json::from(r.aggressive_pct)),
                    ("briggs_pct", Json::from(r.briggs_pct)),
                    ("briggs_george_pct", Json::from(r.briggs_george_pct)),
                    ("brute_pct", Json::from(r.brute_pct)),
                    ("optimistic_pct", Json::from(r.optimistic_pct)),
                    ("irc_spills", Json::from(r.irc_spills)),
                ])
            })
            .collect(),
        summary: vec![
            ("instances".into(), Json::from(rows.len())),
            ("total_irc_spills".into(), Json::from(total_spills)),
        ],
    }
}

// ---------------------------------------------------------------------------
// E11 — the Theorem-5-guided chordal strategy against the local rules.
// ---------------------------------------------------------------------------

/// One E11 table row: weight removed by each strategy on one chordal
/// instance with `k = ω`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E11Row {
    /// Seed of the generated instance.
    pub seed: u64,
    /// Register count (equals the clique number ω).
    pub k: usize,
    /// Total affinity weight of the instance.
    pub total_weight: u64,
    /// Weight removed by the witness-class chordal mode.
    pub witness_weight: u64,
    /// Artificial merges the witness mode performed.
    pub witness_artificial: usize,
    /// Weight removed by the fill-in chordal mode.
    pub fillin_weight: u64,
    /// Fill edges the fill-in mode added.
    pub fillin_edges: usize,
    /// Weight removed by the Briggs rule.
    pub briggs_weight: u64,
    /// Weight removed by the brute-force rule.
    pub brute_weight: u64,
}

/// Builds the E11 chordal instance for one seed: a random interval graph
/// with up to 10 weighted affinities between non-adjacent pairs, `k = ω`.
pub fn e11_instance(seed: u64) -> (AffinityGraph, usize) {
    let mut rng = coalesce_gen::rng(seed);
    let (g, _) = random_interval_graph(16, 24, 4, &mut rng);
    let k = chordal::chordal_clique_number(&g).unwrap_or(1).max(1);
    let live: Vec<VertexId> = g.vertices().collect();
    let mut affinities = Vec::new();
    for (i, &a) in live.iter().enumerate() {
        for &b in &live[i + 1..] {
            if !g.has_edge(a, b) && affinities.len() < 10 {
                affinities.push(Affinity::weighted(a, b, 1 + (a.index() as u64 % 3)));
            }
        }
    }
    (AffinityGraph::new(g, affinities), k)
}

/// Computes one E11 row.
pub fn e11_row(seed: u64) -> E11Row {
    let (ag, k) = e11_instance(seed);
    let witness = chordal_conservative_coalesce(&ag, k, ChordalMode::MergeWitnessClass)
        .expect("chordal instance within hypotheses");
    let fill = chordal_conservative_coalesce(&ag, k, ChordalMode::FillIn)
        .expect("chordal instance within hypotheses");
    let briggs = conservative_coalesce(&ag, k, ConservativeRule::Briggs);
    let brute = conservative_coalesce(&ag, k, ConservativeRule::BruteForce);
    E11Row {
        seed,
        k,
        total_weight: ag.total_weight(),
        witness_weight: witness.stats.coalesced_weight,
        witness_artificial: witness.artificial_merges,
        fillin_weight: fill.stats.coalesced_weight,
        fillin_edges: fill.fill_edges_added,
        briggs_weight: briggs.stats.coalesced_weight,
        brute_weight: brute.stats.coalesced_weight,
    }
}

/// Runs E11 and packages the report.
pub fn e11_report(base_seed: u64) -> ExperimentReport {
    let rows: Vec<E11Row> = (0..4u64).map(|s| e11_row(base_seed + 110 + s)).collect();
    let witness_at_least_briggs = rows
        .iter()
        .filter(|r| r.witness_weight >= r.briggs_weight)
        .count();
    ExperimentReport {
        id: ExperimentId::E11,
        title: ExperimentId::E11.title(),
        base_seed,
        rows: rows
            .iter()
            .map(|r| {
                Json::object([
                    ("seed", Json::from(r.seed)),
                    ("k", Json::from(r.k)),
                    ("total_weight", Json::from(r.total_weight)),
                    ("witness_weight", Json::from(r.witness_weight)),
                    ("witness_artificial", Json::from(r.witness_artificial)),
                    ("fillin_weight", Json::from(r.fillin_weight)),
                    ("fillin_edges", Json::from(r.fillin_edges)),
                    ("briggs_weight", Json::from(r.briggs_weight)),
                    ("brute_weight", Json::from(r.brute_weight)),
                ])
            })
            .collect(),
        summary: vec![(
            "instances_where_witness_mode_matches_briggs".into(),
            Json::from(witness_at_least_briggs),
        )],
    }
}
