//! E5, E7, E9 — the structural results: the polynomial chordal algorithm,
//! chordality of SSA interference graphs, and clique lifting.

use super::v;
use crate::json::Json;
use crate::par::par_map;
use crate::report::ExperimentReport;
use crate::ExperimentId;
use coalesce_core::incremental::{incremental_exact_with, ChordalIncremental};
use coalesce_gen::graphs::random_interval_graph;
use coalesce_gen::programs::{random_ssa_program, ProgramParams};
use coalesce_graph::lift::lift_by_clique;
use coalesce_graph::solver::ExactSolver;
use coalesce_graph::{chordal, greedy, Graph, VertexId};
use coalesce_ir::interference::{BuildOptions, InterferenceGraph, InterferenceKind};
use coalesce_ir::liveness::Liveness;

// ---------------------------------------------------------------------------
// E5 — Theorem 5 / Figure 5: polynomial chordal algorithm vs exact search.
// ---------------------------------------------------------------------------

/// An E5 instance: a random interval graph with its clique number and a
/// batch of non-adjacent query pairs.
#[derive(Debug, Clone)]
pub struct E5Instance {
    /// The chordal (interval) graph.
    pub graph: Graph,
    /// Its clique number ω.
    pub omega: usize,
    /// Up to 30 non-adjacent vertex pairs to query.
    pub pairs: Vec<(VertexId, VertexId)>,
}

/// The one generation recipe of the E5 instances (seeded by
/// `base_seed + n`); both [`e5_instance`] and [`e5_row`] build their graph
/// here, so the bench and the report always measure the same instance.
fn e5_graph(base_seed: u64, n: usize) -> Graph {
    let mut rng = coalesce_gen::rng(base_seed + n as u64);
    random_interval_graph(n, 3 * n, n / 2 + 2, &mut rng).0
}

/// Builds the E5 instance for `n` vertices (seeded by `base_seed + n`).
pub fn e5_instance(base_seed: u64, n: usize) -> E5Instance {
    let graph = e5_graph(base_seed, n);
    let omega = chordal::chordal_clique_number(&graph).expect("interval graphs are chordal");
    let pairs = e5_pairs(&graph, n);
    E5Instance {
        graph,
        omega,
        pairs,
    }
}

/// The first 30 non-adjacent vertex pairs of an E5 instance.
fn e5_pairs(graph: &Graph, n: usize) -> Vec<(VertexId, VertexId)> {
    (0..n)
        .flat_map(|a| ((a + 1)..n).map(move |b| (v(a), v(b))))
        .filter(|&(a, b)| !graph.has_edge(a, b))
        .take(30)
        .collect()
}

/// One E5 table row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E5Row {
    /// Number of vertices of the instance.
    pub n: usize,
    /// Clique number of the instance.
    pub omega: usize,
    /// Number of incremental queries run.
    pub queries: usize,
    /// Queries on which the polynomial algorithm agreed with exact search
    /// (`None` when the instance was too large to run the exact search).
    pub agreement: Option<usize>,
}

/// Computes one E5 row; the exact cross-check runs only for `n ≤ 30`.
///
/// The clique tree and `ω` are prepared once per instance
/// ([`ChordalIncremental`]), so the multi-thousand-vertex rows pay the
/// (linear) tree-construction cost once instead of once per query; `ω`
/// is read off the prepared session rather than recomputed.
pub fn e5_row(base_seed: u64, n: usize) -> E5Row {
    let graph = e5_graph(base_seed, n);
    let session = ChordalIncremental::prepare(&graph).expect("interval graphs are chordal");
    let omega = session.omega();
    let pairs = e5_pairs(&graph, n);
    let mut exact = ExactSolver::new();
    let mut agree = 0;
    for &(a, b) in &pairs {
        let fast = session
            .query(omega, a, b)
            .expect("chordal instance within hypotheses")
            .is_coalescible();
        if n <= 30 {
            let slow = incremental_exact_with(&mut exact, &graph, omega, a, b).is_coalescible();
            if fast == slow {
                agree += 1;
            }
        }
    }
    E5Row {
        n,
        omega,
        queries: pairs.len(),
        agreement: (n <= 30).then_some(agree),
    }
}

/// The instance sizes of the E5 sweep.  The small sizes are cross-checked
/// against the exact solver; the 500-to-5000-vertex sizes exercise the
/// polynomial chordal algorithm at production-ish scale (the Theorem 5
/// side is the one that must stay cheap as instances grow).  The
/// multi-thousand sizes became affordable when the clique-tree pipeline
/// went linear (bucket-queue MCS + Blair–Peyton construction); at
/// n = 5000 the instance has ~2 million interference edges.
pub const E5_SIZES: [usize; 7] = [15, 30, 60, 500, 1000, 2000, 5000];

/// Runs E5 and packages the report.
pub fn e5_report(base_seed: u64) -> ExperimentReport {
    e5_report_with_jobs(base_seed, 1)
}

/// Runs E5 with row-level parallelism and packages the report.
pub fn e5_report_with_jobs(base_seed: u64, jobs: usize) -> ExperimentReport {
    let rows: Vec<E5Row> = par_map(&E5_SIZES, jobs, |&n| e5_row(base_seed, n));
    let checked: usize = rows
        .iter()
        .filter_map(|r| r.agreement.map(|_| r.queries))
        .sum();
    let agreed: usize = rows.iter().filter_map(|r| r.agreement).sum();
    ExperimentReport {
        id: ExperimentId::E5,
        title: ExperimentId::E5.title(),
        base_seed,
        rows: rows
            .iter()
            .map(|r| {
                Json::object([
                    ("n", Json::from(r.n)),
                    ("omega", Json::from(r.omega)),
                    ("queries", Json::from(r.queries)),
                    ("agreement", r.agreement.map_or(Json::Null, Json::from)),
                ])
            })
            .collect(),
        summary: vec![
            ("checked_queries".into(), Json::from(checked)),
            ("agreed_queries".into(), Json::from(agreed)),
        ],
    }
}

// ---------------------------------------------------------------------------
// E7 — Theorem 1 / Property 1: SSA interference graphs are chordal.
// ---------------------------------------------------------------------------

/// One E7 table row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E7Row {
    /// Seed of the generated SSA program.
    pub seed: u64,
    /// Whether the interference graph is chordal (Theorem 1).
    pub chordal: bool,
    /// Whether ω equals the program's precise Maxlive.
    pub omega_is_maxlive: bool,
    /// Whether the graph is greedy-ω-colorable (Property 1).
    pub greedy_omega_colorable: bool,
}

impl E7Row {
    /// The conjunction Theorem 1 + Property 1 assert.
    pub fn invariant_holds(&self) -> bool {
        self.chordal && self.omega_is_maxlive && self.greedy_omega_colorable
    }
}

/// Generates the E7 program for one seed and builds its intersection-based
/// interference graph.
pub fn e7_interference(seed: u64) -> (InterferenceGraph, usize) {
    let mut rng = coalesce_gen::rng(seed);
    let f = random_ssa_program(&ProgramParams::default(), &mut rng);
    let live = Liveness::compute(&f);
    let ig = InterferenceGraph::build_with(
        &f,
        &live,
        BuildOptions {
            kind: InterferenceKind::Intersection,
            ..Default::default()
        },
    );
    let maxlive = live.maxlive_precise(&f);
    (ig, maxlive)
}

/// Computes one E7 row.
pub fn e7_row(seed: u64) -> E7Row {
    let (ig, maxlive) = e7_interference(seed);
    let chordal_ok = chordal::is_chordal(&ig.graph);
    let omega = chordal::chordal_clique_number(&ig.graph);
    E7Row {
        seed,
        chordal: chordal_ok,
        omega_is_maxlive: omega == Some(maxlive),
        greedy_omega_colorable: greedy::is_greedy_k_colorable(&ig.graph, omega.unwrap_or(0)),
    }
}

/// Runs E7 and packages the report.
pub fn e7_report(base_seed: u64) -> ExperimentReport {
    e7_report_with_jobs(base_seed, 1)
}

/// Runs E7 with row-level parallelism and packages the report.
pub fn e7_report_with_jobs(base_seed: u64, jobs: usize) -> ExperimentReport {
    let seeds: Vec<u64> = (0..10u64).map(|s| base_seed + 70 + s).collect();
    let rows: Vec<E7Row> = par_map(&seeds, jobs, |&s| e7_row(s));
    let holds = rows.iter().filter(|r| r.invariant_holds()).count();
    ExperimentReport {
        id: ExperimentId::E7,
        title: ExperimentId::E7.title(),
        base_seed,
        rows: rows
            .iter()
            .map(|r| {
                Json::object([
                    ("seed", Json::from(r.seed)),
                    ("chordal", Json::from(r.chordal)),
                    ("omega_is_maxlive", Json::from(r.omega_is_maxlive)),
                    (
                        "greedy_omega_colorable",
                        Json::from(r.greedy_omega_colorable),
                    ),
                ])
            })
            .collect(),
        summary: vec![
            ("programs".into(), Json::from(rows.len())),
            ("theorem_1_holds".into(), Json::from(holds)),
        ],
    }
}

// ---------------------------------------------------------------------------
// E9 — Property 2: clique lifting preserves the structural predicates.
// ---------------------------------------------------------------------------

/// One E9 table row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E9Row {
    /// The lift amount `p`.
    pub p: usize,
    /// Chordality of the base graph.
    pub base_chordal: bool,
    /// Chordality after lifting by a `p`-clique.
    pub lifted_chordal: bool,
    /// Greedy-ω-colorability of the base graph.
    pub base_greedy: bool,
    /// Greedy-(ω+p)-colorability of the lifted graph.
    pub lifted_greedy: bool,
}

/// Builds the E9 base graph (a random interval graph) and its ω.
pub fn e9_instance(base_seed: u64) -> (Graph, usize) {
    let mut rng = coalesce_gen::rng(base_seed + 90);
    let (g, _) = random_interval_graph(15, 25, 5, &mut rng);
    let omega = chordal::chordal_clique_number(&g).expect("interval graphs are chordal");
    (g, omega)
}

/// Computes the E9 rows for `p ∈ {1, 2, 3}`.
pub fn e9_rows(base_seed: u64) -> Vec<E9Row> {
    let (g, omega) = e9_instance(base_seed);
    (1..=3usize)
        .map(|p| {
            let lifted = lift_by_clique(&g, p);
            E9Row {
                p,
                base_chordal: chordal::is_chordal(&g),
                lifted_chordal: chordal::is_chordal(&lifted.graph),
                base_greedy: greedy::is_greedy_k_colorable(&g, omega),
                lifted_greedy: greedy::is_greedy_k_colorable(&lifted.graph, omega + p),
            }
        })
        .collect()
}

/// Runs E9 and packages the report.
pub fn e9_report(base_seed: u64) -> ExperimentReport {
    let rows = e9_rows(base_seed);
    let preserved = rows
        .iter()
        .filter(|r| r.base_chordal == r.lifted_chordal && r.base_greedy == r.lifted_greedy)
        .count();
    ExperimentReport {
        id: ExperimentId::E9,
        title: ExperimentId::E9.title(),
        base_seed,
        rows: rows
            .iter()
            .map(|r| {
                Json::object([
                    ("p", Json::from(r.p)),
                    ("base_chordal", Json::from(r.base_chordal)),
                    ("lifted_chordal", Json::from(r.lifted_chordal)),
                    ("base_greedy", Json::from(r.base_greedy)),
                    ("lifted_greedy", Json::from(r.lifted_greedy)),
                ])
            })
            .collect(),
        summary: vec![("lifts_preserving_predicates".into(), Json::from(preserved))],
    }
}
