//! Minimal, dependency-free JSON values with deterministic serialization.
//!
//! The experiment reports must serialize identically across runs (the CLI's
//! output is diffed byte-for-byte in CI and by the perf-trajectory tooling),
//! so objects preserve insertion order — no hash-map iteration order leaks
//! into the output — and floats use Rust's shortest-roundtrip formatting.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (serialized without a fractional part).
    Int(i64),
    /// An unsigned integer (serialized without a fractional part).
    UInt(u64),
    /// A double-precision float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array of values.
    Array(Vec<Json>),
    /// An object; pairs keep insertion order for deterministic output.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(values.into_iter().collect())
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation and a trailing newline, the
    /// format the CLI writes to `--json` files.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    let text = format!("{x}");
                    out.push_str(&text);
                    // Keep the value a JSON number and round-trippable as a
                    // float: `1.0f64` formats as "1".
                    if !text.contains('.') && !text.contains('e') {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no NaN/Inf; encode as null like serde_json.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_sequence(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1)
                })
            }
            Json::Object(pairs) => {
                write_sequence(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                    let (key, value) = &pairs[i];
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1)
                })
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_sequence(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::UInt(u as u64)
    }
}

impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::UInt(u)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_is_deterministic_and_ordered() {
        let value = Json::object([
            ("b", Json::from(1usize)),
            ("a", Json::array([Json::from(true), Json::Null])),
            ("pct", Json::from(12.5)),
            ("whole", Json::from(3.0)),
        ]);
        assert_eq!(
            value.to_compact_string(),
            r#"{"b":1,"a":[true,null],"pct":12.5,"whole":3.0}"#
        );
        assert_eq!(value.to_compact_string(), value.clone().to_compact_string());
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::from("a\"b\\c\nd").to_compact_string(),
            r#""a\"b\\c\nd""#
        );
    }

    #[test]
    fn pretty_output_ends_with_newline() {
        let value = Json::object([("x", Json::from(1usize))]);
        let text = value.to_pretty_string();
        assert!(text.ends_with('\n'));
        assert!(text.contains("  \"x\": 1"));
    }
}
