//! Benchmark-only crate. All content lives in `benches/`.
