//! Reusable experiment library for the CGO'07 register-coalescing
//! reproduction.
//!
//! The E1–E15 experiments (instance generation, exact-vs-heuristic
//! comparison, gap and table computation) live here as ordinary library
//! functions returning structured [`report::ExperimentReport`]s, so that
//! three consumers share one implementation:
//!
//! * the `run-experiments` CLI binary, which runs any experiment
//!   deterministically and serializes the report as JSON;
//! * the Criterion bench (`benches/experiments.rs`), reduced to a thin
//!   timing wrapper around the instance builders exposed here;
//! * tests, which pin the paper's equivalences (e.g. E1's *min multiway
//!   cut = optimal aggressive uncoalesced count*) on fixed seeds.
//!
//! Everything is seed-deterministic: the same experiment id and base seed
//! produce byte-identical JSON on every run.

#![warn(missing_docs)]

pub mod corpus;
pub mod experiments;
pub mod par;
pub mod report;
pub mod verify;

pub use coalesce_stats::json;
pub use corpus::{run_corpus, CorpusConfig, CorpusSummary};
pub use experiments::{
    run_experiment, run_experiment_filtered, run_experiment_with_jobs, run_reports,
    run_reports_filtered, ExperimentId,
};
pub use json::Json;
pub use report::ExperimentReport;
