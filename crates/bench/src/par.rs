//! A tiny order-preserving parallel map over `std::thread` scoped workers.
//!
//! The experiment runner needs exactly one primitive: apply a function to
//! every item of a slice, possibly on several threads, and get the results
//! back *in input order* so that serialized reports are byte-identical to
//! a serial run.  Workers pull indices from a shared atomic counter
//! (work-stealing by index), write results into per-slot cells, and the
//! scope joins every worker before the results are collected.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item of `items` using up to `jobs` worker threads
/// and returns the results in input order.
///
/// `jobs <= 1` (or a slice with fewer than two items) degrades to a plain
/// serial map on the calling thread — no threads are spawned, so a
/// `jobs = 1` run is *literally* the serial code path, not merely an
/// equivalent one.  A panicking `f` propagates after all workers join.
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1usize, 2, 4, 13] {
            let doubled = par_map(&items, jobs, |&x| 2 * x);
            assert_eq!(doubled, (0..100).map(|x| 2 * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 8, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], 8, |&x| x + 1), vec![8]);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let items = [1u64, 2, 3];
        assert_eq!(par_map(&items, 64, |&x| x * x), vec![1, 4, 9]);
    }

    #[test]
    fn parallel_and_serial_results_are_identical() {
        // Work of deliberately uneven cost so threads interleave.
        let items: Vec<u64> = (0..40).collect();
        let cost = |&x: &u64| -> u64 {
            let mut acc = x;
            for i in 0..(x % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        };
        assert_eq!(par_map(&items, 1, cost), par_map(&items, 8, cost));
    }
}
