//! The structured result every experiment returns.

use crate::experiments::ExperimentId;
use crate::json::Json;

/// The outcome of one experiment run: a title, the rows of its table and a
/// summary of the headline quantities.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Which experiment produced the report.
    pub id: ExperimentId,
    /// One-line description of what the experiment checks.
    pub title: &'static str,
    /// The base seed every internal seed was offset by.
    pub base_seed: u64,
    /// One JSON object per table row.
    pub rows: Vec<Json>,
    /// Headline quantities (agreement counts, gap totals, ...).
    pub summary: Vec<(String, Json)>,
}

impl ExperimentReport {
    /// Serializes the full report as one JSON object.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("experiment", Json::from(self.id.as_str())),
            ("title", Json::from(self.title)),
            ("base_seed", Json::from(self.base_seed)),
            ("rows", Json::Array(self.rows.clone())),
            ("summary", Json::Object(self.summary.clone())),
        ])
    }

    /// Renders the report as the human-readable text the original
    /// `cargo bench` harness used to print.
    pub fn render_text(&self) -> String {
        let mut out = format!("[{}] {}\n", self.id.as_str().to_uppercase(), self.title);
        for row in &self.rows {
            out.push_str("  ");
            out.push_str(&row.to_compact_string());
            out.push('\n');
        }
        if !self.summary.is_empty() {
            out.push_str("  summary: ");
            out.push_str(&Json::Object(self.summary.clone()).to_compact_string());
            out.push('\n');
        }
        out
    }
}
