//! Boundary verification harness for the experiment pipelines.
//!
//! `run-experiments --verify <level>` audits the E13–E17 pipelines with
//! the independent checkers of `coalesce-verify`.  The harness never
//! instruments the experiment code: every input is **regenerated** from
//! the same seeds the experiments use (the pipelines are deterministic in
//! the base seed alone), each boundary artifact is rebuilt, and the
//! checker suite compares it against reference reimplementations.  The
//! experiment reports are therefore byte-identical with and without
//! `--verify` by construction — verification runs beside the measured
//! code, not inside it.
//!
//! What each experiment's audit covers:
//!
//! * **E13** — per workload cell: CFG/SSA well-formedness, liveness,
//!   interference, the Theorem 1 certificates (PEO + maximum-clique
//!   witness for ω = `Maxlive`), the tight-`k` spill, and a full
//!   allocation at the tight `k`;
//! * **E14** — per profile: the lowered (spilled, out-of-SSA) instance's
//!   CFG, liveness and Chaitin interference graph;
//! * **E15** — interval rows: certificate checks of the prepared-session
//!   ω against the bulk-built graph; CFG rows: the E13-style audit at
//!   thousands-of-blocks scale (plus the spill boundary under
//!   [`VerifyLevel::Paranoid`]);
//! * **E16** — a deterministic sample of module functions (every 10th
//!   under paranoid, every 25th at boundaries) through the SSA and spill
//!   audits;
//! * **E17** — every grid cell × spiller plus a sample of the module
//!   slice, checking reload placement and the post-spill `Maxlive`
//!   claims.
//!
//! Experiments without a pipeline boundary to audit (E1–E12) return no
//! violations.

use crate::experiments::{module, regalloc, scaling, spillers};
use crate::par::par_map;
use crate::ExperimentId;
use coalesce_alloc::pipeline::{run_allocator_with_artifacts, AllocatorKind};
use coalesce_alloc::CoalescingStrategy;
use coalesce_gen::cfg::{PressureLevel, ShapeProfile};
use coalesce_graph::chordal::{
    chordal_clique_number, chordal_max_clique, perfect_elimination_ordering,
};
use coalesce_ir::interference::{BuildOptions, InterferenceGraph, InterferenceKind};
use coalesce_ir::liveness::Liveness;
use coalesce_ir::spill::{self, SpillerKind};
use coalesce_ir::Function;
use coalesce_verify::{
    verify, AllocCtx, ChordalCtx, InterferenceCtx, SpillCtx, VerifyCtx, VerifyLevel, Violation,
};
use std::path::PathBuf;

/// Audits one experiment's pipeline boundaries by regenerating its inputs
/// from `base_seed` and running the `coalesce-verify` suite at `level`.
/// Returns every violation found (empty = clean).
pub fn verify_experiment(
    id: ExperimentId,
    base_seed: u64,
    level: VerifyLevel,
    jobs: usize,
) -> Vec<Violation> {
    if !level.is_on() {
        return Vec::new();
    }
    match id {
        ExperimentId::E13 => verify_e13(base_seed, level, jobs),
        ExperimentId::E14 => verify_e14(base_seed, level, jobs),
        ExperimentId::E15 => verify_e15(base_seed, level, jobs),
        ExperimentId::E16 => verify_e16(base_seed, level, jobs),
        ExperimentId::E17 => verify_e17(base_seed, level, jobs),
        ExperimentId::E18 => verify_e18(base_seed, jobs),
        _ => Vec::new(),
    }
}

/// E18: replay the chaos soak (which re-verifies every answer at the
/// `boundaries` level inside the service) and turn its two pinned
/// invariants — zero verification failures, zero worker deaths — into
/// violations.
fn verify_e18(base_seed: u64, jobs: usize) -> Vec<Violation> {
    let report = crate::experiments::soak::e18_report_with_jobs(base_seed, jobs);
    let summary_u64 = |key: &str| {
        report
            .summary
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_u64())
            .unwrap_or(0)
    };
    let mut violations = Vec::new();
    let failures = summary_u64("verify_failures");
    if failures > 0 {
        violations.push(Violation::new(
            coalesce_verify::rules::SERVE_RESPONSE_UNVERIFIED,
            "e18",
            format!("{failures} service response(s) failed boundary re-verification"),
        ));
    }
    let workers = summary_u64("workers");
    let clean = summary_u64("clean_worker_exits");
    if clean != workers {
        violations.push(Violation::new(
            coalesce_verify::rules::SERVE_WORKER_DIED,
            "e18",
            format!("{clean}/{workers} workers exited cleanly under fault injection"),
        ));
    }
    violations
}

/// The full SSA-input audit of one function: CFG, SSA, liveness,
/// intersection interference, and the Theorem 1 certificates.
fn audit_ssa_function(site: &str, f: &Function, level: VerifyLevel) -> Vec<Violation> {
    let live = Liveness::compute(f);
    let ig = InterferenceGraph::build_with(
        f,
        &live,
        BuildOptions {
            kind: InterferenceKind::Intersection,
            ..BuildOptions::default()
        },
    );
    let peo = perfect_elimination_ordering(&ig.graph);
    let omega = chordal_clique_number(&ig.graph);
    let clique = chordal_max_clique(&ig.graph);
    let mut cx = VerifyCtx::at(level, site);
    cx.function = Some(f);
    cx.liveness = Some(&live);
    cx.interference = Some(InterferenceCtx {
        ig: &ig,
        kind: InterferenceKind::Intersection,
    });
    cx.chordal = Some(ChordalCtx {
        graph: &ig.graph,
        peo: peo.as_deref(),
        claimed_omega: omega,
        clique: clique.as_deref(),
    });
    verify(&cx)
}

/// The spill-boundary audit: spill (a clone of) `f` to `k` with
/// `spill_to_pressure` and check victim deadness, reload placement and
/// the recomputed `Maxlive` against the pipeline's own claim.
fn audit_spill(site: &str, f: &Function, k: usize, level: VerifyLevel) -> Vec<Violation> {
    let mut spilled = f.clone();
    let result = spill::spill_to_pressure(&mut spilled, k);
    let live_after = Liveness::compute(&spilled);
    let claimed = live_after.maxlive_precise(&spilled);
    let mut cx = VerifyCtx::at(level, site);
    cx.function = Some(&spilled);
    cx.liveness = Some(&live_after);
    cx.spill = Some(SpillCtx {
        victims: &result.spilled,
        claimed_maxlive: claimed,
        victims_die: true,
    });
    verify(&cx)
}

/// The allocation-boundary audit: run the SSA-based allocator end to end
/// and check the final (out-of-SSA) function and assignment.
fn audit_alloc(site: &str, f: &Function, k: usize, level: VerifyLevel) -> Vec<Violation> {
    let (_, artifacts) =
        run_allocator_with_artifacts(f, k, AllocatorKind::SsaBased(CoalescingStrategy::Briggs));
    let mut cx = VerifyCtx::at(level, site);
    cx.function = Some(&artifacts.function);
    cx.assume_ssa = false; // the lowered program is out of SSA
    cx.allocation = Some(AllocCtx {
        assignment: &artifacts.assignment,
        k,
    });
    verify(&cx)
}

/// The E16 tight-`k` convention shared by E13's second row and E17.
fn tight_k(maxlive: usize) -> usize {
    (maxlive / 2).max(3)
}

fn verify_e13(base_seed: u64, level: VerifyLevel, jobs: usize) -> Vec<Violation> {
    let cells: Vec<(ShapeProfile, PressureLevel)> = ShapeProfile::ALL
        .into_iter()
        .flat_map(|p| PressureLevel::ALL.into_iter().map(move |l| (p, l)))
        .collect();
    par_map(&cells, jobs, |&(profile, pressure)| {
        let site = format!("e13/{}/{}", profile.name(), pressure.name());
        let f = regalloc::workload_program(base_seed, profile, pressure);
        let mut out = audit_ssa_function(&site, &f, level);
        let maxlive = Liveness::compute(&f).maxlive_precise(&f);
        let k = tight_k(maxlive);
        if k < maxlive {
            out.extend(audit_spill(&format!("{site}/spill"), &f, k, level));
        }
        out.extend(audit_alloc(
            &format!("{site}/alloc"),
            &f,
            k.min(maxlive.max(1)),
            level,
        ));
        out
    })
    .into_iter()
    .flatten()
    .collect()
}

fn verify_e14(base_seed: u64, level: VerifyLevel, jobs: usize) -> Vec<Violation> {
    let profiles: Vec<ShapeProfile> = ShapeProfile::ALL.to_vec();
    par_map(&profiles, jobs, |&profile| {
        let site = format!("e14/{}", profile.name());
        let k = 6;
        // Recreate the lowering exactly: generate, spill to k, destruct.
        let mut f = regalloc::e14_program(base_seed, profile);
        spill::spill_to_pressure(&mut f, k);
        coalesce_ir::out_of_ssa::destruct_ssa(&mut f);
        let live = Liveness::compute(&f);
        let ig = InterferenceGraph::build(&f, &live);
        let mut cx = VerifyCtx::at(level, &site);
        cx.function = Some(&f);
        cx.assume_ssa = false; // post-destruction program
        cx.liveness = Some(&live);
        cx.interference = Some(InterferenceCtx {
            ig: &ig,
            kind: InterferenceKind::Chaitin,
        });
        verify(&cx)
    })
    .into_iter()
    .flatten()
    .collect()
}

fn verify_e15(base_seed: u64, level: VerifyLevel, jobs: usize) -> Vec<Violation> {
    let mut out = Vec::new();
    // Interval rows: re-derive the certificates on the bulk-built graph
    // and check them against a reference adjacency copy.
    let sizes: Vec<usize> = scaling::E15_INTERVAL_SIZES.to_vec();
    let interval: Vec<Vec<Violation>> = par_map(&sizes, jobs, |&n| {
        let site = format!("e15/interval/{n}");
        let graph = scaling::e15_interval_graph(base_seed, n);
        let peo = perfect_elimination_ordering(&graph);
        let omega = chordal_clique_number(&graph);
        let clique = chordal_max_clique(&graph);
        let mut cx = VerifyCtx::at(level, &site);
        cx.chordal = Some(ChordalCtx {
            graph: &graph,
            peo: peo.as_deref(),
            claimed_omega: omega,
            clique: clique.as_deref(),
        });
        verify(&cx)
    });
    out.extend(interval.into_iter().flatten());

    // CFG rows: the full SSA audit at thousands-of-blocks scale (the
    // checkers size-gate their expensive passes at the boundaries level).
    let profiles: Vec<ShapeProfile> = scaling::E15_CFG_PROFILES.to_vec();
    let cfg: Vec<Vec<Violation>> = par_map(&profiles, jobs, |&profile| {
        let site = format!("e15/cfg/{}", profile.name());
        let f = scaling::e15_cfg_program(base_seed, profile);
        let mut row = audit_ssa_function(&site, &f, level);
        if level.is_paranoid() {
            let maxlive = Liveness::compute(&f).maxlive_precise(&f);
            row.extend(audit_spill(
                &format!("{site}/spill"),
                &f,
                tight_k(maxlive),
                level,
            ));
        }
        row
    });
    out.extend(cfg.into_iter().flatten());
    out
}

fn verify_e16(base_seed: u64, level: VerifyLevel, jobs: usize) -> Vec<Violation> {
    let stride = if level.is_paranoid() { 10 } else { 25 };
    let specs: Vec<(usize, coalesce_gen::module::FunctionSpec)> = module::e16_specs(base_seed)
        .into_iter()
        .enumerate()
        .filter(|(i, _)| i % stride == 0)
        .collect();
    par_map(&specs, jobs, |(i, spec)| {
        let site = format!("e16/fn{i}");
        let f = spec.generate();
        let mut out = audit_ssa_function(&site, &f, level);
        let maxlive = Liveness::compute(&f).maxlive_precise(&f);
        out.extend(audit_spill(
            &format!("{site}/spill"),
            &f,
            tight_k(maxlive),
            level,
        ));
        out
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Audits one spiller's rewrite of `f`, mirroring the E17 cell semantics.
fn audit_spiller_cell(
    site: &str,
    f: &Function,
    sp: SpillerKind,
    level: VerifyLevel,
) -> Vec<Violation> {
    let maxlive = Liveness::compute(f).maxlive_precise(f);
    let k = tight_k(maxlive);
    let mut spilled = f.clone();
    let result = sp.run(&mut spilled, k);
    let live_after = Liveness::compute(&spilled);
    let claimed = live_after.maxlive_precise(&spilled);
    let mut cx = VerifyCtx::at(level, site);
    cx.function = Some(&spilled);
    cx.liveness = Some(&live_after);
    // The Belady spiller splits live ranges at block boundaries: victims
    // may legitimately stay resident across some edges, and the rewrite
    // does not preserve strict SSA, so only the rewrites built on
    // `spill_everywhere` get the stronger checks.
    let everywhere_rewrite = !matches!(sp, SpillerKind::Belady);
    cx.assume_ssa = everywhere_rewrite;
    cx.spill = Some(SpillCtx {
        victims: &result.spilled,
        claimed_maxlive: claimed,
        victims_die: everywhere_rewrite,
    });
    verify(&cx)
}

fn verify_e17(base_seed: u64, level: VerifyLevel, jobs: usize) -> Vec<Violation> {
    // The grid: every (profile, pressure) cell plus the windowed one,
    // raced through every spiller — exactly the experiment's inputs.
    let mut cells: Vec<(String, Option<(ShapeProfile, PressureLevel)>)> = ShapeProfile::ALL
        .into_iter()
        .flat_map(|p| {
            PressureLevel::ALL
                .into_iter()
                .map(move |l| (format!("e17/{}/{}", p.name(), l.name()), Some((p, l))))
        })
        .collect();
    cells.push(("e17/windowed".to_string(), None));
    let grid: Vec<Vec<Violation>> = par_map(&cells, jobs, |(site, cell)| {
        let f = match cell {
            Some((p, l)) => regalloc::workload_program(base_seed, *p, *l),
            None => spillers::windowed_program(base_seed),
        };
        SpillerKind::ALL
            .into_iter()
            .flat_map(|sp| audit_spiller_cell(&format!("{site}/{}", sp.name()), &f, sp, level))
            .collect()
    });
    let mut out: Vec<Violation> = grid.into_iter().flatten().collect();

    // Module slice: a deterministic sample of the raced prefix.
    let stride = if level.is_paranoid() { 15 } else { 50 };
    let specs: Vec<(usize, coalesce_gen::module::FunctionSpec)> = module::e16_specs(base_seed)
        .into_iter()
        .take(spillers::E17_MODULE_FUNCTIONS)
        .enumerate()
        .filter(|(i, _)| i % stride == 0)
        .collect();
    let slice: Vec<Vec<Violation>> = par_map(&specs, jobs, |(i, spec)| {
        let f = spec.generate();
        SpillerKind::ALL
            .into_iter()
            .flat_map(|sp| {
                audit_spiller_cell(&format!("e17/module/fn{i}/{}", sp.name()), &f, sp, level)
            })
            .collect()
    });
    out.extend(slice.into_iter().flatten());
    out
}

/// Re-parses each corpus instance file independently of the streamed
/// pipeline and audits the chordality certificates (PEO witness, ω clique
/// witness) that the corpus rows claim.  Returns per-file violations for
/// files that yield any.
pub fn verify_corpus(paths: &[PathBuf], level: VerifyLevel) -> Vec<(PathBuf, Vec<Violation>)> {
    if !level.is_on() {
        return Vec::new();
    }
    paths
        .iter()
        .filter_map(|path| {
            let graph = parse_instance_graph(path)?;
            let site = format!("corpus/{}", path.display());
            let peo = perfect_elimination_ordering(&graph);
            let omega = chordal_clique_number(&graph);
            if peo.is_none() && omega.is_none() {
                return None; // non-chordal instance: nothing certified
            }
            let clique = chordal_max_clique(&graph);
            let mut cx = VerifyCtx::at(level, &site);
            cx.chordal = Some(ChordalCtx {
                graph: &graph,
                peo: peo.as_deref(),
                claimed_omega: omega,
                clique: clique.as_deref(),
            });
            let violations = verify(&cx);
            (!violations.is_empty()).then(|| (path.clone(), violations))
        })
        .collect()
}

/// Parses one instance file the same way the corpus runner does, without
/// touching its row pipeline.
fn parse_instance_graph(path: &std::path::Path) -> Option<coalesce_graph::Graph> {
    let text = std::fs::read_to_string(path).ok()?;
    let dimacs = matches!(
        path.extension().and_then(|e| e.to_str()),
        Some("col" | "dimacs")
    );
    if dimacs {
        coalesce_graph::format::from_dimacs(&text).ok()
    } else {
        coalesce_graph::format::from_challenge(&text)
            .ok()
            .map(|file| file.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_level_skips_all_work() {
        assert!(verify_experiment(ExperimentId::E13, 0, VerifyLevel::Off, 1).is_empty());
        assert!(verify_corpus(&[], VerifyLevel::Off).is_empty());
    }

    #[test]
    fn non_pipeline_experiments_have_no_boundaries() {
        assert!(verify_experiment(ExperimentId::E1, 0, VerifyLevel::Paranoid, 1).is_empty());
    }

    #[test]
    fn e13_single_cell_audit_is_clean() {
        let f = regalloc::workload_program(42, ShapeProfile::IntBranchy, PressureLevel::Low);
        let violations = audit_ssa_function("test/e13", &f, VerifyLevel::Paranoid);
        assert!(violations.is_empty(), "{violations:#?}");
    }
}
