//! Affinity graphs and coalescing maps.
//!
//! An [`AffinityGraph`] is the object every coalescing problem of the paper
//! is stated on: an interference graph `G = (V, E)` together with a set of
//! weighted *affinities* `A` (the register-to-register moves).  A
//! [`Coalescing`] is the paper's function `f`: a partition of the vertices
//! into color classes such that no class contains an interference, tracked
//! incrementally as vertices are merged.

use coalesce_graph::{DisjointSets, Graph, VertexId};
use std::collections::BTreeSet;

/// A weighted affinity between two vertices of an interference graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Affinity {
    /// One endpoint.
    pub a: VertexId,
    /// The other endpoint.
    pub b: VertexId,
    /// Benefit of coalescing the two endpoints (e.g. dynamic execution
    /// count of the move).
    pub weight: u64,
}

impl Affinity {
    /// Creates an affinity with weight 1.
    pub fn new(a: VertexId, b: VertexId) -> Self {
        Affinity { a, b, weight: 1 }
    }

    /// Creates a weighted affinity.
    pub fn weighted(a: VertexId, b: VertexId, weight: u64) -> Self {
        Affinity { a, b, weight }
    }
}

/// An interference graph together with its affinities.
#[derive(Debug, Clone)]
pub struct AffinityGraph {
    /// The interference graph.
    pub graph: Graph,
    /// The affinities (coalescing candidates).
    pub affinities: Vec<Affinity>,
}

impl AffinityGraph {
    /// Creates an affinity graph from its two components.
    ///
    /// # Panics
    ///
    /// Panics if an affinity joins two interfering vertices — such a move
    /// can never be coalesced and the front end should not emit it as a
    /// candidate.  (The paper's constructions never produce one either.)
    pub fn new(graph: Graph, affinities: Vec<Affinity>) -> Self {
        for aff in &affinities {
            assert!(
                !graph.has_edge(aff.a, aff.b),
                "affinity between interfering vertices {} and {}",
                aff.a,
                aff.b
            );
        }
        AffinityGraph { graph, affinities }
    }

    /// Creates an affinity graph from an IR interference graph.
    pub fn from_interference(ig: &coalesce_ir::InterferenceGraph) -> Self {
        let affinities = ig
            .affinity_edges()
            .into_iter()
            .filter(|(a, b, _)| !ig.graph.has_edge(*a, *b))
            .map(|(a, b, weight)| Affinity { a, b, weight })
            .collect();
        AffinityGraph {
            graph: ig.graph.clone(),
            affinities,
        }
    }

    /// Total weight of all affinities.
    pub fn total_weight(&self) -> u64 {
        self.affinities.iter().map(|a| a.weight).sum()
    }

    /// Number of affinities.
    pub fn num_affinities(&self) -> usize {
        self.affinities.len()
    }

    /// Affinities sorted by decreasing weight (the priority order used by
    /// most heuristics: expensive moves first).
    pub fn affinities_by_weight(&self) -> Vec<Affinity> {
        let mut sorted = self.affinities.clone();
        sorted.sort_by(|x, y| {
            y.weight
                .cmp(&x.weight)
                .then(x.a.cmp(&y.a))
                .then(x.b.cmp(&y.b))
        });
        sorted
    }
}

/// The paper's coalescing function `f`, tracked as a partition of the
/// original vertices plus the contracted interference graph.
#[derive(Debug, Clone)]
pub struct Coalescing {
    /// The contracted graph: one live vertex per class, retaining the
    /// identifier of the class representative.
    pub merged_graph: Graph,
    classes: DisjointSets,
}

impl Coalescing {
    /// The identity coalescing (nothing merged yet).
    pub fn identity(graph: &Graph) -> Self {
        Coalescing {
            merged_graph: graph.clone(),
            classes: DisjointSets::new(graph.capacity()),
        }
    }

    /// Representative of the class of `v` (the surviving graph vertex).
    pub fn class_of(&mut self, v: VertexId) -> VertexId {
        VertexId::new(self.classes.find(v.index()))
    }

    /// Representative of the class of `v` without mutating internal state.
    pub fn class_of_immutable(&self, v: VertexId) -> VertexId {
        VertexId::new(self.classes.find_immutable(v.index()))
    }

    /// Returns `true` if `a` and `b` are in the same class.
    pub fn same_class(&mut self, a: VertexId, b: VertexId) -> bool {
        self.class_of(a) == self.class_of(b)
    }

    /// Returns `true` if coalescing `a` and `b` is currently possible: they
    /// are in different classes and their classes do not interfere.
    pub fn can_merge(&mut self, a: VertexId, b: VertexId) -> bool {
        let (ra, rb) = (self.class_of(a), self.class_of(b));
        ra != rb && !self.merged_graph.has_edge(ra, rb)
    }

    /// Coalesces `a` and `b` (merges their classes).  Returns the surviving
    /// representative, or `None` if the merge is impossible (same class is
    /// reported as `Some` of the common representative).
    pub fn merge(&mut self, a: VertexId, b: VertexId) -> Option<VertexId> {
        let (ra, rb) = (self.class_of(a), self.class_of(b));
        if ra == rb {
            return Some(ra);
        }
        if self.merged_graph.has_edge(ra, rb) {
            return None;
        }
        self.merged_graph.merge(ra, rb);
        self.classes.union_into(ra.index(), rb.index());
        // The one point every strategy funnels its accepted merges through.
        coalesce_stats::counter!("coalesce.merges_accepted");
        Some(ra)
    }

    /// Returns `true` if the affinity is coalesced (both endpoints in the
    /// same class).
    pub fn is_coalesced(&mut self, affinity: &Affinity) -> bool {
        self.same_class(affinity.a, affinity.b)
    }

    /// The classes of the partition as sorted vertex sets, one per class
    /// (singleton classes included), restricted to vertices that are live in
    /// the *original* graph capacity.
    pub fn classes(&mut self) -> Vec<BTreeSet<VertexId>> {
        self.classes
            .groups()
            .into_iter()
            .map(|g| g.into_iter().map(VertexId::new).collect())
            .collect()
    }

    /// Statistics of this coalescing with respect to a set of affinities.
    pub fn stats(&mut self, affinities: &[Affinity]) -> CoalescingStats {
        let mut stats = CoalescingStats::default();
        for aff in affinities {
            stats.total += 1;
            stats.total_weight += aff.weight;
            if self.same_class(aff.a, aff.b) {
                stats.coalesced += 1;
                stats.coalesced_weight += aff.weight;
            }
        }
        stats
    }
}

/// Summary of how many affinities (and how much weight) a coalescing
/// removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoalescingStats {
    /// Total number of affinities considered.
    pub total: usize,
    /// Number of coalesced affinities.
    pub coalesced: usize,
    /// Total affinity weight.
    pub total_weight: u64,
    /// Coalesced affinity weight.
    pub coalesced_weight: u64,
}

impl CoalescingStats {
    /// Number of affinities left uncoalesced.
    pub fn uncoalesced(&self) -> usize {
        self.total - self.coalesced
    }

    /// Weight of the affinities left uncoalesced.
    pub fn uncoalesced_weight(&self) -> u64 {
        self.total_weight - self.coalesced_weight
    }

    /// Fraction of the affinity weight that was coalesced (1.0 when there
    /// are no affinities).
    pub fn coalesced_weight_ratio(&self) -> f64 {
        if self.total_weight == 0 {
            1.0
        } else {
            self.coalesced_weight as f64 / self.total_weight as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn identity_coalescing_has_everything_uncoalesced() {
        let g = Graph::with_edges(3, [(v(0), v(1))]);
        let affs = vec![Affinity::new(v(1), v(2)), Affinity::new(v(0), v(2))];
        let ag = AffinityGraph::new(g, affs.clone());
        let mut c = Coalescing::identity(&ag.graph);
        let stats = c.stats(&affs);
        assert_eq!(stats.coalesced, 0);
        assert_eq!(stats.uncoalesced(), 2);
    }

    #[test]
    #[should_panic(expected = "affinity between interfering")]
    fn affinity_on_interference_is_rejected() {
        let g = Graph::with_edges(2, [(v(0), v(1))]);
        AffinityGraph::new(g, vec![Affinity::new(v(0), v(1))]);
    }

    #[test]
    fn merge_updates_graph_and_classes() {
        // 0-1 interfere; 2 is affine to both.
        let g = Graph::with_edges(3, [(v(0), v(1))]);
        let mut c = Coalescing::identity(&g);
        assert!(c.can_merge(v(0), v(2)));
        let rep = c.merge(v(0), v(2)).unwrap();
        assert_eq!(rep, v(0));
        assert!(c.same_class(v(0), v(2)));
        // Now the class {0,2} interferes with 1 through 0.
        assert!(!c.can_merge(v(2), v(1)));
        assert_eq!(c.merge(v(2), v(1)), None);
    }

    #[test]
    fn merge_is_idempotent_on_same_class() {
        let g = Graph::new(3);
        let mut c = Coalescing::identity(&g);
        c.merge(v(0), v(1)).unwrap();
        assert_eq!(c.merge(v(1), v(0)), Some(v(0)));
        assert_eq!(c.merged_graph.num_vertices(), 2);
    }

    #[test]
    fn stats_account_for_weights() {
        let g = Graph::new(4);
        let affs = vec![
            Affinity::weighted(v(0), v(1), 10),
            Affinity::weighted(v(2), v(3), 5),
        ];
        let mut c = Coalescing::identity(&g);
        c.merge(v(0), v(1)).unwrap();
        let s = c.stats(&affs);
        assert_eq!(s.coalesced, 1);
        assert_eq!(s.coalesced_weight, 10);
        assert_eq!(s.uncoalesced_weight(), 5);
        assert!((s.coalesced_weight_ratio() - 10.0 / 15.0).abs() < 1e-9);
    }

    #[test]
    fn transitive_interference_blocks_merges() {
        // Coalescing 0-2 and then 2-4 merges {0,2,4}; if 4 interferes with
        // 1 and 1 interferes with 0, nothing blocks, but a direct edge
        // between any member of the class and 3 blocks 3 from joining.
        let g = Graph::with_edges(5, [(v(0), v(3))]);
        let mut c = Coalescing::identity(&g);
        c.merge(v(0), v(2)).unwrap();
        c.merge(v(2), v(4)).unwrap();
        assert!(!c.can_merge(v(4), v(3)));
    }

    #[test]
    fn affinities_by_weight_is_sorted_descending() {
        let g = Graph::new(4);
        let ag = AffinityGraph::new(
            g,
            vec![
                Affinity::weighted(v(0), v(1), 1),
                Affinity::weighted(v(1), v(2), 100),
                Affinity::weighted(v(2), v(3), 10),
            ],
        );
        let sorted = ag.affinities_by_weight();
        let weights: Vec<u64> = sorted.iter().map(|a| a.weight).collect();
        assert_eq!(weights, vec![100, 10, 1]);
    }

    #[test]
    fn from_interference_drops_interfering_affinities() {
        use coalesce_ir::function::FunctionBuilder;
        // y = x but x stays live: under the Intersection kind they interfere
        // and the affinity must be dropped.
        let mut b = FunctionBuilder::new("f");
        let entry = b.entry_block();
        let x = b.def(entry, "x");
        let y = b.copy(entry, "y", x);
        b.ret(entry, &[x, y]);
        let f = b.finish();
        let live = coalesce_ir::Liveness::compute(&f);
        let ig = coalesce_ir::interference::InterferenceGraph::build_with(
            &f,
            &live,
            coalesce_ir::interference::BuildOptions {
                kind: coalesce_ir::interference::InterferenceKind::Intersection,
                ..Default::default()
            },
        );
        let ag = AffinityGraph::from_interference(&ig);
        assert!(ag.affinities.is_empty());
    }
}
