//! Aggressive coalescing (§3 of the paper).
//!
//! Aggressive coalescing removes as many moves as possible regardless of
//! the colorability of the resulting graph: only interferences can prevent
//! a merge.  The decision problem is NP-complete (Theorem 2, by reduction
//! from multiway cut), so this module provides:
//!
//! * [`aggressive_heuristic`] — the classical greedy heuristic: consider the
//!   affinities by decreasing weight and merge whenever the two classes do
//!   not (yet) interfere;
//! * [`aggressive_exact`] — an exponential branch-and-bound that minimises
//!   the **weight** of the uncoalesced affinities, used on small instances
//!   to validate the Theorem 2 reduction and to measure the heuristic's
//!   optimality gap.

use crate::affinity::{Affinity, AffinityGraph, Coalescing, CoalescingStats};

/// Result of an aggressive coalescing run.
#[derive(Debug, Clone)]
pub struct AggressiveResult {
    /// The computed coalescing.
    pub coalescing: Coalescing,
    /// Summary statistics against the instance's affinities.
    pub stats: CoalescingStats,
}

/// Greedy aggressive coalescing: process affinities by decreasing weight and
/// merge whenever the current classes do not interfere.
pub fn aggressive_heuristic(ag: &AffinityGraph) -> AggressiveResult {
    let mut coalescing = Coalescing::identity(&ag.graph);
    for aff in ag.affinities_by_weight() {
        if coalescing.can_merge(aff.a, aff.b) {
            coalescing.merge(aff.a, aff.b);
        }
    }
    let stats = coalescing.stats(&ag.affinities);
    AggressiveResult { coalescing, stats }
}

/// Exact aggressive coalescing by branch and bound over the affinity list:
/// minimises the total **weight** of uncoalesced affinities (with unit
/// weights this is the number of uncoalesced moves, the paper's `K`).
///
/// Exponential in the number of affinities; intended for instances with at
/// most ~25 affinities.
pub fn aggressive_exact(ag: &AffinityGraph) -> AggressiveResult {
    let affinities = ag.affinities_by_weight();
    let mut best: Option<(u64, Coalescing)> = None;
    let initial = Coalescing::identity(&ag.graph);

    fn search(
        affinities: &[Affinity],
        index: usize,
        current: &Coalescing,
        lost: u64,
        best: &mut Option<(u64, Coalescing)>,
    ) {
        if let Some((best_lost, _)) = best {
            if lost >= *best_lost {
                return;
            }
        }
        if index == affinities.len() {
            let better = best.as_ref().is_none_or(|(b, _)| lost < *b);
            if better {
                *best = Some((lost, current.clone()));
            }
            return;
        }
        let aff = affinities[index];
        let mut cur = current.clone();
        // Branch 1: coalesce this affinity if possible (no extra cost).
        if cur.can_merge(aff.a, aff.b) {
            cur.merge(aff.a, aff.b);
            search(affinities, index + 1, &cur, lost, best);
        } else if cur.same_class(aff.a, aff.b) {
            // Already coalesced by transitivity: no cost, no choice.
            search(affinities, index + 1, current, lost, best);
            return;
        }
        // Branch 2: give this affinity up.
        search(affinities, index + 1, current, lost + aff.weight, best);
    }

    search(&affinities, 0, &initial, 0, &mut best);
    let (_, mut coalescing) = best.expect("search always yields a solution");
    let stats = coalescing.stats(&ag.affinities);
    AggressiveResult { coalescing, stats }
}

/// Decision form of the aggressive coalescing problem (the paper's
/// `AGGRESSIVE COALESCING`): can all but at most `max_uncoalesced`
/// affinities be coalesced?
pub fn aggressive_decision(ag: &AffinityGraph, max_uncoalesced: usize) -> bool {
    // Use unit weights for the decision version.
    let unit = AffinityGraph {
        graph: ag.graph.clone(),
        affinities: ag
            .affinities
            .iter()
            .map(|a| Affinity::new(a.a, a.b))
            .collect(),
    };
    let exact = aggressive_exact(&unit);
    exact.stats.uncoalesced() <= max_uncoalesced
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalesce_graph::{Graph, VertexId};

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn chain_of_affinities_fully_coalesces_without_interference() {
        let g = Graph::new(4);
        let ag = AffinityGraph::new(
            g,
            vec![
                Affinity::new(v(0), v(1)),
                Affinity::new(v(1), v(2)),
                Affinity::new(v(2), v(3)),
            ],
        );
        let res = aggressive_heuristic(&ag);
        assert_eq!(res.stats.uncoalesced(), 0);
        assert_eq!(res.coalescing.merged_graph.num_vertices(), 1);
    }

    #[test]
    fn interference_forces_some_affinity_to_fail() {
        // Triangle of affinities around an interference 0-2: at least one of
        // the affinities (0,1), (1,2) must be given up.
        let g = Graph::with_edges(3, [(v(0), v(2))]);
        let ag = AffinityGraph::new(
            g,
            vec![Affinity::new(v(0), v(1)), Affinity::new(v(1), v(2))],
        );
        let exact = aggressive_exact(&ag);
        assert_eq!(exact.stats.uncoalesced(), 1);
        let heur = aggressive_heuristic(&ag);
        assert!(heur.stats.uncoalesced() >= 1);
    }

    #[test]
    fn exact_beats_or_matches_greedy_on_weighted_instance() {
        // Star: center 2 is affine to 0, 1, 3; 0-1 interfere, so the center
        // can join only one of {0,1}; weights make the greedy order matter.
        let g = Graph::with_edges(4, [(v(0), v(1))]);
        let ag = AffinityGraph::new(
            g,
            vec![
                Affinity::weighted(v(2), v(0), 1),
                Affinity::weighted(v(2), v(1), 2),
                Affinity::weighted(v(2), v(3), 4),
            ],
        );
        let exact = aggressive_exact(&ag);
        let heur = aggressive_heuristic(&ag);
        assert!(exact.stats.coalesced_weight >= heur.stats.coalesced_weight);
        assert_eq!(exact.stats.uncoalesced_weight(), 1);
    }

    #[test]
    fn greedy_can_be_suboptimal_but_exact_is_not() {
        // 0 -aff- 1 -aff- 2 with weights 5 and 5, and 0 -aff- 2 impossible
        // because 0-2 interfere: greedy coalesces both (0,1) then (1,2)?  The
        // second merge is blocked, so exactly one survives; exact agrees
        // because the interference is unavoidable.
        let g = Graph::with_edges(3, [(v(0), v(2))]);
        let ag = AffinityGraph::new(
            g,
            vec![
                Affinity::weighted(v(0), v(1), 5),
                Affinity::weighted(v(1), v(2), 5),
            ],
        );
        let exact = aggressive_exact(&ag);
        assert_eq!(exact.stats.coalesced_weight, 5);
    }

    #[test]
    fn decision_problem_matches_exact_optimum() {
        let g = Graph::with_edges(3, [(v(0), v(2))]);
        let ag = AffinityGraph::new(
            g,
            vec![Affinity::new(v(0), v(1)), Affinity::new(v(1), v(2))],
        );
        assert!(!aggressive_decision(&ag, 0));
        assert!(aggressive_decision(&ag, 1));
        assert!(aggressive_decision(&ag, 2));
    }

    #[test]
    fn no_affinities_is_trivially_optimal() {
        let g = Graph::with_edges(2, [(v(0), v(1))]);
        let ag = AffinityGraph::new(g, vec![]);
        let res = aggressive_exact(&ag);
        assert_eq!(res.stats.total, 0);
        assert_eq!(res.stats.uncoalesced(), 0);
    }
}
