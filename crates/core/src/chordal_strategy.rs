//! Conservative coalescing guided by the chordal-graph algorithm of
//! Theorem 5.
//!
//! §4 ends with the observation that, on a chordal interference graph, the
//! polynomial incremental query of Theorem 5 can *decide* whether a given
//! affinity is coalescible — but that actually coalescing it may leave the
//! class of chordal graphs, and that the witness merges used to stay
//! chordal "may prevent to coalesce more important affinities afterwards".
//! This module turns that discussion into an executable strategy with the
//! two repair policies the paper contrasts:
//!
//! * [`ChordalMode::MergeWitnessClass`] — after a positive query, merge the
//!   *whole witness color class* returned by the algorithm (the proof's own
//!   repair): typically no or few interference edges need to be added, but
//!   the artificial merges may block later affinities;
//! * [`ChordalMode::FillIn`] — merge only the two endpoints of the
//!   affinity: no artificial merges, but chordality usually has to be
//!   restored by fill edges, which may raise the clique number and block
//!   later affinities instead.
//!
//! In both modes the working graph is re-triangulated with a **minimal
//! fill-in** ([`coalesce_graph::fillin::mcs_m`]) whenever a merge leaves the
//! chordal class, so the Theorem 5 oracle stays applicable; the counters in
//! [`ChordalStrategyResult`] expose how often each repair was needed.
//! Affinities are processed by decreasing weight, the priority order used
//! by every other heuristic in this crate, so the two policies (and the
//! Briggs/George/brute-force rules of [`crate::conservative`]) can be
//! compared head-to-head on the same instances — that comparison is the
//! E11 ablation of the benchmark harness.

use crate::affinity::{AffinityGraph, Coalescing, CoalescingStats};
use crate::incremental::{IncrementalAnswer, PreparedChordal};
use coalesce_graph::{coloring, fillin, VertexId};
use std::collections::BTreeSet;

/// How much of the witness the strategy merges after a positive query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChordalMode {
    /// Merge the entire witness color class returned by the Theorem 5
    /// algorithm (the proof's repair).
    MergeWitnessClass,
    /// Merge only the affinity endpoints and re-triangulate with a minimal
    /// fill-in when needed.
    FillIn,
}

/// Result of [`chordal_conservative_coalesce`].
#[derive(Debug, Clone)]
pub struct ChordalStrategyResult {
    /// The computed coalescing.
    pub coalescing: Coalescing,
    /// Statistics against the instance's affinities.
    pub stats: CoalescingStats,
    /// Interference (fill) edges added to keep the working graph chordal.
    pub fill_edges_added: usize,
    /// Vertices merged beyond the affinity endpoints (always 0 in
    /// [`ChordalMode::FillIn`]).
    pub artificial_merges: usize,
    /// Affinities that were skipped because the working graph had left the
    /// theorem's hypotheses (clique number above `k` after fill-in).
    pub skipped_out_of_class: usize,
}

/// Conservative coalescing of a **chordal**, `k`-colorable instance, one
/// affinity at a time, using the polynomial Theorem 5 query as the oracle.
///
/// Returns `None` when the input graph is not chordal or not
/// `k`-colorable (`ω(G) > k`) — the strategy is specific to the chordal
/// setting of two-phase allocators; use [`crate::conservative`] otherwise.
///
/// The original graph contracted by the returned coalescing
/// (`coalescing.merged_graph`) is always `k`-colorable: every accepted
/// merge is certified by a `k`-coloring of the working graph, and the
/// working graph only ever *gains* interference edges relative to the
/// merged graph.
pub fn chordal_conservative_coalesce(
    ag: &AffinityGraph,
    k: usize,
    mode: ChordalMode,
) -> Option<ChordalStrategyResult> {
    // One prepared session per graph *state*: the clique tree is built once
    // up front and rebuilt only after an accepted merge (plus fill-in)
    // actually changes the working graph — rejected affinities, the common
    // case, reuse the session instead of paying a full MCS sweep each.
    let session = PreparedChordal::prepare(&ag.graph)?;
    if session.omega() > k {
        return None;
    }
    let mut session = Some(session);

    let mut coalescing = Coalescing::identity(&ag.graph);
    // The working graph carries the fill edges on top of the merged graph,
    // so it is maintained separately from `coalescing.merged_graph`.
    let mut work = ag.graph.clone();
    let mut fill_edges_added = 0usize;
    let mut artificial_merges = 0usize;
    let mut skipped_out_of_class = 0usize;

    for aff in ag.affinities_by_weight() {
        let (ra, rb) = (coalescing.class_of(aff.a), coalescing.class_of(aff.b));
        if ra == rb {
            continue;
        }
        if work.has_edge(ra, rb) {
            // Interference in the working graph (possibly a fill edge):
            // cannot coalesce under the current invariant.
            continue;
        }
        let answer = match session.as_ref().and_then(|s| s.query(&work, k, ra, rb)) {
            Some(answer) => answer,
            None => {
                // The working graph left the theorem's hypotheses (it can
                // only happen through fill-in raising ω beyond k).
                skipped_out_of_class += 1;
                continue;
            }
        };
        let IncrementalAnswer::Coalescible(witness) = answer else {
            continue;
        };

        match mode {
            ChordalMode::MergeWitnessClass => {
                // Merge the whole witness class both in the coalescing and
                // in the working graph.
                let mut members: Vec<VertexId> = witness.into_iter().collect();
                members.sort();
                let target = ra;
                for &m in &members {
                    if m == target || coalescing.class_of(m) == target {
                        continue;
                    }
                    work.merge(target, m);
                    coalescing.merge(target, m);
                    if m != rb {
                        artificial_merges += 1;
                    }
                }
            }
            ChordalMode::FillIn => {
                work.merge(ra, rb);
                coalescing.merge(ra, rb);
            }
        }
        // Re-prepare against the changed graph; a failed preparation *is*
        // the chordality check, in which case the invariant is restored
        // with a minimal fill-in before preparing again (this can be
        // needed in both modes when the witness does not cover the full
        // clique-tree path with real vertices).
        session = PreparedChordal::prepare(&work).or_else(|| {
            let tri = fillin::mcs_m(&work);
            for &(a, b) in &tri.fill_edges {
                work.add_edge(a, b);
            }
            fill_edges_added += tri.fill_edges.len();
            PreparedChordal::prepare(&work)
        });
    }

    let stats = coalescing.stats(&ag.affinities);
    Some(ChordalStrategyResult {
        coalescing,
        stats,
        fill_edges_added,
        artificial_merges,
        skipped_out_of_class,
    })
}

/// Returns the set of original vertices that were merged into classes of
/// size ≥ 2 without being endpoints of any coalesced affinity — a direct
/// measure of how much "artificial" merging the witness-class policy did.
pub fn artificially_merged_vertices(
    ag: &AffinityGraph,
    result: &mut ChordalStrategyResult,
) -> BTreeSet<VertexId> {
    let mut affinity_endpoints: BTreeSet<VertexId> = BTreeSet::new();
    for aff in &ag.affinities {
        if result.coalescing.same_class(aff.a, aff.b) {
            affinity_endpoints.insert(aff.a);
            affinity_endpoints.insert(aff.b);
        }
    }
    let mut out = BTreeSet::new();
    for class in result.coalescing.classes() {
        if class.len() < 2 {
            continue;
        }
        for v in class {
            if !affinity_endpoints.contains(&v) {
                out.insert(v);
            }
        }
    }
    out
}

/// Checks that the contraction of `ag.graph` by `result.coalescing` is
/// `k`-colorable — the invariant every conservative strategy must preserve.
/// Exposed so that integration tests and benches can re-validate results
/// cheaply.
pub fn result_is_k_colorable(result: &ChordalStrategyResult, k: usize) -> bool {
    coloring::is_k_colorable(&result.coalescing.merged_graph, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affinity::Affinity;
    use crate::conservative::{conservative_coalesce, ConservativeRule};
    use coalesce_graph::Graph;

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    /// An interval-graph instance: live ranges on a line with affinities
    /// between non-overlapping ranges.
    fn interval_instance() -> AffinityGraph {
        // Intervals: 0:[0,2] 1:[1,3] 2:[4,6] 3:[5,7] 4:[8,9] 5:[3,5]
        let ranges = [(0, 2), (1, 3), (4, 6), (5, 7), (8, 9), (3, 5)];
        let mut g = Graph::new(ranges.len());
        for (i, &(s1, e1)) in ranges.iter().enumerate() {
            for (j, &(s2, e2)) in ranges.iter().enumerate().skip(i + 1) {
                if s1 <= e2 && s2 <= e1 {
                    g.add_edge(v(i), v(j));
                }
            }
        }
        let affinities = vec![
            Affinity::weighted(v(0), v(2), 10),
            Affinity::weighted(v(1), v(4), 5),
            Affinity::weighted(v(0), v(4), 2),
            Affinity::weighted(v(3), v(4), 1),
        ];
        AffinityGraph::new(g, affinities)
    }

    /// The P5 scenario from the Theorem 5 discussion: x—p—q—r—y with the
    /// affinity (x, y) and k = 2.
    fn p5_instance() -> AffinityGraph {
        let g = Graph::with_edges(5, [(v(0), v(1)), (v(1), v(2)), (v(2), v(3)), (v(3), v(4))]);
        AffinityGraph::new(g, vec![Affinity::new(v(0), v(4))])
    }

    #[test]
    fn rejects_non_chordal_or_over_pressured_instances() {
        let mut c4 = Graph::new(4);
        for i in 0..4 {
            c4.add_edge(v(i), v((i + 1) % 4));
        }
        let ag = AffinityGraph::new(c4, vec![Affinity::new(v(0), v(2))]);
        assert!(chordal_conservative_coalesce(&ag, 3, ChordalMode::FillIn).is_none());

        let triangle = Graph::with_edges(3, [(v(0), v(1)), (v(1), v(2)), (v(0), v(2))]);
        let ag = AffinityGraph::new(triangle, vec![]);
        assert!(chordal_conservative_coalesce(&ag, 2, ChordalMode::MergeWitnessClass).is_none());
    }

    #[test]
    fn both_modes_keep_the_merged_graph_k_colorable() {
        for ag in [interval_instance(), p5_instance()] {
            let k = if ag.graph.num_vertices() == 5 { 2 } else { 3 };
            for mode in [ChordalMode::MergeWitnessClass, ChordalMode::FillIn] {
                let result = chordal_conservative_coalesce(&ag, k, mode).expect("chordal instance");
                assert!(result_is_k_colorable(&result, k), "{mode:?}");
                // No class may contain an interference.
                let mut coalescing = result.coalescing.clone();
                for class in coalescing.classes() {
                    let members: Vec<VertexId> = class.into_iter().collect();
                    for (i, &x) in members.iter().enumerate() {
                        for &y in &members[i + 1..] {
                            assert!(
                                !ag.graph.has_edge(x, y),
                                "{mode:?} merged interfering {x},{y}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn p5_affinity_is_coalesced_by_both_modes_at_k_2() {
        for mode in [ChordalMode::MergeWitnessClass, ChordalMode::FillIn] {
            let ag = p5_instance();
            let mut result = chordal_conservative_coalesce(&ag, 2, mode).unwrap();
            assert!(result.coalescing.same_class(v(0), v(4)), "{mode:?}");
            assert!(result_is_k_colorable(&result, 2), "{mode:?}");
        }
    }

    #[test]
    fn fill_in_mode_never_does_artificial_merges() {
        for ag in [interval_instance(), p5_instance()] {
            let k = if ag.graph.num_vertices() == 5 { 2 } else { 3 };
            let result = chordal_conservative_coalesce(&ag, k, ChordalMode::FillIn).unwrap();
            assert_eq!(result.artificial_merges, 0);
            let mut r = result.clone();
            assert!(artificially_merged_vertices(&ag, &mut r).is_empty());
        }
    }

    #[test]
    fn witness_class_mode_reports_its_artificial_merges() {
        // In the P5 instance at k = 2, the witness class for (x, y) is the
        // color class {x, q, y} (q is the only way to cover the middle
        // clique), so exactly one artificial merge happens.
        let ag = p5_instance();
        let mut result =
            chordal_conservative_coalesce(&ag, 2, ChordalMode::MergeWitnessClass).unwrap();
        assert!(result.coalescing.same_class(v(0), v(4)));
        let artificial = artificially_merged_vertices(&ag, &mut result);
        assert_eq!(result.artificial_merges, artificial.len());
    }

    #[test]
    fn strategy_coalesces_at_least_the_heaviest_coalescible_affinity() {
        let ag = interval_instance();
        for mode in [ChordalMode::MergeWitnessClass, ChordalMode::FillIn] {
            let mut result = chordal_conservative_coalesce(&ag, 3, mode).unwrap();
            // (0, 2) has weight 10 and is coalescible in the initial graph
            // (their intervals do not overlap and ω = 3 ≤ k).
            assert!(result.coalescing.same_class(v(0), v(2)), "{mode:?}");
            assert!(result.stats.coalesced >= 1, "{mode:?}");
        }
    }

    #[test]
    fn strategy_never_leaves_weight_unaccounted() {
        let ag = interval_instance();
        let briggs = conservative_coalesce(&ag, 3, ConservativeRule::Briggs);
        for mode in [ChordalMode::MergeWitnessClass, ChordalMode::FillIn] {
            let result = chordal_conservative_coalesce(&ag, 3, mode).unwrap();
            assert_eq!(
                result.stats.coalesced_weight + result.stats.uncoalesced_weight(),
                briggs.stats.coalesced_weight + briggs.stats.uncoalesced_weight(),
                "total weight accounting must match"
            );
        }
    }

    #[test]
    fn empty_affinity_list_is_a_no_op() {
        let g = Graph::with_edges(3, [(v(0), v(1))]);
        let ag = AffinityGraph::new(g, vec![]);
        let result = chordal_conservative_coalesce(&ag, 2, ChordalMode::MergeWitnessClass).unwrap();
        assert_eq!(result.stats.coalesced, 0);
        assert_eq!(result.artificial_merges, 0);
        assert_eq!(result.fill_edges_added, 0);
    }
}
