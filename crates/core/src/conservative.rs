//! Conservative coalescing (§4 of the paper).
//!
//! Conservative coalescing removes as many moves as possible while keeping
//! the interference graph colorable with the `k` available registers.  The
//! general problem is NP-complete even in very restricted settings
//! (Theorem 3); real allocators therefore use *incremental* local tests.
//! This module implements the three tests discussed in the paper —
//!
//! * **Briggs**: merge `u` and `v` if the merged vertex has fewer than `k`
//!   neighbors of degree ≥ `k`;
//! * **George**: merge `u` into `v` if every neighbor of `u` of degree ≥ `k`
//!   is already a neighbor of `v` (tested in both directions, as suggested
//!   in §4 for the spilling-free setting);
//! * **Brute force**: merge on a scratch graph and keep the merge iff the
//!   graph remains greedy-`k`-colorable (the linear-time check mentioned in
//!   §4);
//!
//! — plus an exponential [`conservative_exact`] used to measure how far the
//! local rules are from the optimum on small instances.

use crate::affinity::{Affinity, AffinityGraph, Coalescing, CoalescingStats};
use coalesce_graph::{coloring, greedy, Graph, VertexId};

/// Which conservative test to apply to each affinity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConservativeRule {
    /// Briggs' test.
    Briggs,
    /// George's test (both directions).
    George,
    /// Briggs' test, then George's test if Briggs fails.
    BriggsGeorge,
    /// The extended George test of §4 (both directions), then Briggs'.
    ///
    /// "George's rule can be extended by considering that only the
    /// neighbors of `u`, with at most `(k − 1)` neighbors of degree ≥ `k`,
    /// need to be neighbors of `v`" — i.e. a neighbor of `u` that is itself
    /// easy to simplify can be ignored by the subsumption test.
    ExtendedGeorge,
    /// Merge on a scratch graph and keep it iff the result stays
    /// greedy-`k`-colorable.
    BruteForce,
}

/// Result of a conservative coalescing run.
#[derive(Debug, Clone)]
pub struct ConservativeResult {
    /// The computed coalescing.
    pub coalescing: Coalescing,
    /// Summary statistics against the instance's affinities.
    pub stats: CoalescingStats,
}

/// Briggs' test on the *current* (partially coalesced) graph: the vertex
/// obtained by merging `a` and `b` has fewer than `k` neighbors of
/// significant degree (≥ `k`).
pub fn briggs_test(graph: &Graph, k: usize, a: VertexId, b: VertexId) -> bool {
    let mut significant = 0usize;
    let mut counted: std::collections::BTreeSet<VertexId> = std::collections::BTreeSet::new();
    for &x in [a, b].iter() {
        for n in graph.neighbors(x) {
            if n == a || n == b || !counted.insert(n) {
                continue;
            }
            // Degree of n in the merged graph: if n is adjacent to both a and
            // b, merging reduces its degree by one.
            let mut degree = graph.degree(n);
            if graph.has_edge(n, a) && graph.has_edge(n, b) {
                degree -= 1;
            }
            if degree >= k {
                significant += 1;
            }
        }
    }
    significant < k
}

/// George's test on the current graph, in the direction "merge `a` into
/// `b`": every neighbor of `a` with degree ≥ `k` is also a neighbor of `b`.
pub fn george_test(graph: &Graph, k: usize, a: VertexId, b: VertexId) -> bool {
    graph
        .neighbors(a)
        .filter(|&n| n != b)
        .all(|n| graph.degree(n) < k || graph.has_edge(n, b))
}

/// The extended George test of §4, in the direction "merge `a` into `b`":
/// every neighbor of `a` must be of degree < `k`, or a neighbor of `b`, or
/// itself guaranteed to be peeled by the greedy scheme *after the merge*
/// (it has at most `(k − 1)` neighbors of significant degree, counting the
/// merged vertex).
///
/// The plain George test only skips neighbors of degree < `k`; the extended
/// test also skips neighbors that stay Briggs-safe once `a` and `b` are
/// merged, accepting strictly more merges while still preserving
/// greedy-`k`-colorability: such a neighbor is always removed by the
/// exhaustive degree-< `k` peeling, so the residual graph is again a
/// subgraph of the original one with the merged vertex's neighborhood
/// contained in `b`'s.
pub fn extended_george_test(graph: &Graph, k: usize, a: VertexId, b: VertexId) -> bool {
    graph.neighbors(a).filter(|&n| n != b).all(|n| {
        if graph.degree(n) < k || graph.has_edge(n, b) {
            return true;
        }
        // n is a significant neighbor not subsumed by b: it is still safe to
        // ignore if it stays Briggs-safe in the merged graph, i.e. it keeps
        // fewer than k significant neighbors.  Degrees of vertices other
        // than the merged one never increase, so counting significance in
        // the current graph over-approximates; the merged vertex itself is
        // conservatively assumed significant (+1).
        let significant_others = graph
            .neighbors(n)
            .filter(|&m| m != a && m != b && graph.degree(m) >= k)
            .count();
        significant_others + 1 < k
    })
}

/// Brute-force conservative test: perform the merge on a scratch copy and
/// check greedy-`k`-colorability of the whole graph.
pub fn brute_force_test(graph: &Graph, k: usize, a: VertexId, b: VertexId) -> bool {
    let mut scratch = graph.clone();
    scratch.merge(a, b);
    greedy::is_greedy_k_colorable(&scratch, k)
}

/// Incremental conservative coalescing of all affinities using the given
/// rule: affinities are processed by decreasing weight and merged when the
/// rule accepts the merge on the current graph.
///
/// The input graph is expected to be greedy-`k`-colorable (the setting of
/// §4: a Chaitin-like allocator after enough spilling, or a two-phase
/// allocator after the spilling phase); the result then remains
/// greedy-`k`-colorable for every rule.
pub fn conservative_coalesce(
    ag: &AffinityGraph,
    k: usize,
    rule: ConservativeRule,
) -> ConservativeResult {
    let _span = coalesce_stats::span!("core/coalesce/conservative");
    let mut coalescing = Coalescing::identity(&ag.graph);
    // Rejected rule decisions, reported once at the fixpoint (accepted
    // merges are counted by `Coalescing::merge` for every strategy).
    let mut rejected: u64 = 0;
    // Keep looping over the affinities until a fixed point: a merge can make
    // a previously rejected merge acceptable.
    let mut changed = true;
    while changed {
        changed = false;
        for aff in ag.affinities_by_weight() {
            let (ra, rb) = (coalescing.class_of(aff.a), coalescing.class_of(aff.b));
            if ra == rb || coalescing.merged_graph.has_edge(ra, rb) {
                continue;
            }
            let graph = &coalescing.merged_graph;
            let ok = match rule {
                ConservativeRule::Briggs => briggs_test(graph, k, ra, rb),
                ConservativeRule::George => {
                    george_test(graph, k, ra, rb) || george_test(graph, k, rb, ra)
                }
                ConservativeRule::BriggsGeorge => {
                    briggs_test(graph, k, ra, rb)
                        || george_test(graph, k, ra, rb)
                        || george_test(graph, k, rb, ra)
                }
                ConservativeRule::ExtendedGeorge => {
                    briggs_test(graph, k, ra, rb)
                        || extended_george_test(graph, k, ra, rb)
                        || extended_george_test(graph, k, rb, ra)
                }
                ConservativeRule::BruteForce => brute_force_test(graph, k, ra, rb),
            };
            if ok {
                coalescing.merge(ra, rb);
                changed = true;
            } else {
                rejected += 1;
            }
        }
    }
    coalesce_stats::counter!("coalesce.merges_rejected", rejected);
    let stats = coalescing.stats(&ag.affinities);
    ConservativeResult { coalescing, stats }
}

/// Exact conservative coalescing: over all subsets of affinities, find a
/// coalescing that keeps the merged graph `k`-colorable and minimises the
/// weight of uncoalesced affinities.  Exponential; small instances only.
///
/// `require_greedy` selects the target class: when `true` the merged graph
/// must be greedy-`k`-colorable (the practically relevant variant), when
/// `false` plain `k`-colorability is required (the paper's base problem).
pub fn conservative_exact(
    ag: &AffinityGraph,
    k: usize,
    require_greedy: bool,
) -> ConservativeResult {
    let affinities = ag.affinities_by_weight();
    let colorable = |graph: &Graph| -> bool {
        if require_greedy {
            greedy::is_greedy_k_colorable(graph, k)
        } else {
            coloring::is_k_colorable(graph, k)
        }
    };
    let mut best: Option<(u64, Coalescing)> = None;

    fn search(
        affinities: &[Affinity],
        colorable: &dyn Fn(&Graph) -> bool,
        index: usize,
        current: &Coalescing,
        lost: u64,
        best: &mut Option<(u64, Coalescing)>,
    ) {
        if let Some((best_lost, _)) = best {
            if lost >= *best_lost {
                return;
            }
        }
        if index == affinities.len() {
            if colorable(&current.merged_graph) {
                *best = Some((lost, current.clone()));
            }
            return;
        }
        let aff = affinities[index];
        let mut cur = current.clone();
        if cur.can_merge(aff.a, aff.b) {
            cur.merge(aff.a, aff.b);
            search(affinities, colorable, index + 1, &cur, lost, best);
        } else if cur.same_class(aff.a, aff.b) {
            search(affinities, colorable, index + 1, current, lost, best);
            return;
        }
        search(
            affinities,
            colorable,
            index + 1,
            current,
            lost + aff.weight,
            best,
        );
    }

    let identity = Coalescing::identity(&ag.graph);
    search(&affinities, &colorable, 0, &identity, 0, &mut best);
    let (_, mut coalescing) = best.unwrap_or_else(|| (0, Coalescing::identity(&ag.graph)));
    let stats = coalescing.stats(&ag.affinities);
    ConservativeResult { coalescing, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    /// The permutation gadget of Figure 3 (left): a permutation of `n`
    /// values at register pressure `2n - 2`... here built directly: vertices
    /// u1..un (sources) and v1..vn (destinations); every ui interferes with
    /// every vj except j == i, and affinities (ui, vi).
    fn permutation_gadget(n: usize) -> AffinityGraph {
        let mut g = Graph::new(2 * n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    g.add_edge(v(i), v(n + j));
                }
            }
        }
        let affs = (0..n).map(|i| Affinity::new(v(i), v(n + i))).collect();
        AffinityGraph::new(g, affs)
    }

    #[test]
    fn briggs_accepts_low_degree_merges() {
        // Two isolated vertices can always be merged for any k >= 1.
        let g = Graph::new(2);
        assert!(briggs_test(&g, 1, v(0), v(1)));
    }

    #[test]
    fn george_accepts_subsumed_neighborhoods() {
        // N(0) = {2}, N(1) = {2, 3}, with 2-3 interfering so that 3 is a
        // significant neighbor at k = 2: merging 0 into 1 is safe under
        // George (0's significant neighbors are all neighbors of 1), but the
        // opposite direction is rejected because 3 is not a neighbor of 0.
        let g = Graph::with_edges(4, [(v(0), v(2)), (v(1), v(2)), (v(1), v(3)), (v(2), v(3))]);
        assert!(george_test(&g, 2, v(0), v(1)));
        assert!(!george_test(&g, 2, v(1), v(0)));
    }

    #[test]
    fn extended_george_accepts_everything_plain_george_accepts() {
        // Random-ish structured graphs: whenever plain George accepts a
        // merge, extended George must accept it too.
        let g = Graph::with_edges(
            6,
            [
                (v(0), v(2)),
                (v(1), v(2)),
                (v(1), v(3)),
                (v(2), v(3)),
                (v(3), v(4)),
                (v(4), v(5)),
                (v(2), v(5)),
            ],
        );
        for k in 2..5 {
            for a in 0..6 {
                for b in 0..6 {
                    if a == b || g.has_edge(v(a), v(b)) {
                        continue;
                    }
                    if george_test(&g, k, v(a), v(b)) {
                        assert!(
                            extended_george_test(&g, k, v(a), v(b)),
                            "extended George rejected a plain-George merge ({a},{b}) at k={k}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn extended_george_is_conservative_on_exhaustive_small_graphs() {
        // Exhaustively check on all graphs over 5 vertices (up to 2^10 edge
        // subsets) that an extended-George-accepted merge never destroys
        // greedy-k-colorability.
        let pairs: Vec<(usize, usize)> = (0..5)
            .flat_map(|i| (i + 1..5).map(move |j| (i, j)))
            .collect();
        for mask in 0u32..(1 << pairs.len()) {
            let mut g = Graph::new(5);
            for (bit, &(i, j)) in pairs.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    g.add_edge(v(i), v(j));
                }
            }
            for k in 2..4 {
                if !greedy::is_greedy_k_colorable(&g, k) {
                    continue;
                }
                for a in 0..5 {
                    for b in a + 1..5 {
                        if g.has_edge(v(a), v(b)) {
                            continue;
                        }
                        let accepted = extended_george_test(&g, k, v(a), v(b))
                            || extended_george_test(&g, k, v(b), v(a));
                        if accepted {
                            let mut merged = g.clone();
                            merged.merge(v(a), v(b));
                            assert!(
                                greedy::is_greedy_k_colorable(&merged, k),
                                "extended George broke greedy-{k}-colorability on mask {mask:#x} merging ({a},{b})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn extended_george_coalesces_strictly_more_than_plain_george_somewhere() {
        // A significant neighbor of `a` that is not a neighbor of `b` but is
        // Briggs-safe: plain George refuses, extended George accepts.
        //
        // k = 3.  n is adjacent to a and to two other significant vertices
        // (degree 3 each), so deg(n) = 3 ≥ k but n has only 2 significant
        // neighbors besides {a, b}... build it explicitly.
        let mut g = Graph::new(8);
        let (a, b, n) = (v(0), v(1), v(2));
        // n adjacent to a: the neighbor George must subsume.
        g.add_edge(a, n);
        // Give n degree 3 with two low-degree extra neighbors, so n is
        // significant but Briggs-safe (no significant neighbor besides the
        // future merged vertex).
        g.add_edge(n, v(3));
        g.add_edge(n, v(4));
        // Give b some unrelated neighbors so merging is non-trivial.
        g.add_edge(b, v(5));
        g.add_edge(b, v(6));
        // And make a adjacent to one of b's neighbors so George has something
        // to subsume successfully.
        g.add_edge(a, v(5));
        let k = 3;
        assert!(g.degree(n) >= k);
        assert!(!g.has_edge(n, b));
        assert!(!george_test(&g, k, a, b), "plain George should refuse");
        assert!(
            extended_george_test(&g, k, a, b),
            "extended George should accept"
        );
        // And the merge is indeed safe.
        assert!(brute_force_test(&g, k, a, b));
    }

    #[test]
    fn permutation_gadget_is_coalesced_by_brute_force_but_not_by_briggs() {
        // Figure 3: for a permutation of size 4 at k = 6... we use the pure
        // gadget with k = 4: each ui and vi have degree 3; coalescing all
        // four affinities yields K4 which is greedy-4-colorable, but after
        // the first merge the merged vertex has degree 6 >= k and Briggs
        // alone gets stuck when embedded in a high-degree context.  On the
        // standalone gadget Briggs succeeds (neighbors have low degree), so
        // we check the embedded variant separately in the gen crate; here we
        // check that brute force fully coalesces the gadget.
        let ag = permutation_gadget(4);
        let brute = conservative_coalesce(&ag, 4, ConservativeRule::BruteForce);
        assert_eq!(brute.stats.uncoalesced(), 0);
        assert!(greedy::is_greedy_k_colorable(
            &brute.coalescing.merged_graph,
            4
        ));
    }

    #[test]
    fn conservative_never_breaks_greedy_k_colorability() {
        let ag = permutation_gadget(3);
        for rule in [
            ConservativeRule::Briggs,
            ConservativeRule::George,
            ConservativeRule::BriggsGeorge,
            ConservativeRule::BruteForce,
        ] {
            let res = conservative_coalesce(&ag, 3, rule);
            assert!(
                greedy::is_greedy_k_colorable(&res.coalescing.merged_graph, 3),
                "{rule:?} broke greedy-3-colorability"
            );
        }
    }

    #[test]
    fn exact_conservative_on_figure_3_incremental_trap() {
        // Figure 3 (right): coalescing both (a, b) and (a, c) keeps the
        // graph greedy-3-colorable, but coalescing only (a, b) does not.
        //
        // Gadget: x-z, y-z, b-x, b-y, c-x, c-y, c-z, a-z.  Merging {a, b}
        // creates a vertex adjacent to x, y, z while c keeps x and y at high
        // degree: the residual {merged, x, y, z, c} subgraph has minimum
        // degree 3 and the greedy scheme is stuck.  Merging {a, b, c}
        // collapses b and c, which lowers the degrees of x and y back below
        // 3, so the graph peels.
        let mut g = Graph::new(6);
        let (a, b, c, x, y, z) = (v(0), v(1), v(2), v(3), v(4), v(5));
        g.add_edge(x, z);
        g.add_edge(y, z);
        g.add_edge(b, x);
        g.add_edge(b, y);
        g.add_edge(c, x);
        g.add_edge(c, y);
        g.add_edge(c, z);
        g.add_edge(a, z);
        assert!(greedy::is_greedy_k_colorable(&g, 3));
        // Coalescing only (a, b) breaks greedy-3-colorability...
        assert!(!brute_force_test(&g, 3, a, b));
        // ...but coalescing both (a, b) and (a, c) restores it.
        let mut both = g.clone();
        both.merge(a, b);
        both.merge(a, c);
        assert!(greedy::is_greedy_k_colorable(&both, 3));

        let ag = AffinityGraph::new(g, vec![Affinity::new(a, b), Affinity::new(a, c)]);
        let exact = conservative_exact(&ag, 3, true);
        let briggs = conservative_coalesce(&ag, 3, ConservativeRule::Briggs);
        // Exact finds the simultaneous solution; a purely incremental Briggs
        // pass cannot (each single merge is rejected or unsafe).
        assert_eq!(exact.stats.uncoalesced(), 0);
        assert!(exact.stats.coalesced_weight >= briggs.stats.coalesced_weight);
        assert!(greedy::is_greedy_k_colorable(
            &exact.coalescing.merged_graph,
            3
        ));
        assert_eq!(briggs.stats.coalesced, 0);
    }

    #[test]
    fn exact_with_plain_colorability_can_coalesce_more_than_greedy_target() {
        // A 4-cycle with k = 2 is 2-colorable but not greedy-2-colorable;
        // an isolated pair of affine vertices merged into it does not change
        // that.  Plain-colorability exact coalescing accepts solutions whose
        // merged graph is 2-colorable.
        let mut g = Graph::new(6);
        g.add_edge(v(0), v(1));
        g.add_edge(v(1), v(2));
        g.add_edge(v(2), v(3));
        g.add_edge(v(3), v(0));
        let ag = AffinityGraph::new(g, vec![Affinity::new(v(4), v(5))]);
        let plain = conservative_exact(&ag, 2, false);
        assert_eq!(plain.stats.uncoalesced(), 0);
        let greedy_target = conservative_exact(&ag, 2, true);
        // With the greedy-2-colorable requirement the whole instance is
        // infeasible (the C4 core is never greedy-2-colorable), so the
        // fallback keeps everything uncoalesced.
        assert!(greedy_target.stats.coalesced <= plain.stats.coalesced);
    }

    #[test]
    fn all_rules_respect_interference() {
        let mut g = Graph::new(3);
        g.add_edge(v(0), v(1));
        let ag = AffinityGraph::new(
            g,
            vec![Affinity::new(v(1), v(2)), Affinity::new(v(0), v(2))],
        );
        for rule in [
            ConservativeRule::Briggs,
            ConservativeRule::George,
            ConservativeRule::BriggsGeorge,
            ConservativeRule::BruteForce,
        ] {
            let mut res = conservative_coalesce(&ag, 2, rule);
            // 2 can join at most one of {0, 1}.
            assert!(res.stats.coalesced <= 1);
            let classes = res.coalescing.classes();
            for class in classes {
                let members: Vec<VertexId> = class.into_iter().collect();
                for (i, &x) in members.iter().enumerate() {
                    for &y in &members[i + 1..] {
                        assert!(!ag.graph.has_edge(x, y));
                    }
                }
            }
        }
    }
}
