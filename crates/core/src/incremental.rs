//! Incremental conservative coalescing (§4, Theorems 4 and 5).
//!
//! The incremental problem asks, for a single affinity `(x, y)`, whether the
//! graph admits a `k`-coloring in which `x` and `y` share a color.  The
//! paper shows this is NP-complete on arbitrary `k`-colorable graphs
//! (Theorem 4) but polynomial on chordal graphs (Theorem 5).  This module
//! provides both sides:
//!
//! * [`incremental_exact`] — exponential exact answer on arbitrary graphs
//!   (backtracking `k`-coloring with an equality constraint), used for
//!   validation and for the Theorem 4 reduction experiments;
//! * [`chordal_incremental`] — the polynomial algorithm of Theorem 5: walk
//!   the clique-tree path between the two vertices and search for a chain of
//!   pairwise-disjoint vertex intervals, padded with "short intervals" up to
//!   capacity `k`, linking `I_x` to `I_y`.  On success it returns the whole
//!   color class (the set of vertices to merge with `x` and `y`), which
//!   keeps the graph chordal when contracted (the strategy sketched after
//!   Theorem 5).

use coalesce_graph::cliquetree::CliqueTree;
use coalesce_graph::solver::ExactSolver;
use coalesce_graph::{Graph, VertexId};
use std::collections::BTreeSet;

/// Answer of an incremental coalescing query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IncrementalAnswer {
    /// The two vertices can share a color; the payload is a *witness color
    /// class*: a set of vertices (containing both endpoints) that can all be
    /// merged while keeping the graph `k`-colorable.
    Coalescible(BTreeSet<VertexId>),
    /// No `k`-coloring gives the two vertices the same color.
    NotCoalescible,
}

impl IncrementalAnswer {
    /// Returns `true` for [`IncrementalAnswer::Coalescible`].
    pub fn is_coalescible(&self) -> bool {
        matches!(self, IncrementalAnswer::Coalescible(_))
    }
}

/// Exact incremental conservative coalescing on an arbitrary graph:
/// search for a `k`-coloring with `f(x) = f(y)` via a fresh
/// [`ExactSolver`] (worst-case exponential, but pruned, decomposed and
/// memoized).
pub fn incremental_exact(graph: &Graph, k: usize, x: VertexId, y: VertexId) -> IncrementalAnswer {
    incremental_exact_with(&mut ExactSolver::new(), graph, k, x, y)
}

/// Like [`incremental_exact`], but runs on a caller-supplied solver so the
/// search instrumentation ([`coalesce_graph::solver::SolverStats`])
/// accumulates across queries and the pruning configuration can be chosen.
pub fn incremental_exact_with(
    solver: &mut ExactSolver,
    graph: &Graph,
    k: usize,
    x: VertexId,
    y: VertexId,
) -> IncrementalAnswer {
    if graph.has_edge(x, y) {
        return IncrementalAnswer::NotCoalescible;
    }
    match solver.k_coloring(graph, k, &[(x, y)]) {
        Some(coloring) => {
            let target = coloring.color_of(x);
            let class: BTreeSet<VertexId> = graph
                .vertices()
                .filter(|&v| coloring.color_of(v) == target)
                .collect();
            IncrementalAnswer::Coalescible(class)
        }
        None => IncrementalAnswer::NotCoalescible,
    }
}

/// Polynomial incremental conservative coalescing on a **chordal** graph
/// (Theorem 5).
///
/// Returns `None` if `graph` is not chordal or `k < ω(G)` (the instance is
/// outside the theorem's hypotheses); otherwise answers the query.
///
/// # Algorithm
///
/// 1. If `x` and `y` interfere the answer is no; if their subtrees lie in
///    different connected components the answer is trivially yes.
/// 2. Build a clique tree and take the tree path `P` from a node containing
///    `x` to a node containing `y`, trimmed so that `x` occurs only at the
///    start and `y` only at the end.
/// 3. Restrict every vertex's subtree to `P`: by the junction property each
///    becomes an interval of path positions.
/// 4. `x` and `y` can share a color iff there is a chain of pairwise
///    disjoint intervals starting with `I_x`, ending with `I_y`, covering
///    all positions of `P`, where a position can also be covered by a
///    virtual "short interval" as long as fewer than `k` real intervals
///    cross it (the padding of the proof, generalised from `ω(G)` to `k`).
///    This is decided by a left-to-right marking over interval endpoints.
pub fn chordal_incremental(
    graph: &Graph,
    k: usize,
    x: VertexId,
    y: VertexId,
) -> Option<IncrementalAnswer> {
    ChordalIncremental::prepare(graph)?.query(k, x, y)
}

/// A prepared Theorem-5 oracle that **owns** its clique tree and `ω(G)`
/// without borrowing the graph.
///
/// This is the building block behind both session types: a caller that
/// mutates its working graph between queries (the chordal coalescing
/// strategy merges vertices and adds fill edges) keeps the graph by value
/// and re-prepares only when the graph actually changed, instead of paying
/// a clique-tree construction per affinity.  The graph passed to
/// [`PreparedChordal::query`] must be the one the session was prepared
/// from (unchanged since), which the borrow-holding
/// [`ChordalIncremental`] wrapper enforces statically.
#[derive(Debug, Clone)]
pub struct PreparedChordal {
    tree: CliqueTree,
    omega: usize,
}

impl PreparedChordal {
    /// Builds the clique tree of `graph` once; `ω(G)` is read off the tree
    /// (its largest clique), so preparation is a single MCS sweep.
    ///
    /// Returns `None` if `graph` is not chordal.
    pub fn prepare(graph: &Graph) -> Option<Self> {
        let tree = CliqueTree::build(graph)?;
        let omega = tree.clique_number();
        Some(PreparedChordal { tree, omega })
    }

    /// The clique number `ω(G)` of the prepared graph.
    pub fn omega(&self) -> usize {
        self.omega
    }

    /// The clique tree the session walks.
    pub fn tree(&self) -> &CliqueTree {
        &self.tree
    }

    /// Answers one incremental query; same semantics as
    /// [`chordal_incremental`] (`None` when the instance is outside the
    /// theorem's hypotheses).  `graph` must be the exact graph this
    /// session was prepared from.
    pub fn query(
        &self,
        graph: &Graph,
        k: usize,
        x: VertexId,
        y: VertexId,
    ) -> Option<IncrementalAnswer> {
        if !graph.is_live(x) || !graph.is_live(y) || x == y {
            return None;
        }
        if k < self.omega {
            return None;
        }
        if graph.has_edge(x, y) {
            return Some(IncrementalAnswer::NotCoalescible);
        }
        let tree = &self.tree;
        let nx = tree.any_node_containing(x)?;
        let ny = tree.any_node_containing(y)?;
        let full_path = tree.path_between(nx, ny);

        // Trim the path: start at the last node containing x, end at the first
        // node containing y after that.
        let last_x = full_path
            .iter()
            .rposition(|&n| tree.clique(n).contains(&x))
            .expect("path starts in T_x");
        let first_y = full_path
            .iter()
            .position(|&n| tree.clique(n).contains(&y))
            .expect("path ends in T_y");
        if first_y <= last_x {
            // The subtrees touch a common clique: impossible since x and y do
            // not interfere; defensive fallback.
            return Some(IncrementalAnswer::NotCoalescible);
        }
        let path: Vec<usize> = full_path[last_x..=first_y].to_vec();
        let len = path.len();

        // Intervals of every vertex restricted to the path.
        let intervals = tree.intervals_on_path(&path);
        // Occupancy per position (how many real intervals cross it).
        let mut occupancy = vec![0usize; len];
        for &(_, start, end) in &intervals {
            for slot in occupancy.iter_mut().take(end + 1).skip(start) {
                *slot += 1;
            }
        }

        // Index intervals by starting position for the marking sweep.
        let mut starting_at: Vec<Vec<(VertexId, usize, usize)>> = vec![Vec::new(); len];
        let mut ix = None;
        let mut iy = None;
        for &(v, start, end) in &intervals {
            if v == x {
                ix = Some((start, end));
            } else if v == y {
                iy = Some((start, end));
            } else {
                starting_at[start].push((v, start, end));
            }
        }
        let (ix_start, ix_end) = ix.expect("x occurs on the trimmed path");
        let (iy_start, iy_end) = iy.expect("y occurs on the trimmed path");
        debug_assert_eq!(ix_start, 0);
        debug_assert_eq!(iy_end, len - 1);

        // reachable[p] == Some(chain) means positions 0..p are covered by a chain
        // of disjoint intervals starting with I_x; chain records the real
        // vertices used (besides x).  To keep the sweep linear-ish we store the
        // predecessor interval per boundary instead of full chains.
        #[derive(Clone)]
        enum Via {
            Short,
            Vertex(VertexId, usize), // vertex and the boundary its interval started from
        }
        let mut reach: Vec<Option<Via>> = vec![None; len + 1];
        reach[ix_end + 1] = Some(Via::Vertex(x, 0));
        for p in ix_end + 1..=len {
            if reach[p].is_none() {
                continue;
            }
            if p == len {
                break;
            }
            // Cross position p with a virtual short interval (capacity permitting).
            if occupancy[p] < k && reach[p + 1].is_none() {
                reach[p + 1] = Some(Via::Short);
            }
            // Or take a real interval starting exactly at p.
            for &(v, start, end) in &starting_at[p] {
                debug_assert_eq!(start, p);
                if reach[end + 1].is_none() {
                    reach[end + 1] = Some(Via::Vertex(v, p));
                }
            }
        }

        // y's interval must start exactly at a reachable boundary.
        if reach[iy_start].is_none() {
            return Some(IncrementalAnswer::NotCoalescible);
        }

        // Reconstruct the witness class by walking the Via chain backwards from
        // the boundary where I_y starts.
        let mut class: BTreeSet<VertexId> = BTreeSet::new();
        class.insert(x);
        class.insert(y);
        let mut boundary = iy_start;
        while boundary > 0 {
            match reach[boundary]
                .clone()
                .expect("reachable boundary has a predecessor")
            {
                Via::Short => boundary -= 1,
                Via::Vertex(v, started_from) => {
                    if v != x {
                        class.insert(v);
                    }
                    boundary = started_from;
                }
            }
        }
        Some(IncrementalAnswer::Coalescible(class))
    }
}

/// A prepared chordal incremental-coalescing session over a borrowed,
/// immutable graph.
///
/// [`chordal_incremental`] recomputes the clique tree and `ω(G)` on every
/// call, which dominates its cost on large graphs; batch workloads (the E5
/// sweeps query the same thousand-vertex graph dozens of times) prepare a
/// session once and run [`ChordalIncremental::query`] per pair instead.
/// Strategies that mutate their working graph between queries use the
/// underlying [`PreparedChordal`] directly and re-prepare after a change.
#[derive(Debug, Clone)]
pub struct ChordalIncremental<'g> {
    graph: &'g Graph,
    prepared: PreparedChordal,
}

impl<'g> ChordalIncremental<'g> {
    /// Builds the clique tree of `graph` once (a single MCS sweep).
    ///
    /// Returns `None` if `graph` is not chordal.
    pub fn prepare(graph: &'g Graph) -> Option<Self> {
        Some(ChordalIncremental {
            graph,
            prepared: PreparedChordal::prepare(graph)?,
        })
    }

    /// The clique number `ω(G)` of the prepared graph.
    pub fn omega(&self) -> usize {
        self.prepared.omega()
    }

    /// The clique tree the session walks.
    pub fn tree(&self) -> &CliqueTree {
        self.prepared.tree()
    }

    /// Answers one incremental query against the prepared graph; same
    /// semantics as [`chordal_incremental`] (`None` when the instance is
    /// outside the theorem's hypotheses).
    pub fn query(&self, k: usize, x: VertexId, y: VertexId) -> Option<IncrementalAnswer> {
        self.prepared.query(self.graph, k, x, y)
    }
}

/// Applies a witness class returned by [`chordal_incremental`] or
/// [`incremental_exact`]: merges every vertex of the class into one.
///
/// Returns the representative vertex.
///
/// # Panics
///
/// Panics if the class contains interfering vertices (a valid witness never
/// does).
pub fn apply_class(graph: &mut Graph, class: &BTreeSet<VertexId>) -> VertexId {
    let mut iter = class.iter().copied();
    let rep = iter.next().expect("class is non-empty");
    for v in iter {
        graph.merge(rep, v);
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalesce_graph::{chordal, greedy};

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    /// An interval graph: vertices are intervals [a, b] on a line; two
    /// vertices interfere iff the intervals overlap.
    fn interval_graph(intervals: &[(usize, usize)]) -> Graph {
        let mut g = Graph::new(intervals.len());
        for i in 0..intervals.len() {
            for j in i + 1..intervals.len() {
                let (a1, b1) = intervals[i];
                let (a2, b2) = intervals[j];
                if a1.max(a2) <= b1.min(b2) {
                    g.add_edge(v(i), v(j));
                }
            }
        }
        g
    }

    #[test]
    fn adjacent_vertices_are_never_coalescible() {
        let g = Graph::with_edges(2, [(v(0), v(1))]);
        assert_eq!(
            incremental_exact(&g, 4, v(0), v(1)),
            IncrementalAnswer::NotCoalescible
        );
        assert_eq!(
            chordal_incremental(&g, 4, v(0), v(1)),
            Some(IncrementalAnswer::NotCoalescible)
        );
    }

    #[test]
    fn different_components_are_always_coalescible() {
        let g = Graph::with_edges(4, [(v(0), v(1)), (v(2), v(3))]);
        let ans = chordal_incremental(&g, 2, v(0), v(2)).unwrap();
        assert!(ans.is_coalescible());
        assert!(incremental_exact(&g, 2, v(0), v(2)).is_coalescible());
    }

    #[test]
    fn path_endpoints_share_color_with_two_colors() {
        // Path 0-1-2: 0 and 2 can share a color with k = 2.
        let g = Graph::with_edges(3, [(v(0), v(1)), (v(1), v(2))]);
        let ans = chordal_incremental(&g, 2, v(0), v(2)).unwrap();
        assert!(ans.is_coalescible());
        if let IncrementalAnswer::Coalescible(class) = ans {
            assert!(class.contains(&v(0)) && class.contains(&v(2)));
            assert!(!class.contains(&v(1)));
        }
    }

    #[test]
    fn figure_5_style_covering_and_blocking_intervals() {
        // Figure 5 of the paper illustrates the two outcomes of the interval
        // covering: either a chain of disjoint intervals links I_x to I_y
        // (same color possible) or not.
        //
        // Positive case: x = [0,1], y = [4,5], blocker z = [1,4] adjacent to
        // both.  ω = 2 and a 2-coloring with x = y exists (x-z-y is an even
        // obstruction-free path), and the chain is simply I_x, I_y linked
        // through short-interval slack? no -- through the boundary after z
        // never being needed because z never forces a middle position beyond
        // capacity: positions between the cliques {x,z} and {z,y} are only
        // two, both covered by I_x and I_y.
        let g_yes = interval_graph(&[(0, 1), (4, 5), (1, 4), (2, 3)]);
        let yes = chordal_incremental(&g_yes, 2, v(0), v(1)).unwrap();
        assert!(yes.is_coalescible());
        assert!(incremental_exact(&g_yes, 2, v(0), v(1)).is_coalescible());

        // Negative case: an odd path x - z - w - y at ω = k = 2 forces x and
        // y to take different colors; no disjoint-interval chain exists.
        let g_no = interval_graph(&[(0, 1), (3, 4), (1, 2), (2, 3)]);
        let no = chordal_incremental(&g_no, 2, v(0), v(1)).unwrap();
        assert_eq!(no, IncrementalAnswer::NotCoalescible);
        assert_eq!(
            incremental_exact(&g_no, 2, v(0), v(1)),
            IncrementalAnswer::NotCoalescible
        );
    }

    #[test]
    fn chordal_algorithm_agrees_with_exact_on_small_interval_graphs() {
        // Systematic agreement check over a family of interval graphs,
        // including denser and longer instances (the pruned `ExactSolver`
        // keeps the exact side fast enough to sweep every pair and three
        // `k` values per graph).
        let families: Vec<Vec<(usize, usize)>> = vec![
            vec![(0, 2), (1, 3), (2, 4), (3, 5), (4, 6)],
            vec![(0, 1), (1, 2), (2, 3), (0, 3), (4, 5)],
            vec![(0, 4), (1, 2), (3, 5), (5, 6), (2, 3)],
            vec![(0, 0), (0, 1), (1, 1), (2, 3), (3, 4), (2, 4)],
            vec![
                (0, 2),
                (1, 4),
                (2, 6),
                (3, 5),
                (5, 8),
                (6, 9),
                (7, 10),
                (8, 11),
                (9, 12),
                (11, 13),
            ],
            vec![
                (0, 5),
                (0, 3),
                (1, 2),
                (2, 7),
                (4, 6),
                (5, 9),
                (6, 8),
                (7, 11),
                (8, 10),
                (9, 12),
                (10, 13),
                (12, 14),
            ],
        ];
        for intervals in families {
            let g = interval_graph(&intervals);
            let omega = chordal::chordal_clique_number(&g).unwrap();
            for k in omega..omega + 3 {
                for a in 0..intervals.len() {
                    for b in a + 1..intervals.len() {
                        if g.has_edge(v(a), v(b)) {
                            continue;
                        }
                        let fast = chordal_incremental(&g, k, v(a), v(b))
                            .unwrap()
                            .is_coalescible();
                        let slow = incremental_exact(&g, k, v(a), v(b)).is_coalescible();
                        assert_eq!(
                            fast, slow,
                            "disagreement on {intervals:?} k={k} pair=({a},{b})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn witness_class_is_interference_free_and_mergeable() {
        let g = interval_graph(&[(0, 2), (1, 3), (2, 4), (3, 5), (4, 6), (5, 7)]);
        let omega = chordal::chordal_clique_number(&g).unwrap();
        if let Some(IncrementalAnswer::Coalescible(class)) =
            chordal_incremental(&g, omega, v(0), v(3))
        {
            assert!(class.contains(&v(0)) && class.contains(&v(3)));
            // No two class members interfere.
            let members: Vec<VertexId> = class.iter().copied().collect();
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    assert!(!g.has_edge(a, b));
                }
            }
            // Merging the class keeps the graph k-colorable (and chordal).
            let mut merged = g.clone();
            apply_class(&mut merged, &class);
            assert!(chordal::is_chordal(&merged));
            assert!(greedy::is_greedy_k_colorable(&merged, omega));
        } else {
            panic!("expected a coalescible answer");
        }
    }

    #[test]
    fn non_chordal_input_is_rejected() {
        let c4 = Graph::with_edges(4, [(v(0), v(1)), (v(1), v(2)), (v(2), v(3)), (v(3), v(0))]);
        assert!(chordal_incremental(&c4, 3, v(0), v(2)).is_none());
    }

    #[test]
    fn k_below_omega_is_rejected() {
        let mut g = Graph::new(3);
        g.add_edge(v(0), v(1));
        g.add_edge(v(1), v(2));
        g.add_edge(v(0), v(2));
        let extra = g.add_vertex();
        assert!(chordal_incremental(&g, 2, v(0), extra).is_none());
        assert!(chordal_incremental(&g, 3, v(0), extra).is_some());
    }

    #[test]
    fn larger_k_makes_more_pairs_coalescible() {
        // An odd chain x - a - b - y at omega = 2: with k = omega the two
        // endpoints are forced to different colors; with k = omega + 1 the
        // extra color (short-interval slack in the covering) makes the pair
        // coalescible.
        let g = interval_graph(&[(0, 0), (0, 2), (2, 4), (4, 4)]);
        let omega = chordal::chordal_clique_number(&g).unwrap();
        assert_eq!(omega, 2);
        let tight = chordal_incremental(&g, 2, v(0), v(3)).unwrap();
        let loose = chordal_incremental(&g, 3, v(0), v(3)).unwrap();
        assert_eq!(tight, IncrementalAnswer::NotCoalescible);
        assert!(loose.is_coalescible());
        // Exact agrees on both counts.
        assert!(!incremental_exact(&g, 2, v(0), v(3)).is_coalescible());
        assert!(incremental_exact(&g, 3, v(0), v(3)).is_coalescible());
    }
}
