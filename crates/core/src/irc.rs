//! An iterated-register-coalescing (IRC) style allocator.
//!
//! The paper frames every coalescing problem inside Chaitin-like register
//! allocators (George & Appel's *iterated register coalescing* being the
//! canonical one).  This module provides a compact version of that
//! framework operating directly on an [`AffinityGraph`]:
//!
//! * **simplify** — remove non-move-related vertices of degree < `k`;
//! * **coalesce** — conservatively merge move-related vertices using the
//!   Briggs/George tests;
//! * **freeze** — when neither applies, give up the moves of a low-degree
//!   move-related vertex so it becomes simplifiable;
//! * **potential spill** — when everything has degree ≥ `k`, push a vertex
//!   chosen by a spill metric and hope it still gets a color;
//! * **select** — pop the stack and assign colors; vertices that get no
//!   color become **actual spills**.
//!
//! The allocator returns the coloring, the coalescing it performed and the
//! set of actual spills, which is the "resulting spills" metric used by the
//! challenge-style experiment (E8).

use crate::affinity::{AffinityGraph, Coalescing, CoalescingStats};
use crate::conservative::{briggs_test, george_test};
use coalesce_graph::{Coloring, VertexId};
use std::collections::BTreeSet;

/// Result of running the IRC-style allocator.
#[derive(Debug, Clone)]
pub struct IrcResult {
    /// Colors assigned to the representatives of each coalesced class (and
    /// through them to every original vertex; use [`IrcResult::color_of`]).
    pub coloring: Coloring,
    /// The coalescing performed by the conservative coalesce phase.
    pub coalescing: Coalescing,
    /// Original vertices whose class had to be spilled.
    pub spilled: Vec<VertexId>,
    /// Statistics of the coalescing against the instance affinities.
    pub stats: CoalescingStats,
}

impl IrcResult {
    /// Color of an original vertex: the color of its class representative.
    /// `None` if the class was spilled.
    pub fn color_of(&self, v: VertexId) -> Option<usize> {
        let rep = self.coalescing.class_of_immutable(v);
        self.coloring.color_of(rep)
    }

    /// Number of actual spills.
    pub fn num_spills(&self) -> usize {
        self.spilled.len()
    }
}

/// Runs the IRC-style allocation with `k` registers.
pub fn allocate(ag: &AffinityGraph, k: usize) -> IrcResult {
    let mut coalescing = Coalescing::identity(&ag.graph);

    // Move-related representative pairs (kept up to date lazily).
    let moves: Vec<(VertexId, VertexId)> = ag.affinities.iter().map(|a| (a.a, a.b)).collect();

    // The select stack of class representatives, plus whether they were
    // pushed as potential spills.
    let mut stack: Vec<(VertexId, bool)> = Vec::new();
    // Representatives already removed from the working graph.
    let mut removed: BTreeSet<VertexId> = BTreeSet::new();
    // Frozen moves no longer considered for coalescing.
    let mut frozen: BTreeSet<usize> = BTreeSet::new();

    // Working copy of the merged graph; vertices are physically removed as
    // they are simplified so that degrees reflect the residual graph.
    let mut work = coalescing.merged_graph.clone();

    let is_move_related = |moves: &[(VertexId, VertexId)],
                           frozen: &BTreeSet<usize>,
                           coalescing: &mut Coalescing,
                           removed: &BTreeSet<VertexId>,
                           v: VertexId| {
        moves.iter().enumerate().any(|(i, &(a, b))| {
            if frozen.contains(&i) {
                return false;
            }
            let (ra, rb) = (coalescing.class_of(a), coalescing.class_of(b));
            ra != rb && !removed.contains(&ra) && !removed.contains(&rb) && (ra == v || rb == v)
        })
    };

    loop {
        // --- simplify ---
        let simplifiable = work.vertices().find(|&v| {
            work.degree(v) < k && !is_move_related(&moves, &frozen, &mut coalescing, &removed, v)
        });
        if let Some(v) = simplifiable {
            work.remove_vertex(v);
            removed.insert(v);
            stack.push((v, false));
            continue;
        }

        // --- coalesce (Briggs, then George, both directions) ---
        let mut coalesced_something = false;
        for (i, &(a, b)) in moves.iter().enumerate() {
            if frozen.contains(&i) {
                continue;
            }
            let (ra, rb) = (coalescing.class_of(a), coalescing.class_of(b));
            if ra == rb || removed.contains(&ra) || removed.contains(&rb) {
                continue;
            }
            if work.has_edge(ra, rb) {
                // Constrained move: never coalescible; freeze it.
                frozen.insert(i);
                continue;
            }
            let ok = briggs_test(&work, k, ra, rb)
                || george_test(&work, k, ra, rb)
                || george_test(&work, k, rb, ra);
            if ok {
                work.merge(ra, rb);
                coalescing.merge(ra, rb);
                coalesced_something = true;
                break;
            }
        }
        if coalesced_something {
            continue;
        }

        // --- freeze ---
        let freezable = work.vertices().find(|&v| {
            work.degree(v) < k && is_move_related(&moves, &frozen, &mut coalescing, &removed, v)
        });
        if let Some(v) = freezable {
            for (i, &(a, b)) in moves.iter().enumerate() {
                let (ra, rb) = (coalescing.class_of(a), coalescing.class_of(b));
                if ra == v || rb == v {
                    frozen.insert(i);
                }
            }
            continue;
        }

        // --- potential spill ---
        let candidate = work.vertices().max_by_key(|&v| (work.degree(v), v.index()));
        match candidate {
            Some(v) => {
                work.remove_vertex(v);
                removed.insert(v);
                stack.push((v, true));
            }
            None => break, // graph empty: done
        }
    }

    // --- select ---
    let full_graph = &coalescing.merged_graph;
    let mut coloring = Coloring::new(full_graph.capacity());
    let mut spilled_reps: Vec<VertexId> = Vec::new();
    while let Some((v, _potential)) = stack.pop() {
        let used: BTreeSet<usize> = full_graph
            .neighbors(v)
            .filter_map(|n| coloring.color_of(n))
            .collect();
        let color = (0..k).find(|c| !used.contains(c));
        match color {
            Some(c) => coloring.assign(v, c),
            None => spilled_reps.push(v),
        }
    }

    // Expand spilled representatives to original vertices.
    let mut spilled: Vec<VertexId> = Vec::new();
    for class in coalescing.classes() {
        let rep = coalescing.class_of(*class.iter().next().expect("non-empty class"));
        if spilled_reps.contains(&rep) {
            for v in class {
                if ag.graph.is_live(v) {
                    spilled.push(v);
                }
            }
        }
    }
    spilled.sort();
    spilled.dedup();

    let stats = coalescing.stats(&ag.affinities);
    IrcResult {
        coloring,
        coalescing,
        spilled,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affinity::Affinity;
    use coalesce_graph::Graph;

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                g.add_edge(v(i), v(j));
            }
        }
        g
    }

    /// Checks that the produced coloring is proper on the original graph
    /// restricted to non-spilled vertices, and that coalesced vertices get
    /// equal colors.
    fn check_allocation(ag: &AffinityGraph, k: usize, result: &IrcResult) {
        for (a, b) in ag.graph.edges() {
            if let (Some(ca), Some(cb)) = (result.color_of(a), result.color_of(b)) {
                assert_ne!(ca, cb, "interfering vertices {a} and {b} share a color");
            }
        }
        for v in ag.graph.vertices() {
            if !result.spilled.contains(&v) {
                let c = result.color_of(v).expect("non-spilled vertex has a color");
                assert!(c < k);
            }
        }
    }

    #[test]
    fn colors_a_small_colorable_graph_without_spills() {
        let g = complete(3);
        let ag = AffinityGraph::new(g, vec![]);
        let res = allocate(&ag, 3);
        assert_eq!(res.num_spills(), 0);
        check_allocation(&ag, 3, &res);
    }

    #[test]
    fn spills_when_registers_are_insufficient() {
        let g = complete(5);
        let ag = AffinityGraph::new(g, vec![]);
        let res = allocate(&ag, 3);
        assert!(res.num_spills() >= 1);
        check_allocation(&ag, 3, &res);
    }

    #[test]
    fn coalesces_safe_moves() {
        // Two parallel chains with affinities between their ends; plenty of
        // registers, so everything coalesces and nothing spills.
        let mut g = Graph::new(4);
        g.add_edge(v(0), v(1));
        g.add_edge(v(2), v(3));
        let ag = AffinityGraph::new(
            g,
            vec![Affinity::new(v(0), v(2)), Affinity::new(v(1), v(3))],
        );
        let res = allocate(&ag, 3);
        assert_eq!(res.num_spills(), 0);
        assert_eq!(res.stats.coalesced, 2);
        check_allocation(&ag, 3, &res);
        assert_eq!(res.color_of(v(0)), res.color_of(v(2)));
        assert_eq!(res.color_of(v(1)), res.color_of(v(3)));
    }

    #[test]
    fn constrained_moves_are_frozen_not_coalesced() {
        let g = Graph::with_edges(2, [(v(0), v(1))]);
        let ag = AffinityGraph {
            graph: g,
            affinities: vec![Affinity::new(v(0), v(1))],
        };
        let res = allocate(&ag, 2);
        assert_eq!(res.stats.coalesced, 0);
        check_allocation(&ag, 2, &res);
    }

    #[test]
    fn allocation_handles_the_empty_graph() {
        let ag = AffinityGraph::new(Graph::new(0), vec![]);
        let res = allocate(&ag, 4);
        assert_eq!(res.num_spills(), 0);
        assert_eq!(res.stats.total, 0);
    }

    #[test]
    fn coalescing_does_not_cause_extra_spills_on_greedy_colorable_inputs() {
        // A ladder graph (greedy-3-colorable) with rung affinities.
        let n = 6;
        let mut g = Graph::new(2 * n);
        for i in 0..n {
            g.add_edge(v(i), v(n + i));
            if i + 1 < n {
                g.add_edge(v(i), v(i + 1));
                g.add_edge(v(n + i), v(n + i + 1));
            }
        }
        let affs = (0..n - 1)
            .map(|i| Affinity::new(v(i), v(n + i + 1)))
            .collect();
        let ag = AffinityGraph::new(g, affs);
        let res = allocate(&ag, 4);
        assert_eq!(res.num_spills(), 0);
        check_allocation(&ag, 4, &res);
    }
}
