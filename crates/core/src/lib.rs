//! Register coalescing algorithms — the subject of *On the Complexity of
//! Register Coalescing* (Bouchez, Darte, Rastello).
//!
//! The paper classifies the complexity of four coalescing optimisations;
//! this crate implements all of them, both as the heuristics used in real
//! allocators and as exact (exponential) references used to validate the
//! paper's reductions and to measure optimality gaps:
//!
//! | Problem (paper §) | Heuristic | Exact reference |
//! |---|---|---|
//! | Aggressive coalescing (§3, Thm 2) | [`aggressive::aggressive_heuristic`] | [`aggressive::aggressive_exact`] |
//! | Conservative coalescing (§4, Thm 3) | [`conservative::conservative_coalesce`] (Briggs / George / brute force) | [`conservative::conservative_exact`] |
//! | Incremental conservative coalescing (§4, Thms 4–5) | [`incremental::chordal_incremental`] (polynomial, chordal graphs) | [`incremental::incremental_exact`] |
//! | Optimistic coalescing / de-coalescing (§5, Thm 6) | [`optimistic::optimistic_coalesce`] | [`optimistic::decoalesce_exact`] |
//!
//! The shared vocabulary lives in [`affinity`]: an [`AffinityGraph`] is an
//! interference graph plus weighted affinities, and a [`Coalescing`] is the
//! paper's function `f` — a partition of the variables into interference-free
//! classes.  [`irc`] adds a compact iterated-register-coalescing allocator
//! (simplify / coalesce / freeze / spill / select) so that end-to-end
//! experiments can report resulting spills.
//!
//! # Example
//!
//! ```
//! use coalesce_core::affinity::{Affinity, AffinityGraph};
//! use coalesce_core::conservative::{conservative_coalesce, ConservativeRule};
//! use coalesce_graph::{Graph, VertexId};
//!
//! // Two values that interfere, each affine to a third value.
//! let v = VertexId::new;
//! let graph = Graph::with_edges(3, [(v(0), v(1))]);
//! let affinities = vec![Affinity::new(v(0), v(2)), Affinity::new(v(1), v(2))];
//! let instance = AffinityGraph::new(graph, affinities);
//! let result = conservative_coalesce(&instance, 2, ConservativeRule::BruteForce);
//! // Only one of the two moves can be removed: the merged graph must stay
//! // 2-colorable.
//! assert_eq!(result.stats.coalesced, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod affinity;
pub mod aggressive;
pub mod chordal_strategy;
pub mod conservative;
pub mod incremental;
pub mod irc;
pub mod optimistic;

pub use affinity::{Affinity, AffinityGraph, Coalescing, CoalescingStats};
pub use aggressive::{aggressive_exact, aggressive_heuristic};
pub use chordal_strategy::{chordal_conservative_coalesce, ChordalMode, ChordalStrategyResult};
pub use conservative::{conservative_coalesce, conservative_exact, ConservativeRule};
pub use incremental::{
    chordal_incremental, incremental_exact, incremental_exact_with, ChordalIncremental,
    IncrementalAnswer, PreparedChordal,
};
pub use irc::{allocate, IrcResult};
pub use optimistic::{decoalesce_exact, optimistic_coalesce};
