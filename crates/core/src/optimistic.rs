//! Optimistic coalescing (§5, Theorem 6).
//!
//! Park and Moon's optimistic coalescing first coalesces *aggressively*
//! (ignoring colorability), then **de-coalesces**: it gives up as few moves
//! as possible so that the graph becomes greedy-`k`-colorable again.  The
//! paper proves the de-coalescing problem NP-complete (Theorem 6, by
//! reduction from vertex cover), even on chordal graphs and for `k = 4`.
//!
//! This module provides:
//!
//! * [`optimistic_coalesce`] — the full heuristic pipeline: aggressive
//!   phase (greedy), then iterative de-coalescing of the cheapest blocking
//!   classes until the graph is greedy-`k`-colorable;
//! * [`decoalesce_exact`] — an exponential search for the minimum number of
//!   affinities to give up, used to validate the Theorem 6 reduction and to
//!   measure the heuristic's gap on small instances.

use crate::affinity::{Affinity, AffinityGraph, Coalescing, CoalescingStats};
use coalesce_graph::{greedy, DisjointSets, VertexId};
use std::collections::BTreeSet;

/// Result of an optimistic coalescing run.
#[derive(Debug, Clone)]
pub struct OptimisticResult {
    /// The final coalescing (after de-coalescing).
    pub coalescing: Coalescing,
    /// Statistics of the final coalescing.
    pub stats: CoalescingStats,
    /// Number of classes that had to be split during de-coalescing.
    pub declassified: usize,
}

/// Full optimistic coalescing: aggressive phase followed by de-coalescing
/// until the merged graph is greedy-`k`-colorable.
///
/// De-coalescing strategy (Park–Moon in spirit): while the merged graph is
/// not greedy-`k`-colorable, find the classes that are stuck in the
/// high-degree core, and completely split the one whose split loses the
/// least affinity weight.
pub fn optimistic_coalesce(ag: &AffinityGraph, k: usize) -> OptimisticResult {
    // The aggressive phase is the first `rebuild` with every affinity kept;
    // `aggressive_heuristic` is re-exported separately for callers that only
    // want that phase.
    let mut kept: Vec<bool> = vec![true; ag.affinities.len()];
    let mut declassified = 0usize;

    loop {
        let (coalescing, _) = rebuild(ag, &kept);
        let core = match greedy::high_degree_core(&coalescing.merged_graph, k) {
            None => {
                let mut coalescing = coalescing;
                let stats = coalescing.stats(&ag.affinities);
                return OptimisticResult {
                    coalescing,
                    stats,
                    declassified,
                };
            }
            Some(core) => core,
        };
        // Classes (representatives) present in the stuck core that currently
        // contain at least one kept affinity.
        let mut immut = coalescing;
        let core_set: BTreeSet<VertexId> = core.into_iter().collect();
        let mut candidates: Vec<(u64, usize, VertexId)> = Vec::new();
        for rep in core_set {
            let weight: u64 = ag
                .affinities
                .iter()
                .enumerate()
                .filter(|(i, a)| {
                    kept[*i] && immut.class_of(a.a) == rep && immut.class_of(a.b) == rep
                })
                .map(|(_, a)| a.weight)
                .sum();
            let count = ag
                .affinities
                .iter()
                .enumerate()
                .filter(|(i, a)| {
                    kept[*i] && immut.class_of(a.a) == rep && immut.class_of(a.b) == rep
                })
                .count();
            if count > 0 {
                candidates.push((weight, count, rep));
            }
        }
        if candidates.is_empty() {
            // Nothing left to de-coalesce: the instance is simply not
            // greedy-k-colorable even without any coalescing.  Return the
            // current state.
            let mut coalescing = rebuild(ag, &kept).0;
            let stats = coalescing.stats(&ag.affinities);
            return OptimisticResult {
                coalescing,
                stats,
                declassified,
            };
        }
        candidates.sort();
        let (_, _, victim) = candidates[0];
        // Give up every kept affinity fully inside the victim class.
        for (i, aff) in ag.affinities.iter().enumerate() {
            if kept[i] && immut.class_of(aff.a) == victim && immut.class_of(aff.b) == victim {
                kept[i] = false;
            }
        }
        declassified += 1;
    }
}

/// Rebuilds the coalescing obtained by merging (when possible) exactly the
/// affinities marked `true` in `kept`, in decreasing weight order.
fn rebuild(ag: &AffinityGraph, kept: &[bool]) -> (Coalescing, usize) {
    let mut order: Vec<(usize, &Affinity)> = ag
        .affinities
        .iter()
        .enumerate()
        .filter(|(i, _)| kept[*i])
        .collect();
    order.sort_by(|(_, x), (_, y)| {
        y.weight
            .cmp(&x.weight)
            .then(x.a.cmp(&y.a))
            .then(x.b.cmp(&y.b))
    });
    let mut coalescing = Coalescing::identity(&ag.graph);
    let mut merged = 0;
    for (_, aff) in order {
        if coalescing.can_merge(aff.a, aff.b) {
            coalescing.merge(aff.a, aff.b);
            merged += 1;
        }
    }
    (coalescing, merged)
}

/// Exact de-coalescing: finds the minimum number of affinities to give up
/// so that the graph obtained by coalescing the rest (component-wise) is
/// greedy-`k`-colorable.  Returns that minimum and the corresponding
/// coalescing, or `None` if even the fully de-coalesced (original) graph is
/// not greedy-`k`-colorable.
///
/// Exponential in the number of affinities (it enumerates subsets by
/// increasing size); intended for reduction validation on small instances.
pub fn decoalesce_exact(ag: &AffinityGraph, k: usize) -> Option<(usize, Coalescing)> {
    let n = ag.affinities.len();
    if !greedy::is_greedy_k_colorable(&ag.graph, k) {
        return None;
    }
    for give_up in 0..=n {
        let mut subset: Vec<usize> = (0..give_up).collect();
        loop {
            // Build the kept mask for this subset.
            let mut kept = vec![true; n];
            for &i in &subset {
                kept[i] = false;
            }
            if let Some(coalescing) = coalesce_components(ag, &kept) {
                if greedy::is_greedy_k_colorable(&coalescing.merged_graph, k) {
                    return Some((give_up, coalescing));
                }
            }
            if !next_combination(&mut subset, n) {
                break;
            }
        }
    }
    None
}

/// Coalesces the connected components of the kept-affinity graph, failing if
/// a component contains an interference (such a subset cannot be realised by
/// any coalescing).
fn coalesce_components(ag: &AffinityGraph, kept: &[bool]) -> Option<Coalescing> {
    let mut dsu = DisjointSets::new(ag.graph.capacity());
    for (i, aff) in ag.affinities.iter().enumerate() {
        if kept[i] {
            dsu.union(aff.a.index(), aff.b.index());
        }
    }
    // Check component-internal interference.
    for (u, v) in ag.graph.edges() {
        if dsu.same_set(u.index(), v.index()) {
            return None;
        }
    }
    let mut coalescing = Coalescing::identity(&ag.graph);
    for (i, aff) in ag.affinities.iter().enumerate() {
        if kept[i] {
            coalescing.merge(aff.a, aff.b)?;
        }
    }
    Some(coalescing)
}

/// Advances `subset` to the next combination of the same size out of `n`
/// items; returns `false` when exhausted.
fn next_combination(subset: &mut [usize], n: usize) -> bool {
    let k = subset.len();
    if k == 0 {
        return false;
    }
    let mut i = k;
    loop {
        if i == 0 {
            return false;
        }
        i -= 1;
        if subset[i] != i + n - k {
            break;
        }
    }
    subset[i] += 1;
    for j in i + 1..k {
        subset[j] = subset[j - 1] + 1;
    }
    true
}

/// Checks the precondition of the optimistic problem as stated in the
/// paper: all affinities can be aggressively coalesced simultaneously.
pub fn all_affinities_coalescible(ag: &AffinityGraph) -> bool {
    coalesce_components(ag, &vec![true; ag.affinities.len()]).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalesce_graph::Graph;

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    /// A gadget where aggressive coalescing ruins colorability: vertices
    /// a0, a1 are affine; each is part of a triangle; merging them creates a
    /// vertex of degree 4, and with k = 3 the merged graph is still
    /// greedy-3-colorable... make it harsher by tying the triangles
    /// together.
    fn blocking_instance() -> AffinityGraph {
        // K4 minus an edge, whose two non-adjacent vertices (0, 1) are
        // affine; merging them creates K3+ structure: still fine for k = 3.
        // For k = 2: the original graph (path-ish) is greedy-2-colorable
        // only without the merge.
        let mut g = Graph::new(4);
        g.add_edge(v(0), v(2));
        g.add_edge(v(0), v(3));
        g.add_edge(v(1), v(2));
        g.add_edge(v(1), v(3));
        AffinityGraph::new(g, vec![Affinity::new(v(0), v(1))])
    }

    #[test]
    fn optimistic_keeps_coalescing_when_it_is_safe() {
        let ag = blocking_instance();
        // k = 3: merging 0 and 1 yields a triangle, greedy-3-colorable.
        let res = optimistic_coalesce(&ag, 3);
        assert_eq!(res.stats.uncoalesced(), 0);
        assert!(greedy::is_greedy_k_colorable(
            &res.coalescing.merged_graph,
            3
        ));
    }

    #[test]
    fn optimistic_de_coalesces_when_necessary() {
        let ag = blocking_instance();
        // k = 2: the original graph is C4, greedy-2-colorable? no -- C4 has
        // all degrees 2, so it is NOT greedy-2-colorable; with k = 3 it is.
        // Use k = 3 for the "safe" case above; here use a graph that is
        // greedy-2-colorable before coalescing: a path 2-0-3, plus 1
        // adjacent to 3 only, affinity (0,1).
        let mut g = Graph::new(4);
        g.add_edge(v(2), v(0));
        g.add_edge(v(0), v(3));
        g.add_edge(v(1), v(3));
        let ag2 = AffinityGraph::new(g, vec![Affinity::new(v(0), v(1))]);
        assert!(greedy::is_greedy_k_colorable(&ag2.graph, 2));
        let res = optimistic_coalesce(&ag2, 2);
        assert!(greedy::is_greedy_k_colorable(
            &res.coalescing.merged_graph,
            2
        ));
        // Exact de-coalescing agrees with whatever the heuristic achieved or
        // does better.
        let (opt, _) = decoalesce_exact(&ag2, 2).unwrap();
        assert!(opt <= res.stats.uncoalesced());
        let _ = ag;
    }

    #[test]
    fn exact_decoalescing_minimum_on_two_affinity_instance() {
        // Two affinities; coalescing either alone breaks greedy-2-
        // colorability, coalescing neither is fine, coalescing both is
        // impossible (interference by transitivity).  The exact minimum
        // number of given-up affinities is 1 or 2 depending on structure;
        // here we build an instance where giving up one suffices.
        //
        // Graph: square 0-2-1-3-0 (C4) is not greedy-2-colorable, so use a
        // tree: 0-2, 2-1, affinities (0,1) [merging makes a multi-edge to 2
        // -> still a tree shape] and (0,3) with 3 isolated.
        let mut g = Graph::new(4);
        g.add_edge(v(0), v(2));
        g.add_edge(v(2), v(1));
        let ag = AffinityGraph::new(
            g,
            vec![Affinity::new(v(0), v(1)), Affinity::new(v(0), v(3))],
        );
        let (min_giveup, mut c) = decoalesce_exact(&ag, 2).unwrap();
        assert_eq!(min_giveup, 0);
        assert!(c.same_class(v(0), v(1)));
        assert!(c.same_class(v(0), v(3)));
    }

    #[test]
    fn decoalesce_exact_rejects_uncolorable_base_graph() {
        // K4 with k = 3 can never become greedy-3-colorable.
        let mut g = Graph::new(4);
        for i in 0..4 {
            for j in i + 1..4 {
                g.add_edge(v(i), v(j));
            }
        }
        let ag = AffinityGraph::new(g, vec![]);
        assert!(decoalesce_exact(&ag, 3).is_none());
    }

    #[test]
    fn heuristic_never_returns_uncolorable_graph_when_base_is_colorable() {
        // Chain of affinities over an independent set plus a clique context.
        let mut g = Graph::new(6);
        // Clique on 3,4,5 with k = 3.
        g.add_edge(v(3), v(4));
        g.add_edge(v(3), v(5));
        g.add_edge(v(4), v(5));
        // 0,1,2 each adjacent to two clique vertices.
        g.add_edge(v(0), v(3));
        g.add_edge(v(0), v(4));
        g.add_edge(v(1), v(4));
        g.add_edge(v(1), v(5));
        g.add_edge(v(2), v(3));
        g.add_edge(v(2), v(5));
        let ag = AffinityGraph::new(
            g,
            vec![
                Affinity::weighted(v(0), v(1), 3),
                Affinity::weighted(v(1), v(2), 2),
                Affinity::weighted(v(0), v(2), 1),
            ],
        );
        assert!(greedy::is_greedy_k_colorable(&ag.graph, 3));
        let res = optimistic_coalesce(&ag, 3);
        assert!(greedy::is_greedy_k_colorable(
            &res.coalescing.merged_graph,
            3
        ));
    }

    #[test]
    fn all_affinities_coalescible_detects_transitive_interference() {
        // Affinities (0,1) and (1,2) but 0 interferes with 2: both cannot be
        // coalesced simultaneously.
        let g = Graph::with_edges(3, [(v(0), v(2))]);
        let ag = AffinityGraph::new(
            g,
            vec![Affinity::new(v(0), v(1)), Affinity::new(v(1), v(2))],
        );
        assert!(!all_affinities_coalescible(&ag));
        let g2 = Graph::new(3);
        let ag2 = AffinityGraph::new(
            g2,
            vec![Affinity::new(v(0), v(1)), Affinity::new(v(1), v(2))],
        );
        assert!(all_affinities_coalescible(&ag2));
    }

    #[test]
    fn next_combination_enumerates_all_subsets_of_fixed_size() {
        let mut c = vec![0, 1];
        let mut seen = vec![c.clone()];
        while next_combination(&mut c, 4) {
            seen.push(c.clone());
        }
        assert_eq!(seen.len(), 6); // C(4,2)
    }
}
