//! Structured-CFG program generator: SPEC-like workload shapes.
//!
//! [`random_ssa_program`](crate::programs::random_ssa_program) only chains
//! if/else diamonds, which covers the paper's φ-affinity story but none of
//! the control-flow structure real allocator inputs have.  This module
//! generates strict-SSA [`Function`]s from a region grammar instead:
//!
//! * **straight** regions — basic blocks of fresh ops;
//! * **if/else** regions — two arms (optionally holding nested regions)
//!   merged by φ-functions at the join;
//! * **switch** regions — a branch cascade dispatching to 3+ arms, all
//!   joining in one block whose φs have one argument per arm;
//! * **loop** regions — natural loops (preheader / header / body / latch /
//!   exit) with *loop-carried φs*: the header φs merge an init value from
//!   the preheader with a value copied in the latch, so every iteration
//!   carries explicit move instructions at weight `10^depth`;
//! * **call points** — call-clobber sites that split the live range of
//!   every value live across them (the caller-save shuffle), producing the
//!   copy pressure calls cause in real code;
//! * an optional **irreducible** knob appending two-entry cycles (off by
//!   default: the grammar is reducible by construction).
//!
//! Generation maintains the invariant that every value handed to a region
//! dominates the region's blocks, so the output is strict SSA *by
//! construction*; values defined inside arms escape only through φs.
//! After construction, block loop depths are recomputed from the CFG
//! itself ([`coalesce_ir::loops::annotate_loop_depths`]), which threads the
//! loop-nesting structure into every downstream cost: affinity weights,
//! [`MoveCosts`](coalesce_ir::InterferenceGraph) and the loop-aware spill
//! costs of `coalesce_ir::spill`.
//!
//! [`ShapeProfile`] bundles parameter presets with the region mixes of
//! SPEC-like program families (branchy integer code, floating-point loop
//! nests, call-heavy dispatch code).

use coalesce_ir::function::{BlockId, Function, FunctionBuilder, Var};
use coalesce_ir::loops::annotate_loop_depths;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::str::FromStr;

/// Parameters of the structured-CFG generator.
#[derive(Debug, Clone, Copy)]
pub struct CfgParams {
    /// Number of top-level regions chained on the main spine.
    pub regions: usize,
    /// Maximum region nesting depth (loops inside loops, branches inside
    /// arms); depth-exhausted regions degrade to straight code.
    pub max_depth: usize,
    /// Relative frequency of loop regions.
    pub loop_weight: u32,
    /// Relative frequency of if/else regions.
    pub if_weight: u32,
    /// Relative frequency of switch regions.
    pub switch_weight: u32,
    /// Relative frequency of straight-line regions.
    pub straight_weight: u32,
    /// Maximum number of switch arms (minimum is 3).
    pub max_switch_arms: usize,
    /// Ordinary operations emitted per basic block.
    pub ops_per_block: usize,
    /// Target number of simultaneously live values (register pressure).
    pub pressure: usize,
    /// φ-functions per if/else or switch join.
    pub phis_per_join: usize,
    /// Loop-carried φs per loop header.
    pub loop_phis: usize,
    /// Percent chance (0–100) that a block contains a call-clobber point.
    pub call_percent: u32,
    /// Number of irreducible (two-entry cycle) regions appended after the
    /// structured spine; 0 keeps the CFG reducible by construction.
    pub irreducible_regions: usize,
    /// Width of the *next-use window*: when non-zero, operands are drawn
    /// from the `reuse_window` most recently live values instead of the
    /// whole live set, shortening next-use distances — the quantity
    /// Belady-style spillers rank values by (E17's locality rows).  `0`
    /// (the default everywhere) keeps the original unwindowed draw and,
    /// deliberately, the exact RNG call sequence, so every committed
    /// fixture and baseline stays byte-identical.
    pub reuse_window: usize,
}

impl Default for CfgParams {
    fn default() -> Self {
        CfgParams {
            regions: 4,
            max_depth: 2,
            loop_weight: 2,
            if_weight: 3,
            switch_weight: 1,
            straight_weight: 2,
            max_switch_arms: 4,
            ops_per_block: 3,
            pressure: 6,
            phis_per_join: 2,
            loop_phis: 2,
            call_percent: 10,
            irreducible_regions: 0,
            reuse_window: 0,
        }
    }
}

/// SPEC-like shape profiles: named region mixes modelling the control-flow
/// signature of common benchmark families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShapeProfile {
    /// SPECint-style branchy scalar code: many if/else regions, some
    /// switches, shallow loops, occasional calls.
    IntBranchy,
    /// SPECfp-style loop nests: deep natural loops with several carried
    /// values, few branches, no calls in the kernel.
    FpLoopNest,
    /// Interpreter/dispatcher-style code: switch-heavy with frequent
    /// call-clobber points splitting live ranges.
    CallHeavy,
}

impl ShapeProfile {
    /// Every profile, in sweep order.
    pub const ALL: [ShapeProfile; 3] = [
        ShapeProfile::IntBranchy,
        ShapeProfile::FpLoopNest,
        ShapeProfile::CallHeavy,
    ];

    /// The profile's name as used on the command line and in JSON rows.
    pub fn name(self) -> &'static str {
        match self {
            ShapeProfile::IntBranchy => "int-branchy",
            ShapeProfile::FpLoopNest => "fp-loopnest",
            ShapeProfile::CallHeavy => "call-heavy",
        }
    }

    /// Generator parameters for this profile at the given register
    /// pressure.
    pub fn params(self, pressure: usize) -> CfgParams {
        match self {
            ShapeProfile::IntBranchy => CfgParams {
                regions: 5,
                max_depth: 2,
                loop_weight: 1,
                if_weight: 4,
                switch_weight: 2,
                straight_weight: 2,
                max_switch_arms: 4,
                ops_per_block: 3,
                pressure,
                phis_per_join: 2,
                loop_phis: 1,
                call_percent: 10,
                irreducible_regions: 0,
                reuse_window: 0,
            },
            ShapeProfile::FpLoopNest => CfgParams {
                regions: 2,
                max_depth: 3,
                loop_weight: 5,
                if_weight: 1,
                switch_weight: 0,
                straight_weight: 1,
                max_switch_arms: 3,
                ops_per_block: 4,
                pressure,
                phis_per_join: 2,
                loop_phis: 3,
                call_percent: 0,
                irreducible_regions: 0,
                reuse_window: 0,
            },
            ShapeProfile::CallHeavy => CfgParams {
                regions: 4,
                max_depth: 2,
                loop_weight: 2,
                if_weight: 2,
                switch_weight: 3,
                straight_weight: 1,
                max_switch_arms: 5,
                ops_per_block: 2,
                pressure,
                phis_per_join: 2,
                loop_phis: 1,
                call_percent: 40,
                irreducible_regions: 0,
                reuse_window: 0,
            },
        }
    }
}

impl fmt::Display for ShapeProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown profile name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownProfile(pub String);

impl fmt::Display for UnknownProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown shape profile `{}` (expected one of: {})",
            self.0,
            ShapeProfile::ALL.map(ShapeProfile::name).join(", ")
        )
    }
}

impl std::error::Error for UnknownProfile {}

impl FromStr for ShapeProfile {
    type Err = UnknownProfile;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        ShapeProfile::ALL
            .into_iter()
            .find(|p| p.name() == lower)
            .ok_or_else(|| UnknownProfile(s.to_owned()))
    }
}

/// The pressure levels the E13 sweep crosses with the shape profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PressureLevel {
    /// Low register pressure (few simultaneously live values).
    Low,
    /// Medium register pressure.
    Medium,
    /// High register pressure.
    High,
}

impl PressureLevel {
    /// Every level, in sweep order.
    pub const ALL: [PressureLevel; 3] = [
        PressureLevel::Low,
        PressureLevel::Medium,
        PressureLevel::High,
    ];

    /// The generator `pressure` value of this level.
    pub fn pressure(self) -> usize {
        match self {
            PressureLevel::Low => 4,
            PressureLevel::Medium => 8,
            PressureLevel::High => 12,
        }
    }

    /// The level's name as used in JSON rows.
    pub fn name(self) -> &'static str {
        match self {
            PressureLevel::Low => "low",
            PressureLevel::Medium => "medium",
            PressureLevel::High => "high",
        }
    }
}

/// Generates a strict SSA function from the region grammar.
///
/// The output always validates, is strict SSA, and — when
/// [`CfgParams::irreducible_regions`] is 0 — has a reducible CFG.  Block
/// loop depths are recomputed from the final CFG, so downstream affinity /
/// move / spill costs see the real nesting structure.
pub fn generate(params: &CfgParams, rng: &mut ChaCha8Rng) -> Function {
    let mut gen = CfgGen {
        b: FunctionBuilder::new("cfg"),
        params: *params,
        rng,
    };
    let entry = gen.b.entry_block();
    let mut live: Vec<Var> = Vec::new();
    for _ in 0..params.pressure.max(2) {
        // Workload variables are unnamed: generation allocates no name
        // strings, and Display falls back to dense `%i` indices.
        live.push(gen.b.def(entry, ""));
    }
    let mut current = entry;
    for _ in 0..params.regions.max(1) {
        current = gen.emit_region(current, &mut live, 0);
    }
    for _ in 0..params.irreducible_regions {
        current = gen.emit_irreducible(current, &mut live);
    }
    // Consume the surviving values pairwise so they stay live to the end
    // without any instruction needing more than two operands (an arity-`a`
    // instruction forces `Maxlive ≥ a` no matter how much is spilled).
    let tail: Vec<Var> = live.iter().copied().take(params.pressure.max(2)).collect();
    for pair in tail.chunks(2) {
        gen.b.effect(current, pair);
    }
    gen.b.ret(current, &[]);
    let mut f = gen.b.finish();
    annotate_loop_depths(&mut f);
    debug_assert!(
        coalesce_ir::ssa::is_strict(&f),
        "cfg generator must emit strict SSA"
    );
    f
}

/// The region kinds the grammar chooses between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegionKind {
    Straight,
    IfElse,
    Switch,
    Loop,
}

struct CfgGen<'r> {
    b: FunctionBuilder,
    params: CfgParams,
    rng: &'r mut ChaCha8Rng,
}

impl CfgGen<'_> {
    fn pick_uses(&mut self, live: &[Var]) -> Vec<Var> {
        if live.is_empty() {
            return Vec::new();
        }
        // With `reuse_window == 0` the window spans the whole live set and
        // this is the original draw, RNG call for RNG call; a non-zero
        // window restricts operands to the most recently live values (the
        // tail of `live`), which shortens next-use distances.
        let window = match self.params.reuse_window {
            0 => live.len(),
            w => w.min(live.len()),
        };
        let base = live.len() - window;
        let count = self.rng.gen_range(1..=2.min(window));
        (0..count)
            .map(|_| live[base + self.rng.gen_range(0..window)])
            .collect()
    }

    fn push_live(&mut self, live: &mut Vec<Var>, v: Var) {
        live.push(v);
        let cap = self.params.pressure.max(2);
        while live.len() > cap {
            let idx = self.rng.gen_range(0..live.len());
            live.swap_remove(idx);
        }
    }

    /// Emits the straight-line payload of one block: `ops_per_block` fresh
    /// ops over the live set, with a chance of one call-clobber point.
    fn emit_ops(&mut self, blk: BlockId, live: &mut Vec<Var>) {
        let call_at = if self.params.call_percent > 0
            && self.rng.gen_range(0..100) < self.params.call_percent
        {
            Some(self.rng.gen_range(0..self.params.ops_per_block.max(1)))
        } else {
            None
        };
        for i in 0..self.params.ops_per_block.max(1) {
            if call_at == Some(i) {
                self.emit_call(blk, live);
            }
            let uses = self.pick_uses(live);
            let v = self.b.op(blk, "", &uses);
            self.push_live(live, v);
        }
    }

    /// Emits a call-clobber point: a call-like op consuming up to two
    /// arguments, after which the live range of every value live across
    /// the call is split by an explicit copy (the caller-save shuffle).
    /// The copies are coalescing candidates the allocators must deal with.
    fn emit_call(&mut self, blk: BlockId, live: &mut Vec<Var>) {
        let args = self.pick_uses(live);
        let ret = self.b.op(blk, "", &args);
        for slot in live.iter_mut() {
            *slot = self.b.copy(blk, "", *slot);
        }
        self.push_live(live, ret);
    }

    fn choose_kind(&mut self, depth: usize) -> RegionKind {
        if depth >= self.params.max_depth {
            return RegionKind::Straight;
        }
        let p = self.params;
        let total = p.loop_weight + p.if_weight + p.switch_weight + p.straight_weight;
        if total == 0 {
            return RegionKind::Straight;
        }
        let mut roll = self.rng.gen_range(0..total);
        for (weight, kind) in [
            (p.loop_weight, RegionKind::Loop),
            (p.if_weight, RegionKind::IfElse),
            (p.switch_weight, RegionKind::Switch),
            (p.straight_weight, RegionKind::Straight),
        ] {
            if roll < weight {
                return kind;
            }
            roll -= weight;
        }
        RegionKind::Straight
    }

    /// Emits one region starting in `current`; returns the block where
    /// control continues.  Every value in `live` dominates `current` on
    /// entry, and every value in `live` dominates the returned block on
    /// exit — the invariant that makes the output strict by construction.
    fn emit_region(&mut self, current: BlockId, live: &mut Vec<Var>, depth: usize) -> BlockId {
        match self.choose_kind(depth) {
            RegionKind::Straight => {
                self.emit_ops(current, live);
                current
            }
            RegionKind::IfElse => self.emit_if_else(current, live, depth),
            RegionKind::Switch => self.emit_switch(current, live, depth),
            RegionKind::Loop => self.emit_loop(current, live, depth),
        }
    }

    /// One arm of a branch/switch: ops, an optional nested region, and one
    /// fresh value per join φ.  Returns the arm's final block and its φ
    /// contributions.
    fn emit_arm(&mut self, arm: BlockId, live: &[Var], depth: usize) -> (BlockId, Vec<Var>) {
        let mut arm_live = live.to_vec();
        self.emit_ops(arm, &mut arm_live);
        let arm_end = if depth + 1 < self.params.max_depth && self.rng.gen_range(0..100) < 35 {
            self.emit_region(arm, &mut arm_live, depth + 1)
        } else {
            arm
        };
        let mut vals = Vec::new();
        for _ in 0..self.params.phis_per_join.max(1) {
            let uses = self.pick_uses(&arm_live);
            vals.push(self.b.op(arm_end, "", &uses));
        }
        (arm_end, vals)
    }

    fn emit_if_else(&mut self, current: BlockId, live: &mut Vec<Var>, depth: usize) -> BlockId {
        self.emit_ops(current, live);
        let cond = self.b.def(current, "");
        let then_block = self.b.new_block();
        let else_block = self.b.new_block();
        let join = self.b.new_block();
        self.b.branch(current, cond, then_block, else_block);
        let (then_end, then_vals) = self.emit_arm(then_block, live, depth);
        let (else_end, else_vals) = self.emit_arm(else_block, live, depth);
        self.b.jump(then_end, join);
        self.b.jump(else_end, join);
        for i in 0..self.params.phis_per_join.max(1) {
            let p = self.b.phi(
                join,
                "",
                &[(then_end, then_vals[i]), (else_end, else_vals[i])],
            );
            self.push_live(live, p);
        }
        join
    }

    /// A switch region: a cascade of dispatch branches to `n ≥ 3` arms,
    /// all joining in one block whose φs take one argument per arm.
    fn emit_switch(&mut self, current: BlockId, live: &mut Vec<Var>, depth: usize) -> BlockId {
        self.emit_ops(current, live);
        let arms = self.rng.gen_range(3..=self.params.max_switch_arms.max(3));
        let join = self.b.new_block();
        // Build the dispatch cascade: each dispatch block tests one arm,
        // the final test selects between the last two arms.
        let mut arm_entries = Vec::new();
        let mut dispatch = current;
        for i in 0..arms - 1 {
            let cond = self.b.def(dispatch, "");
            let arm = self.b.new_block();
            arm_entries.push(arm);
            if i == arms - 2 {
                let last = self.b.new_block();
                arm_entries.push(last);
                self.b.branch(dispatch, cond, arm, last);
            } else {
                let next = self.b.new_block();
                self.b.branch(dispatch, cond, arm, next);
                dispatch = next;
            }
        }
        let mut ends_and_vals = Vec::new();
        for &arm in &arm_entries {
            let (end, vals) = self.emit_arm(arm, live, depth);
            self.b.jump(end, join);
            ends_and_vals.push((end, vals));
        }
        for i in 0..self.params.phis_per_join.max(1) {
            let args: Vec<(BlockId, Var)> = ends_and_vals
                .iter()
                .map(|(end, vals)| (*end, vals[i]))
                .collect();
            let p = self.b.phi(join, "", &args);
            self.push_live(live, p);
        }
        join
    }

    /// A natural loop: preheader (`current`) → header (φs + test) → body
    /// (nested regions) → latch (carried copies) → header, with a single
    /// exit from the header.  The loop-carried φs merge an init value from
    /// the preheader with a value copied in the latch, so every iteration
    /// executes real move instructions at the loop's weight.
    fn emit_loop(&mut self, current: BlockId, live: &mut Vec<Var>, depth: usize) -> BlockId {
        self.emit_ops(current, live);
        let header = self.b.new_block();
        let latch = self.b.new_block();
        let exit = self.b.new_block();
        self.b.jump(current, header);

        // Loop-carried φs: init from the preheader, carried value defined
        // by a copy in the latch (the back-edge move).
        let nphis = self.params.loop_phis.max(1);
        let mut phis = Vec::new();
        let mut carried = Vec::new();
        for _ in 0..nphis {
            let init = if live.is_empty() || self.rng.gen_range(0..2) == 0 {
                self.b.def(current, "")
            } else {
                live[self.rng.gen_range(0..live.len())]
            };
            let c = self.b.fresh_var("");
            carried.push(c);
            let p = self.b.phi(header, "", &[(current, init), (latch, c)]);
            phis.push(p);
        }

        // Values dominating the header: the preheader's live set plus the
        // φs and whatever the header computes before the test.
        let mut loop_live = live.clone();
        for &p in &phis {
            self.push_live(&mut loop_live, p);
        }
        self.emit_ops(header, &mut loop_live);
        let cond = self.b.def(header, "");
        let body = self.b.new_block();
        self.b.branch(header, cond, body, exit);

        // The body: one or two nested regions over a scoped live set.
        let mut body_live = loop_live.clone();
        let mut body_end = body;
        let body_regions = self.rng.gen_range(1..=2);
        self.emit_ops(body_end, &mut body_live);
        for _ in 0..body_regions {
            body_end = self.emit_region(body_end, &mut body_live, depth + 1);
        }
        self.b.jump(body_end, latch);

        // The latch defines the carried values by copying body values: the
        // loop-carried moves every iteration must execute unless the
        // allocator coalesces them with the φs.
        for &c in &carried {
            let src = body_live[self.rng.gen_range(0..body_live.len())];
            self.b.copy_to(latch, c, src);
        }
        self.b.jump(latch, header);

        // After the loop only header-dominating values are in scope.
        *live = loop_live;
        exit
    }

    /// An irreducible region: `current` branches into both nodes of an
    /// A ⇄ B cycle, so the cycle has two entries and no dominating header.
    /// φs at both nodes keep the output strict SSA.
    fn emit_irreducible(&mut self, current: BlockId, live: &mut Vec<Var>) -> BlockId {
        let x0 = self.b.def(current, "");
        let cond = self.b.def(current, "");
        let a = self.b.new_block();
        let bb = self.b.new_block();
        let exit = self.b.new_block();
        self.b.branch(current, cond, a, bb);

        // B's contribution to A's φ is defined later (in B) via copy_to.
        let vb = self.b.fresh_var("");
        let pa = self.b.phi(a, "", &[(current, x0), (bb, vb)]);
        let va = self.b.op(a, "", &[pa]);
        let ca = self.b.def(a, "");
        self.b.branch(a, ca, bb, exit);

        let pb = self.b.phi(bb, "", &[(current, x0), (a, va)]);
        self.b.copy_to(bb, vb, pb);
        self.b.jump(bb, a);

        // `a` dominates `exit`, so its values are in scope afterwards.
        self.push_live(live, pa);
        self.push_live(live, va);
        exit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalesce_graph::chordal;
    use coalesce_ir::interference::{BuildOptions, InterferenceGraph, InterferenceKind};
    use coalesce_ir::liveness::Liveness;
    use coalesce_ir::loops::{is_reducible, LoopInfo};
    use coalesce_ir::ssa;

    fn check_structure(f: &Function) {
        assert!(f.validate().is_ok());
        assert!(ssa::is_ssa(f));
        assert!(ssa::is_strict(f));
    }

    #[test]
    fn default_params_generate_valid_reducible_strict_ssa() {
        for seed in 0..12 {
            let f = generate(&CfgParams::default(), &mut crate::rng(seed));
            check_structure(&f);
            assert!(is_reducible(&f), "seed {seed}");
        }
    }

    #[test]
    fn every_profile_and_pressure_generates_loops_and_phis() {
        for profile in ShapeProfile::ALL {
            for level in PressureLevel::ALL {
                let params = profile.params(level.pressure());
                let f = generate(&params, &mut crate::rng(7));
                check_structure(&f);
                assert!(f.num_phis() > 0, "{profile} {level:?}");
            }
        }
    }

    #[test]
    fn fp_loopnest_profile_produces_nested_natural_loops() {
        let params = ShapeProfile::FpLoopNest.params(8);
        let mut found_nested = false;
        for seed in 0..8 {
            let f = generate(&params, &mut crate::rng(seed));
            let info = LoopInfo::compute(&f);
            assert!(info.num_loops() > 0, "seed {seed}: no loops");
            if info.depth.iter().any(|&d| d >= 2) {
                found_nested = true;
            }
            // `annotate_loop_depths` ran: block depths match LoopInfo.
            for b in f.block_ids() {
                assert_eq!(f.loop_depth(b), info.depth_of(b));
            }
        }
        assert!(found_nested, "no seed produced a depth-2 loop nest");
    }

    #[test]
    fn theorem_1_holds_on_generated_cfgs() {
        for profile in ShapeProfile::ALL {
            let params = profile.params(6);
            for seed in 0..4 {
                let f = generate(&params, &mut crate::rng(seed));
                let live = Liveness::compute(&f);
                let ig = InterferenceGraph::build_with(
                    &f,
                    &live,
                    BuildOptions {
                        kind: InterferenceKind::Intersection,
                        ..Default::default()
                    },
                );
                assert!(chordal::is_chordal(&ig.graph), "{profile} seed {seed}");
                let omega = chordal::chordal_clique_number(&ig.graph).unwrap();
                assert_eq!(omega, live.maxlive_precise(&f), "{profile} seed {seed}");
            }
        }
    }

    #[test]
    fn irreducible_knob_breaks_reducibility_but_not_strictness() {
        let params = CfgParams {
            irreducible_regions: 1,
            ..CfgParams::default()
        };
        for seed in 0..6 {
            let f = generate(&params, &mut crate::rng(seed));
            check_structure(&f);
            assert!(!is_reducible(&f), "seed {seed}");
        }
    }

    #[test]
    fn call_points_split_live_ranges_into_copies() {
        let params = CfgParams {
            call_percent: 100,
            ..CfgParams::default()
        };
        let f = generate(&params, &mut crate::rng(3));
        check_structure(&f);
        assert!(
            f.num_copies() > 0,
            "calls must introduce caller-save copies"
        );
    }

    #[test]
    fn loop_carried_phis_put_copies_in_latches() {
        let params = CfgParams {
            loop_weight: 10,
            if_weight: 0,
            switch_weight: 0,
            straight_weight: 0,
            call_percent: 0,
            ..CfgParams::default()
        };
        let f = generate(&params, &mut crate::rng(1));
        check_structure(&f);
        // Some copy must live at loop depth >= 1 (the latch).
        let mut found = false;
        for b in f.block_ids() {
            if f.loop_depth(b) >= 1 && f.block_instrs(b).any(|i| i.is_copy()) {
                found = true;
            }
        }
        assert!(found, "no loop-carried copy found inside a loop");
    }

    #[test]
    fn pressure_parameter_controls_maxlive() {
        let low = generate(
            &CfgParams {
                pressure: 3,
                ..CfgParams::default()
            },
            &mut crate::rng(5),
        );
        let high = generate(
            &CfgParams {
                pressure: 12,
                ..CfgParams::default()
            },
            &mut crate::rng(5),
        );
        let ml_low = Liveness::compute(&low).maxlive_precise(&low);
        let ml_high = Liveness::compute(&high).maxlive_precise(&high);
        assert!(ml_high > ml_low, "{ml_high} vs {ml_low}");
    }

    #[test]
    fn reuse_window_preserves_strictness_and_shapes_next_use_locality() {
        // A windowed draw must stay valid strict SSA and actually change
        // the operand choices relative to the unwindowed default.
        let base = CfgParams::default();
        let windowed = CfgParams {
            reuse_window: 2,
            ..CfgParams::default()
        };
        let f0 = generate(&base, &mut crate::rng(9));
        let f2 = generate(&windowed, &mut crate::rng(9));
        check_structure(&f2);
        assert_ne!(
            f0.to_string(),
            f2.to_string(),
            "a width-2 window must change operand draws"
        );
        // A window at least as wide as the live cap is the identity: the
        // generator trims the live set to `pressure.max(2)` values, so
        // every draw already sees at most that many.
        let wide = CfgParams {
            reuse_window: base.pressure.max(2),
            ..CfgParams::default()
        };
        let fw = generate(&wide, &mut crate::rng(9));
        assert_eq!(f0.to_string(), fw.to_string());
    }

    #[test]
    fn generator_is_deterministic() {
        let a = generate(&CfgParams::default(), &mut crate::rng(11));
        let b = generate(&CfgParams::default(), &mut crate::rng(11));
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn profile_names_round_trip() {
        for p in ShapeProfile::ALL {
            assert_eq!(p.name().parse::<ShapeProfile>().unwrap(), p);
        }
        assert!("spec-unknown".parse::<ShapeProfile>().is_err());
    }
}
