//! "Coalescing challenge"-style instances.
//!
//! Appel and George's coalescing challenge distributes interference graphs
//! of programs that were already spilled down to `Maxlive ≤ k`, together
//! with the many parallel-copy affinities produced by their optimal
//! spilling phase.  This module regenerates instances with the same
//! structural signature from our own pipeline: generate a random SSA
//! program, spill it down to the target pressure, translate out of SSA
//! (which materialises the φ-related parallel copies), and extract the
//! interference graph with its affinities.

use crate::programs::{random_ssa_program, ProgramParams};
use coalesce_core::affinity::AffinityGraph;
use coalesce_ir::function::Function;
use coalesce_ir::interference::InterferenceGraph;
use coalesce_ir::liveness::Liveness;
use coalesce_ir::{out_of_ssa, spill};
use rand_chacha::ChaCha8Rng;

/// Parameters of a challenge-style instance.
#[derive(Debug, Clone, Copy)]
pub struct ChallengeParams {
    /// Number of registers `k` the instance targets.
    pub registers: usize,
    /// Shape of the generated program.
    pub program: ProgramParams,
}

impl Default for ChallengeParams {
    fn default() -> Self {
        ChallengeParams {
            registers: 4,
            program: ProgramParams {
                diamonds: 4,
                ops_per_block: 4,
                pressure: 6,
                phis_per_join: 2,
            },
        }
    }
}

impl ChallengeParams {
    /// Parameters that generate an instance with at least `target_vars`
    /// interference-graph vertices, for multi-thousand-vertex corpus and
    /// sweep workloads.
    ///
    /// The per-diamond variable yield shrinks as `registers` grows (higher
    /// pressure targets mean fewer spill-inserted reloads), bottoming out
    /// around 15 variables per diamond; sizing by a conservative 12 keeps
    /// the floor promise across register counts, at the price of
    /// overshooting the target by up to ~75% for small `registers`.
    pub fn at_scale(target_vars: usize, registers: usize) -> Self {
        ChallengeParams {
            registers,
            program: ProgramParams {
                diamonds: target_vars / 12 + 1,
                ops_per_block: 4,
                pressure: registers + 2,
                phis_per_join: 2,
            },
        }
    }
}

/// A generated challenge instance.
#[derive(Debug)]
pub struct ChallengeInstance {
    /// The lowered (out-of-SSA, spilled) program.
    pub function: Function,
    /// The coalescing instance extracted from the program.
    pub affinity_graph: AffinityGraph,
    /// The targeted register count.
    pub registers: usize,
    /// `Maxlive` of the lowered program.
    pub maxlive: usize,
}

/// Generates a challenge-style instance: program → spill to `k` → out of
/// SSA → interference graph with copy affinities.
pub fn challenge_instance(params: &ChallengeParams, rng: &mut ChaCha8Rng) -> ChallengeInstance {
    let mut function = random_ssa_program(&params.program, rng);
    spill::spill_to_pressure(&mut function, params.registers);
    out_of_ssa::destruct_ssa(&mut function);
    // A second spilling round: the copies inserted by the out-of-SSA
    // translation can push the pressure back up.
    spill::spill_to_pressure(&mut function, params.registers);
    let liveness = Liveness::compute(&function);
    let maxlive = liveness.maxlive_precise(&function);
    let ig = InterferenceGraph::build(&function, &liveness);
    ChallengeInstance {
        affinity_graph: AffinityGraph::from_interference(&ig),
        registers: params.registers,
        maxlive,
        function,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn challenge_instances_carry_copy_affinities() {
        for seed in 0..5 {
            let mut r = crate::rng(seed);
            let inst = challenge_instance(&ChallengeParams::default(), &mut r);
            assert!(
                inst.affinity_graph.num_affinities() > 0,
                "seed {seed}: out-of-SSA must introduce coalesceable copies"
            );
            assert_eq!(inst.function.num_phis(), 0);
        }
    }

    #[test]
    fn spilling_keeps_pressure_near_the_target() {
        for seed in 0..5 {
            let mut r = crate::rng(seed);
            let params = ChallengeParams {
                registers: 4,
                program: ProgramParams {
                    pressure: 8,
                    ..Default::default()
                },
            };
            let inst = challenge_instance(&params, &mut r);
            // Spill-everywhere cannot always reach k exactly (an instruction
            // with many operands needs them all live), but it must get close.
            assert!(
                inst.maxlive <= params.registers + 2,
                "seed {seed}: maxlive {} too far above k {}",
                inst.maxlive,
                params.registers
            );
        }
    }

    #[test]
    fn instances_are_deterministic() {
        let a = challenge_instance(&ChallengeParams::default(), &mut crate::rng(3));
        let b = challenge_instance(&ChallengeParams::default(), &mut crate::rng(3));
        assert_eq!(a.function.to_string(), b.function.to_string());
        assert_eq!(
            a.affinity_graph.num_affinities(),
            b.affinity_graph.num_affinities()
        );
    }

    #[test]
    fn at_scale_reaches_multi_thousand_vertex_instances() {
        // The ROADMAP scaling target: challenge-style instances with
        // thousands of vertices, generated in a bounded amount of time
        // (the clique-tree pipeline downstream is linear since the
        // Blair–Peyton rewrite, so generation is the remaining cost).
        // The floor must hold across register counts: the per-diamond
        // yield shrinks as k grows.
        for registers in [8usize, 16, 32] {
            let params = ChallengeParams::at_scale(5000, registers);
            let mut r = crate::rng(1);
            let inst = challenge_instance(&params, &mut r);
            assert!(
                inst.affinity_graph.graph.num_vertices() >= 5000,
                "k = {registers}: got {} vertices",
                inst.affinity_graph.graph.num_vertices()
            );
            assert!(inst.affinity_graph.num_affinities() > 0);
        }
    }

    #[test]
    fn strategies_can_run_on_challenge_instances() {
        use coalesce_core::conservative::{conservative_coalesce, ConservativeRule};
        let mut r = crate::rng(9);
        let inst = challenge_instance(&ChallengeParams::default(), &mut r);
        let res = conservative_coalesce(
            &inst.affinity_graph,
            inst.registers,
            ConservativeRule::BriggsGeorge,
        );
        assert!(res.stats.coalesced <= inst.affinity_graph.num_affinities());
    }
}
