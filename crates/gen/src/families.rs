//! Named graph families used by the benchmarks and the complexity
//! experiments.
//!
//! The NP-completeness constructions and the heuristics behave very
//! differently on structured graphs (cycles, grids, bipartite-like
//! permutation gadgets) than on random ones; this module provides the
//! deterministic families the experiment tables sweep over, plus the
//! classical triangle-free-but-high-chromatic Mycielski family used to
//! stress the gap between clique number and chromatic number (the gap that
//! makes conservative coalescing on arbitrary graphs hard).

use coalesce_graph::{Graph, VertexId};

fn v(i: usize) -> VertexId {
    VertexId::new(i)
}

/// The cycle `C_n` (`n ≥ 3`).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut g = Graph::new(n);
    for i in 0..n {
        g.add_edge(v(i), v((i + 1) % n));
    }
    g
}

/// The path `P_n` (`n ≥ 1`).
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(v(i - 1), v(i));
    }
    g
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in i + 1..n {
            g.add_edge(v(i), v(j));
        }
    }
    g
}

/// The wheel `W_n`: a cycle of `n` vertices plus a hub adjacent to all of
/// them (`n + 1` vertices in total).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn wheel(n: usize) -> Graph {
    let mut g = cycle(n);
    let hub = g.add_vertex();
    for i in 0..n {
        g.add_edge(hub, v(i));
    }
    g
}

/// The `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    let at = |r: usize, c: usize| v(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(at(r, c), at(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(at(r, c), at(r + 1, c));
            }
        }
    }
    g
}

/// The complete bipartite graph `K_{a,b}`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::new(a + b);
    for i in 0..a {
        for j in 0..b {
            g.add_edge(v(i), v(a + j));
        }
    }
    g
}

/// The Mycielskian of `g`: a triangle-free-preserving transformation that
/// raises the chromatic number by one.  Starting from `K_2` and iterating
/// yields the Grötzsch-like family of triangle-free graphs with arbitrary
/// chromatic number — graphs where `ω(G) = 2` but `χ(G)` is large, the
/// regime in which greedy/clique-based reasoning about colorability is
/// maximally wrong.
pub fn mycielskian(g: &Graph) -> Graph {
    let originals: Vec<VertexId> = g.vertices().collect();
    let n = originals.len();
    let mut out = Graph::new(2 * n + 1);
    // Index mapping: original i -> i, shadow of i -> n + i, apex -> 2n.
    let index_of = |x: VertexId| originals.iter().position(|&o| o == x).expect("live vertex");
    for (i, &a) in originals.iter().enumerate() {
        for b in g.neighbors(a) {
            let j = index_of(b);
            if i < j {
                out.add_edge(v(i), v(j)); // original edges
            }
            // Shadow of i is adjacent to the neighbors of i (originals).
            out.add_edge(v(n + i), v(j));
        }
    }
    let apex = v(2 * n);
    for i in 0..n {
        out.add_edge(apex, v(n + i));
    }
    out
}

/// The `i`-th Mycielski graph `M_i` (`M_2 = K_2`, `M_3 = C_5`, `M_4` is the
/// Grötzsch graph): triangle-free with chromatic number `i`.
///
/// # Panics
///
/// Panics if `i < 2`.
pub fn mycielski(i: usize) -> Graph {
    assert!(i >= 2, "the Mycielski family starts at M_2 = K_2");
    let mut g = complete(2);
    for _ in 2..i {
        g = mycielskian(&g);
    }
    g
}

/// The "book" graph used as a chordal stress case: `pages` triangles all
/// sharing one common edge.  Chordal, `ω = 3`.
pub fn triangle_book(pages: usize) -> Graph {
    let mut g = Graph::new(pages + 2);
    g.add_edge(v(0), v(1));
    for p in 0..pages {
        g.add_edge(v(p + 2), v(0));
        g.add_edge(v(p + 2), v(1));
    }
    g
}

/// An interval "staircase": `n` unit intervals each overlapping the next
/// `width` ones — an interval (hence chordal) graph with clique number
/// `width + 1`, the typical shape of straight-line-code interference.
pub fn interval_staircase(n: usize, width: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in i + 1..(i + width + 1).min(n) {
            g.add_edge(v(i), v(j));
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalesce_graph::{chordal, cliques, coloring, greedy, interval};

    #[test]
    fn cycles_paths_and_completes_have_the_expected_sizes() {
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(complete(5).num_edges(), 10);
        assert_eq!(wheel(5).num_edges(), 10);
        assert_eq!(grid(3, 4).num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(complete_bipartite(2, 3).num_edges(), 6);
    }

    #[test]
    fn chordality_of_the_families_is_as_expected() {
        assert!(!chordal::is_chordal(&cycle(4)));
        assert!(chordal::is_chordal(&path(6)));
        assert!(chordal::is_chordal(&complete(4)));
        assert!(chordal::is_chordal(&triangle_book(5)));
        assert!(chordal::is_chordal(&interval_staircase(10, 3)));
        assert!(!chordal::is_chordal(&grid(3, 3)));
    }

    #[test]
    fn interval_staircase_is_an_interval_graph_with_the_right_clique_number() {
        let g = interval_staircase(12, 3);
        assert!(interval::is_interval_graph(&g));
        assert_eq!(cliques::clique_number(&g), 4);
        assert!(greedy::is_greedy_k_colorable(&g, 4));
        assert!(!greedy::is_greedy_k_colorable(&g, 3));
    }

    #[test]
    fn mycielski_graphs_are_triangle_free_with_growing_chromatic_number() {
        for i in 2..=4 {
            let g = mycielski(i);
            assert_eq!(
                cliques::clique_number(&g),
                2.min(g.num_vertices()),
                "M_{i} has a triangle"
            );
            assert_eq!(coloring::chromatic_number(&g), i, "χ(M_{i})");
        }
        // M_3 is the 5-cycle.
        let m3 = mycielski(3);
        assert_eq!(m3.num_vertices(), 5);
        assert_eq!(m3.num_edges(), 5);
    }

    #[test]
    fn wheel_chromatic_number_depends_on_cycle_parity() {
        // Even rims are 2-chromatic, so the wheel needs 3 colors; odd rims
        // are 3-chromatic, so the wheel needs 4.
        assert_eq!(coloring::chromatic_number(&wheel(4)), 3);
        assert_eq!(coloring::chromatic_number(&wheel(5)), 4);
        assert_eq!(coloring::chromatic_number(&wheel(6)), 3);
        assert_eq!(coloring::chromatic_number(&wheel(7)), 4);
    }

    #[test]
    fn grid_is_bipartite() {
        let g = grid(4, 4);
        assert_eq!(coloring::chromatic_number(&g), 2);
        assert!(greedy::is_greedy_k_colorable(&g, 3));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycles_are_rejected() {
        let _ = cycle(2);
    }
}
