//! Random graph generators.

use coalesce_graph::{Graph, VertexId};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Erdős–Rényi random graph `G(n, p)`.
pub fn random_graph(n: usize, p: f64, rng: &mut ChaCha8Rng) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in i + 1..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(VertexId::new(i), VertexId::new(j));
            }
        }
    }
    g
}

/// Random interval graph on `n` vertices: each vertex is an interval with a
/// random start in `0..span` and a random length in `1..=max_len`.  Interval
/// graphs are chordal, so this doubles as a chordal-graph generator whose
/// clique number is the maximum interval overlap.
///
/// Edges are produced by a sweep over the intervals in start order
/// (`O(n log n + n·ω)` rather than the all-pairs `O(n²)`), so the
/// generator scales to the multi-thousand-vertex instances of the E5
/// sweep.  The random draws — and therefore the generated graph — are
/// identical to the old all-pairs implementation for any seed.
pub fn random_interval_graph(
    n: usize,
    span: usize,
    max_len: usize,
    rng: &mut ChaCha8Rng,
) -> (Graph, Vec<(usize, usize)>) {
    let span = span.max(1);
    let max_len = max_len.max(1);
    let intervals: Vec<(usize, usize)> = (0..n)
        .map(|_| {
            let start = rng.gen_range(0..span);
            let len = rng.gen_range(1..=max_len);
            (start, start + len)
        })
        .collect();
    // Sweep: visit intervals by increasing start; the active list holds
    // exactly the earlier-started intervals still covering the current
    // start, and each of them overlaps the new interval.  The overlap
    // pairs are collected into one flat list and handed to the bulk
    // `Graph::from_edges` constructor, so the multi-million-edge E5/E15
    // instances never pay a per-edge sorted insertion.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| intervals[i].0);
    let mut active: Vec<usize> = Vec::new();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for &i in &order {
        let (start, _) = intervals[i];
        active.retain(|&j| intervals[j].1 >= start);
        for &j in &active {
            edges.push((VertexId::new(i), VertexId::new(j)));
        }
        active.push(i);
    }
    (Graph::from_edges(n, edges), intervals)
}

/// Random connected chordal graph built by the "add a vertex adjacent to a
/// random clique" process: vertex `i` is connected to a random clique of at
/// most `max_clique - 1` earlier vertices, which keeps the graph chordal
/// with clique number at most `max_clique`.
pub fn random_chordal_graph(n: usize, max_clique: usize, rng: &mut ChaCha8Rng) -> Graph {
    let mut g = Graph::new(n);
    // cliques[i] = a maximal clique the vertex i belongs to, as a seed for
    // later attachments.
    let mut cliques: Vec<Vec<VertexId>> = Vec::new();
    for i in 0..n {
        let vi = VertexId::new(i);
        if i == 0 {
            cliques.push(vec![vi]);
            continue;
        }
        // Pick an existing clique and a random subset of it.
        let base = &cliques[rng.gen_range(0..cliques.len())];
        let take = rng.gen_range(0..base.len().min(max_clique.saturating_sub(1)) + 1);
        let mut chosen: Vec<VertexId> = base.clone();
        while chosen.len() > take {
            let idx = rng.gen_range(0..chosen.len());
            chosen.swap_remove(idx);
        }
        for &u in &chosen {
            g.add_edge(vi, u);
        }
        chosen.push(vi);
        cliques.push(chosen);
    }
    g
}

/// Random greedy-`k`-colorable graph: a random graph repaired by removing
/// edges from its high-degree core until the greedy elimination succeeds.
pub fn random_greedy_k_colorable(n: usize, p: f64, k: usize, rng: &mut ChaCha8Rng) -> Graph {
    let mut g = random_graph(n, p, rng);
    loop {
        match coalesce_graph::greedy::high_degree_core(&g, k) {
            None => return g,
            Some(core) => {
                // Remove a random edge inside the core.
                let edges: Vec<(VertexId, VertexId)> = g
                    .edges()
                    .filter(|(u, v)| core.contains(u) && core.contains(v))
                    .collect();
                let (u, v) = edges[rng.gen_range(0..edges.len())];
                g.remove_edge(u, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalesce_graph::{chordal, cliques, greedy};

    #[test]
    fn random_graph_respects_density_extremes() {
        let mut r = crate::rng(1);
        let empty = random_graph(10, 0.0, &mut r);
        assert_eq!(empty.num_edges(), 0);
        let full = random_graph(10, 1.0, &mut r);
        assert_eq!(full.num_edges(), 45);
    }

    #[test]
    fn interval_graphs_are_chordal() {
        for seed in 0..10 {
            let mut r = crate::rng(seed);
            let (g, _) = random_interval_graph(20, 30, 6, &mut r);
            assert!(chordal::is_chordal(&g), "seed {seed}");
        }
    }

    #[test]
    fn chordal_generator_is_chordal_and_respects_clique_bound() {
        for seed in 0..10 {
            let mut r = crate::rng(seed);
            let g = random_chordal_graph(25, 4, &mut r);
            assert!(chordal::is_chordal(&g), "seed {seed}");
            assert!(cliques::clique_number(&g) <= 4, "seed {seed}");
        }
    }

    #[test]
    fn greedy_generator_output_is_greedy_k_colorable() {
        for seed in 0..5 {
            let mut r = crate::rng(seed);
            let g = random_greedy_k_colorable(20, 0.4, 4, &mut r);
            assert!(greedy::is_greedy_k_colorable(&g, 4), "seed {seed}");
        }
    }

    #[test]
    fn interval_sweep_matches_the_all_pairs_construction() {
        // The sweep-based edge construction must produce exactly the edge
        // set of the reference all-pairs overlap test, for every seed.
        for seed in 0..10 {
            let mut r = crate::rng(seed);
            let (g, intervals) = random_interval_graph(60, 90, 20, &mut r);
            let mut reference = Graph::new(intervals.len());
            for i in 0..intervals.len() {
                for j in i + 1..intervals.len() {
                    let (a1, b1) = intervals[i];
                    let (a2, b2) = intervals[j];
                    if a1.max(a2) <= b1.min(b2) {
                        reference.add_edge(VertexId::new(i), VertexId::new(j));
                    }
                }
            }
            let got: Vec<_> = g.edges().collect();
            let want: Vec<_> = reference.edges().collect();
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn generators_scale_to_thousands_of_vertices() {
        // Both chordal-family generators must handle the multi-thousand
        // sizes the E5 sweep now uses.
        let mut r = crate::rng(3);
        let (g, _) = random_interval_graph(5000, 15000, 2502, &mut r);
        assert_eq!(g.num_vertices(), 5000);
        assert!(chordal::is_chordal(&g));
        let mut r = crate::rng(4);
        let h = random_chordal_graph(5000, 8, &mut r);
        assert_eq!(h.num_vertices(), 5000);
        assert!(chordal::is_chordal(&h));
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = random_graph(15, 0.3, &mut crate::rng(42));
        let b = random_graph(15, 0.3, &mut crate::rng(42));
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }
}
