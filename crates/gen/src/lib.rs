//! Workload generators for the coalescing experiments.
//!
//! The paper's empirical context — the Appel–George "coalescing challenge",
//! permutations of values at high register pressure, SSA programs — is not
//! redistributable, so this crate generates synthetic workloads with the
//! same structural signatures:
//!
//! * [`graphs`] — random graphs, random interval/chordal graphs, random
//!   greedy-`k`-colorable graphs;
//! * [`programs`] — random structured SSA programs (straight-line blocks and
//!   if/else diamonds with φ-functions) with a configurable register
//!   pressure;
//! * [`cfg`] — SPEC-like structured CFGs: nested natural loops with
//!   loop-carried φs, if/else and switch regions, call-clobber points and
//!   shape profiles, reducible by construction (with an irreducible knob);
//! * [`module`] — whole modules: 1000+-function translation units whose
//!   per-function shape/pressure/size mix is drawn from one seeded stream,
//!   with independently seeded function bodies safe to generate in
//!   parallel;
//! * [`permutation`] — the Figure 3 gadgets: a permutation of `n` values to
//!   be implemented by parallel moves, optionally embedded in a high-degree
//!   context where the local Briggs/George rules fail;
//! * [`challenge`] — "coalescing challenge"-style instances: interference
//!   graphs of generated programs after spilling to `Maxlive ≤ k` and
//!   translating out of SSA, carrying many parallel-copy affinities;
//! * [`trace`] — seeded mixed-workload JSONL request traces for the
//!   allocation service (`coalesce-serve`) and its E18 chaos soak.
//!
//! All generators take an explicit seed and are fully deterministic.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cfg;
pub mod challenge;
pub mod families;
pub mod graphs;
pub mod module;
pub mod permutation;
pub mod programs;
pub mod trace;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Creates the deterministic RNG used by every generator in this crate.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}
