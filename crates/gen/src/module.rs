//! Module-scale workloads: many functions drawn from a seeded profile mix.
//!
//! Real allocator benchmarks (SPEC builds, browser translation units)
//! present the allocator with *modules* of hundreds to thousands of small
//! and medium functions, not one large CFG.  This generator models that
//! shape: [`module_specs`] draws a per-function [`ShapeProfile`] ×
//! [`PressureLevel`] × size mix from one seeded stream, and each resulting
//! [`FunctionSpec`] carries its own derived seed so the actual function
//! bodies can be generated *independently* — in any order, on any thread —
//! without perturbing each other.  This is what lets the E16 experiment fan
//! whole-module allocation over a scoped thread pool and still produce
//! byte-identical output for any `--jobs` value.

use crate::cfg::{self, CfgParams, PressureLevel, ShapeProfile};
use coalesce_ir::function::Function;
use rand::{Rng, RngCore};

/// Parameters of the module generator.
#[derive(Debug, Clone, Copy)]
pub struct ModuleParams {
    /// Number of functions in the module.
    pub functions: usize,
}

impl Default for ModuleParams {
    fn default() -> Self {
        ModuleParams { functions: 1000 }
    }
}

/// A fully determined recipe for one function of a module.
///
/// The spec is cheap to produce (no IR is built) and self-contained:
/// [`FunctionSpec::generate`] depends only on the spec's own fields, so
/// specs can be fanned out to worker threads while the serial drawing in
/// [`module_specs`] fixes the mix once up front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionSpec {
    /// Position of the function within the module.
    pub index: usize,
    /// Shape profile drawn for this function.
    pub profile: ShapeProfile,
    /// Pressure level drawn for this function.
    pub pressure: PressureLevel,
    /// Number of top-level regions (function size class, 1–3).
    pub regions: usize,
    /// Independent seed for the function body.
    pub seed: u64,
}

impl FunctionSpec {
    /// The CFG-generator parameters for this spec: the profile's params at
    /// the drawn pressure, scaled down to the drawn region count so module
    /// functions stay small (the realistic regime — and the one that keeps
    /// a 1000-function module tractable in debug test runs).
    pub fn params(&self) -> CfgParams {
        let mut p = self.profile.params(self.pressure.pressure());
        p.regions = self.regions;
        p.max_depth = 2;
        p
    }

    /// Generates the function body.  Deterministic in the spec alone.
    pub fn generate(&self) -> Function {
        cfg::generate(&self.params(), &mut crate::rng(self.seed))
    }
}

/// Draws the per-function mix of a module from one seeded stream.
///
/// Profiles and pressure levels are drawn uniformly from
/// [`ShapeProfile::ALL`] × [`PressureLevel::ALL`]; sizes are skewed toward
/// small functions (1 region twice as likely as 2 or 3), matching the
/// long-tailed size distribution of real translation units.
pub fn module_specs(params: &ModuleParams, base_seed: u64) -> Vec<FunctionSpec> {
    let mut rng = crate::rng(base_seed);
    (0..params.functions)
        .map(|index| {
            let profile = ShapeProfile::ALL[rng.gen_range(0..ShapeProfile::ALL.len())];
            let pressure = PressureLevel::ALL[rng.gen_range(0..PressureLevel::ALL.len())];
            let regions = match rng.gen_range(0..4) {
                0 | 1 => 1,
                2 => 2,
                _ => 3,
            };
            let seed = rng.next_u64();
            FunctionSpec {
                index,
                profile,
                pressure,
                regions,
                seed,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_deterministic_and_independent() {
        let params = ModuleParams { functions: 32 };
        let a = module_specs(&params, 7);
        let b = module_specs(&params, 7);
        assert_eq!(a, b);
        let c = module_specs(&params, 8);
        assert_ne!(a, c);
        // Each spec regenerates the same function on its own.
        let f1 = a[5].generate();
        let f2 = a[5].generate();
        assert_eq!(format!("{f1}"), format!("{f2}"));
    }

    #[test]
    fn generated_module_functions_are_valid_strict_ssa() {
        let params = ModuleParams { functions: 12 };
        for spec in module_specs(&params, 42) {
            let f = spec.generate();
            assert!(f.validate().is_ok(), "spec {spec:?}");
            assert!(coalesce_ir::ssa::is_strict(&f), "spec {spec:?}");
        }
    }

    #[test]
    fn the_mix_covers_every_profile_and_pressure() {
        let params = ModuleParams { functions: 200 };
        let specs = module_specs(&params, 1);
        for profile in ShapeProfile::ALL {
            assert!(specs.iter().any(|s| s.profile == profile), "{profile}");
        }
        for pressure in PressureLevel::ALL {
            assert!(specs.iter().any(|s| s.pressure == pressure));
        }
        assert!(specs.iter().any(|s| s.regions == 1));
        assert!(specs.iter().any(|s| s.regions == 3));
    }
}
