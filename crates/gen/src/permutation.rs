//! The Figure 3 gadgets: permutations of values and the incremental trap.

use coalesce_core::affinity::{Affinity, AffinityGraph};
use coalesce_graph::{Graph, VertexId};

/// Builds the interference/affinity pattern of a permutation of `n` values
/// (Figure 3, left): sources `u_1..u_n` are simultaneously live before the
/// parallel copy, destinations `v_1..v_n` after it, and the affinity
/// `(u_i, v_i)` represents the move `v_i = u_σ(i)` for the identity-like
/// pairing used in the figure.
///
/// `context` extra vertices, each interfering with every `u_i` and `v_i`
/// and with each other, model surrounding register pressure: with
/// `context = k - n` the pressure reaches `k` and the local rules of §4
/// start failing while the permutation is still coalescible.
pub fn permutation_instance(n: usize, context: usize) -> AffinityGraph {
    // Sources pairwise interfere, destinations pairwise interfere, and u_i
    // interferes with every v_j except j = i (the value it carries).
    let mut g = Graph::new(2 * n + context);
    let u = |i: usize| VertexId::new(i);
    let v = |i: usize| VertexId::new(n + i);
    let c = |i: usize| VertexId::new(2 * n + i);
    for i in 0..n {
        for j in i + 1..n {
            g.add_edge(u(i), u(j));
            g.add_edge(v(i), v(j));
        }
    }
    for i in 0..n {
        for j in 0..n {
            if i != j {
                g.add_edge(u(i), v(j));
            }
        }
    }
    for x in 0..context {
        for i in 0..n {
            g.add_edge(c(x), u(i));
            g.add_edge(c(x), v(i));
        }
        for y in x + 1..context {
            g.add_edge(c(x), c(y));
        }
    }
    let affinities = (0..n).map(|i| Affinity::new(u(i), v(i))).collect();
    AffinityGraph::new(g, affinities)
}

/// The incremental trap of Figure 3 (right): a greedy-3-colorable graph
/// with two affinities `(a, b)` and `(a, c)` such that coalescing **both**
/// keeps the graph greedy-3-colorable but coalescing `(a, b)` alone does
/// not — an incremental, one-affinity-at-a-time strategy that starts with
/// `(a, b)` is stuck, while the simultaneous coalescing is conservative.
pub fn incremental_trap() -> AffinityGraph {
    let mut g = Graph::new(6);
    let v = VertexId::new;
    let (a, b, c, x, y, z) = (v(0), v(1), v(2), v(3), v(4), v(5));
    g.add_edge(x, z);
    g.add_edge(y, z);
    g.add_edge(b, x);
    g.add_edge(b, y);
    g.add_edge(c, x);
    g.add_edge(c, y);
    g.add_edge(c, z);
    g.add_edge(a, z);
    AffinityGraph::new(g, vec![Affinity::new(a, b), Affinity::new(a, c)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalesce_core::conservative::{brute_force_test, conservative_coalesce, ConservativeRule};
    use coalesce_graph::greedy;

    #[test]
    fn permutation_instance_shape() {
        let ag = permutation_instance(4, 0);
        assert_eq!(ag.graph.num_vertices(), 8);
        assert_eq!(ag.num_affinities(), 4);
        // Sources form a clique, destinations form a clique.
        assert_eq!(ag.graph.num_edges(), 6 + 6 + 12);
    }

    #[test]
    fn permutation_is_fully_coalescible_simultaneously() {
        // Coalescing every (u_i, v_i) at once yields K_n: greedy-n-colorable.
        let n = 4;
        let ag = permutation_instance(n, 0);
        let res = coalesce_core::aggressive::aggressive_heuristic(&ag);
        assert_eq!(res.stats.uncoalesced(), 0);
        let merged = &res.coalescing.merged_graph;
        assert_eq!(merged.num_vertices(), n);
        assert!(greedy::is_greedy_k_colorable(merged, n));
    }

    #[test]
    fn context_pressure_defeats_local_rules_but_not_simultaneous_coalescing() {
        // Figure 3: permutation of 4 values under surrounding pressure with
        // k = 6.  Every merged vertex would have 6 or more significant
        // neighbors, so the local Briggs rule (and even the one-affinity-at-
        // a-time brute-force check) refuses every single move, yet
        // coalescing all four moves *simultaneously* yields a K6, which is
        // greedy-6-colorable.
        let n = 4;
        let k = 6;
        let ag = permutation_instance(n, k - n);
        let briggs = conservative_coalesce(&ag, k, ConservativeRule::Briggs);
        assert_eq!(briggs.stats.coalesced, 0);
        let incremental_brute = conservative_coalesce(&ag, k, ConservativeRule::BruteForce);
        assert_eq!(incremental_brute.stats.coalesced, 0);
        // Simultaneous coalescing of the whole permutation.
        let all = coalesce_core::aggressive::aggressive_heuristic(&ag);
        assert_eq!(all.stats.uncoalesced(), 0);
        assert!(greedy::is_greedy_k_colorable(
            &all.coalescing.merged_graph,
            k
        ));
    }

    #[test]
    fn trap_matches_the_figure_3_description() {
        let ag = incremental_trap();
        assert!(greedy::is_greedy_k_colorable(&ag.graph, 3));
        let (a, b, c) = (VertexId::new(0), VertexId::new(1), VertexId::new(2));
        assert!(!brute_force_test(&ag.graph, 3, a, b));
        let mut both = ag.graph.clone();
        both.merge(a, b);
        both.merge(a, c);
        assert!(greedy::is_greedy_k_colorable(&both, 3));
    }
}
