//! Random structured SSA program generator.

use coalesce_ir::function::{Function, FunctionBuilder, Var};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Parameters of the program generator.
#[derive(Debug, Clone, Copy)]
pub struct ProgramParams {
    /// Number of if/else diamonds chained one after another.
    pub diamonds: usize,
    /// Number of ordinary operations per basic block.
    pub ops_per_block: usize,
    /// Target number of simultaneously live values the generator tries to
    /// maintain (register pressure knob).
    pub pressure: usize,
    /// Number of φ-functions created at each join block.
    pub phis_per_join: usize,
}

impl Default for ProgramParams {
    fn default() -> Self {
        ProgramParams {
            diamonds: 3,
            ops_per_block: 4,
            pressure: 6,
            phis_per_join: 2,
        }
    }
}

/// Generates a strict SSA program made of a chain of if/else diamonds.
///
/// Every block defines fresh values from randomly chosen live values; each
/// join block defines `phis_per_join` φ-functions merging values produced
/// in the two branches, which become affinities (and, after out-of-SSA
/// translation, explicit copies).
pub fn random_ssa_program(params: &ProgramParams, rng: &mut ChaCha8Rng) -> Function {
    let mut b = FunctionBuilder::new("generated");
    let entry = b.entry_block();
    let mut live: Vec<Var> = Vec::new();
    // Workload variables are unnamed (no per-var name allocation);
    // Display falls back to dense `%i` indices.
    for _ in 0..params.pressure.max(1) {
        live.push(b.def(entry, ""));
    }
    let mut current = entry;

    for _ in 0..params.diamonds {
        // Straight-line ops in the current block.
        for _ in 0..params.ops_per_block {
            let uses = pick_uses(&live, rng);
            let v = b.op(current, "", &uses);
            push_live(&mut live, v, params.pressure, rng);
        }
        // Branch on a fresh condition.
        let cond = b.def(current, "");
        let then_block = b.new_block();
        let else_block = b.new_block();
        let join = b.new_block();
        b.branch(current, cond, then_block, else_block);

        // Each branch defines candidate values for the φs plus some noise.
        let mut then_vals = Vec::new();
        let mut else_vals = Vec::new();
        for _ in 0..params.phis_per_join.max(1) {
            let uses_t = pick_uses(&live, rng);
            then_vals.push(b.op(then_block, "", &uses_t));
            let uses_e = pick_uses(&live, rng);
            else_vals.push(b.op(else_block, "", &uses_e));
        }
        for _ in 0..params.ops_per_block / 2 {
            let uses = pick_uses(&live, rng);
            let _ = b.op(then_block, "", &uses);
            let uses = pick_uses(&live, rng);
            let _ = b.op(else_block, "", &uses);
        }
        b.jump(then_block, join);
        b.jump(else_block, join);

        for i in 0..params.phis_per_join {
            let p = b.phi(
                join,
                "",
                &[(then_block, then_vals[i]), (else_block, else_vals[i])],
            );
            push_live(&mut live, p, params.pressure, rng);
        }
        current = join;
    }
    // Final uses so the surviving values are live until the end.  They are
    // consumed pairwise (rather than by one wide `return`) so that no single
    // instruction needs more operands than two: an instruction of arity `a`
    // forces `Maxlive ≥ a` no matter how much is spilled, which would make
    // "spill down to k" instances impossible for small k.
    let tail: Vec<Var> = live.iter().copied().take(params.pressure).collect();
    for pair in tail.chunks(2) {
        b.effect(current, pair);
    }
    b.ret(current, &[]);
    let f = b.finish();
    debug_assert!(
        coalesce_ir::ssa::is_strict(&f),
        "generator must emit strict SSA"
    );
    f
}

fn pick_uses(live: &[Var], rng: &mut ChaCha8Rng) -> Vec<Var> {
    if live.is_empty() {
        return Vec::new();
    }
    let count = rng.gen_range(1..=2.min(live.len()));
    (0..count)
        .map(|_| live[rng.gen_range(0..live.len())])
        .collect()
}

fn push_live(live: &mut Vec<Var>, v: Var, pressure: usize, rng: &mut ChaCha8Rng) {
    live.push(v);
    while live.len() > pressure.max(1) {
        let idx = rng.gen_range(0..live.len());
        live.swap_remove(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalesce_graph::chordal;
    use coalesce_ir::interference::{BuildOptions, InterferenceGraph, InterferenceKind};
    use coalesce_ir::{liveness::Liveness, ssa};

    #[test]
    fn generated_programs_are_valid_strict_ssa() {
        for seed in 0..8 {
            let mut r = crate::rng(seed);
            let f = random_ssa_program(&ProgramParams::default(), &mut r);
            assert!(f.validate().is_ok(), "seed {seed}");
            assert!(ssa::is_ssa(&f), "seed {seed}");
            assert!(ssa::is_strict(&f), "seed {seed}");
            assert!(f.num_phis() > 0);
        }
    }

    #[test]
    fn theorem_1_holds_on_generated_programs() {
        // The interference graph of every generated strict SSA program is
        // chordal with clique number Maxlive.
        for seed in 0..8 {
            let mut r = crate::rng(seed);
            let f = random_ssa_program(&ProgramParams::default(), &mut r);
            let live = Liveness::compute(&f);
            let ig = InterferenceGraph::build_with(
                &f,
                &live,
                BuildOptions {
                    kind: InterferenceKind::Intersection,
                    ..Default::default()
                },
            );
            assert!(chordal::is_chordal(&ig.graph), "seed {seed}");
            let omega = chordal::chordal_clique_number(&ig.graph).unwrap();
            assert_eq!(omega, live.maxlive_precise(&f), "seed {seed}");
        }
    }

    #[test]
    fn pressure_parameter_controls_maxlive() {
        let mut r1 = crate::rng(7);
        let low = random_ssa_program(
            &ProgramParams {
                pressure: 3,
                ..Default::default()
            },
            &mut r1,
        );
        let mut r2 = crate::rng(7);
        let high = random_ssa_program(
            &ProgramParams {
                pressure: 10,
                ..Default::default()
            },
            &mut r2,
        );
        let ml_low = Liveness::compute(&low).maxlive_precise(&low);
        let ml_high = Liveness::compute(&high).maxlive_precise(&high);
        assert!(ml_high > ml_low);
    }

    #[test]
    fn generator_is_deterministic() {
        let a = random_ssa_program(&ProgramParams::default(), &mut crate::rng(11));
        let b = random_ssa_program(&ProgramParams::default(), &mut crate::rng(11));
        assert_eq!(a.to_string(), b.to_string());
    }
}
