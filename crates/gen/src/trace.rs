//! Seeded mixed-workload request traces for the allocation service.
//!
//! A trace is a deterministic sequence of JSONL request lines covering
//! every request kind the server speaks — inline DIMACS graphs, inline
//! challenge instances, generated CFG workloads, and module slices — with
//! a configurable sprinkle of already-expired deadlines and tiny work
//! budgets so the degradation ladder is exercised, not just the happy
//! path.  Instance texts are drawn from small per-kind pools, so repeated
//! graphs hit the server's prepared-session caches the way a real client
//! replaying hot functions would.
//!
//! The trace contains only *well-formed* lines; fault injection
//! (truncation, count inflation, garbage bytes, ...) is layered on top by
//! the E18 soak using `coalesce_verify::mutation::TextFault`, which keeps
//! the corruption catalogue next to the verifier that motivates it.

use crate::cfg::{PressureLevel, ShapeProfile};
use crate::challenge::{challenge_instance, ChallengeParams};
use crate::graphs::{random_chordal_graph, random_graph};
use coalesce_core::AffinityGraph;
use coalesce_graph::Graph;
use coalesce_stats::json::Json;
use rand::Rng;

/// Trace shape knobs.
#[derive(Debug, Clone)]
pub struct TraceParams {
    /// Number of request lines to generate.
    pub requests: usize,
    /// Percent of requests stamped with `deadline_ms: 0` (expired at
    /// pickup — the only deadline value that behaves deterministically).
    pub expired_deadline_percent: u32,
    /// Percent of requests stamped with a tiny work budget, forcing the
    /// ladder to degrade.
    pub tiny_budget_percent: u32,
    /// Distinct instances per text pool (smaller = hotter caches).
    pub pool_size: usize,
    /// Largest `count` a `module_slice` request asks for.
    pub max_slice: usize,
}

impl Default for TraceParams {
    fn default() -> Self {
        TraceParams {
            requests: 512,
            expired_deadline_percent: 5,
            tiny_budget_percent: 5,
            pool_size: 12,
            max_slice: 4,
        }
    }
}

/// One generated request: the wire line plus the labels reports bucket
/// by.
#[derive(Debug, Clone)]
pub struct TraceRequest {
    /// The request id embedded in the line (1-based position).
    pub id: u64,
    /// The request kind label (`dimacs` / `challenge` / `cfg` /
    /// `module_slice`).
    pub kind: &'static str,
    /// True when the line carries `deadline_ms: 0`.
    pub expired_deadline: bool,
    /// True when the line carries a tiny `budget`.
    pub tiny_budget: bool,
    /// The JSONL request line (no trailing newline).
    pub line: String,
}

/// Serializes a graph as DIMACS `.col` text (1-based vertex ids).
pub fn dimacs_text(g: &Graph) -> String {
    let mut out = format!("p edge {} {}\n", g.capacity(), g.num_edges());
    for (u, v) in g.edges() {
        out.push_str(&format!("e {} {}\n", u.index() + 1, v.index() + 1));
    }
    out
}

/// Serializes an affinity graph as challenge text (1-based vertex ids).
pub fn challenge_text(ag: &AffinityGraph, registers: usize) -> String {
    let mut out = format!(
        "p coalesce {} {} {}\nk {}\n",
        ag.graph.capacity(),
        ag.graph.num_edges(),
        ag.affinities.len(),
        registers
    );
    for (u, v) in ag.graph.edges() {
        out.push_str(&format!("e {} {}\n", u.index() + 1, v.index() + 1));
    }
    for aff in &ag.affinities {
        out.push_str(&format!(
            "a {} {} {}\n",
            aff.a.index() + 1,
            aff.b.index() + 1,
            aff.weight
        ));
    }
    out
}

/// Generates the deterministic request trace for `seed`.
pub fn trace(params: &TraceParams, seed: u64) -> Vec<TraceRequest> {
    let mut rng = crate::rng(seed);
    let pool = params.pool_size.max(1);

    // Per-kind instance pools, generated up front from dedicated seeds so
    // the request mix and the instance contents draw from independent
    // streams.
    let graph_pool: Vec<String> = (0..pool)
        .map(|i| {
            let mut grng = crate::rng(seed ^ 0x6772_6170_6800 | i as u64);
            let n = 8 + (i % 5) * 7;
            let g = if i % 2 == 0 {
                random_chordal_graph(n, 4 + i % 4, &mut grng)
            } else {
                random_graph(n, 0.25, &mut grng)
            };
            dimacs_text(&g)
        })
        .collect();
    let challenge_pool: Vec<String> = (0..pool.min(6))
        .map(|i| {
            let mut crng = crate::rng(seed ^ 0x6368_616c_6c00 | i as u64);
            let cparams = ChallengeParams::at_scale(24 + i * 8, 4 + i % 3);
            let inst = challenge_instance(&cparams, &mut crng);
            challenge_text(&inst.affinity_graph, inst.registers)
        })
        .collect();

    (0..params.requests)
        .map(|i| {
            let id = i as u64 + 1;
            let mut fields: Vec<(String, Json)> = vec![("id".to_string(), Json::UInt(id))];
            let kind = match rng.gen_range(0..100) {
                0..=29 => {
                    let text = &graph_pool[rng.gen_range(0..graph_pool.len())];
                    fields.push(("kind".to_string(), Json::from("dimacs")));
                    fields.push(("text".to_string(), Json::from(text.as_str())));
                    if rng.gen_range(0..100) < 60 {
                        fields.push(("k".to_string(), Json::from(rng.gen_range(2..9usize))));
                    }
                    "dimacs"
                }
                30..=54 => {
                    let text = &challenge_pool[rng.gen_range(0..challenge_pool.len())];
                    fields.push(("kind".to_string(), Json::from("challenge")));
                    fields.push(("text".to_string(), Json::from(text.as_str())));
                    "challenge"
                }
                55..=79 => {
                    let profile = ShapeProfile::ALL[rng.gen_range(0..ShapeProfile::ALL.len())];
                    let pressure = PressureLevel::ALL[rng.gen_range(0..PressureLevel::ALL.len())];
                    fields.push(("kind".to_string(), Json::from("cfg")));
                    fields.push(("profile".to_string(), Json::from(profile.name())));
                    fields.push(("pressure".to_string(), Json::from(pressure.name())));
                    fields.push(("seed".to_string(), Json::UInt(rng.gen_range(0..32u64))));
                    "cfg"
                }
                _ => {
                    let count = rng.gen_range(1..=params.max_slice.max(1));
                    let start = rng.gen_range(0..64usize);
                    fields.push(("kind".to_string(), Json::from("module_slice")));
                    fields.push(("seed".to_string(), Json::UInt(40 + rng.gen_range(0..3u64))));
                    fields.push(("start".to_string(), Json::from(start)));
                    fields.push(("count".to_string(), Json::from(count)));
                    "module_slice"
                }
            };
            let expired_deadline = rng.gen_range(0..100) < params.expired_deadline_percent;
            if expired_deadline {
                fields.push(("deadline_ms".to_string(), Json::UInt(0)));
            }
            let tiny_budget =
                !expired_deadline && rng.gen_range(0..100) < params.tiny_budget_percent;
            if tiny_budget {
                fields.push(("budget".to_string(), Json::UInt(10)));
            }
            TraceRequest {
                id,
                kind,
                expired_deadline,
                tiny_budget,
                line: Json::Object(fields).to_compact_string(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_mixed() {
        let params = TraceParams {
            requests: 200,
            ..TraceParams::default()
        };
        let a = trace(&params, 42);
        let b = trace(&params, 42);
        assert_eq!(a.len(), 200);
        assert_eq!(
            a.iter().map(|r| r.line.clone()).collect::<Vec<_>>(),
            b.iter().map(|r| r.line.clone()).collect::<Vec<_>>(),
            "same seed, same bytes"
        );
        for kind in ["dimacs", "challenge", "cfg", "module_slice"] {
            assert!(
                a.iter().any(|r| r.kind == kind),
                "200 requests must include some `{kind}`"
            );
        }
        assert!(a.iter().any(|r| r.expired_deadline));
        assert!(a.iter().any(|r| r.tiny_budget));
        let c = trace(&params, 43);
        assert_ne!(
            a.iter().map(|r| r.line.clone()).collect::<Vec<_>>(),
            c.iter().map(|r| r.line.clone()).collect::<Vec<_>>(),
            "different seeds differ"
        );
    }

    #[test]
    fn every_line_is_valid_json_with_the_advertised_id() {
        let params = TraceParams {
            requests: 64,
            ..TraceParams::default()
        };
        for req in trace(&params, 7) {
            let doc = Json::parse(&req.line).expect("trace lines are valid JSON");
            assert_eq!(doc.get("id").and_then(Json::as_u64), Some(req.id));
            assert_eq!(
                doc.get("kind").and_then(Json::as_str),
                Some(req.kind),
                "kind label matches the wire field"
            );
        }
    }

    #[test]
    fn serialized_instances_round_trip_through_the_parsers() {
        let mut rng = crate::rng(3);
        let g = random_graph(20, 0.3, &mut rng);
        let parsed = coalesce_graph::format::from_dimacs(&dimacs_text(&g)).expect("round trip");
        assert_eq!(parsed.num_edges(), g.num_edges());

        let inst = challenge_instance(&ChallengeParams::at_scale(30, 4), &mut rng);
        let text = challenge_text(&inst.affinity_graph, inst.registers);
        let file = coalesce_graph::format::from_challenge(&text).expect("round trip");
        assert_eq!(
            file.graph.num_edges(),
            inst.affinity_graph.graph.num_edges()
        );
        assert_eq!(file.affinities.len(), inst.affinity_graph.affinities.len());
        assert_eq!(file.registers, Some(inst.registers));
    }
}
