//! Chordal graph machinery: Maximum Cardinality Search, perfect elimination
//! orderings, chordality testing, optimal coloring of chordal graphs, and
//! clique number computation.
//!
//! Chordal graphs are central to the paper: Theorem 1 shows that the
//! interference graph of a strict SSA program is chordal with clique number
//! equal to `Maxlive`, and Theorem 5 gives a polynomial incremental
//! conservative coalescing algorithm on chordal graphs.
//!
//! A graph is *chordal* iff every cycle of length at least 4 has a chord,
//! or equivalently iff it admits a *perfect elimination ordering* (PEO):
//! an ordering `v1, ..., vn` such that for every `vi`, the neighbors of
//! `vi` occurring **later** in the ordering form a clique.  Maximum
//! Cardinality Search (MCS) produces such an ordering exactly when the
//! graph is chordal (Golumbic, *Algorithmic Graph Theory and Perfect
//! Graphs*, the reference [20] of the paper).

use crate::coloring::Coloring;
use crate::graph::{Graph, VertexId};
use std::collections::BTreeSet;

/// Runs Maximum Cardinality Search on the live part of `g`.
///
/// Returns the vertices in **elimination order**: the returned sequence is a
/// perfect elimination ordering iff `g` is chordal.  (MCS itself numbers
/// vertices from `n` down to `1`; we return the order `1..n`, i.e. the
/// reverse of the visit order.)
///
/// ```
/// use coalesce_graph::{Graph, chordal};
/// let g = Graph::with_edges(3, [(0.into(), 1.into()), (1.into(), 2.into())]);
/// let order = chordal::maximum_cardinality_search(&g);
/// assert_eq!(order.len(), 3);
/// ```
pub fn maximum_cardinality_search(g: &Graph) -> Vec<VertexId> {
    let cap = g.capacity();
    let mut weight = vec![0usize; cap];
    let mut visited = vec![false; cap];
    let mut visit_order = Vec::with_capacity(g.num_vertices());
    // Buckets of vertices by weight for O((V+E) log V)-ish behaviour without
    // a dedicated priority structure; graphs here are small enough.
    for _ in 0..g.num_vertices() {
        let v = g
            .vertices()
            .filter(|v| !visited[v.index()])
            .max_by_key(|v| weight[v.index()])
            .expect("live vertex must exist");
        visited[v.index()] = true;
        visit_order.push(v);
        for u in g.neighbors(v) {
            if !visited[u.index()] {
                weight[u.index()] += 1;
            }
        }
    }
    visit_order.reverse();
    visit_order
}

/// Checks whether `order` (a permutation of the live vertices of `g`) is a
/// perfect elimination ordering of `g`.
///
/// Uses the classical parent test: for each vertex `v`, let `p` be its first
/// later neighbor in the order; every other later neighbor of `v` must also
/// be a neighbor of `p`.
pub fn is_perfect_elimination_ordering(g: &Graph, order: &[VertexId]) -> bool {
    if order.len() != g.num_vertices() {
        return false;
    }
    let cap = g.capacity();
    let mut position = vec![usize::MAX; cap];
    for (i, &v) in order.iter().enumerate() {
        if !g.is_live(v) || position[v.index()] != usize::MAX {
            return false;
        }
        position[v.index()] = i;
    }
    for &v in order {
        let pv = position[v.index()];
        // Later neighbors of v.
        let mut later: Vec<VertexId> = g
            .neighbors(v)
            .filter(|u| position[u.index()] > pv)
            .collect();
        if later.len() <= 1 {
            continue;
        }
        later.sort_by_key(|u| position[u.index()]);
        let parent = later[0];
        for &u in &later[1..] {
            if !g.has_edge(parent, u) {
                return false;
            }
        }
    }
    true
}

/// Returns a perfect elimination ordering of `g`, or `None` if `g` is not
/// chordal.
pub fn perfect_elimination_ordering(g: &Graph) -> Option<Vec<VertexId>> {
    let order = maximum_cardinality_search(g);
    if is_perfect_elimination_ordering(g, &order) {
        Some(order)
    } else {
        None
    }
}

/// Returns `true` iff the live part of `g` is a chordal graph.
///
/// ```
/// use coalesce_graph::{Graph, chordal};
/// // C4 is the smallest non-chordal graph.
/// let c4 = Graph::with_edges(4, [
///     (0.into(), 1.into()), (1.into(), 2.into()),
///     (2.into(), 3.into()), (3.into(), 0.into()),
/// ]);
/// assert!(!chordal::is_chordal(&c4));
/// ```
pub fn is_chordal(g: &Graph) -> bool {
    perfect_elimination_ordering(g).is_some()
}

/// Returns `true` if `v` is a *simplicial* vertex of `g`, i.e. its
/// neighborhood is a clique.  Every chordal graph has a simplicial vertex
/// (used by Property 1 of the paper).
pub fn is_simplicial(g: &Graph, v: VertexId) -> bool {
    let nbrs: Vec<VertexId> = g.neighbors(v).collect();
    g.is_clique(&nbrs)
}

/// Finds a simplicial vertex of `g`, if any.
pub fn find_simplicial_vertex(g: &Graph) -> Option<VertexId> {
    g.vertices().find(|&v| is_simplicial(g, v))
}

/// Computes the clique number `ω(G)` of a **chordal** graph from a perfect
/// elimination ordering, in linear time: `ω(G) = 1 + max_v |later
/// neighbors of v|`.
///
/// Returns `None` if `g` is not chordal (use [`crate::cliques`] for general
/// graphs).
pub fn chordal_clique_number(g: &Graph) -> Option<usize> {
    let order = perfect_elimination_ordering(g)?;
    if order.is_empty() {
        return Some(0);
    }
    let cap = g.capacity();
    let mut position = vec![usize::MAX; cap];
    for (i, &v) in order.iter().enumerate() {
        position[v.index()] = i;
    }
    let mut omega = 1;
    for &v in &order {
        let later = g
            .neighbors(v)
            .filter(|u| position[u.index()] > position[v.index()])
            .count();
        omega = omega.max(later + 1);
    }
    Some(omega)
}

/// Enumerates the maximal cliques of a **chordal** graph.
///
/// For each vertex `v` in a perfect elimination ordering, the set
/// `{v} ∪ {later neighbors of v}` is a clique; the maximal ones (those not
/// strictly contained in the clique of an earlier vertex) are exactly the
/// maximal cliques of the graph.  A chordal graph on `n` vertices has at
/// most `n` maximal cliques.
///
/// Returns `None` if `g` is not chordal.
pub fn chordal_maximal_cliques(g: &Graph) -> Option<Vec<BTreeSet<VertexId>>> {
    let order = perfect_elimination_ordering(g)?;
    let cap = g.capacity();
    let mut position = vec![usize::MAX; cap];
    for (i, &v) in order.iter().enumerate() {
        position[v.index()] = i;
    }
    let mut cliques: Vec<BTreeSet<VertexId>> = Vec::new();
    for &v in &order {
        let mut clique: BTreeSet<VertexId> = g
            .neighbors(v)
            .filter(|u| position[u.index()] > position[v.index()])
            .collect();
        clique.insert(v);
        if !cliques.iter().any(|c| clique.is_subset(c)) {
            cliques.retain(|c| !c.is_subset(&clique));
            cliques.push(clique);
        }
    }
    if cliques.is_empty() && g.num_vertices() == 0 {
        return Some(Vec::new());
    }
    Some(cliques)
}

/// Optimally colors a **chordal** graph with `ω(G)` colors by coloring the
/// vertices in reverse perfect elimination order, greedily.
///
/// Returns `None` if `g` is not chordal.
pub fn chordal_coloring(g: &Graph) -> Option<Coloring> {
    let order = perfect_elimination_ordering(g)?;
    let mut coloring = Coloring::new(g.capacity());
    for &v in order.iter().rev() {
        let used: BTreeSet<usize> = g
            .neighbors(v)
            .filter_map(|u| coloring.color_of(u))
            .collect();
        let mut c = 0;
        while used.contains(&c) {
            c += 1;
        }
        coloring.assign(v, c);
    }
    Some(coloring)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        Graph::with_edges(
            n,
            (0..n).map(|i| (VertexId::new(i), VertexId::new((i + 1) % n))),
        )
    }

    fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                g.add_edge(i.into(), j.into());
            }
        }
        g
    }

    #[test]
    fn empty_and_single_vertex_are_chordal() {
        assert!(is_chordal(&Graph::new(0)));
        assert!(is_chordal(&Graph::new(1)));
        assert_eq!(chordal_clique_number(&Graph::new(0)), Some(0));
        assert_eq!(chordal_clique_number(&Graph::new(1)), Some(1));
    }

    #[test]
    fn trees_and_cliques_are_chordal() {
        let path = Graph::with_edges(4, (1..4).map(|i| (VertexId::new(i - 1), VertexId::new(i))));
        assert!(is_chordal(&path));
        assert!(is_chordal(&complete(5)));
    }

    #[test]
    fn cycles_of_length_at_least_4_are_not_chordal() {
        assert!(is_chordal(&cycle(3)));
        assert!(!is_chordal(&cycle(4)));
        assert!(!is_chordal(&cycle(5)));
        assert!(!is_chordal(&cycle(6)));
    }

    #[test]
    fn chorded_cycle_is_chordal() {
        let mut g = cycle(5);
        g.add_edge(0.into(), 2.into());
        g.add_edge(0.into(), 3.into());
        assert!(is_chordal(&g));
    }

    #[test]
    fn clique_number_of_clique() {
        assert_eq!(chordal_clique_number(&complete(4)), Some(4));
    }

    #[test]
    fn clique_number_of_triangle_with_pendant() {
        let mut g = complete(3);
        let v = g.add_vertex();
        g.add_edge(v, 0.into());
        assert_eq!(chordal_clique_number(&g), Some(3));
    }

    #[test]
    fn non_chordal_reports_none() {
        assert_eq!(chordal_clique_number(&cycle(4)), None);
        assert!(chordal_coloring(&cycle(4)).is_none());
        assert!(chordal_maximal_cliques(&cycle(4)).is_none());
    }

    #[test]
    fn chordal_coloring_is_optimal_on_interval_like_graph() {
        // Interval graph: [0,2], [1,3], [2,4], [5,6] -> clique number 2... build explicitly:
        let mut g = Graph::new(4);
        g.add_edge(0.into(), 1.into());
        g.add_edge(1.into(), 2.into());
        let coloring = chordal_coloring(&g).unwrap();
        assert!(coloring.is_proper(&g));
        assert_eq!(coloring.num_colors(), 2);
        assert_eq!(chordal_clique_number(&g), Some(2));
    }

    #[test]
    fn chordal_coloring_uses_omega_colors_on_clique() {
        let g = complete(5);
        let c = chordal_coloring(&g).unwrap();
        assert!(c.is_proper(&g));
        assert_eq!(c.num_colors(), 5);
    }

    #[test]
    fn simplicial_vertices() {
        let mut g = complete(3);
        let v = g.add_vertex();
        g.add_edge(v, 0.into());
        assert!(is_simplicial(&g, v));
        assert!(is_simplicial(&g, 1.into()));
        assert!(find_simplicial_vertex(&cycle(4)).is_none());
    }

    #[test]
    fn maximal_cliques_of_two_triangles_sharing_an_edge() {
        // Triangles {0,1,2} and {1,2,3}.
        let g = Graph::with_edges(
            4,
            [
                (0.into(), 1.into()),
                (0.into(), 2.into()),
                (1.into(), 2.into()),
                (1.into(), 3.into()),
                (2.into(), 3.into()),
            ],
        );
        let cliques = chordal_maximal_cliques(&g).unwrap();
        assert_eq!(cliques.len(), 2);
        assert!(cliques.iter().all(|c| c.len() == 3));
    }

    #[test]
    fn peo_check_rejects_wrong_order_on_path() {
        // For the path 0-1-2, the order [1, 0, 2] is not a PEO because 1's
        // later neighbors {0, 2} are not adjacent.
        let g = Graph::with_edges(3, [(0.into(), 1.into()), (1.into(), 2.into())]);
        assert!(!is_perfect_elimination_ordering(
            &g,
            &[1.into(), 0.into(), 2.into()]
        ));
        assert!(is_perfect_elimination_ordering(
            &g,
            &[0.into(), 2.into(), 1.into()]
        ));
    }

    #[test]
    fn peo_check_rejects_non_permutations() {
        let g = Graph::new(2);
        assert!(!is_perfect_elimination_ordering(&g, &[0.into()]));
        assert!(!is_perfect_elimination_ordering(&g, &[0.into(), 0.into()]));
    }
}
