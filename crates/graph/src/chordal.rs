//! Chordal graph machinery: Maximum Cardinality Search, perfect elimination
//! orderings, chordality testing, optimal coloring of chordal graphs, and
//! clique number computation.
//!
//! Chordal graphs are central to the paper: Theorem 1 shows that the
//! interference graph of a strict SSA program is chordal with clique number
//! equal to `Maxlive`, and Theorem 5 gives a polynomial incremental
//! conservative coalescing algorithm on chordal graphs.
//!
//! A graph is *chordal* iff every cycle of length at least 4 has a chord,
//! or equivalently iff it admits a *perfect elimination ordering* (PEO):
//! an ordering `v1, ..., vn` such that for every `vi`, the neighbors of
//! `vi` occurring **later** in the ordering form a clique.  Maximum
//! Cardinality Search (MCS) produces such an ordering exactly when the
//! graph is chordal (Golumbic, *Algorithmic Graph Theory and Perfect
//! Graphs*, the reference [20] of the paper).

use crate::coloring::Coloring;
use crate::graph::{Graph, VertexId};
use std::collections::BTreeSet;

/// The result of one [`mcs_clique_forest`] pass: the MCS visit order, the
/// chordality verdict, and the Blair–Peyton clique-tree skeleton derived
/// from the same run.
///
/// Everything is computed in a single `O(V + E)` sweep (the adjacency
/// rows are flat sorted slices, so the neighbor scans carry no
/// per-element set overhead), which is what
/// makes [`chordal_maximal_cliques`] and
/// [`crate::cliquetree::CliqueTree::build`] linear instead of quadratic.
pub(crate) struct CliqueForest {
    /// Vertices in MCS **visit** order (first visited first).  The reverse
    /// is the elimination order [`maximum_cardinality_search`] returns.
    pub visit_order: Vec<VertexId>,
    /// `true` iff the reverse of `visit_order` is a perfect elimination
    /// ordering, i.e. iff the graph is chordal.  When `false` the clique
    /// and edge fields are meaningless and must not be used.
    pub chordal: bool,
    /// The maximal cliques, in discovery order (at most one per vertex).
    pub cliques: Vec<BTreeSet<VertexId>>,
    /// Clique-tree edges: the Blair–Peyton parent links, plus one
    /// (empty-separator) stitch edge per extra connected component so the
    /// node set always forms a single tree.
    pub tree_edges: Vec<(usize, usize)>,
}

/// Runs MCS with a bucket queue and derives the maximal cliques and the
/// clique-tree edges directly from the run, following Blair & Peyton's
/// clique-tree algorithm (*An Introduction to Chordal Graphs and Clique
/// Trees*, Fig. 4; the MCS treatment is Golumbic's, the paper's reference
/// [20]).
///
/// The visit loop is the classical lazy-deletion bucket queue: every
/// unvisited vertex has a valid entry in `buckets[weight(v)]`, stale
/// entries are skipped on pop, and the running maximum only ever rises by
/// one per visit, so the whole selection costs `O(V + E)`.
///
/// A vertex *starts a new clique* exactly when its visited-neighbor count
/// fails to grow past the previous vertex's (Blair–Peyton); its visited
/// neighborhood `M(v)` seeds the clique and the tree edge goes to the
/// clique of the most recently visited vertex of `M(v)`.  Chordality is
/// then verified by a Tarjan–Yannakakis pass over the elimination order
/// (timestamped neighborhood bitmap, no per-edge set lookups), so the
/// whole routine does `O(V + E)` work, slice scans included.
pub(crate) fn mcs_clique_forest(g: &Graph) -> CliqueForest {
    let cap = g.capacity();
    let n = g.num_vertices();
    let mut weight = vec![0usize; cap];
    let mut visited = vec![false; cap];
    let mut visit_pos = vec![usize::MAX; cap];
    let mut clique_of = vec![usize::MAX; cap];
    let mut visit_order: Vec<VertexId> = Vec::with_capacity(n);
    let mut cliques: Vec<BTreeSet<VertexId>> = Vec::new();
    let mut tree_edges: Vec<(usize, usize)> = Vec::new();

    // buckets[w] holds candidates whose weight may be w; a vertex's entry
    // in buckets[weight(v)] is always valid, older entries are stale.
    let mut buckets: Vec<Vec<VertexId>> = vec![g.vertices().collect()];
    let mut max_w = 0usize;
    // Visited-neighbor count of the previously visited vertex; MAX is the
    // "no previous vertex" sentinel so the first vertex starts a clique.
    let mut prev_card = usize::MAX;
    // Pops (valid and stale) plus pushes; reported once at the end so the
    // hot loop only touches a local.
    let mut bucket_ops: u64 = 0;

    while visit_order.len() < n {
        let v = loop {
            match buckets[max_w].pop() {
                Some(c) if !visited[c.index()] && weight[c.index()] == max_w => {
                    bucket_ops += 1;
                    break c;
                }
                Some(_) => {
                    bucket_ops += 1;
                    continue; // stale entry
                }
                None => max_w -= 1, // bucket exhausted; the max can only drop
            }
        };
        visited[v.index()] = true;
        visit_pos[v.index()] = visit_order.len();
        visit_order.push(v);
        let card = weight[v.index()];

        if prev_card == usize::MAX || card <= prev_card {
            // M(v): the already-visited neighbors, and the one visited
            // last (only clique starters need the set materialised).
            let mut m_last: Option<VertexId> = None;
            let mut m_v: Vec<VertexId> = Vec::with_capacity(card);
            for u in g.neighbors(v) {
                if visited[u.index()] && u != v {
                    m_v.push(u);
                    if m_last.is_none_or(|l| visit_pos[u.index()] > visit_pos[l.index()]) {
                        m_last = Some(u);
                    }
                }
            }
            debug_assert_eq!(m_v.len(), card);
            // v begins a new clique C_s = M(v) ∪ {v}.
            let s = cliques.len();
            match m_last {
                // Tree edge to the clique of the most recent M(v) member;
                // M(v) (the separator) is contained in that clique.
                Some(last) => tree_edges.push((s, clique_of[last.index()])),
                // New connected component: stitch it to the previous
                // clique so the forest stays one tree (empty separator).
                None if s > 0 => tree_edges.push((s, s - 1)),
                None => {}
            }
            let mut clique: BTreeSet<VertexId> = m_v.iter().copied().collect();
            clique.insert(v);
            cliques.push(clique);
        } else {
            // v joins the clique under construction.
            cliques
                .last_mut()
                .expect("a clique exists once a vertex was visited")
                .insert(v);
        }
        clique_of[v.index()] = cliques.len() - 1;
        prev_card = card;

        // Bump the unvisited neighbors' weights into their new buckets.
        for u in g.neighbors(v) {
            if !visited[u.index()] {
                let w = weight[u.index()] + 1;
                weight[u.index()] = w;
                if w >= buckets.len() {
                    buckets.resize(w + 1, Vec::new());
                }
                buckets[w].push(u);
                bucket_ops += 1;
            }
        }
        // The maximum weight can rise by at most one per visit.
        if max_w + 1 < buckets.len() {
            max_w += 1;
        }
    }

    // Tarjan–Yannakakis chordality test over the elimination order (the
    // reverse of the visit order).  Each vertex defers its later
    // (earlier-visited) neighborhood minus its parent to that parent,
    // which must contain the deferred set in its own neighborhood; a
    // timestamped bitmap makes every membership test O(1), so the whole
    // pass is O(V + E) with no per-edge set lookups.
    let mut chordal = true;
    let mut mark = vec![usize::MAX; cap];
    let mut deferred: Vec<Vec<VertexId>> = vec![Vec::new(); cap];
    'elimination: for i in (0..n).rev() {
        let v = visit_order[i];
        for u in g.neighbors(v) {
            mark[u.index()] = i;
        }
        for w in deferred[v.index()].drain(..) {
            if mark[w.index()] != i {
                chordal = false;
                break 'elimination;
            }
        }
        // Parent: the most recently visited member of M(v).
        let mut parent: Option<VertexId> = None;
        for u in g.neighbors(v) {
            if visit_pos[u.index()] < i
                && parent.is_none_or(|p| visit_pos[u.index()] > visit_pos[p.index()])
            {
                parent = Some(u);
            }
        }
        if let Some(p) = parent {
            for u in g.neighbors(v) {
                if visit_pos[u.index()] < i && u != p {
                    deferred[p.index()].push(u);
                }
            }
        }
    }

    coalesce_stats::counter!("mcs.bucket_ops", bucket_ops);
    coalesce_stats::counter!("cliquetree.nodes", cliques.len() as u64);

    CliqueForest {
        visit_order,
        chordal,
        cliques,
        tree_edges,
    }
}

/// Runs Maximum Cardinality Search on the live part of `g`.
///
/// Returns the vertices in **elimination order**: the returned sequence is a
/// perfect elimination ordering iff `g` is chordal.  (MCS itself numbers
/// vertices from `n` down to `1`; we return the order `1..n`, i.e. the
/// reverse of the visit order.)
///
/// Runs in `O(V + E)` via a bucket queue with lazy deletion.
///
/// ```
/// use coalesce_graph::{Graph, chordal};
/// let g = Graph::with_edges(3, [(0.into(), 1.into()), (1.into(), 2.into())]);
/// let order = chordal::maximum_cardinality_search(&g);
/// assert_eq!(order.len(), 3);
/// ```
pub fn maximum_cardinality_search(g: &Graph) -> Vec<VertexId> {
    let mut order = mcs_clique_forest(g).visit_order;
    order.reverse();
    order
}

/// Checks whether `order` (a permutation of the live vertices of `g`) is a
/// perfect elimination ordering of `g`.
///
/// Uses the classical parent test: for each vertex `v`, let `p` be its first
/// later neighbor in the order; every other later neighbor of `v` must also
/// be a neighbor of `p`.
pub fn is_perfect_elimination_ordering(g: &Graph, order: &[VertexId]) -> bool {
    if order.len() != g.num_vertices() {
        return false;
    }
    let cap = g.capacity();
    let mut position = vec![usize::MAX; cap];
    for (i, &v) in order.iter().enumerate() {
        if !g.is_live(v) || position[v.index()] != usize::MAX {
            return false;
        }
        position[v.index()] = i;
    }
    for &v in order {
        let pv = position[v.index()];
        // Later neighbors of v.
        let mut later: Vec<VertexId> = g
            .neighbors(v)
            .filter(|u| position[u.index()] > pv)
            .collect();
        if later.len() <= 1 {
            continue;
        }
        later.sort_by_key(|u| position[u.index()]);
        let parent = later[0];
        for &u in &later[1..] {
            if !g.has_edge(parent, u) {
                return false;
            }
        }
    }
    true
}

/// Returns a perfect elimination ordering of `g`, or `None` if `g` is not
/// chordal.  `O(V + E)`: the chordality verdict comes out of the same MCS
/// sweep that produces the order.
pub fn perfect_elimination_ordering(g: &Graph) -> Option<Vec<VertexId>> {
    let forest = mcs_clique_forest(g);
    forest.chordal.then(|| {
        let mut order = forest.visit_order;
        order.reverse();
        order
    })
}

/// Returns `true` iff the live part of `g` is a chordal graph.
///
/// ```
/// use coalesce_graph::{Graph, chordal};
/// // C4 is the smallest non-chordal graph.
/// let c4 = Graph::with_edges(4, [
///     (0.into(), 1.into()), (1.into(), 2.into()),
///     (2.into(), 3.into()), (3.into(), 0.into()),
/// ]);
/// assert!(!chordal::is_chordal(&c4));
/// ```
pub fn is_chordal(g: &Graph) -> bool {
    perfect_elimination_ordering(g).is_some()
}

/// Returns `true` if `v` is a *simplicial* vertex of `g`, i.e. its
/// neighborhood is a clique.  Every chordal graph has a simplicial vertex
/// (used by Property 1 of the paper).
pub fn is_simplicial(g: &Graph, v: VertexId) -> bool {
    let nbrs: Vec<VertexId> = g.neighbors(v).collect();
    g.is_clique(&nbrs)
}

/// Finds a simplicial vertex of `g`, if any.
pub fn find_simplicial_vertex(g: &Graph) -> Option<VertexId> {
    g.vertices().find(|&v| is_simplicial(g, v))
}

/// Computes the clique number `ω(G)` of a **chordal** graph in linear
/// time: it is the size of the largest clique the Blair–Peyton sweep
/// discovers (equivalently `1 + max_v |later neighbors of v|` over a
/// perfect elimination ordering).
///
/// Returns `None` if `g` is not chordal (use [`crate::cliques`] for general
/// graphs).
pub fn chordal_clique_number(g: &Graph) -> Option<usize> {
    let forest = mcs_clique_forest(g);
    forest
        .chordal
        .then(|| forest.cliques.iter().map(BTreeSet::len).max().unwrap_or(0))
}

/// Enumerates the maximal cliques of a **chordal** graph, in `O(V + E)`.
///
/// The cliques fall out of the Blair–Peyton MCS sweep directly: a new
/// clique starts exactly when a vertex's visited-neighbor count stops
/// growing, so no subset checks between candidate cliques are needed.  A
/// chordal graph on `n` vertices has at most `n` maximal cliques.
///
/// Returns `None` if `g` is not chordal.
pub fn chordal_maximal_cliques(g: &Graph) -> Option<Vec<BTreeSet<VertexId>>> {
    let forest = mcs_clique_forest(g);
    forest.chordal.then_some(forest.cliques)
}

/// Returns one maximum clique of a **chordal** graph — a witness for the
/// `ω(G)` value reported by [`chordal_clique_number`], usable as an
/// independently checkable certificate (every pair must be adjacent and the
/// size must equal the claimed clique number).
///
/// Returns `None` if `g` is not chordal.
pub fn chordal_max_clique(g: &Graph) -> Option<Vec<VertexId>> {
    let forest = mcs_clique_forest(g);
    forest.chordal.then(|| {
        forest
            .cliques
            .iter()
            .max_by_key(|c| c.len())
            .map(|c| c.iter().copied().collect())
            .unwrap_or_default()
    })
}

/// Optimally colors a **chordal** graph with `ω(G)` colors by coloring the
/// vertices in reverse perfect elimination order, greedily.
///
/// Returns `None` if `g` is not chordal.
pub fn chordal_coloring(g: &Graph) -> Option<Coloring> {
    let order = perfect_elimination_ordering(g)?;
    let mut coloring = Coloring::new(g.capacity());
    // Epoch-stamped used-color scratch shared across the sweep: same
    // first-fit choice (hence byte-identical colorings) as the former
    // per-vertex `BTreeSet`, without the per-vertex allocation.
    let mut scratch = crate::coloring::ColorScratch::new();
    for &v in order.iter().rev() {
        scratch.begin();
        for u in g.neighbors(v) {
            if let Some(c) = coloring.color_of(u) {
                scratch.mark(c);
            }
        }
        coloring.assign(v, scratch.first_free());
    }
    Some(coloring)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        Graph::with_edges(
            n,
            (0..n).map(|i| (VertexId::new(i), VertexId::new((i + 1) % n))),
        )
    }

    fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                g.add_edge(i.into(), j.into());
            }
        }
        g
    }

    #[test]
    fn empty_and_single_vertex_are_chordal() {
        assert!(is_chordal(&Graph::new(0)));
        assert!(is_chordal(&Graph::new(1)));
        assert_eq!(chordal_clique_number(&Graph::new(0)), Some(0));
        assert_eq!(chordal_clique_number(&Graph::new(1)), Some(1));
    }

    #[test]
    fn trees_and_cliques_are_chordal() {
        let path = Graph::with_edges(4, (1..4).map(|i| (VertexId::new(i - 1), VertexId::new(i))));
        assert!(is_chordal(&path));
        assert!(is_chordal(&complete(5)));
    }

    #[test]
    fn cycles_of_length_at_least_4_are_not_chordal() {
        assert!(is_chordal(&cycle(3)));
        assert!(!is_chordal(&cycle(4)));
        assert!(!is_chordal(&cycle(5)));
        assert!(!is_chordal(&cycle(6)));
    }

    #[test]
    fn chorded_cycle_is_chordal() {
        let mut g = cycle(5);
        g.add_edge(0.into(), 2.into());
        g.add_edge(0.into(), 3.into());
        assert!(is_chordal(&g));
    }

    #[test]
    fn clique_number_of_clique() {
        assert_eq!(chordal_clique_number(&complete(4)), Some(4));
    }

    #[test]
    fn clique_number_of_triangle_with_pendant() {
        let mut g = complete(3);
        let v = g.add_vertex();
        g.add_edge(v, 0.into());
        assert_eq!(chordal_clique_number(&g), Some(3));
    }

    #[test]
    fn non_chordal_reports_none() {
        assert_eq!(chordal_clique_number(&cycle(4)), None);
        assert!(chordal_coloring(&cycle(4)).is_none());
        assert!(chordal_maximal_cliques(&cycle(4)).is_none());
    }

    #[test]
    fn chordal_coloring_is_optimal_on_interval_like_graph() {
        // Interval graph: [0,2], [1,3], [2,4], [5,6] -> clique number 2... build explicitly:
        let mut g = Graph::new(4);
        g.add_edge(0.into(), 1.into());
        g.add_edge(1.into(), 2.into());
        let coloring = chordal_coloring(&g).unwrap();
        assert!(coloring.is_proper(&g));
        assert_eq!(coloring.num_colors(), 2);
        assert_eq!(chordal_clique_number(&g), Some(2));
    }

    #[test]
    fn chordal_coloring_uses_omega_colors_on_clique() {
        let g = complete(5);
        let c = chordal_coloring(&g).unwrap();
        assert!(c.is_proper(&g));
        assert_eq!(c.num_colors(), 5);
    }

    #[test]
    fn simplicial_vertices() {
        let mut g = complete(3);
        let v = g.add_vertex();
        g.add_edge(v, 0.into());
        assert!(is_simplicial(&g, v));
        assert!(is_simplicial(&g, 1.into()));
        assert!(find_simplicial_vertex(&cycle(4)).is_none());
    }

    #[test]
    fn maximal_cliques_of_two_triangles_sharing_an_edge() {
        // Triangles {0,1,2} and {1,2,3}.
        let g = Graph::with_edges(
            4,
            [
                (0.into(), 1.into()),
                (0.into(), 2.into()),
                (1.into(), 2.into()),
                (1.into(), 3.into()),
                (2.into(), 3.into()),
            ],
        );
        let cliques = chordal_maximal_cliques(&g).unwrap();
        assert_eq!(cliques.len(), 2);
        assert!(cliques.iter().all(|c| c.len() == 3));
    }

    #[test]
    fn peo_check_rejects_wrong_order_on_path() {
        // For the path 0-1-2, the order [1, 0, 2] is not a PEO because 1's
        // later neighbors {0, 2} are not adjacent.
        let g = Graph::with_edges(3, [(0.into(), 1.into()), (1.into(), 2.into())]);
        assert!(!is_perfect_elimination_ordering(
            &g,
            &[1.into(), 0.into(), 2.into()]
        ));
        assert!(is_perfect_elimination_ordering(
            &g,
            &[0.into(), 2.into(), 1.into()]
        ));
    }

    #[test]
    fn peo_check_rejects_non_permutations() {
        let g = Graph::new(2);
        assert!(!is_perfect_elimination_ordering(&g, &[0.into()]));
        assert!(!is_perfect_elimination_ordering(&g, &[0.into(), 0.into()]));
    }
}
