//! Clique machinery for general graphs: maximal clique enumeration
//! (Bron–Kerbosch with pivoting) and exact maximum clique, used when the
//! graph is not known to be chordal.

use crate::graph::{Graph, VertexId};
use std::collections::BTreeSet;

/// Enumerates all maximal cliques of the live part of `g` using
/// Bron–Kerbosch with pivoting.
///
/// Exponential in the worst case; intended for the small instances used to
/// validate reductions.  For chordal graphs prefer
/// [`crate::chordal::chordal_maximal_cliques`], which is `O(V + E)` (the
/// Blair–Peyton enumeration off a single MCS sweep).
pub fn maximal_cliques(g: &Graph) -> Vec<BTreeSet<VertexId>> {
    if g.num_vertices() == 0 {
        return Vec::new();
    }
    let mut cliques = Vec::new();
    let p: BTreeSet<VertexId> = g.vertices().collect();
    let r = BTreeSet::new();
    let x = BTreeSet::new();
    bron_kerbosch(g, r, p, x, &mut cliques);
    cliques
}

fn bron_kerbosch(
    g: &Graph,
    r: BTreeSet<VertexId>,
    mut p: BTreeSet<VertexId>,
    mut x: BTreeSet<VertexId>,
    out: &mut Vec<BTreeSet<VertexId>>,
) {
    if p.is_empty() && x.is_empty() {
        out.push(r);
        return;
    }
    // Pivot: vertex of P ∪ X with most neighbors in P.
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| g.neighbors(u).filter(|v| p.contains(v)).count())
        .expect("P or X non-empty");
    let pivot_nbrs: BTreeSet<VertexId> = g.neighbors(pivot).collect();
    let candidates: Vec<VertexId> = p
        .iter()
        .copied()
        .filter(|v| !pivot_nbrs.contains(v))
        .collect();
    for v in candidates {
        let nbrs: BTreeSet<VertexId> = g.neighbors(v).collect();
        let mut r2 = r.clone();
        r2.insert(v);
        let p2: BTreeSet<VertexId> = p.intersection(&nbrs).copied().collect();
        let x2: BTreeSet<VertexId> = x.intersection(&nbrs).copied().collect();
        bron_kerbosch(g, r2, p2, x2, out);
        p.remove(&v);
        x.insert(v);
    }
}

/// Returns a maximum clique of the live part of `g` (exponential time).
pub fn maximum_clique(g: &Graph) -> BTreeSet<VertexId> {
    maximal_cliques(g)
        .into_iter()
        .max_by_key(|c| c.len())
        .unwrap_or_default()
}

/// Returns the clique number `ω(G)` of the live part of `g` (exponential
/// time for general graphs).
pub fn clique_number(g: &Graph) -> usize {
    maximum_clique(g).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chordal;

    fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                g.add_edge(i.into(), j.into());
            }
        }
        g
    }

    fn cycle(n: usize) -> Graph {
        Graph::with_edges(
            n,
            (0..n).map(|i| (VertexId::new(i), VertexId::new((i + 1) % n))),
        )
    }

    #[test]
    fn clique_number_of_complete_graph() {
        assert_eq!(clique_number(&complete(5)), 5);
    }

    #[test]
    fn clique_number_of_cycle() {
        assert_eq!(clique_number(&cycle(3)), 3);
        assert_eq!(clique_number(&cycle(5)), 2);
    }

    #[test]
    fn maximal_cliques_of_path() {
        let g = Graph::with_edges(3, [(0.into(), 1.into()), (1.into(), 2.into())]);
        let cliques = maximal_cliques(&g);
        assert_eq!(cliques.len(), 2);
        assert!(cliques.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn maximal_cliques_include_isolated_vertices() {
        let g = Graph::new(2);
        let cliques = maximal_cliques(&g);
        assert_eq!(cliques.len(), 2);
        assert!(cliques.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn agrees_with_chordal_enumeration_on_chordal_graphs() {
        // Two triangles sharing an edge.
        let g = Graph::with_edges(
            4,
            [
                (0.into(), 1.into()),
                (0.into(), 2.into()),
                (1.into(), 2.into()),
                (1.into(), 3.into()),
                (2.into(), 3.into()),
            ],
        );
        let mut bk = maximal_cliques(&g);
        let mut ch = chordal::chordal_maximal_cliques(&g).unwrap();
        bk.sort();
        ch.sort();
        assert_eq!(bk, ch);
        assert_eq!(
            clique_number(&g),
            chordal::chordal_clique_number(&g).unwrap()
        );
    }

    #[test]
    fn empty_graph_has_no_cliques() {
        assert!(maximal_cliques(&Graph::new(0)).is_empty());
        assert_eq!(clique_number(&Graph::new(0)), 0);
    }
}
