//! Clique trees of chordal graphs.
//!
//! A chordal graph is the intersection graph of a family of subtrees of a
//! tree (Golumbic, Thm 4.8 — the characterisation invoked in the proofs of
//! Theorem 1 and Theorem 5 of the paper).  The canonical such tree is the
//! *clique tree*: its nodes are the maximal cliques of the graph and, for
//! every vertex `v`, the set of nodes whose clique contains `v` induces a
//! connected subtree (the *induced-subtree* or *junction* property).
//!
//! Theorem 5's polynomial incremental conservative coalescing algorithm
//! works on a path of this tree; [`CliqueTree::path_between`] provides it.

use crate::chordal;
use crate::graph::{Graph, VertexId};
use std::collections::BTreeSet;

/// A clique tree of a chordal graph.
///
/// Nodes are indexed `0..num_nodes()`; each node carries a maximal clique of
/// the underlying graph.  For a disconnected chordal graph the components'
/// clique trees are stitched together with (empty-intersection) edges so the
/// structure is always a single tree, which keeps path queries total; the
/// induced-subtree property per vertex is unaffected because a vertex only
/// appears in cliques of its own component.
#[derive(Debug, Clone)]
pub struct CliqueTree {
    cliques: Vec<BTreeSet<VertexId>>,
    adjacency: Vec<Vec<usize>>,
    /// For each vertex index, the (ascending) tree nodes whose clique
    /// contains it — the subtree `T_v`, precomputed so the per-vertex
    /// queries on the Theorem-5 hot path don't scan every clique.
    containing: Vec<Vec<usize>>,
    capacity: usize,
}

impl CliqueTree {
    /// Builds a clique tree of the live part of `g` in `O(V + E)`: the
    /// maximal cliques *and* the tree edges both come out of a single
    /// Blair–Peyton MCS sweep ([`chordal`]'s clique-forest machinery), so
    /// no pairwise clique intersections or spanning-tree search is needed.
    ///
    /// Returns `None` if `g` is not chordal.
    pub fn build(g: &Graph) -> Option<Self> {
        let forest = chordal::mcs_clique_forest(g);
        if !forest.chordal {
            return None;
        }
        let cliques = forest.cliques;
        let mut adjacency = vec![Vec::new(); cliques.len()];
        for &(a, b) in &forest.tree_edges {
            adjacency[a].push(b);
            adjacency[b].push(a);
        }
        let mut containing = vec![Vec::new(); g.capacity()];
        for (i, clique) in cliques.iter().enumerate() {
            for &v in clique {
                containing[v.index()].push(i);
            }
        }
        Some(CliqueTree {
            cliques,
            adjacency,
            containing,
            capacity: g.capacity(),
        })
    }

    /// Number of tree nodes (maximal cliques).
    pub fn num_nodes(&self) -> usize {
        self.cliques.len()
    }

    /// The maximal clique carried by node `i`.
    pub fn clique(&self, i: usize) -> &BTreeSet<VertexId> {
        &self.cliques[i]
    }

    /// All cliques, indexed by node.
    pub fn cliques(&self) -> &[BTreeSet<VertexId>] {
        &self.cliques
    }

    /// Tree neighbors of node `i`.
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.adjacency[i]
    }

    /// Clique number of the underlying graph: size of the largest clique
    /// (0 for the empty graph).
    pub fn clique_number(&self) -> usize {
        self.cliques.iter().map(BTreeSet::len).max().unwrap_or(0)
    }

    /// Nodes whose clique contains vertex `v` (the subtree `T_v`), in
    /// ascending node order.  `O(1)`: served from the precomputed
    /// vertex→node index.
    pub fn nodes_containing(&self, v: VertexId) -> &[usize] {
        self.containing
            .get(v.index())
            .map_or(&[], |nodes| nodes.as_slice())
    }

    /// Some node whose clique contains `v`, if any.  `O(1)`.
    pub fn any_node_containing(&self, v: VertexId) -> Option<usize> {
        self.nodes_containing(v).first().copied()
    }

    /// The unique tree path from node `from` to node `to` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn path_between(&self, from: usize, to: usize) -> Vec<usize> {
        assert!(from < self.num_nodes() && to < self.num_nodes());
        if from == to {
            return vec![from];
        }
        // BFS parent pointers.
        let mut parent = vec![usize::MAX; self.num_nodes()];
        let mut queue = std::collections::VecDeque::new();
        parent[from] = from;
        queue.push_back(from);
        while let Some(n) = queue.pop_front() {
            if n == to {
                break;
            }
            for &m in &self.adjacency[n] {
                if parent[m] == usize::MAX {
                    parent[m] = n;
                    queue.push_back(m);
                }
            }
        }
        assert!(parent[to] != usize::MAX, "clique tree must be connected");
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = parent[cur];
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// Checks the induced-subtree (junction) property: for every vertex, the
    /// nodes containing it form a connected subtree.  Mostly useful in tests
    /// and debug assertions.
    pub fn has_junction_property(&self) -> bool {
        for v in 0..self.capacity {
            let v = VertexId::new(v);
            let nodes = self.nodes_containing(v);
            if nodes.len() <= 1 {
                continue;
            }
            // BFS restricted to `nodes`.
            let node_set: BTreeSet<usize> = nodes.iter().copied().collect();
            let mut seen = BTreeSet::new();
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(nodes[0]);
            seen.insert(nodes[0]);
            while let Some(n) = queue.pop_front() {
                for &m in &self.adjacency[n] {
                    if node_set.contains(&m) && seen.insert(m) {
                        queue.push_back(m);
                    }
                }
            }
            if seen.len() != nodes.len() {
                return false;
            }
        }
        true
    }

    /// Restriction of every vertex's subtree to a tree path: for the given
    /// path (a sequence of node indices), returns for each vertex that
    /// appears on the path the contiguous interval `[first, last]` of path
    /// positions whose cliques contain it.
    ///
    /// By the junction property the occurrences of a vertex along a tree
    /// path are contiguous, so the interval fully describes them.
    pub fn intervals_on_path(&self, path: &[usize]) -> Vec<(VertexId, usize, usize)> {
        use std::collections::BTreeMap;
        let mut first_last: BTreeMap<VertexId, (usize, usize)> = BTreeMap::new();
        for (pos, &node) in path.iter().enumerate() {
            for &v in &self.cliques[node] {
                first_last
                    .entry(v)
                    .and_modify(|fl| fl.1 = pos)
                    .or_insert((pos, pos));
            }
        }
        first_last
            .into_iter()
            .map(|(v, (a, b))| (v, a, b))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> Graph {
        // Triangles {0,1,2} and {1,2,3} sharing edge 1-2.
        Graph::with_edges(
            4,
            [
                (0.into(), 1.into()),
                (0.into(), 2.into()),
                (1.into(), 2.into()),
                (1.into(), 3.into()),
                (2.into(), 3.into()),
            ],
        )
    }

    #[test]
    fn build_rejects_non_chordal_graphs() {
        let c4 = Graph::with_edges(
            4,
            [
                (0.into(), 1.into()),
                (1.into(), 2.into()),
                (2.into(), 3.into()),
                (3.into(), 0.into()),
            ],
        );
        assert!(CliqueTree::build(&c4).is_none());
    }

    #[test]
    fn clique_tree_of_two_triangles() {
        let g = two_triangles();
        let t = CliqueTree::build(&g).unwrap();
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.clique_number(), 3);
        assert!(t.has_junction_property());
        assert_eq!(t.neighbors(0).len(), 1);
    }

    #[test]
    fn junction_property_on_longer_interval_graph() {
        // Interval graph of intervals [0,1],[1,2],[2,3],[3,4],[1,3].
        let mut g = Graph::new(5);
        let intervals = [(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)];
        for i in 0..5 {
            for j in i + 1..5 {
                let (a1, b1) = intervals[i];
                let (a2, b2) = intervals[j];
                if a1.max(a2) <= b1.min(b2) {
                    g.add_edge(i.into(), j.into());
                }
            }
        }
        let t = CliqueTree::build(&g).unwrap();
        assert!(t.has_junction_property());
    }

    #[test]
    fn path_between_endpoints() {
        let g = two_triangles();
        let t = CliqueTree::build(&g).unwrap();
        let p = t.path_between(0, 1);
        assert_eq!(p, vec![0, 1]);
        assert_eq!(t.path_between(1, 1), vec![1]);
    }

    #[test]
    fn disconnected_graph_still_yields_single_tree() {
        // Two disjoint edges.
        let g = Graph::with_edges(4, [(0.into(), 1.into()), (2.into(), 3.into())]);
        let t = CliqueTree::build(&g).unwrap();
        assert_eq!(t.num_nodes(), 2);
        // A path must exist between any two nodes.
        let p = t.path_between(0, 1);
        assert_eq!(p.len(), 2);
        assert!(t.has_junction_property());
    }

    #[test]
    fn nodes_containing_and_intervals() {
        let g = two_triangles();
        let t = CliqueTree::build(&g).unwrap();
        let shared = t.nodes_containing(1.into());
        assert_eq!(shared.len(), 2);
        let only0 = t.nodes_containing(0.into());
        assert_eq!(only0.len(), 1);
        let path = t.path_between(0, 1);
        let intervals = t.intervals_on_path(&path);
        // Vertex 1 and 2 span both positions; vertices 0 and 3 span one.
        let find = |v: usize| {
            intervals
                .iter()
                .find(|(x, _, _)| *x == VertexId::new(v))
                .copied()
                .unwrap()
        };
        assert_eq!((find(1).1, find(1).2), (0, 1));
        assert_eq!((find(2).1, find(2).2), (0, 1));
        assert_eq!(find(0).1, find(0).2);
        assert_eq!(find(3).1, find(3).2);
    }

    #[test]
    fn clique_tree_of_clique_is_single_node() {
        let mut g = Graph::new(4);
        for i in 0..4usize {
            for j in i + 1..4usize {
                g.add_edge(i.into(), j.into());
            }
        }
        let t = CliqueTree::build(&g).unwrap();
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.clique_number(), 4);
    }
}
