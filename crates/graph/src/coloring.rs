//! Graph coloring: the [`Coloring`] assignment type, greedy coloring over an
//! order, DSATUR, and an exact backtracking `k`-coloring solver that
//! optionally supports *same-color constraints* (the question asked by
//! incremental conservative coalescing: "is there a `k`-coloring `f` with
//! `f(x) = f(y)`?").
//!
//! The greedy sweeps (here and in [`crate::chordal`]) share the
//! [`ColorScratch`] epoch-stamped "used colors" array: one `Vec<u32>` slot
//! per color, stamped with the current vertex's epoch, replacing the
//! per-vertex `BTreeSet<usize>` allocation of the original implementation.
//! Marking a neighbor color and finding the first free color are O(1) and
//! O(colors) array operations with no per-vertex allocation; on the E16
//! module corpus this roughly halves chordal-coloring time (see the README
//! for measured numbers), with byte-identical colorings.

use crate::graph::{Graph, VertexId};
use std::collections::BTreeSet;

/// A (partial) assignment of colors to vertices.
///
/// Colors are small integers `0, 1, 2, ...` interpreted as register names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    colors: Vec<Option<usize>>,
}

impl Coloring {
    /// Creates an empty coloring able to hold vertices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Coloring {
            colors: vec![None; capacity],
        }
    }

    /// Assigns color `c` to vertex `v` (overwriting any previous color).
    pub fn assign(&mut self, v: VertexId, c: usize) {
        if v.index() >= self.colors.len() {
            self.colors.resize(v.index() + 1, None);
        }
        self.colors[v.index()] = Some(c);
    }

    /// Removes the color of `v`.
    pub fn unassign(&mut self, v: VertexId) {
        if v.index() < self.colors.len() {
            self.colors[v.index()] = None;
        }
    }

    /// Returns the color of `v`, if assigned.
    pub fn color_of(&self, v: VertexId) -> Option<usize> {
        self.colors.get(v.index()).copied().flatten()
    }

    /// Number of distinct colors used.
    pub fn num_colors(&self) -> usize {
        self.colors
            .iter()
            .flatten()
            .copied()
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Largest color index used plus one (0 if nothing is colored).
    pub fn max_color_bound(&self) -> usize {
        self.colors
            .iter()
            .flatten()
            .copied()
            .max()
            .map_or(0, |c| c + 1)
    }

    /// Returns `true` if every **live** vertex of `g` has a color and no two
    /// adjacent vertices share a color.
    pub fn is_proper(&self, g: &Graph) -> bool {
        for v in g.vertices() {
            if self.color_of(v).is_none() {
                return false;
            }
        }
        for (u, v) in g.edges() {
            if self.color_of(u) == self.color_of(v) {
                return false;
            }
        }
        true
    }

    /// Returns `true` if no two adjacent *colored* vertices share a color
    /// (uncolored vertices are allowed).
    pub fn is_partial_proper(&self, g: &Graph) -> bool {
        for (u, v) in g.edges() {
            if let (Some(cu), Some(cv)) = (self.color_of(u), self.color_of(v)) {
                if cu == cv {
                    return false;
                }
            }
        }
        true
    }

    /// Iterates over `(vertex, color)` pairs of colored vertices.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, usize)> + '_ {
        self.colors
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|c| (VertexId::new(i), c)))
    }
}

/// Reusable epoch-stamped "used colors" scratch for greedy first-fit
/// coloring sweeps.
///
/// One `u32` stamp per color, reused across vertices: a color counts as
/// used by the current vertex's neighbors iff its stamp equals the current
/// epoch, so "clearing" the set for the next vertex is a single counter
/// increment instead of a fresh `BTreeSet` allocation.  The rare epoch
/// wrap-around zeroes the stamps explicitly, so stale marks can never
/// alias a live epoch.
#[derive(Debug, Default)]
pub struct ColorScratch {
    stamp: Vec<u32>,
    epoch: u32,
}

impl ColorScratch {
    /// Creates an empty scratch; it grows on demand as colors are marked.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts the next vertex: every color becomes unused.
    pub fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks `color` as used by a neighbor of the current vertex.
    pub fn mark(&mut self, color: usize) {
        if color >= self.stamp.len() {
            self.stamp.resize(color + 1, 0);
        }
        self.stamp[color] = self.epoch;
    }

    /// Smallest color not marked for the current vertex (first fit).
    pub fn first_free(&self) -> usize {
        let mut c = 0;
        while c < self.stamp.len() && self.stamp[c] == self.epoch {
            c += 1;
        }
        c
    }
}

/// Colors the vertices of `g` greedily in the given order: each vertex gets
/// the smallest color unused by its already-colored neighbors.
///
/// This is the coloring scheme of Chaitin-like allocators (the "select"
/// phase), applied to an arbitrary order.  The used-color set is tracked
/// in a [`ColorScratch`] shared across the sweep.
pub fn greedy_coloring_in_order(g: &Graph, order: &[VertexId]) -> Coloring {
    let mut coloring = Coloring::new(g.capacity());
    let mut scratch = ColorScratch::new();
    for &v in order {
        scratch.begin();
        for u in g.neighbors(v) {
            if let Some(c) = coloring.color_of(u) {
                scratch.mark(c);
            }
        }
        coloring.assign(v, scratch.first_free());
    }
    coloring
}

/// DSATUR heuristic coloring: repeatedly colors the uncolored vertex with the
/// highest *saturation* (number of distinct colors among its neighbors),
/// breaking ties by degree.  Returns a proper coloring of the live vertices.
pub fn dsatur(g: &Graph) -> Coloring {
    let cap = g.capacity();
    let mut coloring = Coloring::new(cap);
    let mut neighbor_colors: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); cap];
    let mut uncolored: BTreeSet<VertexId> = g.vertices().collect();
    while !uncolored.is_empty() {
        let &v = uncolored
            .iter()
            .max_by_key(|v| (neighbor_colors[v.index()].len(), g.degree(**v)))
            .expect("non-empty");
        let mut c = 0;
        while neighbor_colors[v.index()].contains(&c) {
            c += 1;
        }
        coloring.assign(v, c);
        uncolored.remove(&v);
        for u in g.neighbors(v) {
            neighbor_colors[u.index()].insert(c);
        }
    }
    coloring
}

/// Exact `k`-coloring of the live part of `g`.
///
/// `same_color` is a list of vertex pairs that must receive **equal** colors
/// (the coalescing constraints of the incremental conservative coalescing
/// problem).  Returns a proper coloring satisfying the constraints, or
/// `None` if none exists.
///
/// This is a convenience wrapper over [`crate::solver::ExactSolver`] with
/// the default (fully pruned) configuration; construct a solver directly to
/// configure the prunings or read the search instrumentation.
pub fn exact_k_coloring(
    g: &Graph,
    k: usize,
    same_color: &[(VertexId, VertexId)],
) -> Option<Coloring> {
    crate::solver::ExactSolver::new().k_coloring(g, k, same_color)
}

/// Exact chromatic number of the live part of `g` (exponential worst case;
/// routed through [`crate::solver::ExactSolver`]).
pub fn chromatic_number(g: &Graph) -> usize {
    crate::solver::ExactSolver::new().chromatic_number(g)
}

/// Returns `true` iff the live part of `g` admits a proper `k`-coloring.
pub fn is_k_colorable(g: &Graph, k: usize) -> bool {
    exact_k_coloring(g, k, &[]).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        Graph::with_edges(
            n,
            (0..n).map(|i| (VertexId::new(i), VertexId::new((i + 1) % n))),
        )
    }

    fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                g.add_edge(i.into(), j.into());
            }
        }
        g
    }

    #[test]
    fn coloring_assign_and_query() {
        let mut c = Coloring::new(2);
        assert_eq!(c.color_of(0.into()), None);
        c.assign(0.into(), 3);
        assert_eq!(c.color_of(0.into()), Some(3));
        c.unassign(0.into());
        assert_eq!(c.color_of(0.into()), None);
    }

    #[test]
    fn proper_coloring_check() {
        let g = Graph::with_edges(2, [(0.into(), 1.into())]);
        let mut c = Coloring::new(2);
        c.assign(0.into(), 0);
        c.assign(1.into(), 0);
        assert!(!c.is_proper(&g));
        c.assign(1.into(), 1);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn color_scratch_epochs_reset_between_vertices() {
        let mut s = ColorScratch::new();
        s.begin();
        s.mark(0);
        s.mark(1);
        s.mark(3);
        assert_eq!(s.first_free(), 2);
        s.begin();
        // Previous epoch's marks are gone without any clearing work.
        assert_eq!(s.first_free(), 0);
        s.mark(0);
        assert_eq!(s.first_free(), 1);
    }

    #[test]
    fn greedy_in_order_colors_path_with_two_colors() {
        let g = Graph::with_edges(4, (1..4).map(|i| (VertexId::new(i - 1), VertexId::new(i))));
        let order: Vec<VertexId> = g.vertices().collect();
        let c = greedy_coloring_in_order(&g, &order);
        assert!(c.is_proper(&g));
        assert_eq!(c.num_colors(), 2);
    }

    #[test]
    fn dsatur_on_odd_cycle_uses_three_colors() {
        let g = cycle(5);
        let c = dsatur(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.num_colors(), 3);
    }

    #[test]
    fn dsatur_on_even_cycle_uses_two_colors() {
        let g = cycle(6);
        let c = dsatur(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.num_colors(), 2);
    }

    #[test]
    fn exact_coloring_of_clique() {
        let g = complete(4);
        assert!(exact_k_coloring(&g, 3, &[]).is_none());
        let c = exact_k_coloring(&g, 4, &[]).unwrap();
        assert!(c.is_proper(&g));
        assert_eq!(chromatic_number(&g), 4);
    }

    #[test]
    fn exact_coloring_of_odd_cycle() {
        let g = cycle(7);
        assert!(!is_k_colorable(&g, 2));
        assert!(is_k_colorable(&g, 3));
        assert_eq!(chromatic_number(&g), 3);
    }

    #[test]
    fn exact_coloring_with_equality_constraint() {
        // Path 0-1-2: with 2 colors, 0 and 2 must share a color; forcing
        // 0 and 1 to share a color is impossible.
        let g = Graph::with_edges(3, [(0.into(), 1.into()), (1.into(), 2.into())]);
        let c = exact_k_coloring(&g, 2, &[(0.into(), 2.into())]).unwrap();
        assert!(c.is_proper(&g));
        assert_eq!(c.color_of(0.into()), c.color_of(2.into()));
        assert!(exact_k_coloring(&g, 2, &[(0.into(), 1.into())]).is_none());
    }

    #[test]
    fn equality_constraints_chain_transitively() {
        // 5 independent vertices, constraints 0=1, 1=2: all three share a color.
        let g = Graph::new(5);
        let c = exact_k_coloring(&g, 1, &[(0.into(), 1.into()), (1.into(), 2.into())]).unwrap();
        assert_eq!(c.color_of(0.into()), c.color_of(2.into()));
    }

    #[test]
    fn constraint_on_adjacent_vertices_is_unsatisfiable() {
        let g = Graph::with_edges(2, [(0.into(), 1.into())]);
        assert!(exact_k_coloring(&g, 5, &[(0.into(), 1.into())]).is_none());
    }

    #[test]
    fn chromatic_number_of_bipartite_graph() {
        // K_{2,3}
        let mut g = Graph::new(5);
        for a in 0..2usize {
            for b in 2..5usize {
                g.add_edge(a.into(), b.into());
            }
        }
        assert_eq!(chromatic_number(&g), 2);
    }

    #[test]
    fn chromatic_number_of_empty_graph() {
        assert_eq!(chromatic_number(&Graph::new(0)), 0);
        assert_eq!(chromatic_number(&Graph::new(3)), 1);
    }

    #[test]
    fn exact_coloring_respects_retired_vertices() {
        let mut g = complete(3);
        let v = g.add_vertex();
        g.add_edge(v, 0.into());
        g.remove_vertex(2.into());
        // Remaining live graph is a path v-0-1: 2-colorable.
        assert!(is_k_colorable(&g, 2));
    }
}
