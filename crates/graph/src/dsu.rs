//! A small disjoint-set (union-find) structure.
//!
//! Coalescing is a sequence of vertex merges; a [`DisjointSets`] instance
//! tracks, for every *original* variable, which representative it has been
//! merged into, so that the final coalescing map `f` of the paper can be
//! recovered after any sequence of merges.

/// Disjoint-set forest with union by rank and path compression.
///
/// ```
/// use coalesce_graph::DisjointSets;
/// let mut dsu = DisjointSets::new(4);
/// dsu.union(0, 1);
/// dsu.union(2, 3);
/// assert!(dsu.same_set(0, 1));
/// assert!(!dsu.same_set(1, 2));
/// assert_eq!(dsu.num_sets(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DisjointSets {
    parent: Vec<usize>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl DisjointSets {
    /// Creates `n` singleton sets `{0}, {1}, ..., {n-1}`.
    pub fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements (not sets).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure contains no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently represented.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Adds a fresh singleton and returns its index.
    pub fn push(&mut self) -> usize {
        let i = self.parent.len();
        self.parent.push(i);
        self.rank.push(0);
        self.num_sets += 1;
        i
    }

    /// Finds the representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Finds the representative of `x`'s set without mutating the structure.
    pub fn find_immutable(&self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        root
    }

    /// Merges the sets of `a` and `b`.  Returns the representative of the
    /// merged set, or `None` if they were already in the same set.
    pub fn union(&mut self, a: usize, b: usize) -> Option<usize> {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return None;
        }
        self.num_sets -= 1;
        let root = if self.rank[ra] < self.rank[rb] {
            self.parent[ra] = rb;
            rb
        } else if self.rank[ra] > self.rank[rb] {
            self.parent[rb] = ra;
            ra
        } else {
            self.parent[rb] = ra;
            self.rank[ra] += 1;
            ra
        };
        Some(root)
    }

    /// Merges the set of `from` into the set of `into`, forcing the
    /// representative of `into`'s set to stay the representative.
    ///
    /// This is useful when an external structure (e.g. a [`crate::Graph`]
    /// after [`crate::Graph::merge`]) has already decided which identifier
    /// survives.
    pub fn union_into(&mut self, into: usize, from: usize) -> bool {
        let (ri, rf) = (self.find(into), self.find(from));
        if ri == rf {
            return false;
        }
        self.parent[rf] = ri;
        self.rank[ri] = self.rank[ri].max(self.rank[rf].saturating_add(1));
        self.num_sets -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Returns, for every element, the representative of its set.
    pub fn to_mapping(&mut self) -> Vec<usize> {
        (0..self.len()).map(|x| self.find(x)).collect()
    }

    /// Groups elements by set; each group is sorted, groups are sorted by
    /// their smallest element.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        use std::collections::BTreeMap;
        let mut by_root: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for x in 0..self.len() {
            let r = self.find(x);
            by_root.entry(r).or_default().push(x);
        }
        let mut groups: Vec<Vec<usize>> = by_root.into_values().collect();
        groups.sort_by_key(|g| g[0]);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut d = DisjointSets::new(3);
        assert_eq!(d.num_sets(), 3);
        assert!(!d.same_set(0, 1));
        assert_eq!(d.find(2), 2);
    }

    #[test]
    fn union_reduces_set_count() {
        let mut d = DisjointSets::new(4);
        assert!(d.union(0, 1).is_some());
        assert!(d.union(0, 1).is_none());
        assert_eq!(d.num_sets(), 3);
    }

    #[test]
    fn transitive_union() {
        let mut d = DisjointSets::new(5);
        d.union(0, 1);
        d.union(1, 2);
        d.union(3, 4);
        assert!(d.same_set(0, 2));
        assert!(!d.same_set(2, 3));
        assert_eq!(d.num_sets(), 2);
    }

    #[test]
    fn union_into_keeps_target_representative() {
        let mut d = DisjointSets::new(4);
        d.union_into(2, 0);
        d.union_into(2, 1);
        assert_eq!(d.find(0), 2);
        assert_eq!(d.find(1), 2);
    }

    #[test]
    fn groups_are_sorted() {
        let mut d = DisjointSets::new(5);
        d.union(4, 1);
        d.union(3, 0);
        let groups = d.groups();
        assert_eq!(groups, vec![vec![0, 3], vec![1, 4], vec![2]]);
    }

    #[test]
    fn push_adds_singleton() {
        let mut d = DisjointSets::new(1);
        let x = d.push();
        assert_eq!(x, 1);
        assert_eq!(d.num_sets(), 2);
        assert!(!d.same_set(0, 1));
    }

    #[test]
    fn mapping_is_consistent() {
        let mut d = DisjointSets::new(4);
        d.union(0, 3);
        let m = d.to_mapping();
        assert_eq!(m[0], m[3]);
        assert_ne!(m[1], m[2]);
    }
}
