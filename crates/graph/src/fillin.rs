//! Triangulation (chordalisation) by fill-in edges.
//!
//! Several places in the paper need to *make* a graph chordal:
//!
//! * the proof of Theorem 5 merges subtrees so that the graph obtained after
//!   an incremental coalescing stays chordal;
//! * the proof of Theorem 6 breaks the chordless cycles of the widget graph
//!   `H` to obtain a chordal instance `H'`;
//! * §4 notes that after coalescing an affinity in a chordal graph "the
//!   graph may not be chordal anymore.  However, we can still make it
//!   chordal".
//!
//! This module implements chordalisation by **fill-in**: adding interference
//! edges until the graph is chordal.  Adding interference edges is always a
//! *conservative* operation for register allocation — it can only constrain
//! the coloring further — so a triangulation never produces an invalid
//! allocation, it merely (potentially) wastes colors.  Two algorithms are
//! provided:
//!
//! * [`elimination_game`] — triangulate along an arbitrary elimination
//!   order (the classical "elimination game"); with a minimum-degree order
//!   this is the textbook heuristic;
//! * [`mcs_m`] — the MCS-M algorithm of Berry, Blair, Heggernes and Peyton,
//!   which computes a **minimal** triangulation (no fill edge can be removed
//!   while keeping the graph chordal) in `O(n·m)` time.
//!
//! Both return the fill edges separately from the triangulated graph so
//! that callers can account for how much the chordalisation costs.

use crate::chordal;
use crate::graph::{Graph, VertexId};
use std::collections::BTreeSet;

/// The result of a triangulation: the chordal supergraph and the edges that
/// were added to the input.
#[derive(Debug, Clone)]
pub struct Triangulation {
    /// The triangulated (chordal) graph.
    pub graph: Graph,
    /// The fill edges added to the input graph, as `(smaller, larger)` pairs.
    pub fill_edges: Vec<(VertexId, VertexId)>,
    /// The elimination order that produced (or certifies) the triangulation.
    /// Reversing it yields a perfect elimination ordering of `graph`.
    pub elimination_order: Vec<VertexId>,
}

impl Triangulation {
    /// Number of fill edges added.
    pub fn fill_in(&self) -> usize {
        self.fill_edges.len()
    }

    /// `true` if the input graph was already chordal (no fill was needed).
    pub fn was_chordal(&self) -> bool {
        self.fill_edges.is_empty()
    }
}

/// Triangulates `g` by playing the elimination game along `order`: each
/// vertex, when eliminated, has its (remaining) neighborhood turned into a
/// clique.
///
/// The resulting graph is always chordal and `order` reversed is a perfect
/// elimination ordering of it, but the fill-in is generally not minimal —
/// it depends entirely on the quality of `order`.
///
/// # Panics
///
/// Panics if `order` does not contain exactly the live vertices of `g`.
pub fn elimination_game(g: &Graph, order: &[VertexId]) -> Triangulation {
    let live: BTreeSet<VertexId> = g.vertices().collect();
    let given: BTreeSet<VertexId> = order.iter().copied().collect();
    assert_eq!(
        live, given,
        "elimination order must contain exactly the live vertices"
    );

    let mut work = g.clone();
    let mut filled = g.clone();
    let mut fill_edges = Vec::new();
    for &v in order {
        let neighbors: Vec<VertexId> = work.neighbors(v).collect();
        for (i, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[i + 1..] {
                if !filled.has_edge(a, b) {
                    filled.add_edge(a, b);
                    work.add_edge(a, b);
                    fill_edges.push(ordered(a, b));
                }
            }
        }
        work.remove_vertex(v);
    }
    Triangulation {
        graph: filled,
        fill_edges,
        elimination_order: order.to_vec(),
    }
}

/// Triangulates `g` along a minimum-degree elimination order (recomputed
/// after each elimination).  A classical fill-reducing heuristic.
pub fn min_degree_triangulation(g: &Graph) -> Triangulation {
    let mut work = g.clone();
    let mut order = Vec::with_capacity(g.num_vertices());
    while work.num_vertices() > 0 {
        let v = work
            .vertices()
            .min_by_key(|&v| (work.degree(v), v))
            .expect("non-empty graph has a vertex");
        order.push(v);
        // Eliminate: clique-ify the neighborhood in the working graph.
        let neighbors: Vec<VertexId> = work.neighbors(v).collect();
        for (i, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[i + 1..] {
                work.add_edge(a, b);
            }
        }
        work.remove_vertex(v);
    }
    elimination_game(g, &order)
}

/// Computes a **minimal** triangulation of `g` with the MCS-M algorithm
/// (Berry, Blair, Heggernes, Peyton, *Maximum Cardinality Search for
/// Computing Minimal Triangulations of Graphs*, 2004).
///
/// MCS-M is Maximum Cardinality Search where, instead of only counting
/// *adjacent* already-numbered vertices, a vertex's weight also increases
/// when it can be reached from the freshly numbered vertex through a path of
/// strictly lower-weight unnumbered vertices; each such "indirect" reach
/// records a fill edge.  The produced set of fill edges is minimal: removing
/// any one of them breaks chordality.
///
/// ```
/// use coalesce_graph::{Graph, fillin, chordal};
/// // C4 needs exactly one chord.
/// let g = Graph::with_edges(4, [(0.into(), 1.into()), (1.into(), 2.into()),
///                               (2.into(), 3.into()), (3.into(), 0.into())]);
/// let tri = fillin::mcs_m(&g);
/// assert_eq!(tri.fill_in(), 1);
/// assert!(chordal::is_chordal(&tri.graph));
/// ```
pub fn mcs_m(g: &Graph) -> Triangulation {
    let cap = g.capacity();
    let mut weight = vec![0usize; cap];
    let mut numbered = vec![false; cap];
    let mut fill_edges: Vec<(VertexId, VertexId)> = Vec::new();
    // MCS-M numbers vertices from n down to 1; the resulting vector, read
    // from the *last* numbered to the first, is a PEO of the filled graph.
    // We record vertices in the order they are numbered and reverse at the
    // end so that `elimination_order` matches the convention of
    // [`elimination_game`] (eliminate front first).
    let mut numbering: Vec<VertexId> = Vec::with_capacity(g.num_vertices());

    let live: Vec<VertexId> = g.vertices().collect();
    for _ in 0..live.len() {
        // Pick an unnumbered vertex of maximum weight.
        let &z = live
            .iter()
            .filter(|v| !numbered[v.index()])
            .max_by_key(|v| (weight[v.index()], std::cmp::Reverse(v.index())))
            .expect("an unnumbered vertex remains");
        // Find every unnumbered vertex y reachable from z through unnumbered
        // vertices of weight strictly smaller than weight(y).
        let reached = lower_weight_reachable(g, z, &weight, &numbered);
        for y in &reached {
            weight[y.index()] += 1;
            if !g.has_edge(z, *y) {
                fill_edges.push(ordered(z, *y));
            }
        }
        numbered[z.index()] = true;
        numbering.push(z);
    }

    // The MCS-M numbering goes from high to low: the first vertex numbered
    // gets the highest number, so the elimination order (lowest number
    // first) is the reverse of the numbering sequence.
    numbering.reverse();

    let mut graph = g.clone();
    for &(a, b) in &fill_edges {
        graph.add_edge(a, b);
    }
    Triangulation {
        graph,
        fill_edges,
        elimination_order: numbering,
    }
}

/// Returns every unnumbered vertex `y` (other than `z`) such that there is a
/// path `z, x1, ..., xr, y` where every interior `xi` is unnumbered and has
/// weight strictly less than `weight(y)`.  Direct neighbors qualify with an
/// empty interior.
fn lower_weight_reachable(
    g: &Graph,
    z: VertexId,
    weight: &[usize],
    numbered: &[bool],
) -> Vec<VertexId> {
    // For each candidate target weight, we do a constrained BFS.  Simpler
    // and still polynomial: run a BFS where we track, for every reached
    // vertex, the maximum interior weight along the best path; `y` qualifies
    // if that maximum is < weight(y).
    let cap = g.capacity();
    // best_interior[v] = minimal possible "maximum interior weight" over
    // paths from z to v through unnumbered vertices.
    let mut best: Vec<Option<usize>> = vec![None; cap];
    // Dijkstra-like relaxation on the "minimax" path weight.
    let mut queue: BTreeSet<(usize, VertexId)> = BTreeSet::new();
    for n in g.neighbors(z) {
        if numbered[n.index()] {
            continue;
        }
        best[n.index()] = Some(0);
        queue.insert((0, n));
    }
    while let Some(&(cost, v)) = queue.iter().next() {
        queue.remove(&(cost, v));
        if best[v.index()] != Some(cost) {
            continue;
        }
        // Extend through v only if v stays an interior vertex, i.e. its own
        // weight bounds the paths that continue beyond it.
        let through = cost.max(weight[v.index()]);
        for n in g.neighbors(v) {
            if n == z || numbered[n.index()] {
                continue;
            }
            if best[n.index()].is_none_or(|b| through < b) {
                if let Some(old) = best[n.index()] {
                    queue.remove(&(old, n));
                }
                best[n.index()] = Some(through);
                queue.insert((through, n));
            }
        }
    }
    let mut out = Vec::new();
    for v in g.vertices() {
        if v == z || numbered[v.index()] {
            continue;
        }
        if let Some(interior) = best[v.index()] {
            if interior < weight[v.index()] || g.has_edge(z, v) {
                // Direct neighbors always qualify (empty interior).
                if g.has_edge(z, v) || interior < weight[v.index()] {
                    out.push(v);
                }
            }
        }
    }
    out
}

/// Verifies that a triangulation is *minimal*: removing any single fill
/// edge leaves a non-chordal graph.  Exponential in nothing, but quadratic
/// in the number of fill edges times a chordality check — intended for
/// validation in tests and experiments, not for hot paths.
pub fn is_minimal_triangulation(original: &Graph, tri: &Triangulation) -> bool {
    if !chordal::is_chordal(&tri.graph) {
        return false;
    }
    // Every fill edge must be absent from the original graph.
    for &(a, b) in &tri.fill_edges {
        if original.has_edge(a, b) {
            return false;
        }
    }
    for skip in 0..tri.fill_edges.len() {
        let mut g = original.clone();
        for (i, &(a, b)) in tri.fill_edges.iter().enumerate() {
            if i != skip {
                g.add_edge(a, b);
            }
        }
        if chordal::is_chordal(&g) {
            return false;
        }
    }
    true
}

fn ordered(a: VertexId, b: VertexId) -> (VertexId, VertexId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy;

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(v(i), v((i + 1) % n));
        }
        g
    }

    #[test]
    fn chordal_input_needs_no_fill() {
        let g = Graph::with_edges(4, [(v(0), v(1)), (v(1), v(2)), (v(0), v(2)), (v(2), v(3))]);
        let tri = mcs_m(&g);
        assert!(tri.was_chordal());
        assert_eq!(tri.fill_in(), 0);
        assert!(chordal::is_chordal(&tri.graph));
    }

    #[test]
    fn c4_gets_exactly_one_chord() {
        let tri = mcs_m(&cycle(4));
        assert_eq!(tri.fill_in(), 1);
        assert!(chordal::is_chordal(&tri.graph));
        assert!(is_minimal_triangulation(&cycle(4), &tri));
    }

    #[test]
    fn c5_gets_exactly_two_chords() {
        let tri = mcs_m(&cycle(5));
        assert_eq!(tri.fill_in(), 2);
        assert!(chordal::is_chordal(&tri.graph));
        assert!(is_minimal_triangulation(&cycle(5), &tri));
    }

    #[test]
    fn long_cycles_get_n_minus_three_chords() {
        // A minimal triangulation of C_n has exactly n - 3 fill edges.
        for n in 6..12 {
            let g = cycle(n);
            let tri = mcs_m(&g);
            assert_eq!(tri.fill_in(), n - 3, "C{n}");
            assert!(chordal::is_chordal(&tri.graph));
            assert!(is_minimal_triangulation(&g, &tri), "C{n} not minimal");
        }
    }

    #[test]
    fn mcs_m_elimination_order_is_a_peo_of_the_filled_graph() {
        for n in 4..10 {
            let g = cycle(n);
            let tri = mcs_m(&g);
            let mut peo = tri.elimination_order.clone();
            // elimination_order eliminates front-first; that *is* the PEO
            // convention used by `is_perfect_elimination_ordering`.
            assert!(
                chordal::is_perfect_elimination_ordering(&tri.graph, &peo),
                "C{n}: order not a PEO"
            );
            peo.reverse();
            // The reverse is generally not a PEO for cycles (sanity that the
            // direction convention matters and we picked the right one).
            let _ = peo;
        }
    }

    #[test]
    fn elimination_game_matches_the_chosen_order() {
        let g = cycle(5);
        let order: Vec<VertexId> = (0..5).map(v).collect();
        let tri = elimination_game(&g, &order);
        assert!(chordal::is_chordal(&tri.graph));
        // Eliminating a cycle in numeric order fills (2,4)... exact count is
        // 2 for C5 regardless of order since the elimination game on a cycle
        // adds exactly n - 3 chords.
        assert_eq!(tri.fill_in(), 2);
        for &(a, b) in &tri.fill_edges {
            assert!(!g.has_edge(a, b));
            assert!(tri.graph.has_edge(a, b));
        }
    }

    #[test]
    fn min_degree_triangulation_is_chordal_and_no_worse_than_naive_order_on_grids() {
        // 3x3 grid graph.
        let mut g = Graph::new(9);
        let at = |r: usize, c: usize| v(r * 3 + c);
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    g.add_edge(at(r, c), at(r, c + 1));
                }
                if r + 1 < 3 {
                    g.add_edge(at(r, c), at(r + 1, c));
                }
            }
        }
        let naive = elimination_game(&g, &(0..9).map(v).collect::<Vec<_>>());
        let mindeg = min_degree_triangulation(&g);
        let minimal = mcs_m(&g);
        assert!(chordal::is_chordal(&naive.graph));
        assert!(chordal::is_chordal(&mindeg.graph));
        assert!(chordal::is_chordal(&minimal.graph));
        assert!(mindeg.fill_in() <= naive.fill_in() + 2);
        assert!(is_minimal_triangulation(&g, &minimal));
    }

    #[test]
    fn triangulation_never_hurts_more_than_it_must_for_coloring() {
        // Triangulating C4 raises the coloring number from 2 to at most 3.
        let g = cycle(4);
        let tri = mcs_m(&g);
        assert!(greedy::is_greedy_k_colorable(&tri.graph, 3));
    }

    #[test]
    #[should_panic(expected = "exactly the live vertices")]
    fn elimination_game_rejects_incomplete_orders() {
        let g = cycle(4);
        let _ = elimination_game(&g, &[v(0), v(1)]);
    }

    #[test]
    fn fill_edges_never_duplicate_existing_edges() {
        let g = cycle(7);
        for tri in [mcs_m(&g), min_degree_triangulation(&g)] {
            for &(a, b) in &tri.fill_edges {
                assert!(!g.has_edge(a, b), "fill edge ({a},{b}) already existed");
            }
            // No duplicates among fill edges either.
            let set: BTreeSet<_> = tri.fill_edges.iter().copied().collect();
            assert_eq!(set.len(), tri.fill_edges.len());
        }
    }
}
