//! Textual graph formats: DIMACS coloring files and the affinity-annotated
//! "challenge" format.
//!
//! The paper's empirical anchor is the Appel–George *coalescing challenge*:
//! a public suite of interference graphs with move (affinity) edges dumped
//! from the SML/NJ compiler.  Those files are not redistributable here, but
//! to make the library usable as a drop-in laboratory this module defines
//! two plain-text formats and parsers/printers for them:
//!
//! * the classical **DIMACS** `.col` coloring format (`p edge n m` /
//!   `e u v` lines), the lingua franca of graph-coloring benchmarks, for
//!   plain interference graphs;
//! * a **challenge** format that extends DIMACS with affinity lines and an
//!   optional register count, so a complete coalescing instance — the
//!   interference graph, the weighted affinities and `k` — round-trips
//!   through a single file.
//!
//! # Challenge format
//!
//! ```text
//! c  free-form comment
//! p coalesce <num_vertices> <num_interferences> <num_affinities>
//! k <registers>              (optional)
//! e <u> <v>                  interference, 1-based vertex numbers
//! a <u> <v> <weight>         affinity with weight (weight optional, default 1)
//! ```
//!
//! Vertices are 1-based in both formats, following the DIMACS convention.

use crate::graph::{Graph, VertexId};
use std::fmt;

/// What class of problem a [`ParseError`] reports — servers use this to
/// map parse failures onto distinct protocol error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The input is syntactically or semantically malformed.
    Malformed,
    /// The input is well-formed but declares an instance larger than the
    /// caller's [`ParseLimits`] allow.
    TooLarge,
}

/// An error produced while parsing a DIMACS or challenge file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number at which the error was detected.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
    /// Whether the input was malformed or merely over the size limits.
    pub kind: ParseErrorKind,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
        kind: ParseErrorKind::Malformed,
    }
}

fn err_large(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
        kind: ParseErrorKind::TooLarge,
    }
}

/// Caps on the instance sizes the parsers will *allocate for*.
///
/// Both parsers size the vertex arena from the file's own problem line, so
/// without a cap a one-line hostile input (`p edge 999999999999 0`) forces
/// a terabyte-scale allocation — an abort, not an `Err` — before a single
/// edge is read.  The declared counts are checked against these limits
/// first; exceeding them is a typed [`ParseErrorKind::TooLarge`] error.
///
/// [`ParseLimits::default`] is generous (far beyond every corpus and
/// generated workload in this repository, ~hundreds of MB of arena at the
/// extreme) but finite.  Servers facing untrusted input should pass
/// something much stricter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum declared vertex count.
    pub max_vertices: usize,
    /// Maximum declared edge (interference) count.
    pub max_edges: usize,
    /// Maximum declared affinity count.
    pub max_affinities: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_vertices: 4_000_000,
            max_edges: 100_000_000,
            max_affinities: 10_000_000,
        }
    }
}

impl ParseLimits {
    fn check(
        &self,
        lineno: usize,
        n: usize,
        edges: usize,
        affinities: usize,
    ) -> Result<(), ParseError> {
        if n > self.max_vertices {
            return Err(err_large(
                lineno,
                format!(
                    "declared vertex count {n} exceeds limit {}",
                    self.max_vertices
                ),
            ));
        }
        if edges > self.max_edges {
            return Err(err_large(
                lineno,
                format!(
                    "declared edge count {edges} exceeds limit {}",
                    self.max_edges
                ),
            ));
        }
        if affinities > self.max_affinities {
            return Err(err_large(
                lineno,
                format!(
                    "declared affinity count {affinities} exceeds limit {}",
                    self.max_affinities
                ),
            ));
        }
        Ok(())
    }
}

/// A parsed coalescing instance: interference graph, weighted affinities and
/// an optional register count.
///
/// This is deliberately a plain-data struct (rather than re-using
/// `coalesce_core::AffinityGraph`) so that the graph crate stays free of
/// upward dependencies; converting it into an `AffinityGraph` is a one-liner
/// at the call site.
#[derive(Debug, Clone)]
pub struct ChallengeFile {
    /// The interference graph.
    pub graph: Graph,
    /// Affinities as `(u, v, weight)` triples.
    pub affinities: Vec<(VertexId, VertexId, u64)>,
    /// The number of registers recorded in the file, if any.
    pub registers: Option<usize>,
}

impl ChallengeFile {
    /// Total weight of all affinities.
    pub fn total_affinity_weight(&self) -> u64 {
        self.affinities.iter().map(|&(_, _, w)| w).sum()
    }
}

/// Serialises a graph in DIMACS `.col` format.
///
/// Dead (merged-away) vertices are skipped; vertex numbers in the output
/// are the 1-based original identifiers, so the file may declare a vertex
/// count larger than the number of `e` lines' endpoints.
pub fn to_dimacs(g: &Graph) -> String {
    let mut out = String::new();
    out.push_str(&format!("p edge {} {}\n", g.capacity(), g.num_edges()));
    for (u, v) in g.edges() {
        out.push_str(&format!("e {} {}\n", u.index() + 1, v.index() + 1));
    }
    out
}

/// Parses a DIMACS `.col` file into a [`Graph`].
///
/// # Errors
///
/// Returns a [`ParseError`] if the problem line is missing, duplicated or
/// malformed, a vertex number is out of range or zero, an edge is a
/// self-loop, the number of `e` lines does not match the declared edge
/// count (truncated or padded file), or an unknown line type is
/// encountered.  Declared sizes are bounded by [`ParseLimits::default`];
/// use [`from_dimacs_limited`] to tighten or loosen the caps.
pub fn from_dimacs(input: &str) -> Result<Graph, ParseError> {
    from_dimacs_limited(input, &ParseLimits::default())
}

/// [`from_dimacs`] with caller-chosen [`ParseLimits`].
///
/// # Errors
///
/// As [`from_dimacs`], plus [`ParseErrorKind::TooLarge`] when the problem
/// line declares more vertices or edges than `limits` allow.
pub fn from_dimacs_limited(input: &str, limits: &ParseLimits) -> Result<Graph, ParseError> {
    let mut graph: Option<Graph> = None;
    let mut declared_edges = 0usize;
    let mut edge_lines = 0usize;
    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                if graph.is_some() {
                    return Err(err(
                        lineno,
                        "duplicate problem line (the graph was already declared)",
                    ));
                }
                let kind = parts
                    .next()
                    .ok_or_else(|| err(lineno, "missing problem kind"))?;
                if kind != "edge" && kind != "col" {
                    return Err(err(lineno, format!("unsupported problem kind `{kind}`")));
                }
                let n: usize = parse_field(parts.next(), lineno, "vertex count")?;
                declared_edges = parse_field(parts.next(), lineno, "edge count")?;
                limits.check(lineno, n, declared_edges, 0)?;
                graph = Some(Graph::new(n));
            }
            Some("e") => {
                let g = graph
                    .as_mut()
                    .ok_or_else(|| err(lineno, "edge line before problem line"))?;
                let (u, v) = parse_edge(&mut parts, lineno, g.capacity())?;
                if u == v {
                    return Err(err(lineno, "self-loop edge is not allowed"));
                }
                g.add_edge(u, v);
                edge_lines += 1;
            }
            Some(other) => {
                return Err(err(lineno, format!("unknown line type `{other}`")));
            }
            None => unreachable!("non-empty line has a first token"),
        }
    }
    let graph = graph.ok_or_else(|| err(0, "no problem line found"))?;
    if edge_lines != declared_edges {
        return Err(err(
            0,
            format!("problem line declares {declared_edges} edge(s) but {edge_lines} were parsed"),
        ));
    }
    Ok(graph)
}

/// Serialises a full coalescing instance in the challenge format.
pub fn to_challenge(file: &ChallengeFile) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "p coalesce {} {} {}\n",
        file.graph.capacity(),
        file.graph.num_edges(),
        file.affinities.len()
    ));
    if let Some(k) = file.registers {
        out.push_str(&format!("k {k}\n"));
    }
    for (u, v) in file.graph.edges() {
        out.push_str(&format!("e {} {}\n", u.index() + 1, v.index() + 1));
    }
    for &(u, v, w) in &file.affinities {
        out.push_str(&format!("a {} {} {}\n", u.index() + 1, v.index() + 1, w));
    }
    out
}

/// Parses a challenge-format coalescing instance.
///
/// # Errors
///
/// Returns a [`ParseError`] on a malformed, missing or duplicated problem
/// line, vertex numbers out of range, self-loop interferences, affinities
/// between identical vertices, interference/affinity line counts that do
/// not match the declared counts (truncated or padded file), or unknown
/// line types.  Declared sizes are bounded by [`ParseLimits::default`];
/// use [`from_challenge_limited`] to tighten or loosen the caps.
pub fn from_challenge(input: &str) -> Result<ChallengeFile, ParseError> {
    from_challenge_limited(input, &ParseLimits::default())
}

/// [`from_challenge`] with caller-chosen [`ParseLimits`].
///
/// # Errors
///
/// As [`from_challenge`], plus [`ParseErrorKind::TooLarge`] when the
/// problem line declares more vertices, interferences or affinities than
/// `limits` allow.
pub fn from_challenge_limited(
    input: &str,
    limits: &ParseLimits,
) -> Result<ChallengeFile, ParseError> {
    let mut graph: Option<Graph> = None;
    let mut affinities: Vec<(VertexId, VertexId, u64)> = Vec::new();
    let mut registers = None;
    let mut declared_edges = 0usize;
    let mut declared_affinities = 0usize;
    let mut edge_lines = 0usize;
    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                if graph.is_some() {
                    return Err(err(
                        lineno,
                        "duplicate problem line (the instance was already declared)",
                    ));
                }
                let kind = parts
                    .next()
                    .ok_or_else(|| err(lineno, "missing problem kind"))?;
                if kind != "coalesce" {
                    return Err(err(lineno, format!("unsupported problem kind `{kind}`")));
                }
                let n: usize = parse_field(parts.next(), lineno, "vertex count")?;
                declared_edges = parse_field(parts.next(), lineno, "interference count")?;
                declared_affinities = parse_field(parts.next(), lineno, "affinity count")?;
                limits.check(lineno, n, declared_edges, declared_affinities)?;
                graph = Some(Graph::new(n));
            }
            Some("k") => {
                registers = Some(parse_field(parts.next(), lineno, "register count")?);
            }
            Some("e") => {
                let g = graph
                    .as_mut()
                    .ok_or_else(|| err(lineno, "edge line before problem line"))?;
                let (u, v) = parse_edge(&mut parts, lineno, g.capacity())?;
                if u == v {
                    return Err(err(lineno, "self-interference is not allowed"));
                }
                g.add_edge(u, v);
                edge_lines += 1;
            }
            Some("a") => {
                let g = graph
                    .as_ref()
                    .ok_or_else(|| err(lineno, "affinity line before problem line"))?;
                let (u, v) = parse_edge(&mut parts, lineno, g.capacity())?;
                if u == v {
                    return Err(err(lineno, "affinity between a vertex and itself"));
                }
                let weight: u64 = match parts.next() {
                    Some(w) => w
                        .parse()
                        .map_err(|_| err(lineno, format!("invalid affinity weight `{w}`")))?,
                    None => 1,
                };
                affinities.push((u, v, weight));
            }
            Some(other) => {
                return Err(err(lineno, format!("unknown line type `{other}`")));
            }
            None => unreachable!("non-empty line has a first token"),
        }
    }
    let graph = graph.ok_or_else(|| err(0, "no problem line found"))?;
    if edge_lines != declared_edges {
        return Err(err(
            0,
            format!(
                "problem line declares {declared_edges} interference(s) but {edge_lines} were parsed"
            ),
        ));
    }
    if affinities.len() != declared_affinities {
        return Err(err(
            0,
            format!(
                "problem line declares {declared_affinities} affinity(ies) but {} were parsed",
                affinities.len()
            ),
        ));
    }
    Ok(ChallengeFile {
        graph,
        affinities,
        registers,
    })
}

fn parse_field<T: std::str::FromStr>(
    token: Option<&str>,
    lineno: usize,
    what: &str,
) -> Result<T, ParseError> {
    let token = token.ok_or_else(|| err(lineno, format!("missing {what}")))?;
    token
        .parse()
        .map_err(|_| err(lineno, format!("invalid {what} `{token}`")))
}

fn parse_edge<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    lineno: usize,
    capacity: usize,
) -> Result<(VertexId, VertexId), ParseError> {
    let u: usize = parse_field(parts.next(), lineno, "first endpoint")?;
    let v: usize = parse_field(parts.next(), lineno, "second endpoint")?;
    for x in [u, v] {
        if x == 0 || x > capacity {
            return Err(err(
                lineno,
                format!("vertex {x} out of range 1..={capacity}"),
            ));
        }
    }
    Ok((VertexId::new(u - 1), VertexId::new(v - 1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn dimacs_round_trip_preserves_the_graph() {
        let g = Graph::with_edges(
            5,
            [
                (v(0), v(1)),
                (v(1), v(2)),
                (v(2), v(3)),
                (v(3), v(4)),
                (v(0), v(4)),
            ],
        );
        let text = to_dimacs(&g);
        let parsed = from_dimacs(&text).expect("round trip parses");
        assert_eq!(parsed.num_vertices(), 5);
        assert_eq!(parsed.num_edges(), 5);
        for (u, w) in g.edges() {
            assert!(parsed.has_edge(u, w));
        }
    }

    #[test]
    fn dimacs_accepts_comments_and_blank_lines() {
        let text = "c a comment\n\np edge 3 2\nc another\ne 1 2\ne 2 3\n";
        let g = from_dimacs(text).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(v(0), v(1)));
        assert!(g.has_edge(v(1), v(2)));
    }

    #[test]
    fn dimacs_rejects_edges_before_the_problem_line() {
        let e = from_dimacs("e 1 2\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("before problem line"));
    }

    #[test]
    fn dimacs_rejects_out_of_range_vertices() {
        let e = from_dimacs("p edge 3 1\ne 1 9\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn dimacs_rejects_unknown_line_types() {
        let e = from_dimacs("p edge 2 0\nz 1 2\n").unwrap_err();
        assert!(e.message.contains("unknown line type"));
    }

    #[test]
    fn challenge_round_trip_preserves_everything() {
        let graph = Graph::with_edges(4, [(v(0), v(1)), (v(2), v(3))]);
        let file = ChallengeFile {
            graph,
            affinities: vec![(v(0), v(2), 5), (v(1), v(3), 1)],
            registers: Some(3),
        };
        let text = to_challenge(&file);
        let parsed = from_challenge(&text).unwrap();
        assert_eq!(parsed.registers, Some(3));
        assert_eq!(parsed.affinities, file.affinities);
        assert_eq!(parsed.graph.num_edges(), 2);
        assert_eq!(parsed.total_affinity_weight(), 6);
    }

    #[test]
    fn challenge_default_affinity_weight_is_one() {
        let text = "p coalesce 2 0 1\na 1 2\n";
        let parsed = from_challenge(text).unwrap();
        assert_eq!(parsed.affinities, vec![(v(0), v(1), 1)]);
        assert_eq!(parsed.registers, None);
    }

    #[test]
    fn challenge_rejects_self_affinities_and_self_interferences() {
        assert!(from_challenge("p coalesce 2 1 0\ne 1 1\n").is_err());
        assert!(from_challenge("p coalesce 2 0 1\na 2 2\n").is_err());
    }

    #[test]
    fn challenge_rejects_bad_weights() {
        let e = from_challenge("p coalesce 2 0 1\na 1 2 heavy\n").unwrap_err();
        assert!(e.message.contains("invalid affinity weight"));
    }

    #[test]
    fn duplicate_problem_lines_are_rejected() {
        // A second `p` line used to silently reset the graph, discarding
        // every previously parsed edge/affinity.
        let e = from_dimacs("p edge 3 1\ne 1 2\np edge 5 0\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("duplicate problem line"), "{e}");
        let e = from_challenge("p coalesce 3 1 0\ne 1 2\np coalesce 9 0 0\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("duplicate problem line"), "{e}");
    }

    #[test]
    fn self_loops_are_rejected_by_both_parsers() {
        // `from_dimacs` used to drop `e u u` silently while
        // `from_challenge` errored; both must error now.
        let e = from_dimacs("p edge 2 1\ne 1 1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("self-loop"), "{e}");
        assert!(from_challenge("p coalesce 2 1 0\ne 2 2\n").is_err());
    }

    #[test]
    fn truncated_files_no_longer_parse_silently() {
        // Fewer `e` lines than declared: a truncated download or an
        // interrupted writer must not yield a silently smaller graph.
        let e = from_dimacs("p edge 3 2\ne 1 2\n").unwrap_err();
        assert!(e.message.contains("declares 2 edge(s) but 1"), "{e}");
        // More lines than declared is just as suspicious.
        let e = from_dimacs("p edge 3 1\ne 1 2\ne 2 3\n").unwrap_err();
        assert!(e.message.contains("declares 1 edge(s) but 2"), "{e}");
        // Challenge: both the interference and the affinity counts are
        // validated.
        let e = from_challenge("p coalesce 3 2 0\ne 1 2\n").unwrap_err();
        assert!(e.message.contains("interference"), "{e}");
        let e = from_challenge("p coalesce 3 0 2\na 1 2 4\n").unwrap_err();
        assert!(e.message.contains("affinity"), "{e}");
    }

    #[test]
    fn hostile_declared_counts_are_too_large_errors_not_allocations() {
        // A one-line file must never size a terabyte arena from its own
        // problem line; the declared count is checked *before* allocation.
        let e = from_dimacs("p edge 999999999999 0\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::TooLarge, "{e}");
        assert!(e.message.contains("exceeds limit"), "{e}");
        let e = from_challenge("p coalesce 999999999999 0 0\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::TooLarge, "{e}");
        // Declared edge / affinity floods are classified the same way.
        let e = from_dimacs("p edge 4 999999999999\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::TooLarge, "{e}");
        let e = from_challenge("p coalesce 4 0 999999999999\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::TooLarge, "{e}");
        // Malformed input keeps its own kind.
        let e = from_dimacs("p edge two 0\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::Malformed, "{e}");
    }

    #[test]
    fn custom_limits_tighten_the_caps() {
        let strict = ParseLimits {
            max_vertices: 8,
            max_edges: 8,
            max_affinities: 2,
        };
        assert!(from_dimacs_limited("p edge 8 1\ne 1 2\n", &strict).is_ok());
        let e = from_dimacs_limited("p edge 9 0\n", &strict).unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::TooLarge);
        let e = from_challenge_limited("p coalesce 4 0 3\n", &strict).unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::TooLarge);
    }

    #[test]
    fn parse_error_displays_line_number() {
        let e = from_dimacs("p edge 2 0\nq\n").unwrap_err();
        assert_eq!(format!("{e}"), "line 2: unknown line type `q`");
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(from_dimacs("").is_err());
        assert!(from_challenge("c nothing here\n").is_err());
    }
}
