//! The undirected [`Graph`] type and its [`VertexId`] handle.
//!
//! The graph is designed around the needs of register coalescing:
//!
//! * vertices are created up front (one per variable / live range) and keep
//!   **stable identifiers** for their whole life;
//! * coalescing two variables is a vertex **merge** ([`Graph::merge`]): the
//!   second vertex is retired and its edges are folded into the first;
//! * the usual structural queries (degree, neighbors, edge iteration,
//!   induced subgraphs) are available on the *live* part of the graph.
//!
//! # Representation
//!
//! Adjacency is stored CSR-style as one **sorted flat row** (`Vec<VertexId>`)
//! per vertex rather than a `BTreeSet` per vertex: neighbor iteration is a
//! cache-friendly slice scan ([`Graph::neighbor_row`] exposes the row
//! directly), `has_edge` is a binary search (`O(log d)`, no pointer
//! chasing), and bulk construction ([`Graph::from_edges`]) fills, sorts and
//! deduplicates whole rows at once instead of paying a set insertion per
//! edge.  Merging folds the retired row into the surviving one with a
//! single two-pointer union plus one binary-searched splice per incident
//! row, and a union-find alias array ([`Graph::representative`]) keeps
//! resolving retired identifiers to the vertex that absorbed them.

use std::collections::BTreeSet;
use std::fmt;

/// A handle to a vertex of a [`Graph`].
///
/// Identifiers are dense indices assigned in creation order.  They remain
/// valid (as names) after merges, but a merged-away vertex is no longer
/// *live*: structural queries on it panic, mirroring the fact that a
/// coalesced variable no longer exists as a separate entity.
///
/// ```
/// use coalesce_graph::VertexId;
/// let v = VertexId::new(3);
/// assert_eq!(v.index(), 3);
/// let w: VertexId = 3.into();
/// assert_eq!(v, w);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VertexId(u32);

impl VertexId {
    /// Creates a vertex identifier from a dense index.
    pub fn new(index: usize) -> Self {
        VertexId(u32::try_from(index).expect("vertex index exceeds u32::MAX"))
    }

    /// Returns the dense index of this vertex.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for VertexId {
    fn from(index: usize) -> Self {
        VertexId::new(index)
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An undirected graph with stable vertex identifiers and vertex merging.
///
/// Self-loops are rejected (a variable never interferes with itself) and
/// parallel edges are collapsed.  Adjacency is one sorted flat row per
/// vertex, so `has_edge` is a binary search over the smaller endpoint's row
/// (`O(log d)`), neighbor iteration is a contiguous slice scan, and merging
/// two vertices is a sorted-row union: `O(d_from + d_into)` for the union
/// itself plus one binary-searched splice in each row incident to the
/// retired vertex.
///
/// ```
/// use coalesce_graph::Graph;
/// let mut g = Graph::new(3);
/// g.add_edge(0.into(), 1.into());
/// g.add_edge(1.into(), 2.into());
/// assert_eq!(g.degree(1.into()), 2);
/// assert!(g.has_edge(0.into(), 1.into()));
/// assert!(!g.has_edge(0.into(), 2.into()));
/// ```
#[derive(Clone, Default)]
pub struct Graph {
    /// Sorted neighbor row per vertex (empty for retired vertices).
    adj: Vec<Vec<VertexId>>,
    alive: Vec<bool>,
    /// Union-find alias forest over merges: `alias[i]` steps from a retired
    /// vertex toward the vertex that absorbed it (identity for live or
    /// removed vertices).
    alias: Vec<u32>,
    num_live: usize,
    num_edges: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated vertices, numbered `0..n`.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            alive: vec![true; n],
            alias: (0..n).map(|i| i as u32).collect(),
            num_live: n,
            num_edges: 0,
        }
    }

    /// Creates a graph with `n` vertices and the given edges.
    ///
    /// Routes through the bulk [`Graph::from_edges`] construction, so large
    /// edge lists do not pay a per-edge sorted insertion.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of range or a self-loop is given.
    pub fn with_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        Self::from_edges(n, edges)
    }

    /// Bulk-builds a graph with `n` vertices from an edge list (duplicate
    /// edges are collapsed).  The rows are counted, filled, sorted and
    /// deduplicated wholesale — `O(m log d)` with flat-array constants —
    /// instead of one ordered insertion per edge, which is what makes
    /// multi-million-edge interval instances cheap to construct.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of range or a self-loop is given.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let edges: Vec<(VertexId, VertexId)> = edges.into_iter().collect();
        let mut degree = vec![0usize; n];
        for &(u, v) in &edges {
            assert!(
                u.index() < n && v.index() < n,
                "edge ({u}, {v}) out of range for {n} vertices"
            );
            assert_ne!(u, v, "self-loops are not allowed");
            degree[u.index()] += 1;
            degree[v.index()] += 1;
        }
        let mut adj: Vec<Vec<VertexId>> = degree.iter().map(|&d| Vec::with_capacity(d)).collect();
        for &(u, v) in &edges {
            adj[u.index()].push(v);
            adj[v.index()].push(u);
        }
        let mut num_edges = 0usize;
        for row in &mut adj {
            row.sort_unstable();
            row.dedup();
            num_edges += row.len();
        }
        Graph {
            adj,
            alive: vec![true; n],
            alias: (0..n).map(|i| i as u32).collect(),
            num_live: n,
            num_edges: num_edges / 2,
        }
    }

    /// Adds a fresh isolated vertex and returns its identifier.
    pub fn add_vertex(&mut self) -> VertexId {
        let id = VertexId::new(self.adj.len());
        self.adj.push(Vec::new());
        self.alive.push(true);
        self.alias.push(id.0);
        self.num_live += 1;
        id
    }

    /// Total number of vertex identifiers ever created (live or retired).
    pub fn capacity(&self) -> usize {
        self.adj.len()
    }

    /// Number of live vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_live
    }

    /// Number of edges between live vertices.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Returns `true` if `v` names a live (non-merged, non-removed) vertex.
    pub fn is_live(&self, v: VertexId) -> bool {
        self.alive.get(v.index()).copied().unwrap_or(false)
    }

    fn assert_live(&self, v: VertexId) {
        assert!(
            self.is_live(v),
            "vertex {v} is not live (merged away, removed, or out of range)"
        );
    }

    /// Inserts `v` into a sorted row unless present; returns `true` if new.
    /// Appends without a search when `v` belongs at the end (the common
    /// case for construction in ascending order).
    fn row_insert(row: &mut Vec<VertexId>, v: VertexId) -> bool {
        match row.last() {
            Some(&last) if last < v => {
                row.push(v);
                true
            }
            Some(&last) if last == v => false,
            _ => match row.binary_search(&v) {
                Ok(_) => false,
                Err(pos) => {
                    row.insert(pos, v);
                    true
                }
            },
        }
    }

    /// Removes `v` from a sorted row if present; returns `true` if removed.
    fn row_remove(row: &mut Vec<VertexId>, v: VertexId) -> bool {
        match row.binary_search(&v) {
            Ok(pos) => {
                row.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Adds the undirected edge `(u, v)`.  Returns `true` if the edge is new.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not live or if `u == v`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        self.assert_live(u);
        self.assert_live(v);
        assert_ne!(u, v, "self-loops are not allowed");
        let added = Self::row_insert(&mut self.adj[u.index()], v);
        if added {
            Self::row_insert(&mut self.adj[v.index()], u);
            self.num_edges += 1;
        }
        added
    }

    /// Removes the undirected edge `(u, v)` if present; returns whether it existed.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        self.assert_live(u);
        self.assert_live(v);
        let removed = Self::row_remove(&mut self.adj[u.index()], v);
        if removed {
            Self::row_remove(&mut self.adj[v.index()], u);
            self.num_edges -= 1;
        }
        removed
    }

    /// Returns `true` if the edge `(u, v)` is present between two live
    /// vertices.  `O(log d)`: a binary search over the sparser endpoint's
    /// row.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if !self.is_live(u) || !self.is_live(v) {
            return false;
        }
        let (row, target) = if self.adj[u.index()].len() <= self.adj[v.index()].len() {
            (&self.adj[u.index()], v)
        } else {
            (&self.adj[v.index()], u)
        };
        row.binary_search(&target).is_ok()
    }

    /// Degree of a live vertex.
    pub fn degree(&self, v: VertexId) -> usize {
        self.assert_live(v);
        self.adj[v.index()].len()
    }

    /// Iterates over the neighbors of a live vertex, in ascending order.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.assert_live(v);
        self.adj[v.index()].iter().copied()
    }

    /// The neighbor row of a live vertex as a borrowed sorted slice — the
    /// zero-copy view the hot loops (MCS sweeps, interference scans) use.
    pub fn neighbor_row(&self, v: VertexId) -> &[VertexId] {
        self.assert_live(v);
        &self.adj[v.index()]
    }

    /// Iterates over the live vertices in increasing identifier order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| VertexId::new(i))
    }

    /// Iterates over the edges `(u, v)` with `u < v`, between live vertices.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.adj[u.index()]
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Removes a live vertex and all its incident edges.
    pub fn remove_vertex(&mut self, v: VertexId) {
        self.assert_live(v);
        let nbrs = std::mem::take(&mut self.adj[v.index()]);
        for u in nbrs {
            Self::row_remove(&mut self.adj[u.index()], v);
            self.num_edges -= 1;
        }
        self.alive[v.index()] = false;
        self.num_live -= 1;
    }

    /// Merges vertex `from` into vertex `into` (contraction).
    ///
    /// All edges incident to `from` are transferred to `into`; `from` is
    /// retired.  This is exactly the effect of coalescing the two variables.
    /// The surviving row is the two-pointer union of the two sorted rows;
    /// each neighbor of `from` pays one binary-searched splice to swap
    /// `from` for `into` in its own row, and the alias forest records
    /// `from → into` so [`Graph::representative`] keeps resolving the
    /// retired identifier.
    ///
    /// # Panics
    ///
    /// Panics if the two vertices are adjacent (interfering variables cannot
    /// be coalesced), if either is not live, or if `from == into`.
    pub fn merge(&mut self, into: VertexId, from: VertexId) {
        self.assert_live(into);
        self.assert_live(from);
        assert_ne!(into, from, "cannot merge a vertex with itself");
        assert!(
            !self.has_edge(into, from),
            "cannot merge adjacent (interfering) vertices {into} and {from}"
        );
        let from_row = std::mem::take(&mut self.adj[from.index()]);
        self.num_edges -= from_row.len();
        for &u in &from_row {
            Self::row_remove(&mut self.adj[u.index()], from);
        }
        let into_row = std::mem::take(&mut self.adj[into.index()]);
        let mut merged: Vec<VertexId> = Vec::with_capacity(into_row.len() + from_row.len());
        let (mut i, mut j) = (0, 0);
        while i < into_row.len() || j < from_row.len() {
            let next = match (into_row.get(i), from_row.get(j)) {
                (Some(&a), Some(&b)) if a == b => {
                    // Neighbor of both: the edge already exists.
                    i += 1;
                    j += 1;
                    a
                }
                (Some(&a), Some(&b)) if a < b => {
                    i += 1;
                    a
                }
                (Some(_), Some(&b)) | (None, Some(&b)) => {
                    // Neighbor of `from` only: transfer the edge.
                    j += 1;
                    Self::row_insert(&mut self.adj[b.index()], into);
                    self.num_edges += 1;
                    b
                }
                (Some(&a), None) => {
                    i += 1;
                    a
                }
                (None, None) => unreachable!(),
            };
            merged.push(next);
        }
        self.adj[into.index()] = merged;
        self.alive[from.index()] = false;
        self.alias[from.index()] = into.0;
        self.num_live -= 1;
    }

    /// Resolves a (possibly retired) identifier through the merge aliases to
    /// the vertex that currently carries its edges: the identity for a
    /// vertex that was never merged away, otherwise the representative the
    /// chain of [`Graph::merge`] calls folded it into.
    ///
    /// ```
    /// use coalesce_graph::Graph;
    /// let mut g = Graph::new(3);
    /// g.merge(0.into(), 2.into());
    /// g.merge(1.into(), 0.into());
    /// assert_eq!(g.representative(2.into()), 1.into());
    /// ```
    pub fn representative(&self, v: VertexId) -> VertexId {
        let mut cur = v.index();
        while self.alias[cur] as usize != cur {
            cur = self.alias[cur] as usize;
        }
        VertexId::new(cur)
    }

    /// Returns the subgraph induced by `keep`, together with the mapping
    /// from new (dense) vertex identifiers back to the original ones.
    ///
    /// Vertices in `keep` that are not live are ignored.
    pub fn induced_subgraph(&self, keep: &BTreeSet<VertexId>) -> (Graph, Vec<VertexId>) {
        let originals: Vec<VertexId> = self.vertices().filter(|v| keep.contains(v)).collect();
        let mut index_of = vec![usize::MAX; self.capacity()];
        for (i, &v) in originals.iter().enumerate() {
            index_of[v.index()] = i;
        }
        let mut sub = Graph::new(originals.len());
        for (i, &v) in originals.iter().enumerate() {
            for u in self.neighbors(v) {
                let j = index_of[u.index()];
                if j != usize::MAX && j > i {
                    sub.add_edge(VertexId::new(i), VertexId::new(j));
                }
            }
        }
        (sub, originals)
    }

    /// Returns a dense copy of the live part of the graph: vertices are
    /// renumbered `0..num_vertices()` in increasing original-identifier
    /// order.  Also returns the original identifier of each new vertex.
    pub fn compact(&self) -> (Graph, Vec<VertexId>) {
        let keep: BTreeSet<VertexId> = self.vertices().collect();
        self.induced_subgraph(&keep)
    }

    /// Returns `true` if every pair of distinct vertices in `verts` is adjacent.
    pub fn is_clique(&self, verts: &[VertexId]) -> bool {
        for (i, &u) in verts.iter().enumerate() {
            for &v in &verts[i + 1..] {
                if u == v || !self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// Maximum degree over live vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree over live vertices (0 for an empty graph).
    pub fn min_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// Returns the complement graph restricted to live vertices, using the
    /// same identifiers (retired identifiers stay retired).
    pub fn complement(&self) -> Graph {
        let mut g = Graph {
            adj: vec![Vec::new(); self.capacity()],
            alive: self.alive.clone(),
            alias: self.alias.clone(),
            num_live: self.num_live,
            num_edges: 0,
        };
        let verts: Vec<VertexId> = self.vertices().collect();
        for (i, &u) in verts.iter().enumerate() {
            for &v in &verts[i + 1..] {
                if !self.has_edge(u, v) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Returns the connected components of the live part of the graph.
    pub fn connected_components(&self) -> Vec<Vec<VertexId>> {
        let mut seen = vec![false; self.capacity()];
        let mut comps = Vec::new();
        for start in self.vertices() {
            if seen[start.index()] {
                continue;
            }
            let mut comp = Vec::new();
            let mut stack = vec![start];
            seen[start.index()] = true;
            while let Some(v) = stack.pop() {
                comp.push(v);
                for u in self.neighbors(v) {
                    if !seen[u.index()] {
                        seen[u.index()] = true;
                        stack.push(u);
                    }
                }
            }
            comp.sort();
            comps.push(comp);
        }
        comps
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph({} vertices, {} edges: ",
            self.num_vertices(),
            self.num_edges()
        )?;
        let mut first = true;
        for (u, v) in self.edges() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{u}-{v}")?;
            first = false;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        Graph::with_edges(n, (1..n).map(|i| (VertexId::new(i - 1), VertexId::new(i))))
    }

    #[test]
    fn new_graph_is_edgeless() {
        let g = Graph::new(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn add_edge_is_idempotent() {
        let mut g = Graph::new(2);
        assert!(g.add_edge(0.into(), 1.into()));
        assert!(!g.add_edge(1.into(), 0.into()));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut g = Graph::new(1);
        g.add_edge(0.into(), 0.into());
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn bulk_self_loop_panics() {
        Graph::from_edges(2, [(VertexId::new(1), VertexId::new(1))]);
    }

    #[test]
    fn bulk_construction_collapses_duplicates() {
        let g = Graph::from_edges(
            3,
            [
                (VertexId::new(0), VertexId::new(1)),
                (VertexId::new(1), VertexId::new(0)),
                (VertexId::new(2), VertexId::new(1)),
                (VertexId::new(0), VertexId::new(1)),
            ],
        );
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1.into()), 2);
        let nbrs: Vec<_> = g.neighbors(1.into()).collect();
        assert_eq!(nbrs, vec![VertexId::new(0), VertexId::new(2)]);
    }

    #[test]
    fn degree_and_neighbors() {
        let g = path(4);
        assert_eq!(g.degree(0.into()), 1);
        assert_eq!(g.degree(1.into()), 2);
        let nbrs: Vec<_> = g.neighbors(1.into()).collect();
        assert_eq!(nbrs, vec![VertexId::new(0), VertexId::new(2)]);
        assert_eq!(g.neighbor_row(1.into()), &nbrs[..]);
    }

    #[test]
    fn neighbor_rows_stay_sorted_under_unordered_insertion() {
        let mut g = Graph::new(5);
        for u in [3usize, 1, 4, 2] {
            g.add_edge(0.into(), u.into());
        }
        assert_eq!(
            g.neighbor_row(0.into()),
            &[1.into(), 2.into(), 3.into(), 4.into()]
        );
    }

    #[test]
    fn remove_edge_updates_counts() {
        let mut g = path(3);
        assert!(g.remove_edge(0.into(), 1.into()));
        assert!(!g.remove_edge(0.into(), 1.into()));
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(0.into(), 1.into()));
    }

    #[test]
    fn remove_vertex_drops_incident_edges() {
        let mut g = path(3);
        g.remove_vertex(1.into());
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 0);
        assert!(!g.is_live(1.into()));
    }

    #[test]
    fn merge_transfers_edges() {
        // 0-1, 2-3 ; merging 0 and 2 gives a vertex adjacent to 1 and 3.
        let mut g = Graph::with_edges(4, [(0.into(), 1.into()), (2.into(), 3.into())]);
        g.merge(0.into(), 2.into());
        assert!(g.has_edge(0.into(), 1.into()));
        assert!(g.has_edge(0.into(), 3.into()));
        assert!(!g.is_live(2.into()));
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn merge_collapses_parallel_edges() {
        // 0-1 and 2-1: merging 0,2 must keep a single edge to 1.
        let mut g = Graph::with_edges(3, [(0.into(), 1.into()), (2.into(), 1.into())]);
        g.merge(0.into(), 2.into());
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(1.into()), 1);
    }

    #[test]
    fn merge_keeps_rows_sorted() {
        // Interleaved neighborhoods: the union must come out sorted.
        let mut g = Graph::with_edges(
            7,
            [
                (0.into(), 2.into()),
                (0.into(), 5.into()),
                (1.into(), 3.into()),
                (1.into(), 4.into()),
                (1.into(), 6.into()),
            ],
        );
        g.merge(0.into(), 1.into());
        assert_eq!(
            g.neighbor_row(0.into()),
            &[2.into(), 3.into(), 4.into(), 5.into(), 6.into()]
        );
        for u in [2usize, 3, 4, 5, 6] {
            assert!(g.has_edge(0.into(), u.into()));
            assert_eq!(g.neighbor_row(u.into()), &[0.into()]);
        }
    }

    #[test]
    #[should_panic(expected = "interfering")]
    fn merge_adjacent_panics() {
        let mut g = Graph::with_edges(2, [(0.into(), 1.into())]);
        g.merge(0.into(), 1.into());
    }

    #[test]
    fn representative_follows_merge_chains() {
        let mut g = Graph::new(4);
        assert_eq!(g.representative(3.into()), 3.into());
        g.merge(0.into(), 2.into());
        g.merge(1.into(), 0.into());
        assert_eq!(g.representative(2.into()), 1.into());
        assert_eq!(g.representative(0.into()), 1.into());
        assert_eq!(g.representative(1.into()), 1.into());
        assert_eq!(g.representative(3.into()), 3.into());
    }

    #[test]
    fn induced_subgraph_maps_back() {
        let g = path(5);
        let keep: BTreeSet<VertexId> = [0usize, 1, 3].into_iter().map(VertexId::new).collect();
        let (sub, map) = g.induced_subgraph(&keep);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 1); // only 0-1 survives
        assert_eq!(
            map,
            vec![VertexId::new(0), VertexId::new(1), VertexId::new(3)]
        );
    }

    #[test]
    fn complement_of_path() {
        let g = path(3);
        let c = g.complement();
        assert_eq!(c.num_edges(), 1);
        assert!(c.has_edge(0.into(), 2.into()));
    }

    #[test]
    fn clique_detection() {
        let g = Graph::with_edges(
            3,
            [
                (0.into(), 1.into()),
                (1.into(), 2.into()),
                (0.into(), 2.into()),
            ],
        );
        assert!(g.is_clique(&[0.into(), 1.into(), 2.into()]));
        let h = path(3);
        assert!(!h.is_clique(&[0.into(), 1.into(), 2.into()]));
    }

    #[test]
    fn connected_components_of_two_paths() {
        let mut g = path(3);
        let a = g.add_vertex();
        let b = g.add_vertex();
        g.add_edge(a, b);
        let comps = g.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 3);
        assert_eq!(comps[1].len(), 2);
    }

    #[test]
    fn compact_renumbers_densely() {
        let mut g = path(4);
        g.remove_vertex(1.into());
        let (c, map) = g.compact();
        assert_eq!(c.num_vertices(), 3);
        assert_eq!(map.len(), 3);
        // Only edge 2-3 survives, mapped to dense ids 1-2.
        assert_eq!(c.num_edges(), 1);
        assert!(c.has_edge(1.into(), 2.into()));
    }
}
