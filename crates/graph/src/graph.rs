//! The undirected [`Graph`] type and its [`VertexId`] handle.
//!
//! The graph is designed around the needs of register coalescing:
//!
//! * vertices are created up front (one per variable / live range) and keep
//!   **stable identifiers** for their whole life;
//! * coalescing two variables is a vertex **merge** ([`Graph::merge`]): the
//!   second vertex is retired and its edges are folded into the first;
//! * the usual structural queries (degree, neighbors, edge iteration,
//!   induced subgraphs) are available on the *live* part of the graph.

use std::collections::BTreeSet;
use std::fmt;

/// A handle to a vertex of a [`Graph`].
///
/// Identifiers are dense indices assigned in creation order.  They remain
/// valid (as names) after merges, but a merged-away vertex is no longer
/// *live*: structural queries on it panic, mirroring the fact that a
/// coalesced variable no longer exists as a separate entity.
///
/// ```
/// use coalesce_graph::VertexId;
/// let v = VertexId::new(3);
/// assert_eq!(v.index(), 3);
/// let w: VertexId = 3.into();
/// assert_eq!(v, w);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VertexId(u32);

impl VertexId {
    /// Creates a vertex identifier from a dense index.
    pub fn new(index: usize) -> Self {
        VertexId(u32::try_from(index).expect("vertex index exceeds u32::MAX"))
    }

    /// Returns the dense index of this vertex.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for VertexId {
    fn from(index: usize) -> Self {
        VertexId::new(index)
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An undirected graph with stable vertex identifiers and vertex merging.
///
/// Self-loops are rejected (a variable never interferes with itself) and
/// parallel edges are collapsed.  The structure is an adjacency-set
/// representation, so edge queries are `O(log d)` and merging two vertices
/// is `O(d log d)` in the degree `d` of the retired vertex.
///
/// ```
/// use coalesce_graph::Graph;
/// let mut g = Graph::new(3);
/// g.add_edge(0.into(), 1.into());
/// g.add_edge(1.into(), 2.into());
/// assert_eq!(g.degree(1.into()), 2);
/// assert!(g.has_edge(0.into(), 1.into()));
/// assert!(!g.has_edge(0.into(), 2.into()));
/// ```
#[derive(Clone, Default)]
pub struct Graph {
    adj: Vec<BTreeSet<VertexId>>,
    alive: Vec<bool>,
    num_live: usize,
    num_edges: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated vertices, numbered `0..n`.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![BTreeSet::new(); n],
            alive: vec![true; n],
            num_live: n,
            num_edges: 0,
        }
    }

    /// Creates a graph with `n` vertices and the given edges.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of range or a self-loop is given.
    pub fn with_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Adds a fresh isolated vertex and returns its identifier.
    pub fn add_vertex(&mut self) -> VertexId {
        let id = VertexId::new(self.adj.len());
        self.adj.push(BTreeSet::new());
        self.alive.push(true);
        self.num_live += 1;
        id
    }

    /// Total number of vertex identifiers ever created (live or retired).
    pub fn capacity(&self) -> usize {
        self.adj.len()
    }

    /// Number of live vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_live
    }

    /// Number of edges between live vertices.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Returns `true` if `v` names a live (non-merged, non-removed) vertex.
    pub fn is_live(&self, v: VertexId) -> bool {
        self.alive.get(v.index()).copied().unwrap_or(false)
    }

    fn assert_live(&self, v: VertexId) {
        assert!(
            self.is_live(v),
            "vertex {v} is not live (merged away, removed, or out of range)"
        );
    }

    /// Adds the undirected edge `(u, v)`.  Returns `true` if the edge is new.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not live or if `u == v`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        self.assert_live(u);
        self.assert_live(v);
        assert_ne!(u, v, "self-loops are not allowed");
        let added = self.adj[u.index()].insert(v);
        if added {
            self.adj[v.index()].insert(u);
            self.num_edges += 1;
        }
        added
    }

    /// Removes the undirected edge `(u, v)` if present; returns whether it existed.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        self.assert_live(u);
        self.assert_live(v);
        let removed = self.adj[u.index()].remove(&v);
        if removed {
            self.adj[v.index()].remove(&u);
            self.num_edges -= 1;
        }
        removed
    }

    /// Returns `true` if the edge `(u, v)` is present between two live vertices.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.is_live(u) && self.is_live(v) && self.adj[u.index()].contains(&v)
    }

    /// Degree of a live vertex.
    pub fn degree(&self, v: VertexId) -> usize {
        self.assert_live(v);
        self.adj[v.index()].len()
    }

    /// Iterates over the neighbors of a live vertex.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.assert_live(v);
        self.adj[v.index()].iter().copied()
    }

    /// Returns the neighbor set of a live vertex.
    pub fn neighbor_set(&self, v: VertexId) -> &BTreeSet<VertexId> {
        self.assert_live(v);
        &self.adj[v.index()]
    }

    /// Iterates over the live vertices in increasing identifier order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| VertexId::new(i))
    }

    /// Iterates over the edges `(u, v)` with `u < v`, between live vertices.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.adj[u.index()]
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Removes a live vertex and all its incident edges.
    pub fn remove_vertex(&mut self, v: VertexId) {
        self.assert_live(v);
        let nbrs: Vec<VertexId> = self.adj[v.index()].iter().copied().collect();
        for u in nbrs {
            self.adj[u.index()].remove(&v);
            self.num_edges -= 1;
        }
        self.adj[v.index()].clear();
        self.alive[v.index()] = false;
        self.num_live -= 1;
    }

    /// Merges vertex `from` into vertex `into` (contraction).
    ///
    /// All edges incident to `from` are transferred to `into`; `from` is
    /// retired.  This is exactly the effect of coalescing the two variables.
    ///
    /// # Panics
    ///
    /// Panics if the two vertices are adjacent (interfering variables cannot
    /// be coalesced), if either is not live, or if `from == into`.
    pub fn merge(&mut self, into: VertexId, from: VertexId) {
        self.assert_live(into);
        self.assert_live(from);
        assert_ne!(into, from, "cannot merge a vertex with itself");
        assert!(
            !self.has_edge(into, from),
            "cannot merge adjacent (interfering) vertices {into} and {from}"
        );
        let nbrs: Vec<VertexId> = self.adj[from.index()].iter().copied().collect();
        for u in nbrs {
            self.adj[u.index()].remove(&from);
            self.num_edges -= 1;
            if self.adj[into.index()].insert(u) {
                self.adj[u.index()].insert(into);
                self.num_edges += 1;
            }
        }
        self.adj[from.index()].clear();
        self.alive[from.index()] = false;
        self.num_live -= 1;
    }

    /// Returns the subgraph induced by `keep`, together with the mapping
    /// from new (dense) vertex identifiers back to the original ones.
    ///
    /// Vertices in `keep` that are not live are ignored.
    pub fn induced_subgraph(&self, keep: &BTreeSet<VertexId>) -> (Graph, Vec<VertexId>) {
        let originals: Vec<VertexId> = self.vertices().filter(|v| keep.contains(v)).collect();
        let mut index_of = vec![usize::MAX; self.capacity()];
        for (i, &v) in originals.iter().enumerate() {
            index_of[v.index()] = i;
        }
        let mut sub = Graph::new(originals.len());
        for (i, &v) in originals.iter().enumerate() {
            for u in self.neighbors(v) {
                let j = index_of[u.index()];
                if j != usize::MAX && j > i {
                    sub.add_edge(VertexId::new(i), VertexId::new(j));
                }
            }
        }
        (sub, originals)
    }

    /// Returns a dense copy of the live part of the graph: vertices are
    /// renumbered `0..num_vertices()` in increasing original-identifier
    /// order.  Also returns the original identifier of each new vertex.
    pub fn compact(&self) -> (Graph, Vec<VertexId>) {
        let keep: BTreeSet<VertexId> = self.vertices().collect();
        self.induced_subgraph(&keep)
    }

    /// Returns `true` if every pair of distinct vertices in `verts` is adjacent.
    pub fn is_clique(&self, verts: &[VertexId]) -> bool {
        for (i, &u) in verts.iter().enumerate() {
            for &v in &verts[i + 1..] {
                if u == v || !self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// Maximum degree over live vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree over live vertices (0 for an empty graph).
    pub fn min_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// Returns the complement graph restricted to live vertices, using the
    /// same identifiers (retired identifiers stay retired).
    pub fn complement(&self) -> Graph {
        let mut g = Graph {
            adj: vec![BTreeSet::new(); self.capacity()],
            alive: self.alive.clone(),
            num_live: self.num_live,
            num_edges: 0,
        };
        let verts: Vec<VertexId> = self.vertices().collect();
        for (i, &u) in verts.iter().enumerate() {
            for &v in &verts[i + 1..] {
                if !self.has_edge(u, v) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Returns the connected components of the live part of the graph.
    pub fn connected_components(&self) -> Vec<Vec<VertexId>> {
        let mut seen = vec![false; self.capacity()];
        let mut comps = Vec::new();
        for start in self.vertices() {
            if seen[start.index()] {
                continue;
            }
            let mut comp = Vec::new();
            let mut stack = vec![start];
            seen[start.index()] = true;
            while let Some(v) = stack.pop() {
                comp.push(v);
                for u in self.neighbors(v) {
                    if !seen[u.index()] {
                        seen[u.index()] = true;
                        stack.push(u);
                    }
                }
            }
            comp.sort();
            comps.push(comp);
        }
        comps
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph({} vertices, {} edges: ",
            self.num_vertices(),
            self.num_edges()
        )?;
        let mut first = true;
        for (u, v) in self.edges() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{u}-{v}")?;
            first = false;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        Graph::with_edges(n, (1..n).map(|i| (VertexId::new(i - 1), VertexId::new(i))))
    }

    #[test]
    fn new_graph_is_edgeless() {
        let g = Graph::new(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn add_edge_is_idempotent() {
        let mut g = Graph::new(2);
        assert!(g.add_edge(0.into(), 1.into()));
        assert!(!g.add_edge(1.into(), 0.into()));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut g = Graph::new(1);
        g.add_edge(0.into(), 0.into());
    }

    #[test]
    fn degree_and_neighbors() {
        let g = path(4);
        assert_eq!(g.degree(0.into()), 1);
        assert_eq!(g.degree(1.into()), 2);
        let nbrs: Vec<_> = g.neighbors(1.into()).collect();
        assert_eq!(nbrs, vec![VertexId::new(0), VertexId::new(2)]);
    }

    #[test]
    fn remove_edge_updates_counts() {
        let mut g = path(3);
        assert!(g.remove_edge(0.into(), 1.into()));
        assert!(!g.remove_edge(0.into(), 1.into()));
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(0.into(), 1.into()));
    }

    #[test]
    fn remove_vertex_drops_incident_edges() {
        let mut g = path(3);
        g.remove_vertex(1.into());
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 0);
        assert!(!g.is_live(1.into()));
    }

    #[test]
    fn merge_transfers_edges() {
        // 0-1, 2-3 ; merging 0 and 2 gives a vertex adjacent to 1 and 3.
        let mut g = Graph::with_edges(4, [(0.into(), 1.into()), (2.into(), 3.into())]);
        g.merge(0.into(), 2.into());
        assert!(g.has_edge(0.into(), 1.into()));
        assert!(g.has_edge(0.into(), 3.into()));
        assert!(!g.is_live(2.into()));
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn merge_collapses_parallel_edges() {
        // 0-1 and 2-1: merging 0,2 must keep a single edge to 1.
        let mut g = Graph::with_edges(3, [(0.into(), 1.into()), (2.into(), 1.into())]);
        g.merge(0.into(), 2.into());
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(1.into()), 1);
    }

    #[test]
    #[should_panic(expected = "interfering")]
    fn merge_adjacent_panics() {
        let mut g = Graph::with_edges(2, [(0.into(), 1.into())]);
        g.merge(0.into(), 1.into());
    }

    #[test]
    fn induced_subgraph_maps_back() {
        let g = path(5);
        let keep: BTreeSet<VertexId> = [0usize, 1, 3].into_iter().map(VertexId::new).collect();
        let (sub, map) = g.induced_subgraph(&keep);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 1); // only 0-1 survives
        assert_eq!(
            map,
            vec![VertexId::new(0), VertexId::new(1), VertexId::new(3)]
        );
    }

    #[test]
    fn complement_of_path() {
        let g = path(3);
        let c = g.complement();
        assert_eq!(c.num_edges(), 1);
        assert!(c.has_edge(0.into(), 2.into()));
    }

    #[test]
    fn clique_detection() {
        let g = Graph::with_edges(
            3,
            [
                (0.into(), 1.into()),
                (1.into(), 2.into()),
                (0.into(), 2.into()),
            ],
        );
        assert!(g.is_clique(&[0.into(), 1.into(), 2.into()]));
        let h = path(3);
        assert!(!h.is_clique(&[0.into(), 1.into(), 2.into()]));
    }

    #[test]
    fn connected_components_of_two_paths() {
        let mut g = path(3);
        let a = g.add_vertex();
        let b = g.add_vertex();
        g.add_edge(a, b);
        let comps = g.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 3);
        assert_eq!(comps[1].len(), 2);
    }

    #[test]
    fn compact_renumbers_densely() {
        let mut g = path(4);
        g.remove_vertex(1.into());
        let (c, map) = g.compact();
        assert_eq!(c.num_vertices(), 3);
        assert_eq!(map.len(), 3);
        // Only edge 2-3 survives, mapped to dense ids 1-2.
        assert_eq!(c.num_edges(), 1);
        assert!(c.has_edge(1.into(), 2.into()));
    }
}
