//! Greedy-k-colorability: the Chaitin/Briggs simplification scheme and the
//! coloring number `col(G)`.
//!
//! A graph is *greedy-k-colorable* iff repeatedly removing a vertex of
//! degree `< k` (in the remaining graph) eliminates all vertices.  The
//! elimination order, reversed, yields a `k`-coloring by the greedy select
//! phase.  The smallest such `k` is the coloring number `col(G)`, computed
//! by a *smallest-last* ordering: `col(G) = 1 + max_i δ(G_i)` where `G_i`
//! is the graph after removing the `i` smallest-degree-last vertices
//! (Jensen & Toft, reference [23] of the paper).
//!
//! Property 1 of the paper — a `k`-colorable chordal graph is
//! greedy-k-colorable — is exercised by the property tests of this crate
//! and of the benchmark harness (experiment E7).

use crate::coloring::{greedy_coloring_in_order, Coloring};
use crate::graph::{Graph, VertexId};

/// The result of running the greedy elimination scheme with bound `k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Simplification {
    /// Vertices removed, in removal order.  If the graph is
    /// greedy-k-colorable this contains every live vertex.
    pub removed: Vec<VertexId>,
    /// Vertices that could not be removed (every one of them has degree at
    /// least `k` in the residual subgraph).  Empty iff the graph is
    /// greedy-k-colorable.
    pub stuck: Vec<VertexId>,
}

impl Simplification {
    /// Returns `true` if the elimination removed every vertex.
    pub fn succeeded(&self) -> bool {
        self.stuck.is_empty()
    }
}

/// Runs the greedy elimination scheme: repeatedly removes a live vertex of
/// degree `< k` until none remains.
///
/// The order in which candidate vertices are removed does not affect
/// success (the scheme is confluent), so we remove the smallest candidate
/// identifier first for determinism.
pub fn simplify(g: &Graph, k: usize) -> Simplification {
    let cap = g.capacity();
    let mut degree = vec![0usize; cap];
    let mut present = vec![false; cap];
    for v in g.vertices() {
        degree[v.index()] = g.degree(v);
        present[v.index()] = true;
    }
    let mut worklist: Vec<VertexId> = g.vertices().filter(|v| degree[v.index()] < k).collect();
    let mut removed = Vec::new();
    let mut in_worklist = vec![false; cap];
    for v in &worklist {
        in_worklist[v.index()] = true;
    }
    // Process as a stack; confluence makes the order irrelevant for success.
    while let Some(v) = worklist.pop() {
        if !present[v.index()] {
            continue;
        }
        if degree[v.index()] >= k {
            // Degree may have been stale; re-check later if it drops.
            in_worklist[v.index()] = false;
            continue;
        }
        present[v.index()] = false;
        removed.push(v);
        for u in g.neighbors(v) {
            if present[u.index()] {
                degree[u.index()] -= 1;
                if degree[u.index()] < k && !in_worklist[u.index()] {
                    in_worklist[u.index()] = true;
                    worklist.push(u);
                }
            }
        }
    }
    let stuck: Vec<VertexId> = g.vertices().filter(|v| present[v.index()]).collect();
    Simplification { removed, stuck }
}

/// Returns `true` iff the live part of `g` is greedy-k-colorable.
///
/// ```
/// use coalesce_graph::{Graph, greedy};
/// // K4 is greedy-4-colorable but not greedy-3-colorable.
/// let mut k4 = Graph::new(4);
/// for i in 0..4usize { for j in (i + 1)..4usize { k4.add_edge(i.into(), j.into()); } }
/// assert!(greedy::is_greedy_k_colorable(&k4, 4));
/// assert!(!greedy::is_greedy_k_colorable(&k4, 3));
/// ```
pub fn is_greedy_k_colorable(g: &Graph, k: usize) -> bool {
    simplify(g, k).succeeded()
}

/// Computes the coloring number `col(G)`: the smallest `k` such that `g` is
/// greedy-k-colorable, via a smallest-last ordering.
///
/// For the empty graph this is 0; for a graph with vertices but no edges it
/// is 1.
pub fn coloring_number(g: &Graph) -> usize {
    if g.num_vertices() == 0 {
        return 0;
    }
    let cap = g.capacity();
    let mut degree = vec![0usize; cap];
    let mut present = vec![false; cap];
    for v in g.vertices() {
        degree[v.index()] = g.degree(v);
        present[v.index()] = true;
    }
    let mut col = 0usize;
    for _ in 0..g.num_vertices() {
        let v = g
            .vertices()
            .filter(|v| present[v.index()])
            .min_by_key(|v| (degree[v.index()], v.index()))
            .expect("live vertex remains");
        col = col.max(degree[v.index()] + 1);
        present[v.index()] = false;
        for u in g.neighbors(v) {
            if present[u.index()] {
                degree[u.index()] -= 1;
            }
        }
    }
    col
}

/// Returns a smallest-last ordering of the live vertices: the order in which
/// [`coloring_number`] removes them, **reversed** (so that greedily coloring
/// in this order uses at most `col(G)` colors).
pub fn smallest_last_order(g: &Graph) -> Vec<VertexId> {
    let cap = g.capacity();
    let mut degree = vec![0usize; cap];
    let mut present = vec![false; cap];
    for v in g.vertices() {
        degree[v.index()] = g.degree(v);
        present[v.index()] = true;
    }
    let mut removal = Vec::with_capacity(g.num_vertices());
    for _ in 0..g.num_vertices() {
        let v = g
            .vertices()
            .filter(|v| present[v.index()])
            .min_by_key(|v| (degree[v.index()], v.index()))
            .expect("live vertex remains");
        present[v.index()] = false;
        removal.push(v);
        for u in g.neighbors(v) {
            if present[u.index()] {
                degree[u.index()] -= 1;
            }
        }
    }
    removal.reverse();
    removal
}

/// Colors a greedy-k-colorable graph with at most `k` colors by coloring the
/// vertices in the reverse of their elimination order (the Chaitin select
/// phase).  Returns `None` if the graph is not greedy-k-colorable.
pub fn greedy_coloring(g: &Graph, k: usize) -> Option<Coloring> {
    let simplification = simplify(g, k);
    if !simplification.succeeded() {
        return None;
    }
    let order: Vec<VertexId> = simplification.removed.into_iter().rev().collect();
    let coloring = greedy_coloring_in_order(g, &order);
    debug_assert!(coloring.max_color_bound() <= k);
    Some(coloring)
}

/// Finds a subgraph witnessing non-greedy-k-colorability: the set of stuck
/// vertices, in which every vertex has degree at least `k` (within the set).
/// Returns `None` if the graph is greedy-k-colorable.
pub fn high_degree_core(g: &Graph, k: usize) -> Option<Vec<VertexId>> {
    let s = simplify(g, k);
    if s.succeeded() {
        None
    } else {
        Some(s.stuck)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chordal;

    fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                g.add_edge(i.into(), j.into());
            }
        }
        g
    }

    fn cycle(n: usize) -> Graph {
        Graph::with_edges(
            n,
            (0..n).map(|i| (VertexId::new(i), VertexId::new((i + 1) % n))),
        )
    }

    #[test]
    fn empty_graph_is_greedy_0_colorable() {
        assert!(is_greedy_k_colorable(&Graph::new(0), 0));
        assert_eq!(coloring_number(&Graph::new(0)), 0);
    }

    #[test]
    fn edgeless_graph_has_coloring_number_1() {
        let g = Graph::new(4);
        assert_eq!(coloring_number(&g), 1);
        assert!(is_greedy_k_colorable(&g, 1));
        assert!(!is_greedy_k_colorable(&g, 0));
    }

    #[test]
    fn clique_coloring_number_is_its_size() {
        for n in 1..6 {
            assert_eq!(coloring_number(&complete(n)), n);
        }
    }

    #[test]
    fn cycle_coloring_number_is_three() {
        // Every cycle has col = 3 (all degrees are 2).
        for n in 3..8 {
            assert_eq!(coloring_number(&cycle(n)), 3);
            assert!(is_greedy_k_colorable(&cycle(n), 3));
            assert!(!is_greedy_k_colorable(&cycle(n), 2));
        }
    }

    #[test]
    fn greedy_coloring_of_cycle_is_proper() {
        let g = cycle(6);
        let c = greedy_coloring(&g, 3).unwrap();
        assert!(c.is_proper(&g));
        assert!(c.max_color_bound() <= 3);
        assert!(greedy_coloring(&g, 2).is_none());
    }

    #[test]
    fn high_degree_core_of_k4_at_k3() {
        let g = complete(4);
        let core = high_degree_core(&g, 3).unwrap();
        assert_eq!(core.len(), 4);
        assert!(high_degree_core(&g, 4).is_none());
    }

    #[test]
    fn simplification_removes_in_valid_order() {
        // Star K_{1,3}: center has degree 3 but leaves peel off first.
        let mut g = Graph::new(4);
        for leaf in 1..4usize {
            g.add_edge(0.into(), leaf.into());
        }
        let s = simplify(&g, 2);
        assert!(s.succeeded());
        assert_eq!(s.removed.len(), 4);
        // The center must be removed last or after enough leaves are gone.
        let pos_center = s
            .removed
            .iter()
            .position(|&v| v == VertexId::new(0))
            .unwrap();
        assert!(pos_center >= 2);
    }

    #[test]
    fn property_1_k_colorable_chordal_implies_greedy_k_colorable() {
        // A chordal graph with omega = 3: two triangles sharing an edge plus
        // a pendant vertex.
        let mut g = Graph::with_edges(
            4,
            [
                (0.into(), 1.into()),
                (0.into(), 2.into()),
                (1.into(), 2.into()),
                (1.into(), 3.into()),
                (2.into(), 3.into()),
            ],
        );
        let v = g.add_vertex();
        g.add_edge(v, 0.into());
        assert!(chordal::is_chordal(&g));
        let omega = chordal::chordal_clique_number(&g).unwrap();
        assert!(is_greedy_k_colorable(&g, omega));
    }

    #[test]
    fn smallest_last_order_colors_within_col() {
        let g = cycle(5);
        let order = smallest_last_order(&g);
        let c = greedy_coloring_in_order(&g, &order);
        assert!(c.is_proper(&g));
        assert!(c.max_color_bound() <= coloring_number(&g));
    }

    #[test]
    fn greedy_k_colorable_graph_that_is_not_chordal() {
        // C4 is greedy-3-colorable (degrees 2 < 3) but not chordal: the two
        // classes are incomparable, as discussed in the paper.
        let g = cycle(4);
        assert!(is_greedy_k_colorable(&g, 3));
        assert!(!chordal::is_chordal(&g));
    }
}
