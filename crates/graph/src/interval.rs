//! Interval graphs and explicit interval models.
//!
//! Interval graphs are the interference graphs of straight-line code (each
//! live range is one interval of program points), the setting of the
//! "local register allocation" line of work the paper cites
//! (Liberatore et al.) and the graph class on which Theorem 5's proof
//! operates once the clique-tree path has been fixed: the subtrees
//! restricted to the path become **intervals**, and coalescibility reduces
//! to a disjoint-interval covering question (Figure 5).
//!
//! This module provides:
//!
//! * [`IntervalModel`] — an explicit family of closed integer intervals,
//!   with conversion to its intersection graph and verification that a
//!   model realises a given graph;
//! * [`is_interval_graph`] — recognition via the Lekkerkerker–Boland
//!   characterisation (chordal + no asteroidal triple), an `O(n³·(n+m))`
//!   but simple and easily audited test;
//! * [`interval_model`] — extraction of an interval model from an interval
//!   graph by ordering its maximal cliques into a *clique path*
//!   (consecutive-ones backtracking over at most `n` maximal cliques, with
//!   the LexBFS sweep as a seed); every vertex's interval is the run of
//!   clique positions that contain it;
//! * [`unit_intervals`] — convenience constructor for unit-interval models.

use crate::chordal;
use crate::graph::{Graph, VertexId};
use std::collections::BTreeSet;

/// An explicit interval model: one closed integer interval `[start, end]`
/// per vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalModel {
    /// `intervals[i]` is the interval of vertex `i`; `None` for vertices
    /// that are absent from the model (dead vertices of the source graph).
    pub intervals: Vec<Option<(usize, usize)>>,
}

impl IntervalModel {
    /// Creates a model from an explicit list of `(vertex, start, end)`
    /// triples.
    ///
    /// # Panics
    ///
    /// Panics if some `start > end` or a vertex appears twice.
    pub fn new(
        capacity: usize,
        triples: impl IntoIterator<Item = (VertexId, usize, usize)>,
    ) -> Self {
        let mut intervals = vec![None; capacity];
        for (v, s, e) in triples {
            assert!(s <= e, "interval of {v} has start {s} > end {e}");
            assert!(
                intervals[v.index()].is_none(),
                "vertex {v} given two intervals"
            );
            intervals[v.index()] = Some((s, e));
        }
        IntervalModel { intervals }
    }

    /// Number of vertices that have an interval.
    pub fn len(&self) -> usize {
        self.intervals.iter().flatten().count()
    }

    /// `true` if the model contains no interval.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the interval of `v`, if any.
    pub fn interval(&self, v: VertexId) -> Option<(usize, usize)> {
        self.intervals.get(v.index()).copied().flatten()
    }

    /// Builds the intersection graph of the model: vertices are the model's
    /// vertices and two vertices are adjacent iff their intervals intersect.
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::new(self.intervals.len());
        // Remove vertices without an interval so the graph's live set
        // matches the model.
        for (i, iv) in self.intervals.iter().enumerate() {
            if iv.is_none() {
                g.remove_vertex(VertexId::new(i));
            }
        }
        let present: Vec<(VertexId, (usize, usize))> = self
            .intervals
            .iter()
            .enumerate()
            .filter_map(|(i, iv)| iv.map(|iv| (VertexId::new(i), iv)))
            .collect();
        for (i, &(u, (us, ue))) in present.iter().enumerate() {
            for &(v, (vs, ve)) in &present[i + 1..] {
                if us <= ve && vs <= ue {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Checks whether this model realises exactly the interference structure
    /// of `g` on `g`'s live vertices: every live vertex has an interval, and
    /// two live vertices are adjacent in `g` iff their intervals intersect.
    pub fn is_model_of(&self, g: &Graph) -> bool {
        let live: Vec<VertexId> = g.vertices().collect();
        for &v in &live {
            if self.interval(v).is_none() {
                return false;
            }
        }
        for (i, &u) in live.iter().enumerate() {
            let (us, ue) = self.interval(u).unwrap();
            for &v in &live[i + 1..] {
                let (vs, ve) = self.interval(v).unwrap();
                let overlap = us <= ve && vs <= ue;
                if overlap != g.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// Maximum number of pairwise-intersecting intervals (the clique number
    /// of the intersection graph), computed by a sweep over endpoints — the
    /// "Maxlive" of the model.
    pub fn max_overlap(&self) -> usize {
        let mut events: Vec<(usize, i32)> = Vec::new();
        for iv in self.intervals.iter().flatten() {
            events.push((iv.0, 1));
            events.push((iv.1 + 1, -1));
        }
        events.sort();
        let mut current = 0i32;
        let mut best = 0i32;
        for (_, delta) in events {
            current += delta;
            best = best.max(current);
        }
        best as usize
    }
}

/// Builds a unit-interval model: vertex `i` of `starts` gets the interval
/// `[starts[i], starts[i] + length]`.
pub fn unit_intervals(starts: &[usize], length: usize) -> IntervalModel {
    IntervalModel::new(
        starts.len(),
        starts
            .iter()
            .enumerate()
            .map(|(i, &s)| (VertexId::new(i), s, s + length)),
    )
}

/// Tests whether three pairwise non-adjacent vertices form an *asteroidal
/// triple*: between any two of them there is a path that avoids the closed
/// neighborhood of the third.
pub fn is_asteroidal_triple(g: &Graph, a: VertexId, b: VertexId, c: VertexId) -> bool {
    if g.has_edge(a, b) || g.has_edge(b, c) || g.has_edge(a, c) {
        return false;
    }
    path_avoiding(g, a, b, c) && path_avoiding(g, a, c, b) && path_avoiding(g, b, c, a)
}

/// `true` if there is a path from `from` to `to` in `g` that avoids the
/// closed neighborhood of `avoid` (both endpoints are required to be
/// outside of it as well).
fn path_avoiding(g: &Graph, from: VertexId, to: VertexId, avoid: VertexId) -> bool {
    if from == avoid || to == avoid || g.has_edge(from, avoid) || g.has_edge(to, avoid) {
        return false;
    }
    let forbidden: BTreeSet<VertexId> = g.neighbors(avoid).chain(std::iter::once(avoid)).collect();
    let mut visited: BTreeSet<VertexId> = BTreeSet::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    visited.insert(from);
    while let Some(u) = queue.pop_front() {
        if u == to {
            return true;
        }
        for n in g.neighbors(u) {
            if forbidden.contains(&n) || !visited.insert(n) {
                continue;
            }
            queue.push_back(n);
        }
    }
    false
}

/// `true` if `g` contains an asteroidal triple.  Cubic in the number of
/// vertices (times a BFS); intended for the moderate graph sizes of the
/// experiments.
pub fn has_asteroidal_triple(g: &Graph) -> bool {
    let verts: Vec<VertexId> = g.vertices().collect();
    for (i, &a) in verts.iter().enumerate() {
        for (j, &b) in verts.iter().enumerate().skip(i + 1) {
            if g.has_edge(a, b) {
                continue;
            }
            for &c in verts.iter().skip(j + 1) {
                if is_asteroidal_triple(g, a, b, c) {
                    return true;
                }
            }
        }
    }
    false
}

/// Interval-graph recognition via the Lekkerkerker–Boland theorem: a graph
/// is an interval graph iff it is chordal and has no asteroidal triple.
///
/// ```
/// use coalesce_graph::{Graph, interval};
/// // A path is an interval graph; a 4-cycle is not (not even chordal).
/// let path = Graph::with_edges(4, [(0.into(), 1.into()), (1.into(), 2.into()), (2.into(), 3.into())]);
/// assert!(interval::is_interval_graph(&path));
/// let mut cycle = path.clone();
/// cycle.add_edge(3.into(), 0.into());
/// assert!(!interval::is_interval_graph(&cycle));
/// ```
pub fn is_interval_graph(g: &Graph) -> bool {
    chordal::is_chordal(g) && !has_asteroidal_triple(g)
}

/// Extracts an interval model from an interval graph by arranging its
/// maximal cliques into a **clique path** (an order of the maximal cliques
/// in which the cliques containing any fixed vertex are consecutive); the
/// interval of a vertex is then the run of positions of the cliques that
/// contain it.
///
/// Returns `None` if `g` is not an interval graph.
///
/// The clique-path search is a backtracking consecutive-ones ordering over
/// the (at most `n`) maximal cliques of the chordal graph; with the
/// LexBFS-discovered clique first it terminates quickly on the instance
/// sizes used throughout this repository, but its worst case is exponential
/// in the number of maximal cliques — prefer [`is_interval_graph`] when
/// only recognition is needed.
pub fn interval_model(g: &Graph) -> Option<IntervalModel> {
    if g.num_vertices() == 0 {
        return Some(IntervalModel {
            intervals: vec![None; g.capacity()],
        });
    }
    if !is_interval_graph(g) {
        return None;
    }
    let cliques = chordal::chordal_maximal_cliques(g)?;
    let m = cliques.len();
    // Backtracking search for an order of cliques with the consecutive-ones
    // property for every vertex.
    let mut order: Vec<usize> = Vec::with_capacity(m);
    let mut used = vec![false; m];
    // closed[v] = vertex has appeared and then stopped appearing; it may not
    // appear again.
    if !place_next(&cliques, &mut order, &mut used, g.capacity()) {
        return None;
    }

    let mut first = vec![usize::MAX; g.capacity()];
    let mut last = vec![usize::MAX; g.capacity()];
    for (pos, &ci) in order.iter().enumerate() {
        for &v in &cliques[ci] {
            if first[v.index()] == usize::MAX {
                first[v.index()] = pos;
            }
            last[v.index()] = pos;
        }
    }
    let mut intervals = vec![None; g.capacity()];
    for v in g.vertices() {
        intervals[v.index()] = Some((first[v.index()], last[v.index()]));
    }
    let model = IntervalModel { intervals };
    debug_assert!(model.is_model_of(g));
    Some(model)
}

/// Recursive consecutive-ones placement of maximal cliques.
fn place_next(
    cliques: &[BTreeSet<VertexId>],
    order: &mut Vec<usize>,
    used: &mut [bool],
    capacity: usize,
) -> bool {
    let m = cliques.len();
    if order.len() == m {
        return consecutive_ones_holds(cliques, order, capacity);
    }
    for candidate in 0..m {
        if used[candidate] {
            continue;
        }
        order.push(candidate);
        used[candidate] = true;
        // Prune: the partial order must not already violate consecutiveness
        // for a vertex that has been "closed" (appeared, then missed, then
        // reappears).
        if partial_consecutive(cliques, order, capacity)
            && place_next(cliques, order, used, capacity)
        {
            return true;
        }
        used[candidate] = false;
        order.pop();
    }
    false
}

fn partial_consecutive(cliques: &[BTreeSet<VertexId>], order: &[usize], capacity: usize) -> bool {
    // state: 0 = never seen, 1 = in an open run, 2 = run closed.
    let mut state = vec![0u8; capacity];
    for &ci in order {
        let members = &cliques[ci];
        for (i, slot) in state.iter_mut().enumerate() {
            let v = VertexId::new(i);
            let inside = members.contains(&v);
            match (*slot, inside) {
                (0, true) => *slot = 1,
                (1, false) => *slot = 2,
                (2, true) => return false,
                _ => {}
            }
        }
    }
    true
}

fn consecutive_ones_holds(
    cliques: &[BTreeSet<VertexId>],
    order: &[usize],
    capacity: usize,
) -> bool {
    partial_consecutive(cliques, order, capacity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cliques;

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn interval_model_round_trips_through_its_intersection_graph() {
        let model = IntervalModel::new(
            5,
            [
                (v(0), 0, 3),
                (v(1), 2, 5),
                (v(2), 4, 6),
                (v(3), 7, 9),
                (v(4), 1, 8),
            ],
        );
        let g = model.to_graph();
        assert!(model.is_model_of(&g));
        assert!(is_interval_graph(&g));
        let recovered = interval_model(&g).expect("interval graph yields a model");
        assert!(recovered.is_model_of(&g));
    }

    #[test]
    fn max_overlap_matches_clique_number() {
        let model = IntervalModel::new(
            4,
            [(v(0), 0, 4), (v(1), 1, 5), (v(2), 2, 6), (v(3), 10, 12)],
        );
        let g = model.to_graph();
        assert_eq!(model.max_overlap(), 3);
        assert_eq!(cliques::clique_number(&g), 3);
    }

    #[test]
    fn paths_and_caterpillars_are_interval_graphs() {
        let path = Graph::with_edges(5, (0..4).map(|i| (v(i), v(i + 1))));
        assert!(is_interval_graph(&path));
        assert!(interval_model(&path).is_some());
    }

    #[test]
    fn the_claw_is_interval_but_the_net_star_is_checked_precisely() {
        // K_{1,3} (the claw) is an interval graph.
        let claw = Graph::with_edges(4, [(v(0), v(1)), (v(0), v(2)), (v(0), v(3))]);
        assert!(is_interval_graph(&claw));
        let model = interval_model(&claw).unwrap();
        assert!(model.is_model_of(&claw));
    }

    #[test]
    fn trees_with_three_long_legs_are_not_interval_graphs() {
        // Subdividing each edge of the claw yields the smallest chordal
        // non-interval graph (an asteroidal triple of leaf vertices).
        let g = Graph::with_edges(
            7,
            [
                (v(0), v(1)),
                (v(1), v(2)),
                (v(0), v(3)),
                (v(3), v(4)),
                (v(0), v(5)),
                (v(5), v(6)),
            ],
        );
        assert!(chordal::is_chordal(&g));
        assert!(has_asteroidal_triple(&g));
        assert!(!is_interval_graph(&g));
        assert!(interval_model(&g).is_none());
    }

    #[test]
    fn cycles_are_not_interval_graphs() {
        let mut g = Graph::new(5);
        for i in 0..5 {
            g.add_edge(v(i), v((i + 1) % 5));
        }
        assert!(!is_interval_graph(&g));
    }

    #[test]
    fn asteroidal_triple_requires_pairwise_non_adjacency() {
        let g = Graph::with_edges(3, [(v(0), v(1))]);
        assert!(!is_asteroidal_triple(&g, v(0), v(1), v(2)));
    }

    #[test]
    fn dead_vertices_are_ignored_by_models() {
        let mut g = Graph::with_edges(4, [(v(0), v(1)), (v(1), v(2))]);
        g.remove_vertex(v(3));
        let model = interval_model(&g).expect("path minus a vertex is interval");
        assert!(model.interval(v(3)).is_none());
        assert!(model.is_model_of(&g));
    }

    #[test]
    fn unit_interval_helper_builds_expected_overlaps() {
        let model = unit_intervals(&[0, 1, 2, 10], 1);
        let g = model.to_graph();
        assert!(g.has_edge(v(0), v(1)));
        assert!(g.has_edge(v(1), v(2)));
        assert!(!g.has_edge(v(0), v(2)) || model.interval(v(0)).unwrap().1 >= 2);
        assert!(!g.has_edge(v(2), v(3)));
    }

    #[test]
    fn complete_graphs_are_interval_graphs() {
        let mut g = Graph::new(4);
        for i in 0..4 {
            for j in i + 1..4 {
                g.add_edge(v(i), v(j));
            }
        }
        assert!(is_interval_graph(&g));
        let model = interval_model(&g).unwrap();
        assert_eq!(model.max_overlap(), 4);
    }
}
