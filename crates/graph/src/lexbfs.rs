//! Lexicographic breadth-first search (LexBFS).
//!
//! LexBFS is the second classical linear-time vertex ordering used to
//! recognise chordal graphs (the first being Maximum Cardinality Search,
//! see [`crate::chordal`]).  Visiting vertices in LexBFS order and reversing
//! the order yields a perfect elimination ordering exactly when the graph is
//! chordal [Rose, Tarjan, Lueker 1976; Golumbic 1980], the reference the
//! paper cites for its chordal-graph machinery.
//!
//! The implementation here is the straightforward partition-refinement
//! formulation: `O((n + m) log n)` with ordered sets, which is more than
//! fast enough for interference graphs of the sizes the experiments use,
//! and considerably easier to audit than the linked-list `O(n + m)` variant.
//!
//! Besides recognition, LexBFS orderings are useful on their own:
//!
//! * they provide an alternative *simplicial elimination* order for coloring
//!   chordal interference graphs (Theorem 1 / Property 1 of the paper);
//! * the **last** vertex of a LexBFS sweep of a chordal graph is simplicial,
//!   which gives a cheap way to peel chordal graphs;
//! * running a second sweep from the last vertex of the first (LexBFS⁺) is
//!   the building block of interval-graph recognition (see
//!   [`crate::interval`]).

use crate::chordal;
use crate::graph::{Graph, VertexId};
use std::collections::BTreeSet;

/// Result of a LexBFS sweep: the visit order and, for each vertex, its
/// position in that order.
#[derive(Debug, Clone)]
pub struct LexBfsOrder {
    /// Vertices in visit order (first visited first).
    pub order: Vec<VertexId>,
    /// `position[v.index()]` is the visit rank of `v`, or `usize::MAX` for
    /// vertices that are not live in the graph.
    pub position: Vec<usize>,
}

impl LexBfsOrder {
    /// Returns the visit rank of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not visited (not live in the swept graph).
    pub fn rank(&self, v: VertexId) -> usize {
        let r = self.position[v.index()];
        assert!(r != usize::MAX, "vertex {v} was not visited by LexBFS");
        r
    }

    /// Returns the visit order reversed, which is a perfect elimination
    /// ordering whenever the swept graph is chordal.
    pub fn reversed(&self) -> Vec<VertexId> {
        let mut rev = self.order.clone();
        rev.reverse();
        rev
    }
}

/// Runs a LexBFS sweep over the live vertices of `g`, breaking ties in
/// favour of smaller vertex identifiers.
///
/// ```
/// use coalesce_graph::{Graph, lexbfs};
/// let g = Graph::with_edges(4, [(0.into(), 1.into()), (1.into(), 2.into()), (2.into(), 3.into())]);
/// let sweep = lexbfs::lexbfs(&g);
/// assert_eq!(sweep.order.len(), 4);
/// assert_eq!(sweep.order[0].index(), 0);
/// ```
pub fn lexbfs(g: &Graph) -> LexBfsOrder {
    lexbfs_from(g, None)
}

/// Runs a LexBFS sweep starting at `start` (if given and live); remaining
/// ties are broken in favour of smaller vertex identifiers.
///
/// # Panics
///
/// Panics if `start` is provided but not live in `g`.
pub fn lexbfs_from(g: &Graph, start: Option<VertexId>) -> LexBfsOrder {
    if let Some(s) = start {
        assert!(g.is_live(s), "LexBFS start vertex {s} is not live");
    }
    // Partition refinement: an ordered list of cells; the next vertex is
    // always taken from the first cell.  Visiting a vertex splits every cell
    // into (neighbors, non-neighbors), neighbors first.
    let mut cells: Vec<Vec<VertexId>> = vec![g.vertices().collect()];
    if let Some(s) = start {
        // Move the requested start to the front of the initial cell.
        let cell = &mut cells[0];
        if let Some(pos) = cell.iter().position(|&v| v == s) {
            cell.remove(pos);
            cell.insert(0, s);
        }
    }
    let mut order = Vec::with_capacity(g.num_vertices());
    let mut position = vec![usize::MAX; g.capacity()];

    while let Some(front) = cells.first_mut() {
        if front.is_empty() {
            cells.remove(0);
            continue;
        }
        let v = front.remove(0);
        position[v.index()] = order.len();
        order.push(v);
        let neighbors: BTreeSet<VertexId> = g.neighbors(v).collect();
        // Refine every remaining cell against N(v).
        let mut refined: Vec<Vec<VertexId>> = Vec::with_capacity(cells.len() * 2);
        for cell in cells.drain(..) {
            let (inside, outside): (Vec<VertexId>, Vec<VertexId>) =
                cell.into_iter().partition(|u| neighbors.contains(u));
            if !inside.is_empty() {
                refined.push(inside);
            }
            if !outside.is_empty() {
                refined.push(outside);
            }
        }
        cells = refined;
    }

    LexBfsOrder { order, position }
}

/// Runs the LexBFS⁺ sweep: a second LexBFS whose initial tie-break prefers
/// vertices visited **later** by `previous`.
///
/// Multi-sweep LexBFS is the standard engine behind linear-time recognition
/// of interval graphs and unit-interval graphs; [`crate::interval`] uses it
/// as a heuristic seed before falling back to exact search.
pub fn lexbfs_plus(g: &Graph, previous: &LexBfsOrder) -> LexBfsOrder {
    // Same partition refinement, but cells are kept sorted by decreasing
    // previous rank so that ties resolve to the latest-visited vertex.
    let mut initial: Vec<VertexId> = g.vertices().collect();
    initial.sort_by_key(|v| std::cmp::Reverse(previous.position[v.index()]));
    let mut cells: Vec<Vec<VertexId>> = vec![initial];
    let mut order = Vec::with_capacity(g.num_vertices());
    let mut position = vec![usize::MAX; g.capacity()];

    while let Some(front) = cells.first_mut() {
        if front.is_empty() {
            cells.remove(0);
            continue;
        }
        let v = front.remove(0);
        position[v.index()] = order.len();
        order.push(v);
        let neighbors: BTreeSet<VertexId> = g.neighbors(v).collect();
        let mut refined: Vec<Vec<VertexId>> = Vec::with_capacity(cells.len() * 2);
        for cell in cells.drain(..) {
            let (inside, outside): (Vec<VertexId>, Vec<VertexId>) =
                cell.into_iter().partition(|u| neighbors.contains(u));
            if !inside.is_empty() {
                refined.push(inside);
            }
            if !outside.is_empty() {
                refined.push(outside);
            }
        }
        cells = refined;
    }

    LexBfsOrder { order, position }
}

/// Chordality test via LexBFS: the reverse of a LexBFS order is a perfect
/// elimination ordering iff the graph is chordal.
///
/// This is an independent implementation from
/// [`crate::chordal::is_chordal`] (which uses Maximum Cardinality Search);
/// the two are cross-checked against each other in the tests and in the
/// workspace property tests.
pub fn is_chordal_lexbfs(g: &Graph) -> bool {
    let sweep = lexbfs(g);
    chordal::is_perfect_elimination_ordering(g, &sweep.reversed())
}

/// Returns a perfect elimination ordering computed with LexBFS, or `None`
/// if the graph is not chordal.
pub fn perfect_elimination_ordering_lexbfs(g: &Graph) -> Option<Vec<VertexId>> {
    let sweep = lexbfs(g);
    let rev = sweep.reversed();
    if chordal::is_perfect_elimination_ordering(g, &rev) {
        Some(rev)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring;

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn lexbfs_visits_every_live_vertex_exactly_once() {
        let mut g = Graph::with_edges(
            6,
            [
                (v(0), v(1)),
                (v(1), v(2)),
                (v(2), v(3)),
                (v(3), v(4)),
                (v(4), v(5)),
            ],
        );
        g.remove_vertex(v(3));
        let sweep = lexbfs(&g);
        assert_eq!(sweep.order.len(), 5);
        let unique: BTreeSet<VertexId> = sweep.order.iter().copied().collect();
        assert_eq!(unique.len(), 5);
        assert!(!unique.contains(&v(3)));
        for &u in &sweep.order {
            assert_eq!(sweep.order[sweep.rank(u)], u);
        }
    }

    #[test]
    fn lexbfs_on_disconnected_graph_covers_all_components() {
        let g = Graph::with_edges(5, [(v(0), v(1)), (v(3), v(4))]);
        let sweep = lexbfs(&g);
        assert_eq!(sweep.order.len(), 5);
    }

    #[test]
    fn reverse_lexbfs_is_peo_on_chordal_graphs() {
        // A chordal "fan": triangle chain.
        let g = Graph::with_edges(
            5,
            [
                (v(0), v(1)),
                (v(0), v(2)),
                (v(1), v(2)),
                (v(1), v(3)),
                (v(2), v(3)),
                (v(2), v(4)),
                (v(3), v(4)),
            ],
        );
        assert!(chordal::is_chordal(&g));
        assert!(is_chordal_lexbfs(&g));
        let peo = perfect_elimination_ordering_lexbfs(&g).expect("chordal graph has a PEO");
        assert!(chordal::is_perfect_elimination_ordering(&g, &peo));
    }

    #[test]
    fn lexbfs_rejects_the_four_cycle() {
        let g = Graph::with_edges(4, [(v(0), v(1)), (v(1), v(2)), (v(2), v(3)), (v(3), v(0))]);
        assert!(!is_chordal_lexbfs(&g));
        assert!(perfect_elimination_ordering_lexbfs(&g).is_none());
    }

    #[test]
    fn lexbfs_and_mcs_agree_on_chordality() {
        // Structured family: cycles with and without chords.
        for n in 3..9 {
            let mut cycle = Graph::new(n);
            for i in 0..n {
                cycle.add_edge(v(i), v((i + 1) % n));
            }
            assert_eq!(
                chordal::is_chordal(&cycle),
                is_chordal_lexbfs(&cycle),
                "C{n}"
            );
            // Fully chorded from vertex 0: a fan, always chordal.
            let mut fan = cycle.clone();
            for i in 2..n - 1 {
                fan.add_edge(v(0), v(i));
            }
            assert_eq!(
                chordal::is_chordal(&fan),
                is_chordal_lexbfs(&fan),
                "fan {n}"
            );
        }
    }

    #[test]
    fn coloring_along_reverse_lexbfs_is_optimal_on_chordal_graphs() {
        // Greedy coloring along a PEO (reversed: along the LexBFS order
        // itself, processing simplicial-last first) uses exactly omega
        // colors on chordal graphs.
        let g = Graph::with_edges(
            6,
            [
                (v(0), v(1)),
                (v(0), v(2)),
                (v(1), v(2)),
                (v(2), v(3)),
                (v(3), v(4)),
                (v(2), v(4)),
                (v(4), v(5)),
            ],
        );
        assert!(chordal::is_chordal(&g));
        let peo = perfect_elimination_ordering_lexbfs(&g).unwrap();
        // Color in reverse elimination order.
        let mut order = peo.clone();
        order.reverse();
        let coloring = coloring::greedy_coloring_in_order(&g, &order);
        assert!(coloring.is_proper(&g));
        assert_eq!(
            coloring.num_colors(),
            chordal::chordal_clique_number(&g).unwrap()
        );
    }

    #[test]
    fn lexbfs_plus_prefers_late_vertices_of_the_first_sweep() {
        let g = Graph::with_edges(4, [(v(0), v(1)), (v(1), v(2)), (v(2), v(3))]);
        let first = lexbfs(&g);
        let second = lexbfs_plus(&g, &first);
        // The second sweep starts from the last vertex of the first sweep.
        assert_eq!(second.order[0], *first.order.last().unwrap());
        assert_eq!(second.order.len(), 4);
    }

    #[test]
    fn lexbfs_from_honours_the_requested_start() {
        let g = Graph::with_edges(4, [(v(0), v(1)), (v(1), v(2)), (v(2), v(3))]);
        let sweep = lexbfs_from(&g, Some(v(2)));
        assert_eq!(sweep.order[0], v(2));
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn lexbfs_from_dead_vertex_panics() {
        let mut g = Graph::new(3);
        g.remove_vertex(v(1));
        let _ = lexbfs_from(&g, Some(v(1)));
    }
}
