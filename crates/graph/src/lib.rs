//! Graph substrate for the register-coalescing reproduction.
//!
//! This crate provides the graph-theoretic machinery that the paper
//! *On the Complexity of Register Coalescing* (Bouchez, Darte, Rastello)
//! relies on:
//!
//! * an undirected [`Graph`] type with efficient vertex **merging**
//!   (contraction), the fundamental operation behind coalescing;
//! * **chordality** testing via Maximum Cardinality Search and perfect
//!   elimination orderings ([`chordal`]);
//! * **clique trees** of chordal graphs ([`cliquetree`]), used by the
//!   polynomial incremental-coalescing algorithm of Theorem 5;
//! * **greedy-k-colorability** (the Chaitin/Briggs simplification scheme)
//!   and the coloring number `col(G)` ([`greedy`]);
//! * graph **coloring** algorithms: greedy over an order, DSATUR, and
//!   exact solving with optional same-color constraints ([`coloring`]);
//! * the pruned exact-decision engine behind the exponential queries
//!   ([`solver`]): component decomposition, clique seeding, fresh-color
//!   symmetry breaking and a transposition table, with instrumentation;
//! * maximal-clique enumeration and exact maximum clique for small graphs
//!   ([`cliques`]);
//! * the **clique lifting** of Property 2 that transports NP-completeness
//!   results from `k` registers to `k + p` registers ([`lift`]);
//! * a small disjoint-set (union-find) utility ([`dsu`]) used to track which
//!   original vertices have been merged together.
//!
//! # Example
//!
//! ```
//! use coalesce_graph::{Graph, chordal, greedy};
//!
//! // A 4-cycle is not chordal; adding a chord makes it chordal.
//! let mut g = Graph::new(4);
//! g.add_edge(0.into(), 1.into());
//! g.add_edge(1.into(), 2.into());
//! g.add_edge(2.into(), 3.into());
//! g.add_edge(3.into(), 0.into());
//! assert!(!chordal::is_chordal(&g));
//! g.add_edge(0.into(), 2.into());
//! assert!(chordal::is_chordal(&g));
//! assert!(greedy::is_greedy_k_colorable(&g, 3));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chordal;
pub mod cliques;
pub mod cliquetree;
pub mod coloring;
pub mod dsu;
pub mod fillin;
pub mod format;
pub mod graph;
pub mod greedy;
pub mod interval;
pub mod lexbfs;
pub mod lift;
pub mod solver;
pub mod stats;

pub use coloring::Coloring;
pub use dsu::DisjointSets;
pub use graph::{Graph, VertexId};
pub use solver::{ExactSolver, SolverConfig, SolverStats};
