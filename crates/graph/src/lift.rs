//! Property 2 of the paper: the *clique lifting* `G → G'` that transports
//! complexity results from `k` colors to `k + p` colors.
//!
//! `G'` is obtained from `G` by adding a clique of `p` fresh vertices, each
//! connected to every vertex of `G`.  Then:
//!
//! * `G` is `k`-colorable iff `G'` is `(k + p)`-colorable,
//! * `G` is chordal iff `G'` is chordal,
//! * `G` is greedy-`k`-colorable iff `G'` is greedy-`(k + p)`-colorable.

use crate::graph::{Graph, VertexId};

/// The result of lifting a graph by a universal clique of `p` vertices.
#[derive(Debug, Clone)]
pub struct LiftedGraph {
    /// The lifted graph `G'`.
    pub graph: Graph,
    /// Identifiers of the `p` added clique vertices.
    pub clique: Vec<VertexId>,
}

/// Adds a clique of `p` new vertices to (a copy of) `g`, each adjacent to
/// every live vertex of `g`, per Property 2.
///
/// ```
/// use coalesce_graph::{Graph, lift, coloring, chordal, greedy};
/// // A path is 2-colorable, chordal and greedy-2-colorable; its lift by
/// // p = 2 is 4-colorable, chordal and greedy-4-colorable.
/// let g = Graph::with_edges(3, [(0.into(), 1.into()), (1.into(), 2.into())]);
/// let lifted = lift::lift_by_clique(&g, 2);
/// assert!(coloring::is_k_colorable(&lifted.graph, 4));
/// assert!(!coloring::is_k_colorable(&lifted.graph, 3));
/// assert!(chordal::is_chordal(&lifted.graph));
/// assert!(greedy::is_greedy_k_colorable(&lifted.graph, 4));
/// ```
pub fn lift_by_clique(g: &Graph, p: usize) -> LiftedGraph {
    let mut lifted = g.clone();
    let originals: Vec<VertexId> = g.vertices().collect();
    let mut clique = Vec::with_capacity(p);
    for _ in 0..p {
        let c = lifted.add_vertex();
        for &v in &originals {
            lifted.add_edge(c, v);
        }
        for &prev in &clique {
            lifted.add_edge(c, prev);
        }
        clique.push(c);
    }
    LiftedGraph {
        graph: lifted,
        clique,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{chordal, coloring, greedy};

    fn cycle(n: usize) -> Graph {
        Graph::with_edges(
            n,
            (0..n).map(|i| (VertexId::new(i), VertexId::new((i + 1) % n))),
        )
    }

    #[test]
    fn lift_preserves_colorability_both_ways() {
        // C5 is 3-chromatic: lifted by 2 it needs exactly 5 colors.
        let g = cycle(5);
        let lifted = lift_by_clique(&g, 2);
        assert!(!coloring::is_k_colorable(&lifted.graph, 4));
        assert!(coloring::is_k_colorable(&lifted.graph, 5));
    }

    #[test]
    fn lift_preserves_non_chordality() {
        let g = cycle(4);
        let lifted = lift_by_clique(&g, 3);
        assert!(!chordal::is_chordal(&lifted.graph));
    }

    #[test]
    fn lift_preserves_chordality() {
        let g = Graph::with_edges(3, [(0.into(), 1.into()), (1.into(), 2.into())]);
        let lifted = lift_by_clique(&g, 2);
        assert!(chordal::is_chordal(&lifted.graph));
    }

    #[test]
    fn lift_preserves_greedy_colorability_both_ways() {
        // K4 is greedy-4-colorable but not greedy-3-colorable.
        let mut k4 = Graph::new(4);
        for i in 0..4usize {
            for j in i + 1..4usize {
                k4.add_edge(i.into(), j.into());
            }
        }
        let lifted = lift_by_clique(&k4, 2);
        assert!(greedy::is_greedy_k_colorable(&lifted.graph, 6));
        assert!(!greedy::is_greedy_k_colorable(&lifted.graph, 5));
    }

    #[test]
    fn lift_by_zero_is_identity_on_structure() {
        let g = cycle(5);
        let lifted = lift_by_clique(&g, 0);
        assert_eq!(lifted.graph.num_vertices(), 5);
        assert_eq!(lifted.graph.num_edges(), 5);
        assert!(lifted.clique.is_empty());
    }

    #[test]
    fn lift_vertex_and_edge_counts() {
        let g = cycle(4);
        let lifted = lift_by_clique(&g, 3);
        assert_eq!(lifted.graph.num_vertices(), 7);
        // 4 original + p*(n) + C(p,2) = 4 + 12 + 3 = 19
        assert_eq!(lifted.graph.num_edges(), 19);
    }
}
