//! The exact-decision engine behind every exponential query in the
//! workspace: [`ExactSolver`] answers "is there a proper `k`-coloring of
//! `G`, optionally with same-color constraints?" and produces a witness
//! coloring.
//!
//! The naive backtracker the repository started with explored the whole
//! graph at once and re-derived the same dead ends over and over; on the
//! Theorem 4 reduction graphs (~90 vertices, `k = 3`) a single query took
//! tens of seconds.  This solver layers five classical prunings on top of
//! DSATUR-ordered backtracking:
//!
//! 1. **Connected-component decomposition** — after the same-color pairs
//!    are contracted, each component is colored independently, so the
//!    search cost is exponential in the largest component instead of the
//!    whole graph.
//! 2. **Clique-based lower-bound pruning** — a greedily grown maximal
//!    clique of each component rejects the query outright when the clique
//!    exceeds `k`.
//! 3. **Clique seeding** — the vertices of that clique are pre-assigned
//!    the distinct colors `0..c`, which is a valid symmetry reduction
//!    (every proper coloring is color-permutation-equivalent to one that
//!    extends the seed) and anchors the saturation counters immediately.
//! 4. **Fresh-color symmetry breaking** — at every branch the candidate
//!    colors are the colors currently *in use* plus at most one fresh one
//!    (all unused colors are interchangeable).
//! 5. **A transposition table over canonical residual subproblems** — the
//!    extendability of a partial proper coloring depends only on which
//!    vertices remain uncolored, on the *frontier* of every color class
//!    in use (the set of uncolored vertices it forbids), and on how many
//!    fresh colors remain.  Failed residuals are memoized as sorted
//!    frontier bitsets, so a dead end reached again through a different
//!    assignment order — or through a different coloring of the finished
//!    region with the same frontier — is cut immediately.
//!
//! Every query records [`SolverStats`] (nodes expanded, prunes, memo
//! hits), which the experiment reports surface.

use crate::coloring::Coloring;
use crate::graph::{Graph, VertexId};
use std::collections::HashSet;

/// Tuning knobs of the [`ExactSolver`].  The defaults enable every
/// pruning; individual knobs exist so tests can cross-validate the
/// prunings against each other and benchmarks can measure their effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverConfig {
    /// Color connected components independently (on by default).
    pub decompose_components: bool,
    /// Grow a maximal clique per component for lower-bound pruning and
    /// seed the search with it (on by default).
    pub clique_seeding: bool,
    /// Memoize failed canonical partial assignments (on by default).
    pub memoize: bool,
    /// Maximum number of memoized dead ends kept per query; once the
    /// table is full, further dead ends are no longer recorded (lookups
    /// continue).  Bounds memory on adversarial instances.
    pub memo_capacity: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            decompose_components: true,
            clique_seeding: true,
            memoize: true,
            memo_capacity: 1 << 20,
        }
    }
}

/// Instrumentation counters accumulated over the queries run by one
/// [`ExactSolver`].  `reset` with [`ExactSolver::take_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Search-tree nodes expanded (one per vertex-selection step).
    pub nodes_expanded: u64,
    /// Branches cut because a vertex had no admissible color.
    pub saturation_prunes: u64,
    /// Components rejected by the clique lower bound without any search.
    pub clique_prunes: u64,
    /// Dead ends answered from the transposition table.
    pub memo_hits: u64,
    /// Dead ends recorded into the transposition table.
    pub memo_entries: u64,
    /// Connected components solved by backtracking (trivial components
    /// short-circuited by `k >= n` count too).
    pub components_solved: u64,
}

impl SolverStats {
    fn absorb(&mut self, other: &SolverStats) {
        self.nodes_expanded += other.nodes_expanded;
        self.saturation_prunes += other.saturation_prunes;
        self.clique_prunes += other.clique_prunes;
        self.memo_hits += other.memo_hits;
        self.memo_entries += other.memo_entries;
        self.components_solved += other.components_solved;
    }
}

/// The exact `k`-coloring decision engine.  See the module documentation
/// for the pruning arsenal.
///
/// ```
/// use coalesce_graph::{Graph, solver::ExactSolver};
///
/// let mut g = Graph::new(4);
/// for i in 0..4usize {
///     for j in i + 1..4 {
///         g.add_edge(i.into(), j.into());
///     }
/// }
/// let mut solver = ExactSolver::new();
/// assert!(solver.k_coloring(&g, 3, &[]).is_none());
/// assert!(solver.k_coloring(&g, 4, &[]).is_some());
/// assert!(solver.stats().clique_prunes >= 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExactSolver {
    config: SolverConfig,
    stats: SolverStats,
}

impl ExactSolver {
    /// Creates a solver with the default (fully pruned) configuration.
    pub fn new() -> Self {
        ExactSolver::default()
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        ExactSolver {
            config,
            stats: SolverStats::default(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// The counters accumulated since construction or the last
    /// [`ExactSolver::take_stats`].
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Returns the accumulated counters and resets them to zero.
    pub fn take_stats(&mut self) -> SolverStats {
        std::mem::take(&mut self.stats)
    }

    /// Finds a proper `k`-coloring of the live part of `g` in which every
    /// pair of `same_color` receives equal colors, or proves none exists.
    ///
    /// Pairs are contracted up front (transitively, via union-find); a
    /// pair whose classes interfere makes the query trivially infeasible.
    pub fn k_coloring(
        &mut self,
        g: &Graph,
        k: usize,
        same_color: &[(VertexId, VertexId)],
    ) -> Option<Coloring> {
        // Contract the same-color pairs on a scratch copy.
        let mut scratch = g.clone();
        let mut dsu = crate::dsu::DisjointSets::new(g.capacity());
        for &(x, y) in same_color {
            let rx = VertexId::new(dsu.find(x.index()));
            let ry = VertexId::new(dsu.find(y.index()));
            if rx == ry {
                continue;
            }
            if scratch.has_edge(rx, ry) {
                return None;
            }
            scratch.merge(rx, ry);
            dsu.union_into(rx.index(), ry.index());
        }

        let (dense, originals) = scratch.compact();
        let coloring = self.solve_dense(&dense, k)?;

        // Map colors back to every original vertex through its
        // representative.
        let mut rep_color = vec![None; g.capacity()];
        for (i, &orig) in originals.iter().enumerate() {
            rep_color[orig.index()] = coloring.color_of(VertexId::new(i));
        }
        let mut result = Coloring::new(g.capacity());
        for v in g.vertices() {
            let rep = dsu.find(v.index());
            if let Some(c) = rep_color[rep] {
                result.assign(v, c);
            }
        }
        Some(result)
    }

    /// Returns `true` iff the live part of `g` admits a proper
    /// `k`-coloring.
    pub fn is_k_colorable(&mut self, g: &Graph, k: usize) -> bool {
        self.k_coloring(g, k, &[]).is_some()
    }

    /// Exact chromatic number of the live part of `g`: searches upward
    /// from the greedy-clique lower bound to the DSATUR upper bound.
    pub fn chromatic_number(&mut self, g: &Graph) -> usize {
        if g.num_vertices() == 0 {
            return 0;
        }
        let (dense, _) = g.compact();
        let upper = crate::coloring::dsatur(&dense).max_color_bound();
        let adj = dense_adjacency(&dense);
        let lower = greedy_clique(&adj).len().max(1);
        for k in lower..upper {
            if self.solve_dense(&dense, k).is_some() {
                return k;
            }
        }
        upper
    }

    /// Colors a dense graph (identifiers `0..n`, no retired vertices),
    /// decomposing into connected components when enabled.
    fn solve_dense(&mut self, dense: &Graph, k: usize) -> Option<Coloring> {
        let n = dense.num_vertices();
        if n == 0 {
            return Some(Coloring::new(0));
        }
        if k == 0 {
            return None;
        }
        // Report search effort to the per-pass sink as deltas, so nested
        // queries on one solver are counted exactly once.
        let before = self.stats;
        let result = self.solve_dense_inner(dense, k);
        coalesce_stats::counter!(
            "solver.nodes",
            self.stats.nodes_expanded - before.nodes_expanded
        );
        coalesce_stats::counter!("solver.memo_hits", self.stats.memo_hits - before.memo_hits);
        result
    }

    fn solve_dense_inner(&mut self, dense: &Graph, k: usize) -> Option<Coloring> {
        let n = dense.num_vertices();
        let mut coloring = Coloring::new(n);
        let components = if self.config.decompose_components {
            dense.connected_components()
        } else {
            vec![dense.vertices().collect()]
        };
        for comp in components {
            // Component-local dense subgraph; `locals[i]` is the dense id
            // of local vertex `i`.
            let keep = comp.iter().copied().collect();
            let (sub, locals) = dense.induced_subgraph(&keep);
            let local_colors = self.solve_component(&sub, k)?;
            for (i, &orig) in locals.iter().enumerate() {
                coloring.assign(orig, local_colors[i]);
            }
        }
        Some(coloring)
    }

    /// Colors one connected dense component, or proves it impossible.
    fn solve_component(&mut self, sub: &Graph, k: usize) -> Option<Vec<usize>> {
        let n = sub.num_vertices();
        self.stats.components_solved += 1;
        if k >= n {
            // Distinct colors always work; skip the search entirely.
            return Some((0..n).collect());
        }
        let adj = dense_adjacency(sub);

        let mut colors: Vec<Option<u32>> = vec![None; n];
        let mut assigned = 0usize;
        if self.config.clique_seeding {
            let clique = greedy_clique(&adj);
            if clique.len() > k {
                self.stats.clique_prunes += 1;
                return None;
            }
            for (c, &v) in clique.iter().enumerate() {
                colors[v] = Some(c as u32);
                assigned += 1;
            }
        }

        // Register the seed assignment in the counters before the search
        // takes ownership of them.
        // nbr_color_count[v][c] = colored neighbors of v with color c.
        let mut nbr_color_count = vec![vec![0u32; k]; n];
        let mut sat_count = vec![0u32; n];
        let mut color_usage = vec![0u32; k];
        for (v, color) in colors.iter().enumerate() {
            if let Some(c) = *color {
                color_usage[c as usize] += 1;
                for &u in &adj[v] {
                    let slot = &mut nbr_color_count[u as usize][c as usize];
                    *slot += 1;
                    if *slot == 1 {
                        sat_count[u as usize] += 1;
                    }
                }
            }
        }

        let mut search = Search {
            adj: &adj,
            k,
            colors,
            nbr_color_count,
            sat_count,
            color_usage,
            memo: HashSet::new(),
            config: self.config,
            stats: SolverStats::default(),
        };
        let ok = search.backtrack(assigned);
        self.stats.absorb(&search.stats);
        ok.then(|| {
            search
                .colors
                .iter()
                .map(|c| c.expect("all vertices colored") as usize)
                .collect()
        })
    }
}

/// Adjacency lists of a dense graph as flat `u32` vectors, the hot-path
/// representation the search iterates over.
fn dense_adjacency(g: &Graph) -> Vec<Vec<u32>> {
    let n = g.num_vertices();
    let mut adj = vec![Vec::new(); n];
    for (u, v) in g.edges() {
        adj[u.index()].push(v.index() as u32);
        adj[v.index()].push(u.index() as u32);
    }
    adj
}

/// Grows a maximal clique greedily from the highest-degree vertex:
/// vertices are scanned in decreasing degree order and added when adjacent
/// to every member so far.  Deterministic; linear-ish; a valid lower bound
/// for the chromatic number.
fn greedy_clique(adj: &[Vec<u32>]) -> Vec<usize> {
    let n = adj.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(adj[v].len()), v));
    let mut in_clique = vec![false; n];
    let mut clique: Vec<usize> = Vec::new();
    // adjacent_count[v] = members of the clique adjacent to v.
    let mut adjacent_count = vec![0usize; n];
    for v in order {
        if adjacent_count[v] == clique.len() {
            in_clique[v] = true;
            clique.push(v);
            for &u in &adj[v] {
                adjacent_count[u as usize] += 1;
            }
        }
    }
    clique
}

/// The in-flight state of one component search.
struct Search<'a> {
    adj: &'a [Vec<u32>],
    k: usize,
    colors: Vec<Option<u32>>,
    nbr_color_count: Vec<Vec<u32>>,
    sat_count: Vec<u32>,
    color_usage: Vec<u32>,
    memo: HashSet<Box<[u64]>>,
    config: SolverConfig,
    stats: SolverStats,
}

impl Search<'_> {
    fn bump(&mut self, u: usize, c: usize) {
        let slot = &mut self.nbr_color_count[u][c];
        *slot += 1;
        if *slot == 1 {
            self.sat_count[u] += 1;
        }
    }

    fn unbump(&mut self, u: usize, c: usize) {
        let slot = &mut self.nbr_color_count[u][c];
        *slot -= 1;
        if *slot == 0 {
            self.sat_count[u] -= 1;
        }
    }

    /// Canonical key of the *residual subproblem* left by the current
    /// partial assignment.  Extendability depends only on
    ///
    /// * which vertices are still uncolored (the induced subgraph on them
    ///   is fixed by the input graph),
    /// * for each color class in use, *which uncolored vertices it
    ///   forbids* (its colored members interact with the rest of the
    ///   search only through that frontier), and
    /// * how many classes are in use (fresh colors left: `k - used`).
    ///
    /// The key is the uncolored bitset followed by the per-class
    /// forbidden-frontier bitsets in sorted order, so color permutations
    /// — and even *different* colorings of the finished region with the
    /// same frontier — collide, which is exactly what makes transposition
    /// hits possible.
    fn canonical_key(&self) -> Box<[u64]> {
        let n = self.colors.len();
        let words = n.div_ceil(64);
        let mut uncolored = vec![0u64; words];
        for (v, color) in self.colors.iter().enumerate() {
            if color.is_none() {
                uncolored[v / 64] |= 1u64 << (v % 64);
            }
        }
        let mut frontiers: Vec<Vec<u64>> = Vec::new();
        for c in 0..self.k {
            if self.color_usage[c] == 0 {
                continue;
            }
            let mut frontier = vec![0u64; words];
            for v in 0..n {
                if self.colors[v].is_none() && self.nbr_color_count[v][c] > 0 {
                    frontier[v / 64] |= 1u64 << (v % 64);
                }
            }
            frontiers.push(frontier);
        }
        frontiers.sort_unstable();
        let mut key = uncolored;
        key.extend(frontiers.into_iter().flatten());
        key.into_boxed_slice()
    }

    fn backtrack(&mut self, assigned: usize) -> bool {
        let n = self.colors.len();
        if assigned == n {
            return true;
        }
        self.stats.nodes_expanded += 1;

        let memo_key = if self.config.memoize && assigned > 0 {
            let key = self.canonical_key();
            if self.memo.contains(&key) {
                self.stats.memo_hits += 1;
                return false;
            }
            Some(key)
        } else {
            None
        };

        // DSATUR selection: uncolored vertex with the most distinctly
        // colored neighbors, ties by degree, then index (determinism).
        let mut best = usize::MAX;
        let mut best_rank = (0u32, 0usize);
        for v in 0..n {
            if self.colors[v].is_some() {
                continue;
            }
            let rank = (self.sat_count[v], self.adj[v].len());
            if best == usize::MAX || rank > best_rank {
                best = v;
                best_rank = rank;
            }
        }
        let v = best;

        if (self.sat_count[v] as usize) < self.k {
            // Candidate colors: every color in use, plus the first unused
            // one (all unused colors are interchangeable).
            let mut fresh_tried = false;
            for c in 0..self.k {
                if self.color_usage[c] == 0 {
                    if fresh_tried {
                        continue;
                    }
                    fresh_tried = true;
                }
                if self.nbr_color_count[v][c] > 0 {
                    continue;
                }
                self.colors[v] = Some(c as u32);
                self.color_usage[c] += 1;
                for i in 0..self.adj[v].len() {
                    let u = self.adj[v][i] as usize;
                    self.bump(u, c);
                }
                if self.backtrack(assigned + 1) {
                    return true;
                }
                self.colors[v] = None;
                self.color_usage[c] -= 1;
                for i in 0..self.adj[v].len() {
                    let u = self.adj[v][i] as usize;
                    self.unbump(u, c);
                }
            }
        } else {
            self.stats.saturation_prunes += 1;
        }

        if let Some(key) = memo_key {
            if self.memo.len() < self.config.memo_capacity {
                self.memo.insert(key);
                self.stats.memo_entries += 1;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The seed repository's brute-force exact solver, kept verbatim as a
    /// cross-validation oracle: plain backtracking in vertex order, no
    /// decomposition, no memoization, only the trivial `max_used + 2`
    /// symmetry bound.
    pub(crate) fn oracle_k_coloring(g: &Graph, k: usize) -> bool {
        fn go(
            g: &Graph,
            k: usize,
            colors: &mut Vec<Option<usize>>,
            v: usize,
            max_used: usize,
        ) -> bool {
            let n = colors.len();
            if v == n {
                return true;
            }
            let limit = k.min(max_used + 2);
            for c in 0..limit {
                let vid = VertexId::new(v);
                if g.neighbors(vid).any(|u| colors[u.index()] == Some(c)) {
                    continue;
                }
                colors[v] = Some(c);
                if go(g, k, colors, v + 1, max_used.max(c)) {
                    return true;
                }
                colors[v] = None;
            }
            false
        }
        let (dense, _) = g.compact();
        let n = dense.num_vertices();
        if n == 0 {
            return true;
        }
        if k == 0 {
            return false;
        }
        go(&dense, k, &mut vec![None; n], 0, 0)
    }

    fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                g.add_edge(i.into(), j.into());
            }
        }
        g
    }

    fn cycle(n: usize) -> Graph {
        Graph::with_edges(
            n,
            (0..n).map(|i| (VertexId::new(i), VertexId::new((i + 1) % n))),
        )
    }

    /// Deterministic pseudo-random graph without pulling in the gen crate
    /// (which would be a dependency cycle): SplitMix64-driven G(n, p).
    fn scrambled_graph(n: usize, density_pct: u64, seed: u64) -> Graph {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in i + 1..n {
                if next() % 100 < density_pct {
                    g.add_edge(i.into(), j.into());
                }
            }
        }
        g
    }

    #[test]
    fn clique_needs_exactly_n_colors() {
        let g = complete(5);
        let mut s = ExactSolver::new();
        assert!(s.k_coloring(&g, 4, &[]).is_none());
        let c = s.k_coloring(&g, 5, &[]).unwrap();
        assert!(c.is_proper(&g));
        assert_eq!(s.chromatic_number(&g), 5);
        assert!(s.stats().clique_prunes >= 1);
    }

    #[test]
    fn components_are_colored_independently() {
        // Two disjoint triangles: the clique seed and decomposition solve
        // each component without global branching.
        let mut g = complete(3);
        let offset = g.capacity();
        for _ in 0..3 {
            g.add_vertex();
        }
        for i in 0..3usize {
            for j in i + 1..3 {
                g.add_edge((offset + i).into(), (offset + j).into());
            }
        }
        let mut s = ExactSolver::new();
        let c = s.k_coloring(&g, 3, &[]).unwrap();
        assert!(c.is_proper(&g));
        assert_eq!(s.stats().components_solved, 2);
    }

    #[test]
    fn same_color_constraints_contract_transitively() {
        let g = Graph::new(5);
        let mut s = ExactSolver::new();
        let c = s
            .k_coloring(&g, 1, &[(0.into(), 1.into()), (1.into(), 2.into())])
            .unwrap();
        assert_eq!(c.color_of(0.into()), c.color_of(2.into()));
    }

    #[test]
    fn interfering_same_color_pair_is_infeasible() {
        let g = Graph::with_edges(2, [(0.into(), 1.into())]);
        let mut s = ExactSolver::new();
        assert!(s.k_coloring(&g, 5, &[(0.into(), 1.into())]).is_none());
    }

    #[test]
    fn odd_cycles_against_the_oracle() {
        let mut s = ExactSolver::new();
        for n in [5usize, 7, 9] {
            let g = cycle(n);
            for k in 1..=4usize {
                assert_eq!(
                    s.is_k_colorable(&g, k),
                    oracle_k_coloring(&g, k),
                    "C_{n} with k = {k}"
                );
            }
        }
    }

    #[test]
    fn random_graphs_agree_with_the_oracle_for_every_config() {
        let configs = [
            SolverConfig::default(),
            SolverConfig {
                decompose_components: false,
                ..SolverConfig::default()
            },
            SolverConfig {
                clique_seeding: false,
                ..SolverConfig::default()
            },
            SolverConfig {
                memoize: false,
                ..SolverConfig::default()
            },
            SolverConfig {
                decompose_components: false,
                clique_seeding: false,
                memoize: false,
                memo_capacity: 0,
            },
        ];
        for seed in 0..40u64 {
            let n = 4 + (seed % 6) as usize;
            let g = scrambled_graph(n, 30 + (seed % 5) * 15, seed);
            for k in 1..=4usize {
                let expected = oracle_k_coloring(&g, k);
                for config in configs {
                    let mut s = ExactSolver::with_config(config);
                    let got = s.k_coloring(&g, k, &[]);
                    assert_eq!(
                        got.is_some(),
                        expected,
                        "seed {seed} n {n} k {k} config {config:?}"
                    );
                    if let Some(c) = got {
                        assert!(c.is_proper(&g));
                    }
                }
            }
        }
    }

    #[test]
    fn witness_colorings_respect_retired_vertices() {
        let mut g = complete(3);
        let v = g.add_vertex();
        g.add_edge(v, 0.into());
        g.remove_vertex(2.into());
        let mut s = ExactSolver::new();
        let c = s.k_coloring(&g, 2, &[]).unwrap();
        assert!(c.is_proper(&g));
        assert_eq!(c.color_of(2.into()), None);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut s = ExactSolver::new();
        s.is_k_colorable(&cycle(7), 3);
        assert!(s.stats().nodes_expanded > 0);
        let taken = s.take_stats();
        assert!(taken.nodes_expanded > 0);
        assert_eq!(*s.stats(), SolverStats::default());
    }

    #[test]
    fn memoization_prunes_repeated_dead_ends() {
        // The Mycielski graph M5 (23 vertices, chromatic number 5,
        // triangle-free): the `k = 4` refutation branches enough that
        // distinct colorings of finished regions leave identical residual
        // subproblems, which is exactly what the table catches.
        let mut g = Graph::with_edges(2, [(VertexId::new(0), VertexId::new(1))]);
        for _ in 0..3 {
            let n = g.capacity();
            for _ in 0..n + 1 {
                g.add_vertex();
            }
            let edges: Vec<_> = g
                .edges()
                .filter(|&(u, v)| u.index() < n && v.index() < n)
                .collect();
            for (u, v) in edges {
                g.add_edge(VertexId::new(n + u.index()), v);
                g.add_edge(u, VertexId::new(n + v.index()));
            }
            for i in 0..n {
                g.add_edge(VertexId::new(2 * n), VertexId::new(n + i));
            }
        }
        let mut memoized = ExactSolver::new();
        assert!(!memoized.is_k_colorable(&g, 4));
        assert!(memoized.stats().memo_hits > 0, "{:?}", memoized.stats());

        let mut plain = ExactSolver::with_config(SolverConfig {
            memoize: false,
            ..SolverConfig::default()
        });
        assert!(!plain.is_k_colorable(&g, 4));
        assert!(
            memoized.stats().nodes_expanded <= plain.stats().nodes_expanded,
            "memoization must not expand more nodes ({} vs {})",
            memoized.stats().nodes_expanded,
            plain.stats().nodes_expanded
        );
    }

    #[test]
    fn chromatic_numbers_match_known_values() {
        let mut s = ExactSolver::new();
        assert_eq!(s.chromatic_number(&Graph::new(0)), 0);
        assert_eq!(s.chromatic_number(&Graph::new(3)), 1);
        assert_eq!(s.chromatic_number(&cycle(6)), 2);
        assert_eq!(s.chromatic_number(&cycle(7)), 3);
        assert_eq!(s.chromatic_number(&complete(4)), 4);
    }
}
