//! Structural statistics of interference graphs.
//!
//! The experiments compare coalescing strategies across graph *classes*
//! (arbitrary, chordal, greedy-k-colorable) and across register-pressure
//! regimes; this module bundles the structural measurements that the bench
//! tables report next to the algorithmic results: size, density, degree
//! distribution, degeneracy (= coloring number − 1), clique bounds and
//! class membership.

use crate::graph::{Graph, VertexId};
use crate::{chordal, cliques, greedy, interval};
use std::fmt;

/// A summary of the structure of one interference graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of live vertices.
    pub vertices: usize,
    /// Number of edges between live vertices.
    pub edges: usize,
    /// Edge density `2m / (n (n - 1))`, or 0 for graphs with < 2 vertices.
    pub density: f64,
    /// Minimum degree over live vertices (0 for the empty graph).
    pub min_degree: usize,
    /// Maximum degree over live vertices (0 for the empty graph).
    pub max_degree: usize,
    /// Average degree `2m / n` (0 for the empty graph).
    pub avg_degree: f64,
    /// Degeneracy: the largest `d` such that some subgraph has minimum
    /// degree `d`; equals `col(G) - 1`.
    pub degeneracy: usize,
    /// Number of connected components.
    pub components: usize,
    /// Whether the graph is chordal.
    pub chordal: bool,
    /// Whether the graph is an interval graph (only computed when the graph
    /// is chordal; `false` otherwise).
    pub interval: bool,
    /// Clique number: exact for chordal graphs, a lower bound from the
    /// greedy clique heuristic otherwise (see [`clique_bound_is_exact`]).
    ///
    /// [`clique_bound_is_exact`]: GraphStats::clique_bound_is_exact
    pub clique_number: usize,
    /// Whether `clique_number` is exact (true for chordal graphs and for
    /// small graphs where the exact search was run).
    exact_clique: bool,
}

impl GraphStats {
    /// Computes the statistics of `g`.
    ///
    /// The exact maximum-clique search is only run for graphs with at most
    /// `exact_clique_limit` vertices (it is exponential in the worst case);
    /// beyond that, chordal graphs still get an exact clique number via
    /// their perfect elimination ordering and other graphs get the
    /// degeneracy-based upper bound *reported as a lower bound from a greedy
    /// clique*, with [`clique_bound_is_exact`] returning `false`.
    ///
    /// [`clique_bound_is_exact`]: GraphStats::clique_bound_is_exact
    pub fn compute(g: &Graph, exact_clique_limit: usize) -> Self {
        let n = g.num_vertices();
        let m = g.num_edges();
        let degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        let min_degree = degrees.iter().copied().min().unwrap_or(0);
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let avg_degree = if n == 0 {
            0.0
        } else {
            2.0 * m as f64 / n as f64
        };
        let density = if n < 2 {
            0.0
        } else {
            2.0 * m as f64 / (n as f64 * (n as f64 - 1.0))
        };
        let degeneracy = if n == 0 {
            0
        } else {
            greedy::coloring_number(g).saturating_sub(1)
        };
        let components = g.connected_components().len();
        let is_chordal = chordal::is_chordal(g);
        let is_interval = is_chordal && !interval::has_asteroidal_triple(g);
        let (clique_number, exact_clique) = if is_chordal {
            (chordal::chordal_clique_number(g).unwrap_or(0), true)
        } else if n <= exact_clique_limit {
            (cliques::clique_number(g), true)
        } else {
            (greedy_clique_lower_bound(g), false)
        };
        GraphStats {
            vertices: n,
            edges: m,
            density,
            min_degree,
            max_degree,
            avg_degree,
            degeneracy,
            components,
            chordal: is_chordal,
            interval: is_interval,
            clique_number,
            exact_clique,
        }
    }

    /// `true` if [`GraphStats::clique_number`] is exact rather than a greedy
    /// lower bound.
    pub fn clique_bound_is_exact(&self) -> bool {
        self.exact_clique
    }

    /// The smallest `k` such that the greedy (Chaitin) scheme colors the
    /// graph, i.e. the coloring number `col(G) = degeneracy + 1`.
    pub fn coloring_number(&self) -> usize {
        if self.vertices == 0 {
            0
        } else {
            self.degeneracy + 1
        }
    }

    /// Returns a single-line textual summary suitable for bench tables.
    pub fn summary(&self) -> String {
        format!(
            "n={} m={} dens={:.3} deg[{},{:.1},{}] col={} ω{}{} {}{}",
            self.vertices,
            self.edges,
            self.density,
            self.min_degree,
            self.avg_degree,
            self.max_degree,
            self.coloring_number(),
            if self.exact_clique { "=" } else { "≥" },
            self.clique_number,
            if self.chordal {
                "chordal"
            } else {
                "non-chordal"
            },
            if self.interval { "+interval" } else { "" },
        )
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

/// Degree histogram: `histogram[d]` is the number of live vertices of
/// degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut histogram = vec![0usize; g.num_vertices().max(1)];
    for v in g.vertices() {
        let d = g.degree(v);
        if d >= histogram.len() {
            histogram.resize(d + 1, 0);
        }
        histogram[d] += 1;
    }
    while histogram.len() > 1 && *histogram.last().unwrap() == 0 {
        histogram.pop();
    }
    histogram
}

/// A quick greedy lower bound on the clique number: repeatedly pick the
/// highest-degree vertex compatible with the clique under construction.
pub fn greedy_clique_lower_bound(g: &Graph) -> usize {
    if g.num_vertices() == 0 {
        return 0;
    }
    let mut best = 1usize;
    // Seed from each of the top few degree vertices for robustness.
    let mut seeds: Vec<VertexId> = g.vertices().collect();
    seeds.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    for &seed in seeds.iter().take(8) {
        let mut clique = vec![seed];
        let mut candidates: Vec<VertexId> = g.neighbors(seed).collect();
        candidates.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
        for v in candidates {
            if clique.iter().all(|&c| g.has_edge(c, v)) {
                clique.push(v);
            }
        }
        best = best.max(clique.len());
    }
    best
}

/// Global clustering coefficient: `3 × (number of triangles) / (number of
/// connected vertex triples)`, or 0 when there is no such triple.
pub fn clustering_coefficient(g: &Graph) -> f64 {
    let mut triangles = 0usize;
    let mut triples = 0usize;
    for v in g.vertices() {
        let neighbors: Vec<VertexId> = g.neighbors(v).collect();
        let d = neighbors.len();
        triples += d * d.saturating_sub(1) / 2;
        for (i, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[i + 1..] {
                if g.has_edge(a, b) {
                    triangles += 1;
                }
            }
        }
    }
    // Each triangle is counted once per corner (3 times).
    if triples == 0 {
        0.0
    } else {
        triangles as f64 / triples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VertexId {
        VertexId::new(i)
    }

    fn k4() -> Graph {
        let mut g = Graph::new(4);
        for i in 0..4 {
            for j in i + 1..4 {
                g.add_edge(v(i), v(j));
            }
        }
        g
    }

    #[test]
    fn stats_of_the_complete_graph() {
        let stats = GraphStats::compute(&k4(), 32);
        assert_eq!(stats.vertices, 4);
        assert_eq!(stats.edges, 6);
        assert!((stats.density - 1.0).abs() < 1e-9);
        assert_eq!(stats.min_degree, 3);
        assert_eq!(stats.max_degree, 3);
        assert_eq!(stats.degeneracy, 3);
        assert_eq!(stats.coloring_number(), 4);
        assert_eq!(stats.clique_number, 4);
        assert!(stats.clique_bound_is_exact());
        assert!(stats.chordal);
        assert!(stats.interval);
        assert_eq!(stats.components, 1);
    }

    #[test]
    fn stats_of_the_empty_graph() {
        let stats = GraphStats::compute(&Graph::new(0), 32);
        assert_eq!(stats.vertices, 0);
        assert_eq!(stats.coloring_number(), 0);
        assert_eq!(stats.clique_number, 0);
        assert_eq!(stats.components, 0);
    }

    #[test]
    fn stats_of_a_cycle_detect_non_chordality() {
        let mut g = Graph::new(5);
        for i in 0..5 {
            g.add_edge(v(i), v((i + 1) % 5));
        }
        let stats = GraphStats::compute(&g, 32);
        assert!(!stats.chordal);
        assert!(!stats.interval);
        assert_eq!(stats.clique_number, 2);
        assert_eq!(stats.degeneracy, 2);
        assert_eq!(stats.min_degree, 2);
    }

    #[test]
    fn degree_histogram_counts_each_vertex_once() {
        let g = Graph::with_edges(4, [(v(0), v(1)), (v(1), v(2))]);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 4);
        assert_eq!(hist[0], 1); // vertex 3
        assert_eq!(hist[1], 2); // vertices 0 and 2
        assert_eq!(hist[2], 1); // vertex 1
    }

    #[test]
    fn clustering_coefficient_of_a_triangle_is_one_and_of_a_path_is_zero() {
        let triangle = Graph::with_edges(3, [(v(0), v(1)), (v(1), v(2)), (v(0), v(2))]);
        assert!((clustering_coefficient(&triangle) - 1.0).abs() < 1e-9);
        let path = Graph::with_edges(3, [(v(0), v(1)), (v(1), v(2))]);
        assert_eq!(clustering_coefficient(&path), 0.0);
    }

    #[test]
    fn greedy_clique_bound_is_a_valid_lower_bound() {
        let g = k4();
        assert!(greedy_clique_lower_bound(&g) <= cliques::clique_number(&g));
        assert_eq!(greedy_clique_lower_bound(&g), 4);
    }

    #[test]
    fn inexact_clique_bound_is_flagged() {
        // A large sparse non-chordal graph forces the greedy bound path.
        let mut g = Graph::new(40);
        for i in 0..40 {
            g.add_edge(v(i), v((i + 1) % 40));
        }
        let stats = GraphStats::compute(&g, 10);
        assert!(!stats.clique_bound_is_exact());
        assert!(stats.clique_number >= 2);
        assert!(stats.summary().contains("≥"));
    }

    #[test]
    fn display_matches_summary() {
        let stats = GraphStats::compute(&k4(), 32);
        assert_eq!(format!("{stats}"), stats.summary());
    }
}
