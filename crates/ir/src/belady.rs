//! Braun–Hack-style Belady (`MIN`) spilling for SSA-form programs.
//!
//! Where the Chaitin-style spiller of [`crate::spill`] picks whole-range
//! victims by loop-weighted cost/benefit, this pass ports Belady's `MIN`
//! page-replacement rule to register allocation, following Braun & Hack
//! (*Register Spilling and Live-Range Splitting for SSA-form Programs*):
//! walk each block with a model of the `k`-entry register file `W`, and
//! whenever a value must enter a full `W`, evict the resident value whose
//! *next use* is furthest away.
//!
//! Three ingredients make the local rule work on whole programs:
//!
//! * **next-use distances** at block boundaries ([`NextUse`]): a backward
//!   min-plus fixpoint gives, for every block, the distance (in
//!   instruction slots) from its entry and from its exit to the nearest
//!   upcoming use of each value.  Edges that leave a loop are penalised
//!   with [`LOOP_EXIT_DISTANCE`], so a value whose only future use lies
//!   past the loop looks "far" everywhere inside it and is evicted before
//!   anything the loop itself touches;
//! * **live-range splitting at block boundaries**: the register-file model
//!   is rebuilt at every block entry, and a spilled value is reloaded into
//!   one fresh temporary *per block in which the model actually reloads
//!   it*, starting at the first non-resident use and serving every later
//!   use in that block (including terminator uses and φ-arguments toward
//!   successors), so no reload temporary outlives its block except along
//!   the φ-edges it explicitly feeds;
//! * **a global spill set, iterated to a fixpoint**: once a value is
//!   evicted anywhere it is treated as memory-resident *everywhere*, and
//!   the per-block scans are repeated with the accumulated victims until a
//!   round adds none — without this, a block inside a loop could spill a
//!   value an earlier-scanned block already decided to keep in a register
//!   for the next iteration, and the two models would disagree across the
//!   back edge.  The rewrite then replaces exactly the uses the fixpoint
//!   model served from memory; uses made while the value was still
//!   resident keep the original variable, so the rewritten pressure tracks
//!   the modelled register file point for point, and every reload
//!   temporary's live range is contained in the victim's original one —
//!   the rewrite never increases the pressure at any program point.
//!
//! The pass is wired into the strategy zoo as
//! [`SpillerKind::Belady`](crate::spill::SpillerKind::Belady) and compared
//! against the other spillers in experiment E17.

use crate::function::{BlockId, Function, Instr, InstrView, Terminator, Var};
use crate::spill::SpillResult;
use std::collections::BTreeMap;

/// Extra next-use distance charged to an edge that leaves a loop (the
/// successor's loop depth is smaller than the block's).
///
/// Any use only reachable through such an edge happens at most once per
/// loop *execution* rather than once per iteration, so it should lose
/// every eviction contest against values the loop itself still needs.
/// The constant merely has to dominate realistic in-loop distances; it is
/// added with saturating arithmetic, so nested exits cannot overflow.
pub const LOOP_EXIT_DISTANCE: u64 = 100_000;

/// Sentinel distance for "no further use on any path".
const INFINITE: u64 = u64::MAX;

/// Next-use distances at block boundaries, in instruction slots.
///
/// Distances follow the conventions of the per-block scan: inside a block
/// of `n` instructions, ordinary instruction `i` is at distance `i` from
/// the entry, the terminator at `n`, and crossing the block costs `n + 1`
/// slots.  A φ-argument toward a successor counts as a use at distance 0
/// past the predecessor's exit (plus the loop-exit penalty of the edge, if
/// any); φ-results are definitions at their block's entry and therefore
/// never appear in that block's entry map.
#[derive(Debug, Clone)]
pub struct NextUse {
    /// `entry[b][v]` — distance from the entry of block `b` to the nearest
    /// use of `v`.  For strict SSA input the key set is exactly the
    /// live-in set of `b`.
    pub entry: Vec<BTreeMap<Var, u64>>,
    /// `exit[b][v]` — distance from the exit of block `b` (past its
    /// terminator) to the nearest use of `v` on any outgoing path.
    pub exit: Vec<BTreeMap<Var, u64>>,
}

fn merge_min(m: &mut BTreeMap<Var, u64>, v: Var, d: u64) {
    let e = m.entry(v).or_insert(u64::MAX);
    if d < *e {
        *e = d;
    }
}

impl NextUse {
    /// Computes the boundary next-use distances of `f` by a backward
    /// min-plus fixpoint (a shortest-distance problem: all block lengths
    /// are positive, so the iteration converges).
    pub fn compute(f: &Function) -> NextUse {
        let nb = f.num_blocks();
        let mut entry: Vec<BTreeMap<Var, u64>> = vec![BTreeMap::new(); nb];
        let mut exit: Vec<BTreeMap<Var, u64>> = vec![BTreeMap::new(); nb];
        loop {
            let mut changed = false;
            for bi in (0..nb).rev() {
                let b = BlockId::new(bi);
                let n = f.num_instrs(b) as u64;
                // Exit map: best distance over all outgoing edges.
                let mut out: BTreeMap<Var, u64> = BTreeMap::new();
                for s in f.successors(b) {
                    let penalty = if f.loop_depth(s) < f.loop_depth(b) {
                        LOOP_EXIT_DISTANCE
                    } else {
                        0
                    };
                    for (&v, &d) in &entry[s.index()] {
                        merge_min(&mut out, v, d.saturating_add(penalty));
                    }
                    // φ-arguments along this edge are used right at the
                    // predecessor's exit.
                    for phi in f.phis(s) {
                        if let InstrView::Phi { args, .. } = phi {
                            for a in args {
                                if a.pred == b {
                                    merge_min(&mut out, a.value, penalty);
                                }
                            }
                        }
                    }
                }
                // Entry map: local backward transfer over the block.
                let mut m: BTreeMap<Var, u64> = BTreeMap::new();
                for (&v, &d) in &out {
                    m.insert(v, (n + 1).saturating_add(d));
                }
                for u in f.terminator(b).uses() {
                    merge_min(&mut m, u, n);
                }
                for (i, instr) in f.block_instrs(b).enumerate().rev() {
                    if let Some(d) = instr.def() {
                        m.remove(&d);
                    }
                    for &u in instr.local_uses() {
                        m.insert(u, i as u64);
                    }
                }
                if out != exit[bi] {
                    exit[bi] = out;
                    changed = true;
                }
                if m != entry[bi] {
                    entry[bi] = m;
                    changed = true;
                }
            }
            if !changed {
                return NextUse { entry, exit };
            }
        }
    }
}

/// One value of the modelled register file `W`.
#[derive(Debug, Clone)]
struct Resident {
    /// The (original) variable this register holds.
    var: Var,
    /// Distance from the current block's entry to its next use.
    next_use: u64,
    /// A per-block reload temporary: it *is* the spill access, so it can
    /// never itself be evicted.
    pinned: bool,
}

/// Evicts the evictable resident with the furthest next use (ties broken
/// toward the higher variable index, deterministically).  Pinned reload
/// temporaries and the `protect`ed operands of the current instruction are
/// never evicted; returns `None` when nothing can go (the register file is
/// then allowed to overflow — the same structural floor the other spillers
/// hit when one instruction's operands alone exceed `k`).
fn evict_furthest(w: &mut Vec<Resident>, protect: &[Var]) -> Option<Resident> {
    let mut best: Option<usize> = None;
    for (j, r) in w.iter().enumerate() {
        if r.pinned || protect.contains(&r.var) {
            continue;
        }
        let better = match best {
            None => true,
            Some(bj) => (r.next_use, r.var) > (w[bj].next_use, w[bj].var),
        };
        if better {
            best = Some(j);
        }
    }
    if best.is_some() {
        coalesce_stats::counter!("belady.evictions");
    }
    best.map(|j| w.swap_remove(j))
}

/// Spills variables of `f` towards `Maxlive ≤ k` with the Belady `MIN`
/// rule and rewrites `f` in place (one reload temporary per block and
/// spilled value — live-range splitting at block boundaries).  Returns the
/// spilled variables in decision order.
///
/// Like the other spillers, the result can stay above `k` at structurally
/// forced points; for this pass the floor is its own result at `k = 0`
/// (spill everything through the same one-reload-per-block rewrite): a
/// reload temporary stays live between a block's first and last served
/// use of its victim, so overlapping reload spans can congest a point no
/// matter what `k` is, on top of the operand/φ pressure no spiller can
/// remove.  One further slot is conceded at definitions whose value
/// bypasses the register file — a dead result, or one whose own next use
/// is the furthest of all (Belady then stores it right after the
/// definition) — because the store still occupies the defining register
/// at that single point.  `tests/ir_backend.rs` pins the resulting
/// contract: `maxlive_precise ≤ max(k + 1, the pass's own k = 0 floor)`.
pub fn spill_belady(f: &mut Function, k: usize) -> SpillResult {
    let _span = coalesce_stats::span!("ir/spill/belady");
    let decisions = belady_decisions(f, k);
    rewrite_spilled(f, decisions)
}

/// What phase 1 decided: the victims in decision order, plus — per (block,
/// victim) — the position of the first use the model had to serve from
/// memory in that block (`n` for a block of `n` instructions when the
/// first such use is the terminator or an outgoing φ-argument).  The
/// rewrite places each reload temporary exactly there; uses before that
/// point were served by the still-resident original value and keep it.
struct BeladyDecisions {
    order: Vec<Var>,
    reloads: BTreeMap<(usize, Var), u64>,
}

/// Phase 1 (analysis only): which values end up in memory, in the order
/// the decisions were made, and where each block first reloads them.
///
/// The per-block scans are iterated to a fixpoint of the global spill
/// set.  A single pass is not enough: the blocks are scanned in index
/// order, so a block inside a loop can spill a value whose next-iteration
/// use an earlier-scanned block already decided to serve from a register —
/// the two models then disagree across the back edge, and the value would
/// stay live through the spilling block.  Re-scanning with the
/// accumulated victims (which only grow, so the iteration terminates)
/// makes every block see the same memory-resident set; at the fixpoint
/// every surviving direct use is a resident use, which is what lets the
/// modelled register file bound the rewritten pressure.
fn belady_decisions(f: &Function, k: usize) -> BeladyDecisions {
    let next_use = NextUse::compute(f);
    let mut spilled = vec![false; f.num_vars()];
    let mut order: Vec<Var> = Vec::new();
    loop {
        let victims_before = order.len();
        let reloads = belady_scan(f, k, &next_use, &mut spilled, &mut order);
        if order.len() == victims_before {
            return BeladyDecisions { order, reloads };
        }
    }
}

/// One decision round: scans every block against the current global spill
/// set (extending it), and returns the reload positions this round would
/// imply.
fn belady_scan(
    f: &Function,
    k: usize,
    next_use: &NextUse,
    spilled: &mut [bool],
    order: &mut Vec<Var>,
) -> BTreeMap<(usize, Var), u64> {
    let mut reloads: BTreeMap<(usize, Var), u64> = BTreeMap::new();
    for b in f.block_ids() {
        let n = f.num_instrs(b);
        // Local use positions per variable, in increasing order:
        // instruction index for ordinary uses, `n` for terminator uses and
        // φ-arguments toward successors (both happen at the block's end
        // and are served by the same per-block reload temporary).
        let mut use_pos: BTreeMap<Var, Vec<u64>> = BTreeMap::new();
        for (i, instr) in f.block_instrs(b).enumerate() {
            for &u in instr.local_uses() {
                use_pos.entry(u).or_default().push(i as u64);
            }
        }
        for u in f.terminator(b).uses() {
            use_pos.entry(u).or_default().push(n as u64);
        }
        for s in f.successors(b) {
            for phi in f.phis(s) {
                if let InstrView::Phi { args, .. } = phi {
                    for a in args {
                        if a.pred == b {
                            use_pos.entry(a.value).or_default().push(n as u64);
                        }
                    }
                }
            }
        }
        let exit_b = &next_use.exit[b.index()];
        // Next use of `v` strictly after position `pos`; `local_only`
        // stops at the block's end (the horizon of a reload temporary),
        // otherwise the exit distance extends the search across the
        // boundary.
        let next_after = |v: Var, pos: i64, local_only: bool| -> u64 {
            if let Some(ps) = use_pos.get(&v) {
                for &p in ps {
                    if (p as i64) > pos {
                        return p;
                    }
                }
            }
            if local_only {
                return INFINITE;
            }
            match exit_b.get(&v) {
                Some(&d) => (n as u64 + 1).saturating_add(d),
                None => INFINITE,
            }
        };

        // Block entry: φ-results are defined here no matter what — even
        // the dead or already-spilled ones occupy a register at the entry
        // point (they are all simultaneously live with the live-in set),
        // so they consume entry capacity without entering `W`.  Then the
        // nearest-used live-in values fill the remaining capacity; the
        // rest start (or stay) in memory.
        let mut w: Vec<Resident> = Vec::new();
        let mut entry_overhead = 0usize;
        for phi in f.phis(b) {
            if let Some(d) = phi.def() {
                if spilled[d.index()] {
                    entry_overhead += 1;
                    continue;
                }
                let nu = next_after(d, -1, false);
                if nu == INFINITE {
                    entry_overhead += 1;
                    continue;
                }
                w.push(Resident {
                    var: d,
                    next_use: nu,
                    pinned: false,
                });
            }
        }
        let entry_capacity = k.saturating_sub(entry_overhead);
        let mut entries: Vec<(u64, Var)> = next_use.entry[b.index()]
            .iter()
            .filter(|(v, _)| !spilled[v.index()])
            .map(|(&v, &d)| (d, v))
            .collect();
        entries.sort_unstable();
        for (_, v) in entries {
            if w.len() < entry_capacity {
                let nu = next_after(v, -1, false);
                w.push(Resident {
                    var: v,
                    next_use: nu,
                    pinned: false,
                });
            } else if !spilled[v.index()] {
                spilled[v.index()] = true;
                order.push(v);
            }
        }

        // Forward scan: ordinary instructions, then the block's end point
        // (terminator uses plus outgoing φ-arguments) as position `n`.
        for (i, instr) in f.block_instrs(b).enumerate() {
            if instr.is_phi() {
                continue;
            }
            let mut uses: Vec<Var> = instr.local_uses().to_vec();
            uses.sort_unstable();
            uses.dedup();
            // Every operand must be resident; spilled (or evicted-here)
            // operands enter as pinned reload temporaries.
            for &u in &uses {
                if w.iter().any(|r| r.var == u) {
                    continue;
                }
                if !spilled[u.index()] {
                    spilled[u.index()] = true;
                    order.push(u);
                }
                if w.len() >= k {
                    if let Some(evicted) = evict_furthest(&mut w, &uses) {
                        if !spilled[evicted.var.index()] {
                            spilled[evicted.var.index()] = true;
                            order.push(evicted.var);
                        }
                    }
                }
                reloads.entry((b.index(), u)).or_insert(i as u64);
                w.push(Resident {
                    var: u,
                    next_use: next_after(u, i as i64, true),
                    pinned: true,
                });
            }
            // Operands consumed: advance their next use, drop the dead.
            w.retain_mut(|r| {
                if !uses.contains(&r.var) {
                    return true;
                }
                r.next_use = next_after(r.var, i as i64, r.pinned);
                r.next_use != INFINITE
            });
            // The result takes a register of its own — unless its own next
            // use is the furthest of all (then Belady's rule spills the
            // freshly defined value itself: store after the definition,
            // reload at its distant uses).
            if let Some(d) = instr.def() {
                if !spilled[d.index()] && !w.iter().any(|r| r.var == d) {
                    let nu = next_after(d, i as i64, false);
                    if nu != INFINITE {
                        let mut insert = true;
                        if w.len() >= k {
                            let protect = uses.clone();
                            let best = w
                                .iter()
                                .filter(|r| !r.pinned && !protect.contains(&r.var))
                                .map(|r| (r.next_use, r.var))
                                .max();
                            match best {
                                Some(b) if b > (nu, d) => {
                                    let evicted = evict_furthest(&mut w, &protect)
                                        .expect("a furthest evictable resident exists");
                                    if !spilled[evicted.var.index()] {
                                        spilled[evicted.var.index()] = true;
                                        order.push(evicted.var);
                                    }
                                }
                                _ => {
                                    // The definition itself is the
                                    // furthest-used (or nothing can go):
                                    // it starts its life in memory.
                                    spilled[d.index()] = true;
                                    order.push(d);
                                    insert = false;
                                }
                            }
                        }
                        if insert {
                            w.push(Resident {
                                var: d,
                                next_use: nu,
                                pinned: false,
                            });
                        }
                    }
                }
            }
        }
        // Block end: terminator uses and φ-arguments toward successors.
        let mut end_uses: Vec<Var> = f.terminator(b).uses();
        for s in f.successors(b) {
            for phi in f.phis(s) {
                if let InstrView::Phi { args, .. } = phi {
                    for a in args {
                        if a.pred == b {
                            end_uses.push(a.value);
                        }
                    }
                }
            }
        }
        end_uses.sort_unstable();
        end_uses.dedup();
        for &u in &end_uses {
            if w.iter().any(|r| r.var == u) {
                continue;
            }
            if !spilled[u.index()] {
                spilled[u.index()] = true;
                order.push(u);
            }
            if w.len() >= k {
                if let Some(evicted) = evict_furthest(&mut w, &end_uses) {
                    if !spilled[evicted.var.index()] {
                        spilled[evicted.var.index()] = true;
                        order.push(evicted.var);
                    }
                }
            }
            reloads.entry((b.index(), u)).or_insert(n as u64);
            w.push(Resident {
                var: u,
                next_use: n as u64,
                pinned: true,
            });
        }
        // W is discarded here: the next block rebuilds it from its own
        // entry state (live-range splitting at the boundary).
    }
    reloads
}

/// Phase 2: rewrites the uses the model served from memory through one
/// reload temporary per (block, value), placed at the block's first
/// recorded reload position and covering every later use in the block
/// (ordinary, terminator, and φ-arguments toward successors).  Uses before
/// that position were made while the value was still resident and keep the
/// original variable.  The original definitions are kept (they are the
/// stores), and every temporary's live range is contained in the victim's
/// original one.
fn rewrite_spilled(f: &mut Function, decisions: BeladyDecisions) -> SpillResult {
    let mut result = SpillResult {
        spilled: decisions.order,
        reloads: 0,
    };
    // Group the recorded reloads per block: `(position, victim)` pairs.
    let mut events: Vec<Vec<(u64, Var)>> = vec![Vec::new(); f.num_blocks()];
    for (&(bi, v), &p) in &decisions.reloads {
        events[bi].push((p, v));
    }
    let block_ids: Vec<BlockId> = f.block_ids().collect();
    for b in block_ids {
        if events[b.index()].is_empty() {
            continue;
        }
        let n = f.num_instrs(b) as u64;
        // Allocate the temporaries.  A use at position `i` is served by
        // the temporary iff `i >= pos_of[victim]`; terminator uses and
        // φ-arguments sit at position `n`, past every recorded position.
        let mut temp_of: BTreeMap<Var, Var> = BTreeMap::new();
        let mut pos_of: BTreeMap<Var, u64> = BTreeMap::new();
        for &(p, v) in &events[b.index()] {
            let t = f.derive_var(v, "_reload");
            temp_of.insert(v, t);
            pos_of.insert(v, p);
            result.reloads += 1;
        }
        // Rewrite the ordinary uses (position-gated) and the terminator,
        // before any insertion shifts the indices.
        for i in 0..f.num_instrs(b) {
            let view = f.instr(b, i);
            let served = |u: &Var| -> bool { pos_of.get(u).is_some_and(|&p| i as u64 >= p) };
            if view.is_phi() || !view.local_uses().iter().any(served) {
                continue;
            }
            let new_instr = match f.instr(b, i).to_instr() {
                Instr::Op { dst, uses } => Instr::Op {
                    dst,
                    uses: uses
                        .into_iter()
                        .map(|u| if served(&u) { temp_of[&u] } else { u })
                        .collect(),
                },
                Instr::Copy { dst, src } => Instr::Copy {
                    dst,
                    src: if served(&src) { temp_of[&src] } else { src },
                },
                phi @ Instr::Phi { .. } => phi,
            };
            f.replace_instr(b, i, new_instr);
        }
        if f.terminator(b)
            .uses()
            .iter()
            .any(|u| temp_of.contains_key(u))
        {
            let new_term = match f.terminator(b).clone() {
                Terminator::Branch {
                    cond,
                    then_block,
                    else_block,
                } => Terminator::Branch {
                    cond: temp_of.get(&cond).copied().unwrap_or(cond),
                    then_block,
                    else_block,
                },
                Terminator::Return { uses } => Terminator::Return {
                    uses: uses
                        .into_iter()
                        .map(|u| temp_of.get(&u).copied().unwrap_or(u))
                        .collect(),
                },
                t @ Terminator::Jump(_) => t,
            };
            *f.terminator_mut(b) = new_term;
        }
        // Rewrite φ-arguments in the successors: the per-block temporary
        // is defined before the block's end, so it is a legal value along
        // every outgoing edge.
        let succs: Vec<BlockId> = f.successors(b);
        for s in succs {
            for i in 0..f.num_phis_in(s) {
                let rewrite_phi = match f.instr(s, i) {
                    InstrView::Phi { dst, args }
                        if args
                            .iter()
                            .any(|a| a.pred == b && temp_of.contains_key(&a.value)) =>
                    {
                        Some((
                            dst,
                            args.iter().map(|a| (a.pred, a.value)).collect::<Vec<_>>(),
                        ))
                    }
                    _ => None,
                };
                if let Some((dst, mut args)) = rewrite_phi {
                    for (p, v) in args.iter_mut() {
                        if *p == b {
                            if let Some(&t) = temp_of.get(v) {
                                *v = t;
                            }
                        }
                    }
                    f.replace_instr(s, i, Instr::Phi { dst, args });
                }
            }
        }
        // Insert the reload definitions, highest position first so the
        // recorded indices stay valid; position `n` (a first use at the
        // terminator or along an outgoing edge) appends at the block's
        // end.
        let mut by_pos = events[b.index()].clone();
        by_pos.sort_unstable_by(|a, b| b.cmp(a));
        for (p, v) in by_pos {
            let t = temp_of[&v];
            if p >= n {
                f.emit_op(b, Some(t), &[]);
            } else {
                f.insert_instr(
                    b,
                    p as usize,
                    Instr::Op {
                        dst: Some(t),
                        uses: Vec::new(),
                    },
                );
            }
        }
    }
    debug_assert!(f.validate().is_ok());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionBuilder;
    use crate::liveness::Liveness;

    #[test]
    fn next_use_distances_in_a_straight_line_block() {
        let mut b = FunctionBuilder::new("line");
        let entry = b.entry_block();
        let x = b.def(entry, "x"); // position 0
        let y = b.def(entry, "y"); // position 1
        let _z = b.op(entry, "z", &[x]); // position 2: uses x
        b.ret(entry, &[y]); // terminator at position 3
        let f = b.finish();
        let nu = NextUse::compute(&f);
        // Nothing is live at the function entry, and the exit of the only
        // block has no successors.
        assert!(nu.entry[0].is_empty());
        assert!(nu.exit[0].is_empty());
    }

    #[test]
    fn next_use_crosses_blocks_and_charges_loop_exits() {
        // entry -> body (depth 1) -> body | exit; `far` is used only in
        // `exit`, `near` inside `body`.
        let mut b = FunctionBuilder::new("loop");
        let entry = b.entry_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.set_loop_depth(body, 1);
        let far = b.def(entry, "far");
        let near = b.def(entry, "near");
        let c = b.def(entry, "c");
        b.jump(entry, body);
        b.effect(body, &[near]);
        b.branch(body, c, body, exit);
        b.effect(exit, &[far]);
        b.ret(exit, &[]);
        let f = b.finish();
        let nu = NextUse::compute(&f);
        let body_entry = &nu.entry[body.index()];
        // `near` is used at the body's first instruction; `far` only past
        // the loop exit, so its distance carries the penalty.
        assert_eq!(body_entry.get(&near), Some(&0));
        assert!(*body_entry.get(&far).unwrap() >= LOOP_EXIT_DISTANCE);
        assert!(*body_entry.get(&far).unwrap() < INFINITE);
    }

    #[test]
    fn belady_prefers_evicting_the_furthest_value() {
        // Three values live across a long stretch, k = 2: the one whose
        // use comes last must be the one spilled.
        let mut b = FunctionBuilder::new("minrule");
        let entry = b.entry_block();
        let a = b.def(entry, "a");
        let m = b.def(entry, "m");
        let z = b.def(entry, "z");
        b.effect(entry, &[a]);
        b.effect(entry, &[m]);
        b.effect(entry, &[z]);
        b.ret(entry, &[]);
        let mut f = b.finish();
        let result = spill_belady(&mut f, 2);
        assert!(f.validate().is_ok());
        assert!(
            result.spilled.contains(&z),
            "expected the furthest-used value to be spilled, got {:?}",
            result.spilled
        );
        assert!(!result.spilled.contains(&a));
    }

    #[test]
    fn belady_keeps_loop_resident_values_over_loop_idle_ones() {
        // Same shape as the greedy spiller's loop test: `idle` crosses the
        // loop unused, `hot` is used every iteration.  The loop-exit
        // penalty must make Belady evict `idle`.
        let mut b = FunctionBuilder::new("loop_belady");
        let entry = b.entry_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.set_loop_depth(body, 1);
        let idle = b.def(entry, "idle");
        let hot = b.def(entry, "hot");
        let c = b.def(entry, "c");
        b.jump(entry, body);
        let t = b.op(body, "t", &[hot]);
        b.effect(body, &[t, hot]);
        b.branch(body, c, body, exit);
        b.effect(exit, &[idle, hot]);
        b.ret(exit, &[]);
        let mut f = b.finish();
        let result = spill_belady(&mut f, 3);
        assert!(f.validate().is_ok());
        assert!(
            result.spilled.contains(&idle),
            "expected `idle` to be spilled, got {:?}",
            result.spilled
        );
        assert!(!result.spilled.contains(&hot));
    }

    #[test]
    fn belady_rewrite_never_increases_pressure() {
        let mut b = FunctionBuilder::new("noninc");
        let entry = b.entry_block();
        let vars: Vec<Var> = (0..8).map(|i| b.def(entry, format!("v{i}"))).collect();
        for pair in vars.chunks(2) {
            b.effect(entry, pair);
        }
        b.ret(entry, &[vars[0]]);
        let mut f = b.finish();
        let before = Liveness::compute(&f).maxlive_precise(&f);
        let _ = spill_belady(&mut f, 3);
        assert!(f.validate().is_ok());
        let after = Liveness::compute(&f).maxlive_precise(&f);
        assert!(after <= before, "pressure rose from {before} to {after}");
    }

    #[test]
    fn belady_splits_ranges_at_block_boundaries() {
        // A value used in two far-apart blocks gets one reload temp per
        // using block once spilled, not a single long-lived one.
        let mut b = FunctionBuilder::new("split");
        let entry = b.entry_block();
        let mid = b.new_block();
        let last = b.new_block();
        let x = b.def(entry, "x");
        let vars: Vec<Var> = (0..4).map(|i| b.def(entry, format!("v{i}"))).collect();
        b.effect(entry, &vars);
        b.jump(entry, mid);
        b.effect(mid, &[x]);
        b.jump(mid, last);
        b.effect(last, &[x]);
        b.ret(last, &[]);
        let mut f = b.finish();
        let result = spill_belady(&mut f, 2);
        assert!(f.validate().is_ok());
        if result.spilled.contains(&x) {
            // One reload per using block.
            let x_name = f.var_name(x).unwrap().to_owned();
            let reloads_for_x = (0..f.num_vars())
                .map(Var::new)
                .filter(|v| {
                    f.var_name(*v)
                        .is_some_and(|n| n.starts_with(&format!("{x_name}_reload")))
                })
                .count();
            assert_eq!(reloads_for_x, 2);
        }
    }
}
