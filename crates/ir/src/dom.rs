//! Dominator trees and dominance frontiers.
//!
//! Implements the Cooper–Harvey–Kennedy iterative algorithm ("A Simple, Fast
//! Dominance Algorithm").  The dominance tree is the backbone of both SSA
//! construction (φ placement at dominance frontiers) and of Theorem 1: the
//! live range of an SSA variable is a subtree of the dominance tree, which
//! is why SSA interference graphs are chordal.

use crate::function::{BlockId, Function};

/// Immediate-dominator information for the blocks of a function.
#[derive(Debug, Clone)]
pub struct DominatorTree {
    /// `idom[b]` is the immediate dominator of `b`; the entry block is its
    /// own immediate dominator.  Unreachable blocks have `None`.
    idom: Vec<Option<BlockId>>,
    /// Blocks in reverse post-order (reachable blocks only).
    rpo: Vec<BlockId>,
    entry: BlockId,
}

impl DominatorTree {
    /// Computes the dominator tree of `f`.
    pub fn compute(f: &Function) -> Self {
        let rpo = f.reverse_postorder();
        let mut rpo_number = vec![usize::MAX; f.num_blocks()];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_number[b.index()] = i;
        }
        let preds = f.predecessors();
        let mut idom: Vec<Option<BlockId>> = vec![None; f.num_blocks()];
        idom[f.entry.index()] = Some(f.entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while rpo_number[a.index()] > rpo_number[b.index()] {
                    a = idom[a.index()].expect("processed block has idom");
                }
                while rpo_number[b.index()] > rpo_number[a.index()] {
                    b = idom[b.index()].expect("processed block has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if rpo_number[p.index()] == usize::MAX {
                        continue; // unreachable predecessor
                    }
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        DominatorTree {
            idom,
            rpo,
            entry: f.entry,
        }
    }

    /// Immediate dominator of `b` (`None` for the entry block and for
    /// unreachable blocks).
    pub fn immediate_dominator(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            None
        } else {
            self.idom[b.index()]
        }
    }

    /// Returns `true` if `a` dominates `b` (every block dominates itself).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.index()].is_none() {
            // b unreachable: nothing dominates it except conventionally itself.
            return a == b;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            cur = self.idom[cur.index()].expect("reachable block has idom");
        }
    }

    /// Returns `true` if `b` is reachable from the entry block.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom[b.index()].is_some()
    }

    /// Blocks in reverse post-order (reachable blocks only).
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Children lists of the dominator tree, indexed by block.
    pub fn children(&self) -> Vec<Vec<BlockId>> {
        let mut children = vec![Vec::new(); self.idom.len()];
        for (i, parent) in self.idom.iter().enumerate() {
            let b = BlockId::new(i);
            if let Some(p) = parent {
                if *p != b {
                    children[p.index()].push(b);
                }
            }
        }
        children
    }

    /// Computes the dominance frontier of every block.
    ///
    /// `DF(b)` is the set of blocks `y` such that `b` dominates a
    /// predecessor of `y` but does not strictly dominate `y`.
    pub fn dominance_frontiers(&self, f: &Function) -> Vec<Vec<BlockId>> {
        let preds = f.predecessors();
        let mut frontiers: Vec<Vec<BlockId>> = vec![Vec::new(); f.num_blocks()];
        for b in f.block_ids() {
            if !self.is_reachable(b) || preds[b.index()].len() < 2 {
                continue;
            }
            let idom_b = self.idom[b.index()].expect("reachable");
            for &p in &preds[b.index()] {
                if !self.is_reachable(p) {
                    continue;
                }
                let mut runner = p;
                while runner != idom_b {
                    if !frontiers[runner.index()].contains(&b) {
                        frontiers[runner.index()].push(b);
                    }
                    runner = self.idom[runner.index()].expect("reachable");
                }
            }
        }
        frontiers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionBuilder;

    /// entry -> {then, else} -> join, then join -> exit
    fn diamond_with_exit() -> (Function, [BlockId; 5]) {
        let mut b = FunctionBuilder::new("f");
        let entry = b.entry_block();
        let then_ = b.new_block();
        let else_ = b.new_block();
        let join = b.new_block();
        let exit = b.new_block();
        let c = b.def(entry, "c");
        b.branch(entry, c, then_, else_);
        b.jump(then_, join);
        b.jump(else_, join);
        b.jump(join, exit);
        b.ret(exit, &[]);
        (b.finish(), [entry, then_, else_, join, exit])
    }

    use crate::function::Function;

    #[test]
    fn idoms_of_diamond() {
        let (f, [entry, then_, else_, join, exit]) = diamond_with_exit();
        let dom = DominatorTree::compute(&f);
        assert_eq!(dom.immediate_dominator(entry), None);
        assert_eq!(dom.immediate_dominator(then_), Some(entry));
        assert_eq!(dom.immediate_dominator(else_), Some(entry));
        assert_eq!(dom.immediate_dominator(join), Some(entry));
        assert_eq!(dom.immediate_dominator(exit), Some(join));
    }

    #[test]
    fn dominates_is_reflexive_and_follows_tree() {
        let (f, [entry, then_, _, join, exit]) = diamond_with_exit();
        let dom = DominatorTree::compute(&f);
        assert!(dom.dominates(entry, exit));
        assert!(dom.dominates(join, exit));
        assert!(!dom.dominates(then_, join));
        assert!(dom.dominates(then_, then_));
    }

    #[test]
    fn dominance_frontiers_of_diamond() {
        let (f, [_, then_, else_, join, exit]) = diamond_with_exit();
        let dom = DominatorTree::compute(&f);
        let df = dom.dominance_frontiers(&f);
        assert_eq!(df[then_.index()], vec![join]);
        assert_eq!(df[else_.index()], vec![join]);
        assert!(df[join.index()].is_empty());
        assert!(df[exit.index()].is_empty());
    }

    #[test]
    fn loop_dominance() {
        // entry -> header; header -> body|exit; body -> header
        let mut b = FunctionBuilder::new("loop");
        let entry = b.entry_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let c = b.def(entry, "c");
        b.jump(entry, header);
        b.branch(header, c, body, exit);
        b.jump(body, header);
        b.ret(exit, &[]);
        let f = b.finish();
        let dom = DominatorTree::compute(&f);
        assert_eq!(dom.immediate_dominator(body), Some(header));
        assert_eq!(dom.immediate_dominator(exit), Some(header));
        // The loop body's dominance frontier contains the header.
        let df = dom.dominance_frontiers(&f);
        assert!(df[body.index()].contains(&header));
        assert!(df[header.index()].contains(&header));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut b = FunctionBuilder::new("unreachable");
        let entry = b.entry_block();
        let dead = b.new_block();
        b.ret(entry, &[]);
        b.ret(dead, &[]);
        let f = b.finish();
        let dom = DominatorTree::compute(&f);
        assert!(!dom.is_reachable(dead));
        assert!(dom.is_reachable(entry));
        assert_eq!(dom.immediate_dominator(dead), None);
    }

    #[test]
    fn children_lists_match_idoms() {
        let (f, [entry, then_, else_, join, exit]) = diamond_with_exit();
        let dom = DominatorTree::compute(&f);
        let children = dom.children();
        let mut entry_children = children[entry.index()].clone();
        entry_children.sort();
        assert_eq!(entry_children, vec![then_, else_, join]);
        assert_eq!(children[join.index()], vec![exit]);
    }
}
