//! Functions, basic blocks, instructions and the [`FunctionBuilder`].
//!
//! The IR is deliberately small: an instruction either defines a value from
//! some uses ([`Instr::Op`]), copies a value ([`Instr::Copy`] — the
//! register-to-register moves whose removal is the coalescing problem), or
//! is a φ-function ([`Instr::Phi`]).  Control flow lives in each block's
//! [`Terminator`].
//!
//! # Flat arena layout
//!
//! A [`Function`] stores its instructions in a single flat arena rather
//! than per-block `Vec`s of owned enums:
//!
//! * every instruction is one 16-byte record (`kind`, `dst`, and a
//!   `(start, len)` range) in one contiguous array, addressed by a u32
//!   [`InstrId`];
//! * operands live in two shared pools — a [`Var`] pool for `op` uses and
//!   copy sources, a [`PhiArg`] pool for φ-arguments — so reading an
//!   instruction's uses is a slice borrow, not a `Vec` clone;
//! * each block is a `(start, len)` range into one shared instruction
//!   *order* array, so iterating a block walks a contiguous `&[InstrId]`;
//! * variable names are optional debug info interned into one shared
//!   string buffer; creating a variable allocates nothing per variable
//!   and display falls back to the dense `%index` form.
//!
//! Reads go through the borrowed [`InstrView`]; the owned [`Instr`] enum
//! remains the construction and rewrite currency (`push_instr`,
//! `insert_instr`, `replace_instr`).  Editing a block relocates its order
//! range to the end of the order array when it grows, leaving a dead
//! segment behind; [`Function::ir_bytes`] reports the arena footprint
//! including any such garbage, which is zero on freshly built functions.

use std::fmt;

/// A variable (temporary) of a [`Function`].
///
/// Variables are dense indices; optional debug names are interned in the
/// function's name table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Var(u32);

impl Var {
    /// Creates a variable handle from a dense index.
    pub fn new(index: usize) -> Self {
        Var(u32::try_from(index).expect("variable index exceeds u32::MAX"))
    }

    /// Dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A basic block of a [`Function`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a block handle from a dense index.
    pub fn new(index: usize) -> Self {
        BlockId(u32::try_from(index).expect("block index exceeds u32::MAX"))
    }

    /// Dense index of this block.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Handle of one instruction record in a function's flat arena.
///
/// Instruction ids are stable across block edits (an edit appends new
/// records and repoints the block's order range); they are only meaningful
/// for the function that created them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct InstrId(u32);

impl InstrId {
    /// Dense index of this instruction record.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// One φ-argument: the value flowing in from one predecessor edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhiArg {
    /// The predecessor block the value arrives from.
    pub pred: BlockId,
    /// The value used at the end of `pred`.
    pub value: Var,
}

/// A non-terminator instruction (owned form).
///
/// This is the construction and rewrite currency: builders and
/// transformation passes produce `Instr` values, which the function interns
/// into its flat arena ([`Function::push_instr`] and friends).  Reads use
/// the borrowed [`InstrView`] instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `dst = op(uses)` — a generic computation; `dst` is `None` for
    /// effect-only instructions (e.g. stores).
    Op {
        /// Defined variable, if any.
        dst: Option<Var>,
        /// Used variables.
        uses: Vec<Var>,
    },
    /// `dst = src` — a register-to-register move, i.e. a coalescing
    /// candidate.
    Copy {
        /// Destination of the move.
        dst: Var,
        /// Source of the move.
        src: Var,
    },
    /// `dst = φ(block₁: v₁, block₂: v₂, ...)` — must appear at the start of
    /// its block, with exactly one argument per predecessor.
    Phi {
        /// Defined variable.
        dst: Var,
        /// One `(predecessor, value)` pair per incoming edge.
        args: Vec<(BlockId, Var)>,
    },
}

impl Instr {
    /// The variable defined by this instruction, if any.
    pub fn def(&self) -> Option<Var> {
        match self {
            Instr::Op { dst, .. } => *dst,
            Instr::Copy { dst, .. } => Some(*dst),
            Instr::Phi { dst, .. } => Some(*dst),
        }
    }

    /// The variables used by this instruction *at its own program point*.
    ///
    /// φ-functions use their arguments at the end of the corresponding
    /// predecessor, not at their own point, so [`Instr::Phi`] reports no
    /// local uses here; liveness handles φ arguments explicitly.
    pub fn local_uses(&self) -> Vec<Var> {
        match self {
            Instr::Op { uses, .. } => uses.clone(),
            Instr::Copy { src, .. } => vec![*src],
            Instr::Phi { .. } => Vec::new(),
        }
    }

    /// Returns `true` for [`Instr::Copy`].
    pub fn is_copy(&self) -> bool {
        matches!(self, Instr::Copy { .. })
    }

    /// Returns `true` for [`Instr::Phi`].
    pub fn is_phi(&self) -> bool {
        matches!(self, Instr::Phi { .. })
    }
}

/// A borrowed view of one instruction in the flat arena.
///
/// Uses and φ-arguments are slices into the function's shared operand
/// pools — no allocation per read.  [`InstrView::to_instr`] converts back
/// to the owned [`Instr`] form for rewriting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrView<'a> {
    /// `dst = op(uses)`; `dst` is `None` for effect-only instructions.
    Op {
        /// Defined variable, if any.
        dst: Option<Var>,
        /// Used variables (a pool slice).
        uses: &'a [Var],
    },
    /// `dst = src`.
    Copy {
        /// Destination of the move.
        dst: Var,
        /// Source of the move.
        src: Var,
    },
    /// `dst = φ(args)`.
    Phi {
        /// Defined variable.
        dst: Var,
        /// One argument per predecessor (a pool slice).
        args: &'a [PhiArg],
    },
}

impl<'a> InstrView<'a> {
    /// The variable defined by this instruction, if any.
    pub fn def(&self) -> Option<Var> {
        match self {
            InstrView::Op { dst, .. } => *dst,
            InstrView::Copy { dst, .. } => Some(*dst),
            InstrView::Phi { dst, .. } => Some(*dst),
        }
    }

    /// The variables used at this instruction's own program point, as a
    /// borrowed slice (φ-functions report none — their arguments are used
    /// at the predecessor ends).  For `Op` this is a pool slice; for
    /// `Copy` it borrows the single source held inline in the view.
    pub fn local_uses(&self) -> &[Var] {
        match self {
            InstrView::Op { uses, .. } => uses,
            InstrView::Copy { src, .. } => std::slice::from_ref(src),
            InstrView::Phi { .. } => &[],
        }
    }

    /// Returns `true` for [`InstrView::Copy`].
    pub fn is_copy(&self) -> bool {
        matches!(self, InstrView::Copy { .. })
    }

    /// Returns `true` for [`InstrView::Phi`].
    pub fn is_phi(&self) -> bool {
        matches!(self, InstrView::Phi { .. })
    }

    /// Converts the view back to the owned [`Instr`] form.
    pub fn to_instr(&self) -> Instr {
        match *self {
            InstrView::Op { dst, uses } => Instr::Op {
                dst,
                uses: uses.to_vec(),
            },
            InstrView::Copy { dst, src } => Instr::Copy { dst, src },
            InstrView::Phi { dst, args } => Instr::Phi {
                dst,
                args: args.iter().map(|a| (a.pred, a.value)).collect(),
            },
        }
    }
}

/// The control-flow-transferring end of a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch on `cond`.
    Branch {
        /// Branch condition (a use).
        cond: Var,
        /// Successor taken when the condition holds.
        then_block: BlockId,
        /// Successor taken otherwise.
        else_block: BlockId,
    },
    /// Function return, using `uses`.
    Return {
        /// Values used by the return.
        uses: Vec<Var>,
    },
}

impl Terminator {
    /// Successor blocks of this terminator, in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_block,
                else_block,
                ..
            } => vec![*then_block, *else_block],
            Terminator::Return { .. } => Vec::new(),
        }
    }

    /// Variables used by this terminator.
    pub fn uses(&self) -> Vec<Var> {
        match self {
            Terminator::Jump(_) => Vec::new(),
            Terminator::Branch { cond, .. } => vec![*cond],
            Terminator::Return { uses } => uses.clone(),
        }
    }

    /// Replaces a successor block (used by critical-edge splitting).
    pub fn replace_successor(&mut self, from: BlockId, to: BlockId) {
        match self {
            Terminator::Jump(b) => {
                if *b == from {
                    *b = to;
                }
            }
            Terminator::Branch {
                then_block,
                else_block,
                ..
            } => {
                if *then_block == from {
                    *then_block = to;
                }
                if *else_block == from {
                    *else_block = to;
                }
            }
            Terminator::Return { .. } => {}
        }
    }
}

/// Discriminant of one arena instruction record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InstrKind {
    Op,
    Copy,
    Phi,
}

/// Sentinel for "no destination" in the compact record.
const NO_VAR: u32 = u32::MAX;

/// One 16-byte instruction record: `start`/`len` index the value pool for
/// `Op` (uses) and `Copy` (the single source), and the φ-arg pool for
/// `Phi`.
#[derive(Debug, Clone, Copy)]
struct InstrData {
    kind: InstrKind,
    dst: u32,
    start: u32,
    len: u32,
}

/// Errors reported by [`Function::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A φ-function's predecessor list does not match the block's actual
    /// predecessors.
    PhiArgsMismatch {
        /// Block containing the offending φ.
        block: BlockId,
    },
    /// A φ-function appears after a non-φ instruction.
    PhiNotAtBlockStart {
        /// Block containing the offending φ.
        block: BlockId,
    },
    /// A terminator or instruction references an out-of-range block.
    BadBlockReference {
        /// Block containing the offending reference.
        block: BlockId,
    },
    /// An instruction references an out-of-range variable.
    BadVariable {
        /// Block containing the offending reference.
        block: BlockId,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::PhiArgsMismatch { block } => {
                write!(f, "phi arguments do not match predecessors of {block}")
            }
            ValidationError::PhiNotAtBlockStart { block } => {
                write!(f, "phi after non-phi instruction in {block}")
            }
            ValidationError::BadBlockReference { block } => {
                write!(f, "out-of-range block referenced from {block}")
            }
            ValidationError::BadVariable { block } => {
                write!(f, "out-of-range variable referenced from {block}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// A function: an entry block, basic blocks as ranges over a flat
/// instruction arena, and a variable table with optional interned names.
#[derive(Debug, Clone)]
pub struct Function {
    /// Function name (for printing only).
    pub name: String,
    /// The entry block.
    pub entry: BlockId,
    /// Flat instruction arena; records are never removed, only orphaned.
    instrs: Vec<InstrData>,
    /// Shared pool of op uses and copy sources.
    val_pool: Vec<Var>,
    /// Shared pool of φ-arguments.
    phi_pool: Vec<PhiArg>,
    /// Instruction order array; each block owns one contiguous range.
    order: Vec<InstrId>,
    /// Per-block `(start, len)` range into `order`.
    block_ranges: Vec<(u32, u32)>,
    /// Per-block terminator.
    terminators: Vec<Terminator>,
    /// Per-block loop-nesting depth (0 = not in a loop); a copy in a block
    /// gets affinity weight `10^loop_depth`.
    loop_depths: Vec<u32>,
    /// Per-variable `(start, len)` span into `name_buf`; `len == 0` means
    /// the variable is unnamed.
    name_spans: Vec<(u32, u32)>,
    /// Shared buffer all debug names are interned into.
    name_buf: String,
}

impl Function {
    fn empty(name: String) -> Self {
        Function {
            name,
            entry: BlockId::new(0),
            instrs: Vec::new(),
            val_pool: Vec::new(),
            phi_pool: Vec::new(),
            order: Vec::new(),
            block_ranges: Vec::new(),
            terminators: Vec::new(),
            loop_depths: Vec::new(),
            name_spans: Vec::new(),
            name_buf: String::new(),
        }
    }

    // -------------------------------------------------------------------
    // Shape queries.
    // -------------------------------------------------------------------

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_ranges.len()
    }

    /// Number of variables ever created.
    pub fn num_vars(&self) -> usize {
        self.name_spans.len()
    }

    /// Number of instructions in block `b`.
    pub fn num_instrs(&self, b: BlockId) -> usize {
        self.block_ranges[b.index()].1 as usize
    }

    /// Total number of live (reachable-from-a-block) instructions.
    pub fn num_instrs_total(&self) -> usize {
        self.block_ranges.iter().map(|&(_, l)| l as usize).sum()
    }

    /// The debug name of a variable, if it has one.
    pub fn var_name(&self, v: Var) -> Option<&str> {
        let (start, len) = self.name_spans[v.index()];
        if len == 0 {
            None
        } else {
            Some(&self.name_buf[start as usize..(start + len) as usize])
        }
    }

    /// Displays a variable by its debug name, falling back to the dense
    /// `%index` form when it is unnamed.
    pub fn var_display(&self, v: Var) -> impl fmt::Display + '_ {
        VarDisplay { f: self, v }
    }

    /// Creates a fresh variable.  The name is interned debug info; an empty
    /// name means "unnamed" and costs no storage.
    pub fn new_var(&mut self, name: impl AsRef<str>) -> Var {
        let v = Var::new(self.name_spans.len());
        let name = name.as_ref();
        if name.is_empty() {
            self.name_spans.push((0, 0));
        } else {
            let start = self.name_buf.len() as u32;
            self.name_buf.push_str(name);
            self.name_spans.push((start, name.len() as u32));
        }
        v
    }

    /// Creates a fresh variable whose debug name is `base`'s name with
    /// `suffix` appended — or an unnamed variable when `base` is unnamed,
    /// so rewrites of release-path (unnamed) code allocate no names.
    pub fn derive_var(&mut self, base: Var, suffix: &str) -> Var {
        let v = Var::new(self.name_spans.len());
        let (start, len) = self.name_spans[base.index()];
        if len == 0 {
            self.name_spans.push((0, 0));
        } else {
            let new_start = self.name_buf.len() as u32;
            let base_name = self.name_buf[start as usize..(start + len) as usize].to_owned();
            self.name_buf.push_str(&base_name);
            self.name_buf.push_str(suffix);
            self.name_spans.push((new_start, len + suffix.len() as u32));
        }
        v
    }

    // -------------------------------------------------------------------
    // Block-level accessors.
    // -------------------------------------------------------------------

    /// Iterates over block identifiers in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.block_ranges.len()).map(BlockId::new)
    }

    /// The terminator of a block.
    pub fn terminator(&self, b: BlockId) -> &Terminator {
        &self.terminators[b.index()]
    }

    /// Mutable access to the terminator of a block.
    pub fn terminator_mut(&mut self, b: BlockId) -> &mut Terminator {
        &mut self.terminators[b.index()]
    }

    /// Loop-nesting depth of a block.
    pub fn loop_depth(&self, b: BlockId) -> u32 {
        self.loop_depths[b.index()]
    }

    /// Sets the loop-nesting depth of a block.
    pub fn set_loop_depth(&mut self, b: BlockId, depth: u32) {
        self.loop_depths[b.index()] = depth;
    }

    /// Successors of a block.
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        self.terminator(b).successors()
    }

    /// Predecessor lists for every block, indexed by block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.num_blocks()];
        for b in self.block_ids() {
            for s in self.successors(b) {
                preds[s.index()].push(b);
            }
        }
        preds
    }

    /// Reverse post-order of the blocks reachable from the entry.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.num_blocks()];
        let mut postorder = Vec::new();
        // Iterative DFS with an explicit stack of (block, next-successor-index).
        let mut stack = vec![(self.entry, 0usize)];
        visited[self.entry.index()] = true;
        while let Some((b, i)) = stack.pop() {
            let succs = self.successors(b);
            if i < succs.len() {
                stack.push((b, i + 1));
                let s = succs[i];
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                postorder.push(b);
            }
        }
        postorder.reverse();
        postorder
    }

    // -------------------------------------------------------------------
    // Instruction reads.
    // -------------------------------------------------------------------

    /// Decodes one arena record into a borrowed view.
    fn view(&self, id: InstrId) -> InstrView<'_> {
        let d = &self.instrs[id.index()];
        let (s, l) = (d.start as usize, d.len as usize);
        match d.kind {
            InstrKind::Op => InstrView::Op {
                dst: if d.dst == NO_VAR {
                    None
                } else {
                    Some(Var(d.dst))
                },
                uses: &self.val_pool[s..s + l],
            },
            InstrKind::Copy => InstrView::Copy {
                dst: Var(d.dst),
                src: self.val_pool[s],
            },
            InstrKind::Phi => InstrView::Phi {
                dst: Var(d.dst),
                args: &self.phi_pool[s..s + l],
            },
        }
    }

    /// The handles of block `b`'s instructions, in block order.
    pub fn instr_ids(&self, b: BlockId) -> &[InstrId] {
        let (s, l) = self.block_ranges[b.index()];
        &self.order[s as usize..(s + l) as usize]
    }

    /// A view of the instruction at handle `id`.
    pub fn instr_by_id(&self, id: InstrId) -> InstrView<'_> {
        self.view(id)
    }

    /// A view of instruction `i` of block `b`.
    pub fn instr(&self, b: BlockId, i: usize) -> InstrView<'_> {
        self.view(self.instr_ids(b)[i])
    }

    /// Iterates over the instructions of block `b` as borrowed views.
    pub fn block_instrs(
        &self,
        b: BlockId,
    ) -> impl DoubleEndedIterator<Item = InstrView<'_>> + ExactSizeIterator + '_ {
        self.instr_ids(b).iter().map(move |&id| self.view(id))
    }

    /// Iterates over the φ-instructions at the head of block `b`.
    pub fn phis(&self, b: BlockId) -> impl Iterator<Item = InstrView<'_>> + '_ {
        self.block_instrs(b).take_while(|i| i.is_phi())
    }

    /// Number of φ-instructions at the head of block `b`.
    pub fn num_phis_in(&self, b: BlockId) -> usize {
        self.phis(b).count()
    }

    /// Iterates over all instructions as `(block, index-in-block, view)`.
    pub fn instructions(&self) -> impl Iterator<Item = (BlockId, usize, InstrView<'_>)> + '_ {
        self.block_ids().flat_map(move |b| {
            self.block_instrs(b)
                .enumerate()
                .map(move |(i, instr)| (b, i, instr))
        })
    }

    /// Total number of [`Instr::Copy`] instructions.
    pub fn num_copies(&self) -> usize {
        self.instructions().filter(|(_, _, i)| i.is_copy()).count()
    }

    /// Total number of φ-functions.
    pub fn num_phis(&self) -> usize {
        self.instructions().filter(|(_, _, i)| i.is_phi()).count()
    }

    /// Materialises block `b`'s instructions as owned [`Instr`] values
    /// (for read-modify-write rewrites; see [`Function::set_block_instrs`]).
    pub fn block_instrs_owned(&self, b: BlockId) -> Vec<Instr> {
        self.block_instrs(b).map(|v| v.to_instr()).collect()
    }

    /// Arena footprint of the function in bytes, computed from the flat
    /// layout (16 bytes per instruction record, 4 per pooled value
    /// operand, 8 per pooled φ-argument, 4 per order slot, 12 per block
    /// range/depth, 16 + 4·uses per terminator).  Debug names are
    /// excluded — they are optional side info.  Edits leave orphaned
    /// records behind, which this count includes by design: it is the
    /// memory the layout actually holds.
    pub fn ir_bytes(&self) -> usize {
        let terminator_bytes: usize = self
            .terminators
            .iter()
            .map(|t| match t {
                Terminator::Return { uses } => 16 + 4 * uses.len(),
                _ => 16,
            })
            .sum();
        self.instrs.len() * 16
            + self.val_pool.len() * 4
            + self.phi_pool.len() * 8
            + self.order.len() * 4
            + self.block_ranges.len() * 12
            + terminator_bytes
    }

    // -------------------------------------------------------------------
    // Raw-layout audit hooks.
    //
    // `coalesce-verify` audits the flat arena from the outside; the sliced
    // accessors above panic on corrupt ranges, so the auditor needs
    // panic-free access to the raw layout to report corruption as a
    // violation instead.
    // -------------------------------------------------------------------

    /// The raw `(start, len)` order range of block `b`.
    pub fn raw_block_range(&self, b: BlockId) -> (u32, u32) {
        self.block_ranges[b.index()]
    }

    /// The shared instruction-order array underlying every block range.
    pub fn raw_order(&self) -> &[InstrId] {
        &self.order
    }

    /// Number of records in the instruction arena, orphans included.
    pub fn raw_arena_len(&self) -> usize {
        self.instrs.len()
    }

    /// Overwrites block `b`'s raw order range with no consistency checks.
    /// Fault-injection hook for the verifier's mutation harness; nothing on
    /// the construction or rewrite path calls this.
    pub fn set_raw_block_range(&mut self, b: BlockId, start: u32, len: u32) {
        self.block_ranges[b.index()] = (start, len);
    }

    // -------------------------------------------------------------------
    // Mutation.
    // -------------------------------------------------------------------

    /// Appends a new block with the given terminator and loop depth.
    pub fn add_block(&mut self, terminator: Terminator, loop_depth: u32) -> BlockId {
        let b = BlockId::new(self.block_ranges.len());
        self.block_ranges.push((self.order.len() as u32, 0));
        self.terminators.push(terminator);
        self.loop_depths.push(loop_depth);
        b
    }

    /// Interns one owned instruction into the arena, returning its handle.
    fn alloc_instr(&mut self, instr: &Instr) -> InstrId {
        let id = InstrId(u32::try_from(self.instrs.len()).expect("instruction arena overflow"));
        let data = match instr {
            Instr::Op { dst, uses } => {
                let start = self.val_pool.len() as u32;
                self.val_pool.extend_from_slice(uses);
                InstrData {
                    kind: InstrKind::Op,
                    dst: dst.map_or(NO_VAR, |d| d.0),
                    start,
                    len: uses.len() as u32,
                }
            }
            Instr::Copy { dst, src } => {
                let start = self.val_pool.len() as u32;
                self.val_pool.push(*src);
                InstrData {
                    kind: InstrKind::Copy,
                    dst: dst.0,
                    start,
                    len: 1,
                }
            }
            Instr::Phi { dst, args } => {
                let start = self.phi_pool.len() as u32;
                self.phi_pool
                    .extend(args.iter().map(|&(pred, value)| PhiArg { pred, value }));
                InstrData {
                    kind: InstrKind::Phi,
                    dst: dst.0,
                    start,
                    len: args.len() as u32,
                }
            }
        };
        self.instrs.push(data);
        id
    }

    /// Interns an op without going through an owned `Instr` (no temporary
    /// `Vec` for the uses).
    fn alloc_op(&mut self, dst: Option<Var>, uses: &[Var]) -> InstrId {
        let id = InstrId(u32::try_from(self.instrs.len()).expect("instruction arena overflow"));
        let start = self.val_pool.len() as u32;
        self.val_pool.extend_from_slice(uses);
        self.instrs.push(InstrData {
            kind: InstrKind::Op,
            dst: dst.map_or(NO_VAR, |d| d.0),
            start,
            len: uses.len() as u32,
        });
        id
    }

    /// Appends `id` to block `b`'s order range, relocating the range to the
    /// end of the order array when it cannot grow in place.
    fn push_id(&mut self, b: BlockId, id: InstrId) {
        let (s, l) = self.block_ranges[b.index()];
        if (s + l) as usize == self.order.len() {
            self.order.push(id);
            self.block_ranges[b.index()].1 += 1;
        } else {
            let new_start = self.order.len() as u32;
            self.order.extend_from_within(s as usize..(s + l) as usize);
            self.order.push(id);
            self.block_ranges[b.index()] = (new_start, l + 1);
        }
    }

    /// Appends an instruction at the end of block `b` (no φ-hoisting).
    pub fn push_instr(&mut self, b: BlockId, instr: Instr) {
        let id = self.alloc_instr(&instr);
        self.push_id(b, id);
    }

    /// Appends `dst = op(uses)` at the end of block `b` without building an
    /// owned [`Instr`] first.
    pub fn emit_op(&mut self, b: BlockId, dst: Option<Var>, uses: &[Var]) {
        let id = self.alloc_op(dst, uses);
        self.push_id(b, id);
    }

    /// Inserts an instruction at position `pos` of block `b`.
    pub fn insert_instr(&mut self, b: BlockId, pos: usize, instr: Instr) {
        let id = self.alloc_instr(&instr);
        let (s, l) = self.block_ranges[b.index()];
        debug_assert!(pos <= l as usize, "insert position out of range");
        let new_start = self.order.len() as u32;
        self.order.extend_from_within(s as usize..s as usize + pos);
        self.order.push(id);
        self.order
            .extend_from_within(s as usize + pos..(s + l) as usize);
        self.block_ranges[b.index()] = (new_start, l + 1);
    }

    /// Replaces the instruction at position `pos` of block `b`.
    pub fn replace_instr(&mut self, b: BlockId, pos: usize, instr: Instr) {
        let id = self.alloc_instr(&instr);
        let (s, _) = self.block_ranges[b.index()];
        self.order[s as usize + pos] = id;
    }

    /// Removes every φ-instruction from block `b` in place (the order
    /// range shrinks; no relocation).  Returns the number removed.
    pub fn remove_phis(&mut self, b: BlockId) -> usize {
        let (s, l) = self.block_ranges[b.index()];
        let (s, e) = (s as usize, (s + l) as usize);
        let mut kept = s;
        for i in s..e {
            let id = self.order[i];
            if !matches!(self.instrs[id.index()].kind, InstrKind::Phi) {
                self.order[kept] = id;
                kept += 1;
            }
        }
        let removed = e - kept;
        self.block_ranges[b.index()].1 = (kept - s) as u32;
        removed
    }

    /// Replaces block `b`'s whole instruction sequence (the counterpart of
    /// [`Function::block_instrs_owned`] for read-modify-write rewrites).
    pub fn set_block_instrs(&mut self, b: BlockId, instrs: &[Instr]) {
        let ids: Vec<InstrId> = instrs.iter().map(|i| self.alloc_instr(i)).collect();
        let (s, l) = self.block_ranges[b.index()];
        if ids.len() == l as usize {
            self.order[s as usize..(s + l) as usize].copy_from_slice(&ids);
        } else {
            let new_start = self.order.len() as u32;
            self.order.extend_from_slice(&ids);
            self.block_ranges[b.index()] = (new_start, ids.len() as u32);
        }
    }

    // -------------------------------------------------------------------
    // Validation and display.
    // -------------------------------------------------------------------

    /// Structural validation: φs at block starts with arguments matching the
    /// actual predecessors, and all block/variable references in range.
    pub fn validate(&self) -> Result<(), ValidationError> {
        // Check block references first: `predecessors()` indexes by
        // successor, so it must only run on a graph whose edges are in
        // range.
        for b in self.block_ids() {
            for s in self.terminator(b).successors() {
                if s.index() >= self.num_blocks() {
                    return Err(ValidationError::BadBlockReference { block: b });
                }
            }
        }
        let preds = self.predecessors();
        for b in self.block_ids() {
            let mut seen_non_phi = false;
            for instr in self.block_instrs(b) {
                if instr.is_phi() {
                    if seen_non_phi {
                        return Err(ValidationError::PhiNotAtBlockStart { block: b });
                    }
                } else {
                    seen_non_phi = true;
                }
                for v in instr.local_uses().iter().copied().chain(instr.def()) {
                    if v.index() >= self.num_vars() {
                        return Err(ValidationError::BadVariable { block: b });
                    }
                }
                if let InstrView::Phi { args, .. } = instr {
                    let arg_preds: std::collections::BTreeSet<BlockId> =
                        args.iter().map(|a| a.pred).collect();
                    let actual: std::collections::BTreeSet<BlockId> =
                        preds[b.index()].iter().copied().collect();
                    if arg_preds != actual || args.len() != preds[b.index()].len() {
                        return Err(ValidationError::PhiArgsMismatch { block: b });
                    }
                    for a in args {
                        if a.value.index() >= self.num_vars() {
                            return Err(ValidationError::BadVariable { block: b });
                        }
                    }
                }
            }
            for v in self.terminator(b).uses() {
                if v.index() >= self.num_vars() {
                    return Err(ValidationError::BadVariable { block: b });
                }
            }
        }
        Ok(())
    }
}

struct VarDisplay<'a> {
    f: &'a Function,
    v: Var,
}

impl fmt::Display for VarDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.f.var_name(self.v) {
            Some(name) => f.write_str(name),
            None => write!(f, "%{}", self.v.0),
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "function {} (entry {}):", self.name, self.entry)?;
        for b in self.block_ids() {
            writeln!(f, "{b}:  (loop depth {})", self.loop_depth(b))?;
            for instr in self.block_instrs(b) {
                match instr {
                    InstrView::Op { dst: Some(d), uses } => {
                        write!(f, "  {} = op(", self.var_display(d))?;
                        for (i, &u) in uses.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "{}", self.var_display(u))?;
                        }
                        writeln!(f, ")")?;
                    }
                    InstrView::Op { dst: None, uses } => {
                        write!(f, "  effect(")?;
                        for (i, &u) in uses.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "{}", self.var_display(u))?;
                        }
                        writeln!(f, ")")?;
                    }
                    InstrView::Copy { dst, src } => {
                        writeln!(f, "  {} = {}", self.var_display(dst), self.var_display(src))?;
                    }
                    InstrView::Phi { dst, args } => {
                        write!(f, "  {} = phi(", self.var_display(dst))?;
                        for (i, a) in args.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "{}: {}", a.pred, self.var_display(a.value))?;
                        }
                        writeln!(f, ")")?;
                    }
                }
            }
            match self.terminator(b) {
                Terminator::Jump(t) => writeln!(f, "  jump {t}")?,
                Terminator::Branch {
                    cond,
                    then_block,
                    else_block,
                } => writeln!(
                    f,
                    "  branch {} ? {then_block} : {else_block}",
                    self.var_display(*cond)
                )?,
                Terminator::Return { uses } => {
                    write!(f, "  return")?;
                    for &u in uses {
                        write!(f, " {}", self.var_display(u))?;
                    }
                    writeln!(f)?;
                }
            }
        }
        Ok(())
    }
}

/// An incremental builder for [`Function`] values.
///
/// The builder starts with a single entry block; blocks default to an empty
/// `return` terminator until a jump/branch/return is attached.  Variable
/// names are optional debug info (pass `""` for an unnamed variable):
/// construction does zero per-variable allocations on the name path.
#[derive(Debug)]
pub struct FunctionBuilder {
    function: Function,
}

impl FunctionBuilder {
    /// Creates a builder for a function with the given name and one entry
    /// block.
    pub fn new(name: impl Into<String>) -> Self {
        let mut function = Function::empty(name.into());
        function.add_block(Terminator::Return { uses: Vec::new() }, 0);
        FunctionBuilder { function }
    }

    /// The entry block created by [`FunctionBuilder::new`].
    pub fn entry_block(&self) -> BlockId {
        self.function.entry
    }

    /// Creates a new, empty block.
    pub fn new_block(&mut self) -> BlockId {
        self.function
            .add_block(Terminator::Return { uses: Vec::new() }, 0)
    }

    /// Sets the loop-nesting depth of a block.
    pub fn set_loop_depth(&mut self, b: BlockId, depth: u32) {
        self.function.set_loop_depth(b, depth);
    }

    /// Creates a fresh variable without emitting an instruction.
    pub fn fresh_var(&mut self, name: impl AsRef<str>) -> Var {
        self.function.new_var(name)
    }

    /// Emits `v = op()` in `b` (a definition with no uses) and returns `v`.
    pub fn def(&mut self, b: BlockId, name: impl AsRef<str>) -> Var {
        let v = self.function.new_var(name);
        self.function.emit_op(b, Some(v), &[]);
        v
    }

    /// Emits `v = op(uses)` in `b` and returns `v`.
    pub fn op(&mut self, b: BlockId, name: impl AsRef<str>, uses: &[Var]) -> Var {
        let v = self.function.new_var(name);
        self.function.emit_op(b, Some(v), uses);
        v
    }

    /// Emits an effect-only instruction using `uses` (e.g. a store).
    pub fn effect(&mut self, b: BlockId, uses: &[Var]) {
        self.function.emit_op(b, None, uses);
    }

    /// Emits a copy `dst = src` where `dst` is a fresh variable; returns `dst`.
    pub fn copy(&mut self, b: BlockId, name: impl AsRef<str>, src: Var) -> Var {
        let dst = self.function.new_var(name);
        self.function.push_instr(b, Instr::Copy { dst, src });
        dst
    }

    /// Emits a copy between two existing variables.
    pub fn copy_to(&mut self, b: BlockId, dst: Var, src: Var) {
        self.function.push_instr(b, Instr::Copy { dst, src });
    }

    /// Emits `v = φ(args)` at the start of `b`'s φ-group and returns `v`.
    pub fn phi(&mut self, b: BlockId, name: impl AsRef<str>, args: &[(BlockId, Var)]) -> Var {
        let v = self.function.new_var(name);
        let pos = self.function.num_phis_in(b);
        self.function.insert_instr(
            b,
            pos,
            Instr::Phi {
                dst: v,
                args: args.to_vec(),
            },
        );
        v
    }

    /// Terminates `b` with an unconditional jump.
    pub fn jump(&mut self, b: BlockId, target: BlockId) {
        *self.function.terminator_mut(b) = Terminator::Jump(target);
    }

    /// Terminates `b` with a conditional branch on `cond`.
    pub fn branch(&mut self, b: BlockId, cond: Var, then_block: BlockId, else_block: BlockId) {
        *self.function.terminator_mut(b) = Terminator::Branch {
            cond,
            then_block,
            else_block,
        };
    }

    /// Terminates `b` with a return using `uses`.
    pub fn ret(&mut self, b: BlockId, uses: &[Var]) {
        *self.function.terminator_mut(b) = Terminator::Return {
            uses: uses.to_vec(),
        };
    }

    /// Finishes construction.
    ///
    /// # Panics
    ///
    /// Panics if the function fails [`Function::validate`]; use
    /// [`FunctionBuilder::try_finish`] to get the error instead.
    pub fn finish(self) -> Function {
        self.try_finish().expect("built function must validate")
    }

    /// Finishes construction, returning a validation error if the function
    /// is malformed.
    pub fn try_finish(self) -> Result<Function, ValidationError> {
        self.function.validate()?;
        Ok(self.function)
    }

    /// Access to the function under construction (for advanced surgery such
    /// as raw instruction appends in tests).
    pub fn function_mut(&mut self) -> &mut Function {
        &mut self.function
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("diamond");
        let entry = b.entry_block();
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        let x = b.def(entry, "x");
        let c = b.def(entry, "c");
        b.branch(entry, c, t, e);
        let y = b.op(t, "y", &[x]);
        b.jump(t, j);
        let z = b.op(e, "z", &[x]);
        b.jump(e, j);
        let w = b.phi(j, "w", &[(t, y), (e, z)]);
        b.ret(j, &[w]);
        b.finish()
    }

    #[test]
    fn builder_produces_valid_diamond() {
        let f = diamond();
        assert_eq!(f.num_blocks(), 4);
        assert_eq!(f.num_vars(), 5);
        assert_eq!(f.num_phis(), 1);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn successors_and_predecessors() {
        let f = diamond();
        assert_eq!(f.successors(BlockId::new(0)).len(), 2);
        let preds = f.predecessors();
        assert_eq!(preds[3].len(), 2);
        assert_eq!(preds[0].len(), 0);
    }

    #[test]
    fn reverse_postorder_starts_at_entry_and_ends_at_exit() {
        let f = diamond();
        let rpo = f.reverse_postorder();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], f.entry);
        assert_eq!(*rpo.last().unwrap(), BlockId::new(3));
    }

    #[test]
    fn instruction_def_and_uses() {
        let i = Instr::Copy {
            dst: Var::new(1),
            src: Var::new(0),
        };
        assert_eq!(i.def(), Some(Var::new(1)));
        assert_eq!(i.local_uses(), vec![Var::new(0)]);
        assert!(i.is_copy());
        let p = Instr::Phi {
            dst: Var::new(2),
            args: vec![(BlockId::new(0), Var::new(0))],
        };
        assert!(p.local_uses().is_empty());
        assert!(p.is_phi());
    }

    #[test]
    fn views_round_trip_through_owned_instrs() {
        let f = diamond();
        for (b, i, view) in f.instructions() {
            let owned = view.to_instr();
            assert_eq!(owned.def(), view.def());
            assert_eq!(owned.local_uses(), view.local_uses().to_vec());
            assert_eq!(owned.is_phi(), view.is_phi());
            assert_eq!(owned.is_copy(), view.is_copy());
            let again = f.instr(b, i);
            assert_eq!(again, view);
        }
    }

    #[test]
    fn phi_args_must_match_predecessors() {
        let mut b = FunctionBuilder::new("bad");
        let entry = b.entry_block();
        let next = b.new_block();
        let x = b.def(entry, "x");
        b.jump(entry, next);
        // φ mentions a block that is not a predecessor of `next`.
        let bogus = b.new_block();
        b.phi(next, "p", &[(bogus, x)]);
        b.ret(next, &[]);
        assert!(matches!(
            b.try_finish(),
            Err(ValidationError::PhiArgsMismatch { .. })
        ));
    }

    #[test]
    fn phi_after_non_phi_is_rejected() {
        let mut b = FunctionBuilder::new("bad");
        let entry = b.entry_block();
        let next = b.new_block();
        b.jump(entry, next);
        let x = b.def(next, "x");
        // Manually append a phi after the op to bypass the builder's
        // phi-hoisting.
        b.function_mut().push_instr(
            next,
            Instr::Phi {
                dst: Var::new(5),
                args: vec![(entry, x)],
            },
        );
        assert!(b.try_finish().is_err());
    }

    #[test]
    fn display_contains_variable_names() {
        let f = diamond();
        let printed = f.to_string();
        assert!(printed.contains("phi("));
        assert!(printed.contains("branch"));
        assert!(printed.contains("return"));
        assert!(printed.contains("w = phi("));
    }

    #[test]
    fn unnamed_variables_display_as_indices() {
        let mut b = FunctionBuilder::new("anon");
        let entry = b.entry_block();
        let x = b.def(entry, "");
        let y = b.op(entry, "", &[x]);
        b.ret(entry, &[y]);
        let f = b.finish();
        assert_eq!(f.var_name(x), None);
        assert!(f.to_string().contains("%1 = op(%0)"));
    }

    #[test]
    fn derive_var_keeps_unnamed_unnamed() {
        let mut b = FunctionBuilder::new("derive");
        let entry = b.entry_block();
        let named = b.def(entry, "x");
        let anon = b.def(entry, "");
        b.ret(entry, &[]);
        let mut f = b.finish();
        let d1 = f.derive_var(named, "_reload");
        let d2 = f.derive_var(anon, "_reload");
        assert_eq!(f.var_name(d1), Some("x_reload"));
        assert_eq!(f.var_name(d2), None);
    }

    #[test]
    fn copies_are_counted() {
        let mut b = FunctionBuilder::new("copies");
        let entry = b.entry_block();
        let x = b.def(entry, "x");
        let y = b.copy(entry, "y", x);
        b.copy_to(entry, x, y);
        b.ret(entry, &[y]);
        let f = b.finish();
        assert_eq!(f.num_copies(), 2);
    }

    #[test]
    fn terminator_replace_successor() {
        let mut t = Terminator::Branch {
            cond: Var::new(0),
            then_block: BlockId::new(1),
            else_block: BlockId::new(2),
        };
        t.replace_successor(BlockId::new(2), BlockId::new(5));
        assert_eq!(t.successors(), vec![BlockId::new(1), BlockId::new(5)]);
    }

    #[test]
    fn loop_depth_defaults_to_zero_and_is_settable() {
        let mut b = FunctionBuilder::new("loopy");
        let entry = b.entry_block();
        let body = b.new_block();
        b.set_loop_depth(body, 2);
        b.jump(entry, body);
        b.jump(body, body);
        let f = b.finish();
        assert_eq!(f.loop_depth(entry), 0);
        assert_eq!(f.loop_depth(body), 2);
    }

    #[test]
    fn validation_rejects_out_of_range_blocks() {
        let mut b = FunctionBuilder::new("bad");
        let entry = b.entry_block();
        b.jump(entry, BlockId::new(7));
        assert!(matches!(
            b.try_finish(),
            Err(ValidationError::BadBlockReference { .. })
        ));
    }

    #[test]
    fn insert_replace_and_remove_phis_edit_in_place() {
        let mut f = diamond();
        let j = BlockId::new(3);
        assert_eq!(f.num_instrs(j), 1);
        // Replace the φ by an equivalent one, insert a copy after it, then
        // strip the φs again.
        let phi = f.instr(j, 0).to_instr();
        f.replace_instr(j, 0, phi.clone());
        assert_eq!(f.instr(j, 0).to_instr(), phi);
        let w = phi.def().unwrap();
        f.insert_instr(
            j,
            1,
            Instr::Copy {
                dst: Var::new(0),
                src: w,
            },
        );
        assert_eq!(f.num_instrs(j), 2);
        assert!(f.instr(j, 1).is_copy());
        assert_eq!(f.remove_phis(j), 1);
        assert_eq!(f.num_instrs(j), 1);
        assert!(f.instr(j, 0).is_copy());
    }

    #[test]
    fn set_block_instrs_round_trips() {
        let mut f = diamond();
        let entry = BlockId::new(0);
        let owned = f.block_instrs_owned(entry);
        assert_eq!(owned.len(), 2);
        let mut edited = owned.clone();
        edited.push(Instr::Op {
            dst: None,
            uses: vec![Var::new(0)],
        });
        f.set_block_instrs(entry, &edited);
        assert_eq!(f.num_instrs(entry), 3);
        assert_eq!(f.block_instrs_owned(entry), edited);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn ir_bytes_reflects_the_flat_layout() {
        let f = diamond();
        // 6 instruction records, a small operand pool, 6 order slots,
        // 4 blocks: the exact formula is documented on `ir_bytes`.
        let expected = f.instrs.len() * 16
            + f.val_pool.len() * 4
            + f.phi_pool.len() * 8
            + f.order.len() * 4
            + 4 * 12
            + (16 + 16 + 16 + 16 + 4);
        assert_eq!(f.ir_bytes(), expected);
        assert!(f.ir_bytes() > 0);
    }
}
