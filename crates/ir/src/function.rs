//! Functions, basic blocks, instructions and the [`FunctionBuilder`].
//!
//! The IR is deliberately small: an instruction either defines a value from
//! some uses ([`Instr::Op`]), copies a value ([`Instr::Copy`] — the
//! register-to-register moves whose removal is the coalescing problem), or
//! is a φ-function ([`Instr::Phi`]).  Control flow lives in each block's
//! [`Terminator`].

use std::collections::BTreeSet;
use std::fmt;

/// A variable (temporary) of a [`Function`].
///
/// Variables are dense indices; their names are stored in the function.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable handle from a dense index.
    pub fn new(index: usize) -> Self {
        Var(u32::try_from(index).expect("variable index exceeds u32::MAX"))
    }

    /// Dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A basic block of a [`Function`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a block handle from a dense index.
    pub fn new(index: usize) -> Self {
        BlockId(u32::try_from(index).expect("block index exceeds u32::MAX"))
    }

    /// Dense index of this block.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A non-terminator instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `dst = op(uses)` — a generic computation; `dst` is `None` for
    /// effect-only instructions (e.g. stores).
    Op {
        /// Defined variable, if any.
        dst: Option<Var>,
        /// Used variables.
        uses: Vec<Var>,
    },
    /// `dst = src` — a register-to-register move, i.e. a coalescing
    /// candidate.
    Copy {
        /// Destination of the move.
        dst: Var,
        /// Source of the move.
        src: Var,
    },
    /// `dst = φ(block₁: v₁, block₂: v₂, ...)` — must appear at the start of
    /// its block, with exactly one argument per predecessor.
    Phi {
        /// Defined variable.
        dst: Var,
        /// One `(predecessor, value)` pair per incoming edge.
        args: Vec<(BlockId, Var)>,
    },
}

impl Instr {
    /// The variable defined by this instruction, if any.
    pub fn def(&self) -> Option<Var> {
        match self {
            Instr::Op { dst, .. } => *dst,
            Instr::Copy { dst, .. } => Some(*dst),
            Instr::Phi { dst, .. } => Some(*dst),
        }
    }

    /// The variables used by this instruction *at its own program point*.
    ///
    /// φ-functions use their arguments at the end of the corresponding
    /// predecessor, not at their own point, so [`Instr::Phi`] reports no
    /// local uses here; liveness handles φ arguments explicitly.
    pub fn local_uses(&self) -> Vec<Var> {
        match self {
            Instr::Op { uses, .. } => uses.clone(),
            Instr::Copy { src, .. } => vec![*src],
            Instr::Phi { .. } => Vec::new(),
        }
    }

    /// Returns `true` for [`Instr::Copy`].
    pub fn is_copy(&self) -> bool {
        matches!(self, Instr::Copy { .. })
    }

    /// Returns `true` for [`Instr::Phi`].
    pub fn is_phi(&self) -> bool {
        matches!(self, Instr::Phi { .. })
    }
}

/// The control-flow-transferring end of a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch on `cond`.
    Branch {
        /// Branch condition (a use).
        cond: Var,
        /// Successor taken when the condition holds.
        then_block: BlockId,
        /// Successor taken otherwise.
        else_block: BlockId,
    },
    /// Function return, using `uses`.
    Return {
        /// Values used by the return.
        uses: Vec<Var>,
    },
}

impl Terminator {
    /// Successor blocks of this terminator, in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_block,
                else_block,
                ..
            } => vec![*then_block, *else_block],
            Terminator::Return { .. } => Vec::new(),
        }
    }

    /// Variables used by this terminator.
    pub fn uses(&self) -> Vec<Var> {
        match self {
            Terminator::Jump(_) => Vec::new(),
            Terminator::Branch { cond, .. } => vec![*cond],
            Terminator::Return { uses } => uses.clone(),
        }
    }

    /// Replaces a successor block (used by critical-edge splitting).
    pub fn replace_successor(&mut self, from: BlockId, to: BlockId) {
        match self {
            Terminator::Jump(b) => {
                if *b == from {
                    *b = to;
                }
            }
            Terminator::Branch {
                then_block,
                else_block,
                ..
            } => {
                if *then_block == from {
                    *then_block = to;
                }
                if *else_block == from {
                    *else_block = to;
                }
            }
            Terminator::Return { .. } => {}
        }
    }
}

/// A basic block: a straight-line sequence of instructions ending in a
/// terminator, annotated with a loop-nesting depth used to weight
/// affinities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Instructions of the block, φ-functions first.
    pub instrs: Vec<Instr>,
    /// Terminator of the block.
    pub terminator: Terminator,
    /// Loop-nesting depth (0 = not in a loop); a copy in this block gets
    /// affinity weight `10^loop_depth`.
    pub loop_depth: u32,
}

impl Block {
    fn new() -> Self {
        Block {
            instrs: Vec::new(),
            terminator: Terminator::Return { uses: Vec::new() },
            loop_depth: 0,
        }
    }

    /// Iterates over the φ-instructions at the head of the block.
    pub fn phis(&self) -> impl Iterator<Item = &Instr> {
        self.instrs.iter().take_while(|i| i.is_phi())
    }

    /// Iterates over the non-φ instructions of the block.
    pub fn body(&self) -> impl Iterator<Item = &Instr> {
        self.instrs.iter().skip_while(|i| i.is_phi())
    }
}

/// A function: an entry block, a set of basic blocks and a variable table.
#[derive(Debug, Clone)]
pub struct Function {
    /// Function name (for printing only).
    pub name: String,
    /// Basic blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// The entry block.
    pub entry: BlockId,
    var_names: Vec<String>,
}

/// Errors reported by [`Function::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A φ-function's predecessor list does not match the block's actual
    /// predecessors.
    PhiArgsMismatch {
        /// Block containing the offending φ.
        block: BlockId,
    },
    /// A φ-function appears after a non-φ instruction.
    PhiNotAtBlockStart {
        /// Block containing the offending φ.
        block: BlockId,
    },
    /// A terminator or instruction references an out-of-range block.
    BadBlockReference {
        /// Block containing the offending reference.
        block: BlockId,
    },
    /// An instruction references an out-of-range variable.
    BadVariable {
        /// Block containing the offending reference.
        block: BlockId,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::PhiArgsMismatch { block } => {
                write!(f, "phi arguments do not match predecessors of {block}")
            }
            ValidationError::PhiNotAtBlockStart { block } => {
                write!(f, "phi after non-phi instruction in {block}")
            }
            ValidationError::BadBlockReference { block } => {
                write!(f, "out-of-range block referenced from {block}")
            }
            ValidationError::BadVariable { block } => {
                write!(f, "out-of-range variable referenced from {block}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

impl Function {
    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of variables ever created.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// The (display) name of a variable.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.index()]
    }

    /// Creates a fresh variable with the given display name.
    pub fn new_var(&mut self, name: impl Into<String>) -> Var {
        let v = Var::new(self.var_names.len());
        self.var_names.push(name.into());
        v
    }

    /// Block accessor.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Mutable block accessor.
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.index()]
    }

    /// Iterates over block identifiers in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len()).map(BlockId::new)
    }

    /// Successors of a block.
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        self.block(b).terminator.successors()
    }

    /// Predecessor lists for every block, indexed by block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in self.block_ids() {
            for s in self.successors(b) {
                preds[s.index()].push(b);
            }
        }
        preds
    }

    /// Reverse post-order of the blocks reachable from the entry.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut postorder = Vec::new();
        // Iterative DFS with an explicit stack of (block, next-successor-index).
        let mut stack = vec![(self.entry, 0usize)];
        visited[self.entry.index()] = true;
        while let Some((b, i)) = stack.pop() {
            let succs = self.successors(b);
            if i < succs.len() {
                stack.push((b, i + 1));
                let s = succs[i];
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                postorder.push(b);
            }
        }
        postorder.reverse();
        postorder
    }

    /// Iterates over all instructions as `(block, index-in-block, instr)`.
    pub fn instructions(&self) -> impl Iterator<Item = (BlockId, usize, &Instr)> {
        self.block_ids().flat_map(move |b| {
            self.block(b)
                .instrs
                .iter()
                .enumerate()
                .map(move |(i, instr)| (b, i, instr))
        })
    }

    /// Total number of [`Instr::Copy`] instructions.
    pub fn num_copies(&self) -> usize {
        self.instructions().filter(|(_, _, i)| i.is_copy()).count()
    }

    /// Total number of φ-functions.
    pub fn num_phis(&self) -> usize {
        self.instructions().filter(|(_, _, i)| i.is_phi()).count()
    }

    /// Structural validation: φs at block starts with arguments matching the
    /// actual predecessors, and all block/variable references in range.
    pub fn validate(&self) -> Result<(), ValidationError> {
        // Check block references first: `predecessors()` indexes by
        // successor, so it must only run on a graph whose edges are in
        // range.
        for b in self.block_ids() {
            for s in self.block(b).terminator.successors() {
                if s.index() >= self.blocks.len() {
                    return Err(ValidationError::BadBlockReference { block: b });
                }
            }
        }
        let preds = self.predecessors();
        for b in self.block_ids() {
            let block = self.block(b);
            let mut seen_non_phi = false;
            for instr in &block.instrs {
                if instr.is_phi() {
                    if seen_non_phi {
                        return Err(ValidationError::PhiNotAtBlockStart { block: b });
                    }
                } else {
                    seen_non_phi = true;
                }
                for v in instr.local_uses().into_iter().chain(instr.def()) {
                    if v.index() >= self.num_vars() {
                        return Err(ValidationError::BadVariable { block: b });
                    }
                }
                if let Instr::Phi { args, .. } = instr {
                    let arg_preds: BTreeSet<BlockId> = args.iter().map(|(p, _)| *p).collect();
                    let actual: BTreeSet<BlockId> = preds[b.index()].iter().copied().collect();
                    if arg_preds != actual || args.len() != preds[b.index()].len() {
                        return Err(ValidationError::PhiArgsMismatch { block: b });
                    }
                    for (_, v) in args {
                        if v.index() >= self.num_vars() {
                            return Err(ValidationError::BadVariable { block: b });
                        }
                    }
                }
            }
            for v in block.terminator.uses() {
                if v.index() >= self.num_vars() {
                    return Err(ValidationError::BadVariable { block: b });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "function {} (entry {}):", self.name, self.entry)?;
        for b in self.block_ids() {
            let block = self.block(b);
            writeln!(f, "{b}:  (loop depth {})", block.loop_depth)?;
            for instr in &block.instrs {
                match instr {
                    Instr::Op { dst: Some(d), uses } => {
                        write!(f, "  {} = op(", self.var_name(*d))?;
                        for (i, u) in uses.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "{}", self.var_name(*u))?;
                        }
                        writeln!(f, ")")?;
                    }
                    Instr::Op { dst: None, uses } => {
                        write!(f, "  effect(")?;
                        for (i, u) in uses.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "{}", self.var_name(*u))?;
                        }
                        writeln!(f, ")")?;
                    }
                    Instr::Copy { dst, src } => {
                        writeln!(f, "  {} = {}", self.var_name(*dst), self.var_name(*src))?;
                    }
                    Instr::Phi { dst, args } => {
                        write!(f, "  {} = phi(", self.var_name(*dst))?;
                        for (i, (p, v)) in args.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "{p}: {}", self.var_name(*v))?;
                        }
                        writeln!(f, ")")?;
                    }
                }
            }
            match &block.terminator {
                Terminator::Jump(t) => writeln!(f, "  jump {t}")?,
                Terminator::Branch {
                    cond,
                    then_block,
                    else_block,
                } => writeln!(
                    f,
                    "  branch {} ? {then_block} : {else_block}",
                    self.var_name(*cond)
                )?,
                Terminator::Return { uses } => {
                    write!(f, "  return")?;
                    for u in uses {
                        write!(f, " {}", self.var_name(*u))?;
                    }
                    writeln!(f)?;
                }
            }
        }
        Ok(())
    }
}

/// An incremental builder for [`Function`] values.
///
/// The builder starts with a single entry block; blocks default to an empty
/// `return` terminator until a jump/branch/return is attached.
#[derive(Debug)]
pub struct FunctionBuilder {
    function: Function,
}

impl FunctionBuilder {
    /// Creates a builder for a function with the given name and one entry
    /// block.
    pub fn new(name: impl Into<String>) -> Self {
        FunctionBuilder {
            function: Function {
                name: name.into(),
                blocks: vec![Block::new()],
                entry: BlockId::new(0),
                var_names: Vec::new(),
            },
        }
    }

    /// The entry block created by [`FunctionBuilder::new`].
    pub fn entry_block(&self) -> BlockId {
        self.function.entry
    }

    /// Creates a new, empty block.
    pub fn new_block(&mut self) -> BlockId {
        let b = BlockId::new(self.function.blocks.len());
        self.function.blocks.push(Block::new());
        b
    }

    /// Sets the loop-nesting depth of a block.
    pub fn set_loop_depth(&mut self, b: BlockId, depth: u32) {
        self.function.block_mut(b).loop_depth = depth;
    }

    /// Creates a fresh variable without emitting an instruction.
    pub fn fresh_var(&mut self, name: impl Into<String>) -> Var {
        self.function.new_var(name)
    }

    /// Emits `v = op()` in `b` (a definition with no uses) and returns `v`.
    pub fn def(&mut self, b: BlockId, name: impl Into<String>) -> Var {
        let v = self.function.new_var(name);
        self.function.block_mut(b).instrs.push(Instr::Op {
            dst: Some(v),
            uses: Vec::new(),
        });
        v
    }

    /// Emits `v = op(uses)` in `b` and returns `v`.
    pub fn op(&mut self, b: BlockId, name: impl Into<String>, uses: &[Var]) -> Var {
        let v = self.function.new_var(name);
        self.function.block_mut(b).instrs.push(Instr::Op {
            dst: Some(v),
            uses: uses.to_vec(),
        });
        v
    }

    /// Emits an effect-only instruction using `uses` (e.g. a store).
    pub fn effect(&mut self, b: BlockId, uses: &[Var]) {
        self.function.block_mut(b).instrs.push(Instr::Op {
            dst: None,
            uses: uses.to_vec(),
        });
    }

    /// Emits a copy `dst = src` where `dst` is a fresh variable; returns `dst`.
    pub fn copy(&mut self, b: BlockId, name: impl Into<String>, src: Var) -> Var {
        let dst = self.function.new_var(name);
        self.function
            .block_mut(b)
            .instrs
            .push(Instr::Copy { dst, src });
        dst
    }

    /// Emits a copy between two existing variables.
    pub fn copy_to(&mut self, b: BlockId, dst: Var, src: Var) {
        self.function
            .block_mut(b)
            .instrs
            .push(Instr::Copy { dst, src });
    }

    /// Emits `v = φ(args)` at the start of `b`'s φ-group and returns `v`.
    pub fn phi(&mut self, b: BlockId, name: impl Into<String>, args: &[(BlockId, Var)]) -> Var {
        let v = self.function.new_var(name);
        let block = self.function.block_mut(b);
        let pos = block.instrs.iter().take_while(|i| i.is_phi()).count();
        block.instrs.insert(
            pos,
            Instr::Phi {
                dst: v,
                args: args.to_vec(),
            },
        );
        v
    }

    /// Terminates `b` with an unconditional jump.
    pub fn jump(&mut self, b: BlockId, target: BlockId) {
        self.function.block_mut(b).terminator = Terminator::Jump(target);
    }

    /// Terminates `b` with a conditional branch on `cond`.
    pub fn branch(&mut self, b: BlockId, cond: Var, then_block: BlockId, else_block: BlockId) {
        self.function.block_mut(b).terminator = Terminator::Branch {
            cond,
            then_block,
            else_block,
        };
    }

    /// Terminates `b` with a return using `uses`.
    pub fn ret(&mut self, b: BlockId, uses: &[Var]) {
        self.function.block_mut(b).terminator = Terminator::Return {
            uses: uses.to_vec(),
        };
    }

    /// Finishes construction.
    ///
    /// # Panics
    ///
    /// Panics if the function fails [`Function::validate`]; use
    /// [`FunctionBuilder::try_finish`] to get the error instead.
    pub fn finish(self) -> Function {
        self.try_finish().expect("built function must validate")
    }

    /// Finishes construction, returning a validation error if the function
    /// is malformed.
    pub fn try_finish(self) -> Result<Function, ValidationError> {
        self.function.validate()?;
        Ok(self.function)
    }

    /// Access to the function under construction (for advanced surgery such
    /// as critical-edge splitting in tests).
    pub fn function_mut(&mut self) -> &mut Function {
        &mut self.function
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("diamond");
        let entry = b.entry_block();
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        let x = b.def(entry, "x");
        let c = b.def(entry, "c");
        b.branch(entry, c, t, e);
        let y = b.op(t, "y", &[x]);
        b.jump(t, j);
        let z = b.op(e, "z", &[x]);
        b.jump(e, j);
        let w = b.phi(j, "w", &[(t, y), (e, z)]);
        b.ret(j, &[w]);
        b.finish()
    }

    #[test]
    fn builder_produces_valid_diamond() {
        let f = diamond();
        assert_eq!(f.num_blocks(), 4);
        assert_eq!(f.num_vars(), 5);
        assert_eq!(f.num_phis(), 1);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn successors_and_predecessors() {
        let f = diamond();
        assert_eq!(f.successors(BlockId::new(0)).len(), 2);
        let preds = f.predecessors();
        assert_eq!(preds[3].len(), 2);
        assert_eq!(preds[0].len(), 0);
    }

    #[test]
    fn reverse_postorder_starts_at_entry_and_ends_at_exit() {
        let f = diamond();
        let rpo = f.reverse_postorder();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], f.entry);
        assert_eq!(*rpo.last().unwrap(), BlockId::new(3));
    }

    #[test]
    fn instruction_def_and_uses() {
        let i = Instr::Copy {
            dst: Var::new(1),
            src: Var::new(0),
        };
        assert_eq!(i.def(), Some(Var::new(1)));
        assert_eq!(i.local_uses(), vec![Var::new(0)]);
        assert!(i.is_copy());
        let p = Instr::Phi {
            dst: Var::new(2),
            args: vec![(BlockId::new(0), Var::new(0))],
        };
        assert!(p.local_uses().is_empty());
        assert!(p.is_phi());
    }

    #[test]
    fn phi_args_must_match_predecessors() {
        let mut b = FunctionBuilder::new("bad");
        let entry = b.entry_block();
        let next = b.new_block();
        let x = b.def(entry, "x");
        b.jump(entry, next);
        // φ mentions a block that is not a predecessor of `next`.
        let bogus = b.new_block();
        b.phi(next, "p", &[(bogus, x)]);
        b.ret(next, &[]);
        assert!(matches!(
            b.try_finish(),
            Err(ValidationError::PhiArgsMismatch { .. })
        ));
    }

    #[test]
    fn phi_after_non_phi_is_rejected() {
        let mut b = FunctionBuilder::new("bad");
        let entry = b.entry_block();
        let next = b.new_block();
        b.jump(entry, next);
        let x = b.def(next, "x");
        // Manually append a phi after the op to bypass the builder's
        // phi-hoisting.
        b.function_mut().block_mut(next).instrs.push(Instr::Phi {
            dst: Var::new(5),
            args: vec![(entry, x)],
        });
        assert!(b.try_finish().is_err());
    }

    #[test]
    fn display_contains_variable_names() {
        let f = diamond();
        let printed = f.to_string();
        assert!(printed.contains("phi("));
        assert!(printed.contains("branch"));
        assert!(printed.contains("return"));
    }

    #[test]
    fn copies_are_counted() {
        let mut b = FunctionBuilder::new("copies");
        let entry = b.entry_block();
        let x = b.def(entry, "x");
        let y = b.copy(entry, "y", x);
        b.copy_to(entry, x, y);
        b.ret(entry, &[y]);
        let f = b.finish();
        assert_eq!(f.num_copies(), 2);
    }

    #[test]
    fn terminator_replace_successor() {
        let mut t = Terminator::Branch {
            cond: Var::new(0),
            then_block: BlockId::new(1),
            else_block: BlockId::new(2),
        };
        t.replace_successor(BlockId::new(2), BlockId::new(5));
        assert_eq!(t.successors(), vec![BlockId::new(1), BlockId::new(5)]);
    }

    #[test]
    fn loop_depth_defaults_to_zero_and_is_settable() {
        let mut b = FunctionBuilder::new("loopy");
        let entry = b.entry_block();
        let body = b.new_block();
        b.set_loop_depth(body, 2);
        b.jump(entry, body);
        b.jump(body, body);
        let f = b.finish();
        assert_eq!(f.block(entry).loop_depth, 0);
        assert_eq!(f.block(body).loop_depth, 2);
    }

    #[test]
    fn validation_rejects_out_of_range_blocks() {
        let mut b = FunctionBuilder::new("bad");
        let entry = b.entry_block();
        b.jump(entry, BlockId::new(7));
        assert!(matches!(
            b.try_finish(),
            Err(ValidationError::BadBlockReference { .. })
        ));
    }
}
