//! Interference-graph and affinity construction.
//!
//! Following §2.1 of the paper, two variables *interfere* when they cannot
//! share a register.  Two definitions are supported:
//!
//! * [`InterferenceKind::Intersection`] — two variables interfere iff their
//!   live ranges intersect (the definition used for strict programs);
//! * [`InterferenceKind::Chaitin`] — Chaitin et al.'s relaxation: the
//!   source of a copy does not interfere with its destination at the copy
//!   itself (they hold the same value there), which removes exactly the
//!   edges that would make every copy impossible to coalesce.
//!
//! *Affinities* (the dotted edges of the paper's figures) are extracted
//! from copy instructions and, optionally, from φ-functions: coalescing a
//! φ-related pair removes the move that the out-of-SSA translation would
//! otherwise have to insert on the incoming edge.  Affinity weights model
//! dynamic execution counts as `10^loop_depth`.

use crate::function::{Function, InstrView, Var};
use crate::liveness::Liveness;
use coalesce_graph::{Graph, VertexId};

/// Which notion of interference to use when building the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterferenceKind {
    /// Live-range intersection (strict-program definition).
    Intersection,
    /// Chaitin's definition: copy sources do not interfere with the copy
    /// destination at the copy itself.
    #[default]
    Chaitin,
}

/// A coalescing candidate: merging `a` and `b` saves `weight` move
/// executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Affinity {
    /// First variable of the move.
    pub a: Var,
    /// Second variable of the move.
    pub b: Var,
    /// Estimated dynamic execution count of the move.
    pub weight: u64,
}

/// An interference graph with affinities, plus the variable ↔ vertex
/// correspondence (vertex `i` is variable `i`).
#[derive(Debug, Clone)]
pub struct InterferenceGraph {
    /// The interference graph; vertex `i` corresponds to [`Var::new`]`(i)`.
    pub graph: Graph,
    /// The affinities (coalescing candidates) extracted from the program.
    pub affinities: Vec<Affinity>,
}

/// Options controlling interference-graph construction.
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Interference definition to use.
    pub kind: InterferenceKind,
    /// Whether to add affinities between φ results and their arguments.
    pub phi_affinities: bool,
    /// Whether to add affinities for explicit copy instructions.
    pub copy_affinities: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            kind: InterferenceKind::Chaitin,
            phi_affinities: true,
            copy_affinities: true,
        }
    }
}

impl InterferenceGraph {
    /// Builds the interference graph of `f` with default options
    /// (Chaitin-style interference, copy and φ affinities).
    pub fn build(f: &Function, liveness: &Liveness) -> Self {
        Self::build_with(f, liveness, BuildOptions::default())
    }

    /// Builds the interference graph of `f` with explicit options.
    pub fn build_with(f: &Function, liveness: &Liveness, options: BuildOptions) -> Self {
        let mut graph = Graph::new(f.num_vars());
        let mut affinities = Vec::new();

        for b in f.block_ids() {
            let weight = 10u64.saturating_pow(f.loop_depth(b));

            // Parallel φ definitions at the block entry are simultaneously
            // live; make them pairwise interfere.
            let phi_defs: Vec<Var> = f.phis(b).filter_map(|p| p.def()).collect();
            for (i, &p) in phi_defs.iter().enumerate() {
                for &q in &phi_defs[i + 1..] {
                    add_edge(&mut graph, p, q);
                }
                // φ results also interfere with everything live into the
                // block (other than themselves).
                for v in liveness.live_in(b).iter() {
                    if v != p {
                        add_edge(&mut graph, p, v);
                    }
                }
            }

            // Stream the per-point live sets backwards through the block:
            // when the cursor stands at point `i + 1` it is exactly the set
            // live *after* instruction `i`, so the definition edges fall
            // out of one reverse walk with a single reused cursor set.
            liveness.for_each_point_rev(f, b, |point, live_after| {
                if point == 0 {
                    return;
                }
                let instr = f.instr(b, point - 1);
                if let Some(d) = instr.def() {
                    for v in live_after.iter() {
                        if v == d {
                            continue;
                        }
                        if options.kind == InterferenceKind::Chaitin {
                            if let InstrView::Copy { src, .. } = instr {
                                if v == src {
                                    continue;
                                }
                            }
                        }
                        add_edge(&mut graph, d, v);
                    }
                }
            });

            for instr in f.block_instrs(b) {
                match instr {
                    InstrView::Copy { dst, src } if options.copy_affinities && dst != src => {
                        affinities.push(Affinity {
                            a: dst,
                            b: src,
                            weight,
                        });
                    }
                    InstrView::Phi { dst, args } if options.phi_affinities => {
                        for a in args {
                            if a.value != dst {
                                let w = 10u64.saturating_pow(f.loop_depth(a.pred));
                                affinities.push(Affinity {
                                    a: dst,
                                    b: a.value,
                                    weight: w,
                                });
                            }
                        }
                    }
                    _ => {}
                }
            }
        }

        // Deduplicate affinities on the same unordered pair, summing weights.
        let mut merged: std::collections::BTreeMap<(Var, Var), u64> =
            std::collections::BTreeMap::new();
        for aff in affinities {
            let key = if aff.a <= aff.b {
                (aff.a, aff.b)
            } else {
                (aff.b, aff.a)
            };
            *merged.entry(key).or_insert(0) += aff.weight;
        }
        let affinities = merged
            .into_iter()
            .map(|((a, b), weight)| Affinity { a, b, weight })
            .collect();

        InterferenceGraph { graph, affinities }
    }

    /// The graph vertex corresponding to a variable.
    pub fn vertex(&self, v: Var) -> VertexId {
        VertexId::new(v.index())
    }

    /// The variable corresponding to a graph vertex.
    pub fn var(&self, v: VertexId) -> Var {
        Var::new(v.index())
    }

    /// Returns `true` if the two variables interfere.
    pub fn interferes(&self, a: Var, b: Var) -> bool {
        self.graph
            .has_edge(VertexId::new(a.index()), VertexId::new(b.index()))
    }

    /// Total weight of all affinities.
    pub fn total_affinity_weight(&self) -> u64 {
        self.affinities.iter().map(|a| a.weight).sum()
    }

    /// Affinities as vertex pairs with weights (for the coalescing crate).
    pub fn affinity_edges(&self) -> Vec<(VertexId, VertexId, u64)> {
        self.affinities
            .iter()
            .map(|a| {
                (
                    VertexId::new(a.a.index()),
                    VertexId::new(a.b.index()),
                    a.weight,
                )
            })
            .collect()
    }
}

fn add_edge(graph: &mut Graph, a: Var, b: Var) {
    if a != b {
        graph.add_edge(VertexId::new(a.index()), VertexId::new(b.index()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionBuilder;
    use crate::liveness::Liveness;
    use coalesce_graph::chordal;

    #[test]
    fn simultaneously_live_variables_interfere() {
        let mut b = FunctionBuilder::new("f");
        let entry = b.entry_block();
        let x = b.def(entry, "x");
        let y = b.def(entry, "y");
        let z = b.op(entry, "z", &[x, y]);
        b.ret(entry, &[z]);
        let f = b.finish();
        let live = Liveness::compute(&f);
        let ig = InterferenceGraph::build(&f, &live);
        assert!(ig.interferes(x, y));
        assert!(!ig.interferes(x, z));
        assert!(!ig.interferes(y, z));
    }

    #[test]
    fn chaitin_copy_source_does_not_interfere() {
        // x = ...; y = x; use(x, y): under Chaitin, x and y interfere only
        // because of the later simultaneous use point -- check both kinds on
        // the simpler program where x dies at the copy.
        let mut b = FunctionBuilder::new("copy");
        let entry = b.entry_block();
        let x = b.def(entry, "x");
        let y = b.copy(entry, "y", x);
        b.ret(entry, &[y]);
        let f = b.finish();
        let live = Liveness::compute(&f);
        let chaitin = InterferenceGraph::build_with(
            &f,
            &live,
            BuildOptions {
                kind: InterferenceKind::Chaitin,
                ..BuildOptions::default()
            },
        );
        assert!(!chaitin.interferes(x, y));
        assert_eq!(chaitin.affinities.len(), 1);
        assert_eq!(chaitin.affinities[0].weight, 1);
    }

    #[test]
    fn intersection_kind_keeps_copy_interference_when_source_lives_on() {
        // y = x; use(x) afterwards: x is live across y's definition.
        let mut b = FunctionBuilder::new("copy2");
        let entry = b.entry_block();
        let x = b.def(entry, "x");
        let y = b.copy(entry, "y", x);
        b.ret(entry, &[x, y]);
        let f = b.finish();
        let live = Liveness::compute(&f);
        let inter = InterferenceGraph::build_with(
            &f,
            &live,
            BuildOptions {
                kind: InterferenceKind::Intersection,
                ..BuildOptions::default()
            },
        );
        assert!(inter.interferes(x, y));
        let chaitin = InterferenceGraph::build(&f, &live);
        // Chaitin ignores the interference at the copy itself, but x is also
        // live at the return together with y; the return is a use, not a
        // def, so no edge is added there either.
        assert!(!chaitin.interferes(x, y));
    }

    #[test]
    fn phi_affinities_are_extracted() {
        let mut b = FunctionBuilder::new("diamond");
        let entry = b.entry_block();
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        let c = b.def(entry, "c");
        b.branch(entry, c, t, e);
        let y = b.def(t, "y");
        b.jump(t, j);
        let z = b.def(e, "z");
        b.jump(e, j);
        let w = b.phi(j, "w", &[(t, y), (e, z)]);
        b.ret(j, &[w]);
        let f = b.finish();
        let live = Liveness::compute(&f);
        let ig = InterferenceGraph::build(&f, &live);
        let pairs: Vec<(Var, Var)> = ig.affinities.iter().map(|a| (a.a, a.b)).collect();
        assert!(pairs.contains(&(y, w)) || pairs.contains(&(w, y)));
        assert!(pairs.contains(&(z, w)) || pairs.contains(&(w, z)));
        // y and z are never simultaneously live: no interference.
        assert!(!ig.interferes(y, z));
    }

    #[test]
    fn loop_depth_weights_affinities() {
        let mut b = FunctionBuilder::new("weighted");
        let entry = b.entry_block();
        let body = b.new_block();
        b.set_loop_depth(body, 2);
        let x = b.def(entry, "x");
        b.jump(entry, body);
        let y = b.copy(body, "y", x);
        b.effect(body, &[y]);
        b.jump(body, body);
        let f = b.finish();
        let live = Liveness::compute(&f);
        let ig = InterferenceGraph::build(&f, &live);
        assert_eq!(ig.affinities.len(), 1);
        assert_eq!(ig.affinities[0].weight, 100);
    }

    #[test]
    fn parallel_phi_results_interfere() {
        let mut b = FunctionBuilder::new("two_phis");
        let entry = b.entry_block();
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        let c = b.def(entry, "c");
        b.branch(entry, c, t, e);
        let a1 = b.def(t, "a1");
        let b1 = b.def(t, "b1");
        b.jump(t, j);
        let a2 = b.def(e, "a2");
        let b2 = b.def(e, "b2");
        b.jump(e, j);
        let pa = b.phi(j, "pa", &[(t, a1), (e, a2)]);
        let pb = b.phi(j, "pb", &[(t, b1), (e, b2)]);
        b.ret(j, &[pa, pb]);
        let f = b.finish();
        let live = Liveness::compute(&f);
        let ig = InterferenceGraph::build(&f, &live);
        assert!(ig.interferes(pa, pb));
        assert!(ig.interferes(a1, b1));
        assert!(!ig.interferes(a1, a2));
    }

    #[test]
    fn ssa_interference_graph_is_chordal_theorem_1() {
        // A slightly larger SSA program: the interference graph must be
        // chordal and its clique number must match Maxlive (Theorem 1).
        let mut b = FunctionBuilder::new("t1");
        let entry = b.entry_block();
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        let a = b.def(entry, "a");
        let bb = b.def(entry, "b");
        let c = b.op(entry, "c", &[a, bb]);
        b.branch(entry, c, t, e);
        let d = b.op(t, "d", &[a]);
        let g = b.op(t, "g", &[d, bb]);
        b.jump(t, j);
        let h = b.op(e, "h", &[bb]);
        b.jump(e, j);
        let p = b.phi(j, "p", &[(t, g), (e, h)]);
        let q = b.op(j, "q", &[p, a]);
        b.ret(j, &[q]);
        let f = b.finish();
        assert!(crate::ssa::is_strict(&f));
        let live = Liveness::compute(&f);
        let ig = InterferenceGraph::build_with(
            &f,
            &live,
            BuildOptions {
                kind: InterferenceKind::Intersection,
                ..BuildOptions::default()
            },
        );
        assert!(chordal::is_chordal(&ig.graph));
        let omega = chordal::chordal_clique_number(&ig.graph).unwrap();
        assert_eq!(omega, live.maxlive_precise(&f));
    }

    #[test]
    fn duplicate_copies_merge_their_weights() {
        let mut b = FunctionBuilder::new("dups");
        let entry = b.entry_block();
        let x = b.def(entry, "x");
        let y = b.fresh_var("y");
        b.copy_to(entry, y, x);
        b.effect(entry, &[y]);
        b.copy_to(entry, y, x);
        b.ret(entry, &[y]);
        let f = b.finish();
        let live = Liveness::compute(&f);
        let ig = InterferenceGraph::build(&f, &live);
        assert_eq!(ig.affinities.len(), 1);
        assert_eq!(ig.affinities[0].weight, 2);
    }
}
