//! A small SSA compiler intermediate representation.
//!
//! The paper studies coalescing problems on interference graphs extracted
//! from programs, in particular from programs in strict SSA form.  This
//! crate is the compiler substrate of the reproduction:
//!
//! * [`function`]: control-flow graphs of basic blocks of instructions in a
//!   flat arena layout (u32 handles, shared operand pools, blocks as order
//!   ranges), with a builder API and a textual printer;
//! * [`dom`]: dominator trees and dominance frontiers (Cooper–Harvey–Kennedy);
//! * [`ssa`]: SSA construction (φ placement at dominance frontiers and
//!   variable renaming) and strictness/SSA validation;
//! * [`liveness`]: worklist live-variable analysis over dense bitsets
//!   ([`liveness::VarSet`]), streamed per-point live cursors and `Maxlive`;
//! * [`interference`]: interference-graph and affinity construction, with
//!   both the live-range-intersection and the Chaitin definitions of
//!   interference discussed in §2.1 of the paper;
//! * [`out_of_ssa`]: φ elimination with critical-edge splitting, producing
//!   the register-to-register moves whose removal is the aggressive
//!   coalescing problem;
//! * [`spill`]: spilling passes used to lower register pressure to a
//!   target `k` before the coloring/coalescing phase (the "two-phase"
//!   allocator setting of Appel–George and Hack et al.), plus the
//!   [`spill::SpillerKind`] strategy zoo;
//! * [`belady`]: Braun–Hack-style Belady `MIN` spilling driven by next-use
//!   distances, with live-range splitting at block boundaries.
//!
//! # Example
//!
//! ```
//! use coalesce_ir::function::FunctionBuilder;
//! use coalesce_ir::{interference, liveness};
//!
//! let mut b = FunctionBuilder::new("diamond");
//! let entry = b.entry_block();
//! let (then_, else_, join) = (b.new_block(), b.new_block(), b.new_block());
//! let x = b.def(entry, "x");
//! let c = b.def(entry, "c");
//! b.branch(entry, c, then_, else_);
//! let y = b.op(then_, "y", &[x]);
//! b.jump(then_, join);
//! let z = b.op(else_, "z", &[x]);
//! b.jump(else_, join);
//! let w = b.phi(join, "w", &[(then_, y), (else_, z)]);
//! b.ret(join, &[w]);
//! let f = b.finish();
//!
//! let live = liveness::Liveness::compute(&f);
//! // x and c are both live at entry's branch point.
//! assert!(live.maxlive_precise(&f) >= 2);
//! let ig = interference::InterferenceGraph::build(&f, &live);
//! assert!(ig.graph.num_vertices() >= 5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod belady;
pub mod dom;
pub mod function;
pub mod interference;
pub mod liveness;
pub mod loops;
pub mod out_of_ssa;
pub mod spill;
pub mod splitting;
pub mod ssa;

pub use function::{BlockId, Function, FunctionBuilder, Instr, InstrId, InstrView, PhiArg, Var};
pub use interference::{Affinity, InterferenceGraph};
pub use liveness::{Liveness, VarSet};
pub use loops::LoopInfo;
