//! Live-variable analysis and `Maxlive`.
//!
//! Standard backward iterative dataflow over the CFG, with the usual SSA
//! convention for φ-functions: a φ's arguments are used at the end of the
//! corresponding predecessor blocks, and a φ's result is defined at the
//! entry of its own block.
//!
//! `Maxlive` — the maximum number of variables simultaneously live at a
//! program point — is the quantity Theorem 1 equates with the clique number
//! of an SSA interference graph, and the lower bound that the spilling
//! phase of a two-phase allocator drives below the register count `k`.

use crate::function::{BlockId, Function, Instr, Var};
use std::collections::BTreeSet;

/// Result of liveness analysis for one function.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<BTreeSet<Var>>,
    live_out: Vec<BTreeSet<Var>>,
}

impl Liveness {
    /// Runs the analysis on `f`.
    pub fn compute(f: &Function) -> Self {
        let n = f.num_blocks();
        let mut live_in: Vec<BTreeSet<Var>> = vec![BTreeSet::new(); n];
        let mut live_out: Vec<BTreeSet<Var>> = vec![BTreeSet::new(); n];
        let preds = f.predecessors();
        let _ = &preds; // predecessors not needed in the propagation below

        let mut changed = true;
        while changed {
            changed = false;
            // Iterate blocks in reverse index order; convergence does not
            // depend on order.
            for bi in (0..n).rev() {
                let b = BlockId::new(bi);
                // live-out(b) = ∪_{s ∈ succ(b)} (live-in(s) \ phidefs(s)) ∪ phiuses(s from b)
                let mut out: BTreeSet<Var> = BTreeSet::new();
                for s in f.successors(b) {
                    let sblock = f.block(s);
                    let mut from_s = live_in[s.index()].clone();
                    for phi in sblock.phis() {
                        if let Instr::Phi { dst, args } = phi {
                            from_s.remove(dst);
                            for (p, v) in args {
                                if *p == b {
                                    from_s.insert(*v);
                                }
                            }
                        }
                    }
                    out.extend(from_s);
                }
                // live-in(b) computed by walking the block backwards.
                let mut live = out.clone();
                let block = f.block(b);
                for v in block.terminator.uses() {
                    live.insert(v);
                }
                for instr in block.instrs.iter().rev() {
                    if let Some(d) = instr.def() {
                        live.remove(&d);
                    }
                    for u in instr.local_uses() {
                        live.insert(u);
                    }
                }
                if out != live_out[bi] {
                    live_out[bi] = out;
                    changed = true;
                }
                if live != live_in[bi] {
                    live_in[bi] = live;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Variables live at the entry of `b` (φ results excluded — they are
    /// defined by the φs themselves).
    pub fn live_in(&self, b: BlockId) -> &BTreeSet<Var> {
        &self.live_in[b.index()]
    }

    /// Variables live at the exit of `b`.
    pub fn live_out(&self, b: BlockId) -> &BTreeSet<Var> {
        &self.live_out[b.index()]
    }

    /// Returns the sequence of live sets at every program point of `b`,
    /// from the point *after the last instruction* backwards to the point
    /// *before the first instruction*, in forward order.
    ///
    /// Point `i` of the result is the set of variables live immediately
    /// before instruction `i`; the last entry is the live-out set (before
    /// the terminator's uses are consumed, i.e. including them).
    pub fn live_points(&self, f: &Function, b: BlockId) -> Vec<BTreeSet<Var>> {
        let block = f.block(b);
        let mut points = vec![BTreeSet::new(); block.instrs.len() + 1];
        let mut live = self.live_out[b.index()].clone();
        for v in block.terminator.uses() {
            live.insert(v);
        }
        points[block.instrs.len()] = live.clone();
        for (i, instr) in block.instrs.iter().enumerate().rev() {
            if let Some(d) = instr.def() {
                live.remove(&d);
            }
            for u in instr.local_uses() {
                live.insert(u);
            }
            points[i] = live.clone();
        }
        points
    }

    /// The register pressure (number of simultaneously live variables) at
    /// the maximal program point of the whole function.
    pub fn maxlive(&self) -> usize {
        // live_in/live_out sets never exceed per-point pressure except at
        // definition points; recompute precisely from the stored sets.
        self.live_in
            .iter()
            .chain(self.live_out.iter())
            .map(BTreeSet::len)
            .max()
            .unwrap_or(0)
    }

    /// The precise `Maxlive` over every program point of `f`, including
    /// points between instructions inside blocks (where a freshly defined
    /// variable and the still-live variables overlap).
    pub fn maxlive_precise(&self, f: &Function) -> usize {
        let mut max = 0;
        for b in f.block_ids() {
            let block = f.block(b);
            // Pressure right after each instruction: live set before the
            // *next* point plus the defined variable if it is live there.
            let points = self.live_points(f, b);
            for p in &points {
                max = max.max(p.len());
            }
            // A defined value occupies a register at its definition point
            // even when it is never used afterwards (a dead definition), so
            // count it there; this keeps Maxlive equal to the clique number
            // of the SSA interference graph (Theorem 1) in the presence of
            // dead code.
            for (i, instr) in block.instrs.iter().enumerate() {
                if instr.is_phi() {
                    continue;
                }
                if let Some(d) = instr.def() {
                    let after = &points[i + 1];
                    let pressure = after.len() + usize::from(!after.contains(&d));
                    max = max.max(pressure);
                }
            }
            // Also count φ results together with live-in (they are all live
            // simultaneously at the block entry in the SSA semantics).
            let phi_defs = block.phis().filter_map(Instr::def).count();
            if phi_defs > 0 {
                max = max.max(self.live_in[b.index()].len() + phi_defs);
            }
        }
        max
    }

    /// Returns `true` if variable `v` is live at the entry of block `b`.
    pub fn is_live_in(&self, b: BlockId, v: Var) -> bool {
        self.live_in[b.index()].contains(&v)
    }

    /// Returns `true` if variable `v` is live at the exit of block `b`.
    pub fn is_live_out(&self, b: BlockId, v: Var) -> bool {
        self.live_out[b.index()].contains(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionBuilder;

    #[test]
    fn straight_line_liveness() {
        let mut b = FunctionBuilder::new("straight");
        let entry = b.entry_block();
        let x = b.def(entry, "x");
        let y = b.def(entry, "y");
        let z = b.op(entry, "z", &[x, y]);
        b.ret(entry, &[z]);
        let f = b.finish();
        let live = Liveness::compute(&f);
        assert!(live.live_in(entry).is_empty());
        assert!(live.live_out(entry).is_empty());
        // x and y are both live just before z's definition.
        let points = live.live_points(&f, entry);
        assert_eq!(points[2], [x, y].into_iter().collect());
        assert_eq!(live.maxlive_precise(&f), 2);
    }

    #[test]
    fn value_live_across_branch() {
        let mut b = FunctionBuilder::new("diamond");
        let entry = b.entry_block();
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        let x = b.def(entry, "x");
        let c = b.def(entry, "c");
        b.branch(entry, c, t, e);
        let y = b.op(t, "y", &[x]);
        b.jump(t, j);
        let z = b.op(e, "z", &[x]);
        b.jump(e, j);
        let w = b.phi(j, "w", &[(t, y), (e, z)]);
        b.ret(j, &[w]);
        let f = b.finish();
        let live = Liveness::compute(&f);
        assert!(live.is_live_out(entry, x));
        assert!(live.is_live_in(t, x));
        assert!(live.is_live_in(e, x));
        // y is live out of `t` (φ use), but not live into `j` (φ handles it).
        assert!(live.is_live_out(t, y));
        assert!(!live.is_live_in(j, y));
        assert!(!live.is_live_in(j, w));
    }

    #[test]
    fn loop_carried_value_is_live_around_the_loop() {
        let mut b = FunctionBuilder::new("loop");
        let entry = b.entry_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let c = b.def(entry, "c");
        let i0 = b.def(entry, "i0");
        b.jump(entry, header);
        let i1 = b.fresh_var("i1");
        let iphi = b.phi(header, "iphi", &[(entry, i0), (body, i1)]);
        b.branch(header, c, body, exit);
        b.function_mut().block_mut(body).instrs.push(Instr::Op {
            dst: Some(i1),
            uses: vec![iphi],
        });
        b.jump(body, header);
        b.ret(exit, &[iphi]);
        let f = b.finish();
        let live = Liveness::compute(&f);
        // The branch condition is live around the whole loop.
        assert!(live.is_live_in(header, c));
        assert!(live.is_live_out(body, c));
        // The φ result is live through the body and out of the loop.
        assert!(live.is_live_in(body, iphi));
        assert!(live.is_live_in(exit, iphi));
        assert!(live.is_live_out(body, i1));
        assert!(live.maxlive() >= 2);
    }

    #[test]
    fn dead_definition_is_not_live_anywhere() {
        let mut b = FunctionBuilder::new("dead");
        let entry = b.entry_block();
        let next = b.new_block();
        let x = b.def(entry, "x");
        let d = b.def(entry, "dead");
        b.jump(entry, next);
        b.ret(next, &[x]);
        let f = b.finish();
        let live = Liveness::compute(&f);
        assert!(live.is_live_out(entry, x));
        assert!(!live.is_live_out(entry, d));
        assert!(!live.is_live_in(next, d));
    }

    #[test]
    fn maxlive_counts_simultaneously_live_phis() {
        // Two φs at the join: both results live simultaneously.
        let mut b = FunctionBuilder::new("two_phis");
        let entry = b.entry_block();
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        let c = b.def(entry, "c");
        b.branch(entry, c, t, e);
        let a1 = b.def(t, "a1");
        let b1 = b.def(t, "b1");
        b.jump(t, j);
        let a2 = b.def(e, "a2");
        let b2 = b.def(e, "b2");
        b.jump(e, j);
        let pa = b.phi(j, "pa", &[(t, a1), (e, a2)]);
        let pb = b.phi(j, "pb", &[(t, b1), (e, b2)]);
        b.ret(j, &[pa, pb]);
        let f = b.finish();
        let live = Liveness::compute(&f);
        assert!(live.maxlive_precise(&f) >= 2);
    }
}
