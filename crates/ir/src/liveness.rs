//! Live-variable analysis and `Maxlive`.
//!
//! Standard backward dataflow over the CFG, with the usual SSA convention
//! for φ-functions: a φ's arguments are used at the end of the
//! corresponding predecessor blocks, and a φ's result is defined at the
//! entry of its own block.
//!
//! `Maxlive` — the maximum number of variables simultaneously live at a
//! program point — is the quantity Theorem 1 equates with the clique number
//! of an SSA interference graph, and the lower bound that the spilling
//! phase of a two-phase allocator drives below the register count `k`.
//!
//! # Representation
//!
//! Live sets are dense bitsets over variable indices ([`VarSet`]): the
//! solver is a worklist iteration whose transfer functions are word-wide
//! OR/AND-NOT operations, [`Liveness::live_in`]/[`Liveness::live_out`]
//! return borrowed set views, and the per-point queries
//! ([`Liveness::for_each_point_rev`]) stream one reusable cursor set
//! backwards through a block instead of materialising a cloned set per
//! program point.  The transfer functions read the flat IR directly:
//! walking a block is an iteration over its contiguous order slice, and an
//! instruction's uses are borrowed pool slices
//! ([`InstrView::local_uses`](crate::function::InstrView::local_uses)) —
//! no per-instruction `Vec` clone anywhere in the fixpoint.  The spiller
//! patches the solution in place after each rewrite
//! ([`Liveness::apply_spill_rewrite`]) rather than re-running the
//! fixpoint.

use crate::function::{BlockId, Function, InstrView, Var};
use std::collections::VecDeque;

const WORD_BITS: usize = 64;

/// A dense bitset over [`Var`] indices.
///
/// The workhorse of the liveness representation: membership is one
/// shift/mask, unions are word-wide ORs, and iteration walks set bits in
/// ascending variable order.  The set grows automatically when a variable
/// beyond the current capacity is inserted (spilling introduces fresh
/// reload temporaries after the initial analysis).
#[derive(Debug, Clone, Default)]
pub struct VarSet {
    words: Vec<u64>,
    len: usize,
}

impl VarSet {
    /// Creates an empty set with room for `capacity` variables.
    pub fn new(capacity: usize) -> Self {
        VarSet {
            words: vec![0; capacity.div_ceil(WORD_BITS)],
            len: 0,
        }
    }

    /// Number of variables in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every variable.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Returns `true` if `v` is in the set.
    pub fn contains(&self, v: Var) -> bool {
        let (w, b) = (v.index() / WORD_BITS, v.index() % WORD_BITS);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Inserts `v`; returns `true` if it was new.  Grows the capacity if
    /// `v` lies beyond it.
    pub fn insert(&mut self, v: Var) -> bool {
        let (w, b) = (v.index() / WORD_BITS, v.index() % WORD_BITS);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let inserted = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        self.len += usize::from(inserted);
        inserted
    }

    /// Removes `v`; returns `true` if it was present.
    pub fn remove(&mut self, v: Var) -> bool {
        let (w, b) = (v.index() / WORD_BITS, v.index() % WORD_BITS);
        let Some(word) = self.words.get_mut(w) else {
            return false;
        };
        let removed = *word & (1 << b) != 0;
        *word &= !(1 << b);
        self.len -= usize::from(removed);
        removed
    }

    /// Makes `self` a copy of `other` (reusing the allocation).
    pub fn copy_from(&mut self, other: &VarSet) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
        self.len = other.len;
    }

    /// Unions `other` into `self`; returns `true` if `self` grew.
    pub fn union_with(&mut self, other: &VarSet) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        let mut len = 0usize;
        for (dst, &src) in self.words.iter_mut().zip(&other.words) {
            let merged = *dst | src;
            changed |= merged != *dst;
            *dst = merged;
            len += merged.count_ones() as usize;
        }
        for &word in &self.words[other.words.len()..] {
            len += word.count_ones() as usize;
        }
        self.len = len;
        changed
    }

    /// Iterates over the members in ascending variable order.
    pub fn iter(&self) -> impl Iterator<Item = Var> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(Var::new(w * WORD_BITS + b))
            })
        })
    }
}

impl PartialEq for VarSet {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        let (short, long) = if self.words.len() <= other.words.len() {
            (&self.words, &other.words)
        } else {
            (&other.words, &self.words)
        };
        short.iter().zip(long.iter()).all(|(&a, &b)| a == b)
            && long[short.len()..].iter().all(|&w| w == 0)
    }
}

impl Eq for VarSet {}

impl FromIterator<Var> for VarSet {
    fn from_iter<I: IntoIterator<Item = Var>>(iter: I) -> Self {
        let mut set = VarSet::default();
        for v in iter {
            set.insert(v);
        }
        set
    }
}

/// Result of liveness analysis for one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Liveness {
    live_in: Vec<VarSet>,
    live_out: Vec<VarSet>,
}

impl Liveness {
    /// Runs the analysis on `f`: a worklist fixpoint over bitset transfer
    /// functions, seeded with every block in reverse index order (a good
    /// approximation of postorder for the structured CFGs the generators
    /// emit, so most blocks converge in one visit).
    pub fn compute(f: &Function) -> Self {
        let _span = coalesce_stats::span!("ir/liveness");
        let n = f.num_blocks();
        let mut live = Liveness {
            live_in: vec![VarSet::new(f.num_vars()); n],
            live_out: vec![VarSet::new(f.num_vars()); n],
        };
        let preds = f.predecessors();
        live.solve(f, &preds, (0..n).rev().map(BlockId::new));
        live
    }

    /// Worklist solver: (re)processes the seed blocks and propagates every
    /// `live_in` change to the block's predecessors until the fixpoint.
    fn solve(
        &mut self,
        f: &Function,
        preds: &[Vec<BlockId>],
        seeds: impl Iterator<Item = BlockId>,
    ) {
        let n = f.num_blocks();
        let mut queued = vec![false; n];
        let mut queue: VecDeque<BlockId> = VecDeque::new();
        for b in seeds {
            if !queued[b.index()] {
                queued[b.index()] = true;
                queue.push_back(b);
            }
        }
        // Scratch sets reused across iterations: `out` accumulates the
        // block's live-out, `flow` stages each successor's contribution.
        let mut out = VarSet::new(f.num_vars());
        let mut flow = VarSet::new(f.num_vars());
        // Local tally, reported once after the fixpoint: the worklist loop
        // is the hottest path in the analysis.
        let mut iterations: u64 = 0;
        while let Some(b) = queue.pop_front() {
            iterations += 1;
            queued[b.index()] = false;
            // live-out(b) = ∪_{s ∈ succ(b)} (live-in(s) \ phidefs(s)) ∪ phiuses(s from b)
            out.clear();
            for s in f.successors(b) {
                flow.copy_from(&self.live_in[s.index()]);
                for phi in f.phis(s) {
                    if let InstrView::Phi { dst, args } = phi {
                        flow.remove(dst);
                        for a in args {
                            if a.pred == b {
                                flow.insert(a.value);
                            }
                        }
                    }
                }
                out.union_with(&flow);
            }
            // live-in(b) computed by walking the block backwards.
            flow.copy_from(&out);
            for v in f.terminator(b).uses() {
                flow.insert(v);
            }
            for instr in f.block_instrs(b).rev() {
                if let Some(d) = instr.def() {
                    flow.remove(d);
                }
                for &u in instr.local_uses() {
                    flow.insert(u);
                }
            }
            if out != self.live_out[b.index()] {
                std::mem::swap(&mut self.live_out[b.index()], &mut out);
            }
            if flow != self.live_in[b.index()] {
                std::mem::swap(&mut self.live_in[b.index()], &mut flow);
                for &p in &preds[b.index()] {
                    if !queued[p.index()] {
                        queued[p.index()] = true;
                        queue.push_back(p);
                    }
                }
            }
        }
        coalesce_stats::counter!("liveness.worklist_iterations", iterations);
    }

    /// Variables live at the entry of `b` (φ results excluded — they are
    /// defined by the φs themselves).
    pub fn live_in(&self, b: BlockId) -> &VarSet {
        &self.live_in[b.index()]
    }

    /// Variables live at the exit of `b`.
    pub fn live_out(&self, b: BlockId) -> &VarSet {
        &self.live_out[b.index()]
    }

    /// Streams the live sets of every program point of `b` to `visit`, in
    /// **reverse** order: the visit starts at point `n = |instrs|` (the
    /// live-out set including the terminator's uses) and steps backwards to
    /// point `0` (the set live immediately before the first instruction).
    /// One cursor set is reused for the whole walk — no per-point
    /// allocation; the callback must not retain the reference.
    ///
    /// Point `i` is the set of variables live immediately before
    /// instruction `i`, exactly the rows [`Liveness::live_points`]
    /// materialises.
    pub fn for_each_point_rev(
        &self,
        f: &Function,
        b: BlockId,
        mut visit: impl FnMut(usize, &VarSet),
    ) {
        let mut live = self.live_out[b.index()].clone();
        for v in f.terminator(b).uses() {
            live.insert(v);
        }
        visit(f.num_instrs(b), &live);
        for (i, instr) in f.block_instrs(b).enumerate().rev() {
            if let Some(d) = instr.def() {
                live.remove(d);
            }
            for &u in instr.local_uses() {
                live.insert(u);
            }
            visit(i, &live);
        }
    }

    /// Returns the sequence of live sets at every program point of `b`,
    /// materialised in forward order: point `i` is the set of variables
    /// live immediately before instruction `i`; the last entry is the
    /// live-out set including the terminator's uses.
    ///
    /// Allocates one [`VarSet`] per point — hot paths stream through
    /// [`Liveness::for_each_point_rev`] instead.
    pub fn live_points(&self, f: &Function, b: BlockId) -> Vec<VarSet> {
        let mut points = vec![VarSet::default(); f.num_instrs(b) + 1];
        self.for_each_point_rev(f, b, |i, live| points[i] = live.clone());
        points
    }

    /// The register pressure (number of simultaneously live variables) at
    /// the maximal program point of the whole function.
    pub fn maxlive(&self) -> usize {
        self.live_in
            .iter()
            .chain(self.live_out.iter())
            .map(VarSet::len)
            .max()
            .unwrap_or(0)
    }

    /// The precise `Maxlive` over every program point of `f`, including
    /// points between instructions inside blocks (where a freshly defined
    /// variable and the still-live variables overlap).
    ///
    /// A single counting pass per block over the streamed point cursor —
    /// no per-point set is materialised.
    pub fn maxlive_precise(&self, f: &Function) -> usize {
        let mut max = 0;
        for b in f.block_ids() {
            // Walk the points backwards; when the cursor stands at point
            // `i + 1` the pressure of instruction `i`'s definition point is
            // known (a defined value occupies a register at its definition
            // even when dead, which keeps Maxlive equal to the clique
            // number of the SSA interference graph — Theorem 1 — in the
            // presence of dead code).
            self.for_each_point_rev(f, b, |i, live| {
                max = max.max(live.len());
                if i > 0 {
                    let instr = f.instr(b, i - 1);
                    if !instr.is_phi() {
                        if let Some(d) = instr.def() {
                            max = max.max(live.len() + usize::from(!live.contains(d)));
                        }
                    }
                }
            });
            // Also count φ results together with live-in (they are all live
            // simultaneously at the block entry in the SSA semantics).
            let phi_defs = f.phis(b).filter_map(|p| p.def()).count();
            if phi_defs > 0 {
                max = max.max(self.live_in[b.index()].len() + phi_defs);
            }
        }
        max
    }

    /// Returns `true` if variable `v` is live at the entry of block `b`.
    pub fn is_live_in(&self, b: BlockId, v: Var) -> bool {
        self.live_in[b.index()].contains(v)
    }

    /// Returns `true` if variable `v` is live at the exit of block `b`.
    pub fn is_live_out(&self, b: BlockId, v: Var) -> bool {
        self.live_out[b.index()].contains(v)
    }

    /// Patches the solution in place after a spill-everywhere rewrite of
    /// `victim` ([`crate::spill::spill_everywhere`]), instead of re-running
    /// the whole fixpoint.  The patch is **exact**:
    ///
    /// * every use of `victim` was replaced by a fresh reload temporary, so
    ///   `victim` is live at no block boundary any more — its bit is
    ///   cleared everywhere;
    /// * ordinary and terminator reload temporaries live entirely inside
    ///   one block, so no boundary set changes for them;
    /// * a φ-argument reload is defined at the end of its predecessor and
    ///   consumed by the φ, so it joins exactly that predecessor's
    ///   live-out set (`phi_pred_reloads`, as reported by the rewrite);
    /// * every other variable keeps its block-level transfer function, so
    ///   its liveness is untouched.
    ///
    /// The incremental-vs-recompute equivalence is pinned by the
    /// `cfg_workloads` property tests.
    pub fn apply_spill_rewrite(&mut self, victim: Var, phi_pred_reloads: &[(BlockId, Var)]) {
        for set in self.live_in.iter_mut().chain(self.live_out.iter_mut()) {
            set.remove(victim);
        }
        for &(pred, reload) in phi_pred_reloads {
            self.live_out[pred.index()].insert(reload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{FunctionBuilder, Instr};

    fn members(set: &VarSet) -> Vec<Var> {
        set.iter().collect()
    }

    #[test]
    fn varset_insert_remove_iter() {
        let mut s = VarSet::new(4);
        assert!(s.insert(Var::new(3)));
        assert!(s.insert(Var::new(100))); // auto-grow
        assert!(!s.insert(Var::new(3)));
        assert_eq!(s.len(), 2);
        assert_eq!(members(&s), vec![Var::new(3), Var::new(100)]);
        assert!(s.remove(Var::new(3)));
        assert!(!s.remove(Var::new(3)));
        assert!(!s.remove(Var::new(500))); // out of range
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn varset_equality_ignores_capacity() {
        let mut a = VarSet::new(1);
        let mut b = VarSet::new(1000);
        a.insert(Var::new(0));
        b.insert(Var::new(0));
        assert_eq!(a, b);
        b.insert(Var::new(999));
        assert_ne!(a, b);
    }

    #[test]
    fn varset_union_reports_changes() {
        let mut a: VarSet = [Var::new(1)].into_iter().collect();
        let b: VarSet = [Var::new(1), Var::new(70)].into_iter().collect();
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn straight_line_liveness() {
        let mut b = FunctionBuilder::new("straight");
        let entry = b.entry_block();
        let x = b.def(entry, "x");
        let y = b.def(entry, "y");
        let z = b.op(entry, "z", &[x, y]);
        b.ret(entry, &[z]);
        let f = b.finish();
        let live = Liveness::compute(&f);
        assert!(live.live_in(entry).is_empty());
        assert!(live.live_out(entry).is_empty());
        // x and y are both live just before z's definition.
        let points = live.live_points(&f, entry);
        assert_eq!(members(&points[2]), vec![x, y]);
        assert_eq!(live.maxlive_precise(&f), 2);
    }

    #[test]
    fn streamed_points_match_the_materialised_ones() {
        let mut b = FunctionBuilder::new("stream");
        let entry = b.entry_block();
        let x = b.def(entry, "x");
        let y = b.op(entry, "y", &[x]);
        let z = b.op(entry, "z", &[x, y]);
        b.ret(entry, &[z]);
        let f = b.finish();
        let live = Liveness::compute(&f);
        let points = live.live_points(&f, entry);
        let mut seen = vec![false; points.len()];
        live.for_each_point_rev(&f, entry, |i, set| {
            assert_eq!(*set, points[i], "point {i}");
            seen[i] = true;
        });
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn value_live_across_branch() {
        let mut b = FunctionBuilder::new("diamond");
        let entry = b.entry_block();
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        let x = b.def(entry, "x");
        let c = b.def(entry, "c");
        b.branch(entry, c, t, e);
        let y = b.op(t, "y", &[x]);
        b.jump(t, j);
        let z = b.op(e, "z", &[x]);
        b.jump(e, j);
        let w = b.phi(j, "w", &[(t, y), (e, z)]);
        b.ret(j, &[w]);
        let f = b.finish();
        let live = Liveness::compute(&f);
        assert!(live.is_live_out(entry, x));
        assert!(live.is_live_in(t, x));
        assert!(live.is_live_in(e, x));
        // y is live out of `t` (φ use), but not live into `j` (φ handles it).
        assert!(live.is_live_out(t, y));
        assert!(!live.is_live_in(j, y));
        assert!(!live.is_live_in(j, w));
    }

    #[test]
    fn loop_carried_value_is_live_around_the_loop() {
        let mut b = FunctionBuilder::new("loop");
        let entry = b.entry_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let c = b.def(entry, "c");
        let i0 = b.def(entry, "i0");
        b.jump(entry, header);
        let i1 = b.fresh_var("i1");
        let iphi = b.phi(header, "iphi", &[(entry, i0), (body, i1)]);
        b.branch(header, c, body, exit);
        b.function_mut().push_instr(
            body,
            Instr::Op {
                dst: Some(i1),
                uses: vec![iphi],
            },
        );
        b.jump(body, header);
        b.ret(exit, &[iphi]);
        let f = b.finish();
        let live = Liveness::compute(&f);
        // The branch condition is live around the whole loop.
        assert!(live.is_live_in(header, c));
        assert!(live.is_live_out(body, c));
        // The φ result is live through the body and out of the loop.
        assert!(live.is_live_in(body, iphi));
        assert!(live.is_live_in(exit, iphi));
        assert!(live.is_live_out(body, i1));
        assert!(live.maxlive() >= 2);
    }

    #[test]
    fn dead_definition_is_not_live_anywhere() {
        let mut b = FunctionBuilder::new("dead");
        let entry = b.entry_block();
        let next = b.new_block();
        let x = b.def(entry, "x");
        let d = b.def(entry, "dead");
        b.jump(entry, next);
        b.ret(next, &[x]);
        let f = b.finish();
        let live = Liveness::compute(&f);
        assert!(live.is_live_out(entry, x));
        assert!(!live.is_live_out(entry, d));
        assert!(!live.is_live_in(next, d));
    }

    #[test]
    fn maxlive_counts_simultaneously_live_phis() {
        // Two φs at the join: both results live simultaneously.
        let mut b = FunctionBuilder::new("two_phis");
        let entry = b.entry_block();
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        let c = b.def(entry, "c");
        b.branch(entry, c, t, e);
        let a1 = b.def(t, "a1");
        let b1 = b.def(t, "b1");
        b.jump(t, j);
        let a2 = b.def(e, "a2");
        let b2 = b.def(e, "b2");
        b.jump(e, j);
        let pa = b.phi(j, "pa", &[(t, a1), (e, a2)]);
        let pb = b.phi(j, "pb", &[(t, b1), (e, b2)]);
        b.ret(j, &[pa, pb]);
        let f = b.finish();
        let live = Liveness::compute(&f);
        assert!(live.maxlive_precise(&f) >= 2);
    }
}
