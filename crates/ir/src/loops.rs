//! Natural-loop detection and loop-nesting depths.
//!
//! Affinity weights in the paper's setting represent "dynamic execution
//! count of the copy instruction" (§2.1); the standard static estimate is
//! `10^depth` where `depth` is the loop-nesting depth of the block holding
//! the copy.  The [`FunctionBuilder`](crate::function::FunctionBuilder)
//! lets callers set depths by hand; this module computes them from the CFG
//! itself so that generated and hand-written programs get consistent
//! weights:
//!
//! * a **back edge** is an edge `t → h` where `h` dominates `t`;
//! * the **natural loop** of a back edge is `h` plus every block that can
//!   reach `t` without passing through `h`;
//! * the **nesting depth** of a block is the number of natural loops that
//!   contain it (loops with the same header are merged, following the usual
//!   convention).

use crate::dom::DominatorTree;
use crate::function::{BlockId, Function};
use std::collections::BTreeSet;

/// One natural loop: its header and its body (which includes the header).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (the target of the back edge(s)).
    pub header: BlockId,
    /// All blocks of the loop, including the header.
    pub body: BTreeSet<BlockId>,
    /// The sources of the back edges that define this loop (the "latches").
    pub latches: Vec<BlockId>,
}

impl NaturalLoop {
    /// Number of blocks in the loop.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// `true` if the loop body is empty (never the case for a detected
    /// loop, provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// `true` if `b` belongs to the loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }
}

/// The loop forest of a function.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// Detected natural loops, one per header (back edges sharing a header
    /// are merged into a single loop).
    pub loops: Vec<NaturalLoop>,
    /// `depth[b.index()]` is the loop-nesting depth of block `b`.
    pub depth: Vec<u32>,
}

impl LoopInfo {
    /// Computes the natural loops and nesting depths of `f`.
    pub fn compute(f: &Function) -> Self {
        let dom = DominatorTree::compute(f);
        Self::compute_with(f, &dom)
    }

    /// Like [`LoopInfo::compute`] but reuses an already computed dominator
    /// tree.
    pub fn compute_with(f: &Function, dom: &DominatorTree) -> Self {
        // 1. Find back edges t -> h with h dominating t, grouped by header.
        let mut latches_by_header: Vec<Vec<BlockId>> = vec![Vec::new(); f.num_blocks()];
        for t in f.block_ids() {
            if !dom.is_reachable(t) {
                continue;
            }
            for h in f.successors(t) {
                if dom.dominates(h, t) {
                    latches_by_header[h.index()].push(t);
                }
            }
        }

        // 2. For every header, gather the merged natural loop by walking
        //    predecessors backwards from each latch, stopping at the header.
        let preds = f.predecessors();
        let mut loops = Vec::new();
        for h in f.block_ids() {
            let latches = latches_by_header[h.index()].clone();
            if latches.is_empty() {
                continue;
            }
            let mut body: BTreeSet<BlockId> = BTreeSet::new();
            body.insert(h);
            let mut stack: Vec<BlockId> = Vec::new();
            for &t in &latches {
                if body.insert(t) {
                    stack.push(t);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in &preds[b.index()] {
                    if dom.is_reachable(p) && body.insert(p) {
                        stack.push(p);
                    }
                }
            }
            loops.push(NaturalLoop {
                header: h,
                body,
                latches,
            });
        }

        // 3. Depth = number of loops containing the block.
        let mut depth = vec![0u32; f.num_blocks()];
        for l in &loops {
            for &b in &l.body {
                depth[b.index()] += 1;
            }
        }
        LoopInfo { loops, depth }
    }

    /// Loop-nesting depth of `b`.
    pub fn depth_of(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }

    /// The innermost loop containing `b`, if any (the smallest loop body).
    pub fn innermost_loop(&self, b: BlockId) -> Option<&NaturalLoop> {
        self.loops
            .iter()
            .filter(|l| l.contains(b))
            .min_by_key(|l| l.len())
    }

    /// Number of detected loops.
    pub fn num_loops(&self) -> usize {
        self.loops.len()
    }
}

/// Returns `true` when the CFG of `f` is reducible.
///
/// A CFG is reducible iff deleting every *back edge* (an edge `t → h`
/// whose target `h` dominates its source `t`) leaves an acyclic graph:
/// in a reducible CFG every cycle is a natural loop entered through its
/// header, so every retreating edge is a back edge.  Unreachable blocks
/// are ignored (they belong to no execution).
pub fn is_reducible(f: &Function) -> bool {
    let dom = DominatorTree::compute(f);
    // DFS with colors over the CFG minus its back edges; a gray→gray edge
    // is a cycle that no dominating header explains.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; f.num_blocks()];
    // Each frame carries the block's non-back-edge successors, computed
    // once when the block is first pushed.
    let forward_succs = |b: BlockId| -> Vec<BlockId> {
        f.successors(b)
            .into_iter()
            .filter(|&s| !dom.dominates(s, b))
            .collect()
    };
    let mut stack: Vec<(BlockId, Vec<BlockId>, usize)> = vec![(f.entry, forward_succs(f.entry), 0)];
    color[f.entry.index()] = GRAY;
    while let Some((b, succs, i)) = stack.pop() {
        if i < succs.len() {
            let s = succs[i];
            stack.push((b, succs, i + 1));
            match color[s.index()] {
                WHITE => {
                    color[s.index()] = GRAY;
                    stack.push((s, forward_succs(s), 0));
                }
                GRAY => return false,
                _ => {}
            }
        } else {
            color[b.index()] = BLACK;
        }
    }
    true
}

/// Computes loop depths from the CFG and stores them into every block's
/// `loop_depth` field, overwriting any hand-set values.  Returns the number
/// of detected loops.
pub fn annotate_loop_depths(f: &mut Function) -> usize {
    let info = LoopInfo::compute(f);
    for b in f.block_ids() {
        f.set_loop_depth(b, info.depth_of(b));
    }
    info.num_loops()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionBuilder;

    /// entry -> header -> body -> header (loop), header -> exit.
    fn simple_loop() -> Function {
        let mut b = FunctionBuilder::new("loop");
        let entry = b.entry_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let c = b.def(entry, "c");
        b.jump(entry, header);
        b.branch(header, c, body, exit);
        let x = b.def(body, "x");
        b.effect(body, &[x]);
        b.jump(body, header);
        b.ret(exit, &[]);
        b.finish()
    }

    #[test]
    fn detects_a_single_natural_loop() {
        let f = simple_loop();
        let info = LoopInfo::compute(&f);
        assert_eq!(info.num_loops(), 1);
        let l = &info.loops[0];
        assert_eq!(l.header, BlockId::new(1));
        assert_eq!(l.len(), 2); // header + body
        assert_eq!(l.latches, vec![BlockId::new(2)]);
        assert!(!l.is_empty());
    }

    #[test]
    fn depths_are_one_inside_the_loop_and_zero_outside() {
        let f = simple_loop();
        let info = LoopInfo::compute(&f);
        assert_eq!(info.depth_of(BlockId::new(0)), 0); // entry
        assert_eq!(info.depth_of(BlockId::new(1)), 1); // header
        assert_eq!(info.depth_of(BlockId::new(2)), 1); // body
        assert_eq!(info.depth_of(BlockId::new(3)), 0); // exit
    }

    #[test]
    fn nested_loops_have_depth_two() {
        // entry -> h1 -> h2 -> b2 -> h2 (inner), h2 -> l1 -> h1 (outer), h1 -> exit.
        let mut b = FunctionBuilder::new("nested");
        let entry = b.entry_block();
        let h1 = b.new_block();
        let h2 = b.new_block();
        let b2 = b.new_block();
        let l1 = b.new_block();
        let exit = b.new_block();
        let c = b.def(entry, "c");
        b.jump(entry, h1);
        b.branch(h1, c, h2, exit);
        b.branch(h2, c, b2, l1);
        b.jump(b2, h2);
        b.jump(l1, h1);
        b.ret(exit, &[]);
        let f = b.finish();

        let info = LoopInfo::compute(&f);
        assert_eq!(info.num_loops(), 2);
        assert_eq!(info.depth_of(h1), 1);
        assert_eq!(info.depth_of(h2), 2);
        assert_eq!(info.depth_of(b2), 2);
        assert_eq!(info.depth_of(l1), 1);
        assert_eq!(info.depth_of(exit), 0);
        let inner = info.innermost_loop(b2).unwrap();
        assert_eq!(inner.header, h2);
    }

    #[test]
    fn straight_line_code_has_no_loops() {
        let mut b = FunctionBuilder::new("straight");
        let entry = b.entry_block();
        let x = b.def(entry, "x");
        b.ret(entry, &[x]);
        let f = b.finish();
        let info = LoopInfo::compute(&f);
        assert_eq!(info.num_loops(), 0);
        assert!(info.innermost_loop(entry).is_none());
    }

    #[test]
    fn annotate_overwrites_block_depths() {
        let mut f = simple_loop();
        // Pretend a front end set bogus depths.
        for b in f.block_ids() {
            f.set_loop_depth(b, 7);
        }
        let n = annotate_loop_depths(&mut f);
        assert_eq!(n, 1);
        assert_eq!(f.loop_depth(BlockId::new(0)), 0);
        assert_eq!(f.loop_depth(BlockId::new(2)), 1);
    }

    #[test]
    fn natural_loops_and_straight_code_are_reducible() {
        assert!(is_reducible(&simple_loop()));
        let mut b = FunctionBuilder::new("straight");
        let entry = b.entry_block();
        b.ret(entry, &[]);
        assert!(is_reducible(&b.finish()));
    }

    #[test]
    fn two_entry_cycle_is_irreducible() {
        // entry branches to both A and B while A and B form a cycle: the
        // cycle has two entries, so neither node dominates the other and
        // the classic irreducible shape appears.
        let mut b = FunctionBuilder::new("irreducible");
        let entry = b.entry_block();
        let a = b.new_block();
        let bb = b.new_block();
        let exit = b.new_block();
        let c = b.def(entry, "c");
        b.branch(entry, c, a, bb);
        let ca = b.def(a, "ca");
        b.branch(a, ca, bb, exit);
        b.jump(bb, a);
        b.ret(exit, &[]);
        let f = b.finish();
        assert!(!is_reducible(&f));
        // ...and no natural loop is detected: the cycle has no dominating
        // header.
        assert_eq!(LoopInfo::compute(&f).num_loops(), 0);
    }

    #[test]
    fn self_loop_is_its_own_header_and_latch() {
        let mut b = FunctionBuilder::new("selfloop");
        let entry = b.entry_block();
        let l = b.new_block();
        let exit = b.new_block();
        let c = b.def(entry, "c");
        b.jump(entry, l);
        b.branch(l, c, l, exit);
        b.ret(exit, &[]);
        let f = b.finish();
        let info = LoopInfo::compute(&f);
        assert_eq!(info.num_loops(), 1);
        assert_eq!(info.loops[0].header, l);
        assert_eq!(info.loops[0].latches, vec![l]);
        assert_eq!(info.loops[0].len(), 1);
        assert_eq!(info.depth_of(l), 1);
    }
}
