//! Out-of-SSA translation: φ elimination.
//!
//! φ-functions are not machine code; going out of SSA replaces them with
//! register-to-register moves on the incoming edges.  This is where the
//! bulk of the coalesceable copies of the paper's aggressive-coalescing
//! problem comes from: translating out of SSA *while minimizing the number
//! of remaining moves* is exactly aggressive coalescing (§1, §3).
//!
//! The implementation:
//!
//! 1. splits critical edges (an edge from a block with several successors
//!    to a block with several predecessors) by inserting a fresh empty
//!    block, so that copies can be placed on the edge;
//! 2. gathers, for every incoming edge of a block with φs, the *parallel
//!    copy* `(dst₁ ← v₁, dst₂ ← v₂, …)`;
//! 3. sequentializes each parallel copy, introducing a temporary when the
//!    copies form a cycle (the classic *swap problem*), and appends the
//!    resulting copy instructions to the predecessor block;
//! 4. removes the φ-functions.

use crate::function::{BlockId, Function, Instr, InstrView, Terminator, Var};

/// Statistics returned by [`destruct_ssa`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutOfSsaStats {
    /// Number of critical edges that were split.
    pub split_edges: usize,
    /// Number of φ-functions removed.
    pub phis_removed: usize,
    /// Number of copy instructions inserted.
    pub copies_inserted: usize,
    /// Number of cycle-breaking temporaries introduced.
    pub temps_introduced: usize,
}

/// Splits every critical edge of `f` by inserting an empty forwarding block.
///
/// Returns the number of edges split.
pub fn split_critical_edges(f: &mut Function) -> usize {
    let mut split = 0;
    loop {
        let preds = f.predecessors();
        let mut found = None;
        'outer: for b in f.block_ids() {
            let succs = f.successors(b);
            if succs.len() < 2 {
                continue;
            }
            for s in succs {
                if preds[s.index()].len() >= 2 {
                    found = Some((b, s));
                    break 'outer;
                }
            }
        }
        let Some((from, to)) = found else { break };
        // Insert a forwarding block on the edge from -> to.
        let depth = f.loop_depth(from).min(f.loop_depth(to));
        let mid = f.add_block(Terminator::Jump(to), depth);
        f.terminator_mut(from).replace_successor(to, mid);
        // Redirect φ arguments in `to` that referred to `from`.
        for i in 0..f.num_instrs(to) {
            let redirected = match f.instr(to, i) {
                InstrView::Phi { dst, args } if args.iter().any(|a| a.pred == from) => Some((
                    dst,
                    args.iter()
                        .map(|a| (if a.pred == from { mid } else { a.pred }, a.value))
                        .collect::<Vec<_>>(),
                )),
                _ => None,
            };
            if let Some((dst, args)) = redirected {
                f.replace_instr(to, i, Instr::Phi { dst, args });
            }
        }
        split += 1;
    }
    split
}

/// Sequentializes a parallel copy `(dst_i ← src_i)` into an ordered list of
/// copies, introducing fresh temporaries (via `fresh_temp`) to break cycles.
///
/// All destinations must be pairwise distinct.  Copies whose source equals
/// their destination are dropped.
pub fn sequentialize_parallel_copy(
    copies: &[(Var, Var)],
    mut fresh_temp: impl FnMut() -> Var,
) -> (Vec<(Var, Var)>, usize) {
    let mut pending: Vec<(Var, Var)> = copies.iter().copied().filter(|(d, s)| d != s).collect();
    let mut out = Vec::new();
    let mut temps = 0;
    while !pending.is_empty() {
        // A copy is *free* if its destination is not the source of any other
        // pending copy: emitting it clobbers nothing still needed.
        let free_pos = pending
            .iter()
            .position(|&(d, _)| !pending.iter().any(|&(_, s2)| s2 == d));
        match free_pos {
            Some(i) => {
                let (d, s) = pending.remove(i);
                out.push((d, s));
            }
            None => {
                // Every destination is still needed as a source: the pending
                // copies contain a cycle.  Break it by saving one source.
                let (d0, s0) = pending[0];
                let t = fresh_temp();
                temps += 1;
                out.push((t, s0));
                // The copy (d0 <- s0) becomes (d0 <- t); all other pending
                // copies reading s0 keep reading s0 (it is still intact until
                // d0 is written, and d0 <- t is now free to be deferred).
                pending[0] = (d0, t);
                // Additionally, any pending copy whose source is d0 must be
                // emitted before d0 is overwritten; the loop handles this
                // because (d0 <- t)'s destination d0 is still a source, so it
                // stays non-free until those copies are emitted.
                let _ = s0;
            }
        }
    }
    (out, temps)
}

/// Translates `f` out of SSA: splits critical edges, replaces φ-functions by
/// copies on the incoming edges, and returns statistics.
pub fn destruct_ssa(f: &mut Function) -> OutOfSsaStats {
    let mut stats = OutOfSsaStats {
        split_edges: split_critical_edges(f),
        ..OutOfSsaStats::default()
    };

    // Collect parallel copies per predecessor edge.
    let mut per_pred: Vec<Vec<(Var, Var)>> = vec![Vec::new(); f.num_blocks()];
    for b in f.block_ids() {
        let phis: Vec<(Var, Vec<(BlockId, Var)>)> = f
            .phis(b)
            .filter_map(|i| match i {
                InstrView::Phi { dst, args } => {
                    Some((dst, args.iter().map(|a| (a.pred, a.value)).collect()))
                }
                _ => None,
            })
            .collect();
        for (dst, args) in &phis {
            for (pred, v) in args {
                per_pred[pred.index()].push((*dst, *v));
            }
        }
        stats.phis_removed += phis.len();
        // Remove the φs from the block (in place, no order-array growth).
        f.remove_phis(b);
    }

    let block_ids: Vec<BlockId> = f.block_ids().collect();
    for b in block_ids {
        let copies = std::mem::take(&mut per_pred[b.index()]);
        if copies.is_empty() {
            continue;
        }
        let (seq, temps) = {
            let func: &mut Function = f;
            // Cycle-breaking temporaries are unnamed: they are release-path
            // artifacts, displayed as dense indices.
            sequentialize_parallel_copy(&copies, || func.new_var(""))
        };
        stats.temps_introduced += temps;
        for (dst, src) in seq {
            f.push_instr(b, Instr::Copy { dst, src });
            stats.copies_inserted += 1;
        }
    }
    debug_assert!(f.validate().is_ok());
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionBuilder;
    use crate::liveness::Liveness;
    use crate::ssa;

    fn diamond_with_phi() -> Function {
        let mut b = FunctionBuilder::new("diamond");
        let entry = b.entry_block();
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        let c = b.def(entry, "c");
        b.branch(entry, c, t, e);
        let y = b.def(t, "y");
        b.jump(t, j);
        let z = b.def(e, "z");
        b.jump(e, j);
        let w = b.phi(j, "w", &[(t, y), (e, z)]);
        b.ret(j, &[w]);
        b.finish()
    }

    #[test]
    fn destruct_replaces_phi_with_copies() {
        let mut f = diamond_with_phi();
        let stats = destruct_ssa(&mut f);
        assert_eq!(stats.phis_removed, 1);
        assert_eq!(stats.copies_inserted, 2);
        assert_eq!(f.num_phis(), 0);
        assert_eq!(f.num_copies(), 2);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn critical_edge_is_split() {
        // entry branches to {a, join}; a jumps to join; join has a φ.
        // The edge entry -> join is critical.
        let mut b = FunctionBuilder::new("critical");
        let entry = b.entry_block();
        let a = b.new_block();
        let join = b.new_block();
        let c = b.def(entry, "c");
        let x0 = b.def(entry, "x0");
        b.branch(entry, c, a, join);
        let x1 = b.def(a, "x1");
        b.jump(a, join);
        let p = b.phi(join, "p", &[(entry, x0), (a, x1)]);
        b.ret(join, &[p]);
        let mut f = b.finish();
        let stats = destruct_ssa(&mut f);
        assert_eq!(stats.split_edges, 1);
        assert_eq!(stats.phis_removed, 1);
        assert!(f.validate().is_ok());
        // The copy for the entry->join edge must be in the new block, not in
        // entry (where it would wrongly execute on the other path too).
        let new_block = BlockId::new(f.num_blocks() - 1);
        assert_eq!(f.num_instrs(new_block), 1);
        assert!(f.instr(new_block, 0).is_copy());
    }

    #[test]
    fn swap_problem_introduces_a_temporary() {
        // Parallel copy {a <- b, b <- a} needs a temp.
        let a = Var::new(0);
        let b = Var::new(1);
        let t = Var::new(2);
        let (seq, temps) = sequentialize_parallel_copy(&[(a, b), (b, a)], || t);
        assert_eq!(temps, 1);
        assert_eq!(seq.len(), 3);
        // Simulate the sequence and check it implements the parallel copy.
        let mut env = [10, 20, 0]; // a=10, b=20
        for (d, s) in &seq {
            env[d.index()] = env[s.index()];
        }
        assert_eq!(env[a.index()], 20);
        assert_eq!(env[b.index()], 10);
    }

    #[test]
    fn chain_copy_needs_no_temporary() {
        // {a <- b, b <- c} can be ordered a <- b, then b <- c.
        let a = Var::new(0);
        let b = Var::new(1);
        let c = Var::new(2);
        let (seq, temps) = sequentialize_parallel_copy(&[(b, c), (a, b)], || unreachable!());
        assert_eq!(temps, 0);
        assert_eq!(seq, vec![(a, b), (b, c)]);
    }

    #[test]
    fn self_copy_is_dropped() {
        let a = Var::new(0);
        let (seq, temps) = sequentialize_parallel_copy(&[(a, a)], || unreachable!());
        assert!(seq.is_empty());
        assert_eq!(temps, 0);
    }

    #[test]
    fn three_cycle_parallel_copy() {
        // {a <- b, b <- c, c <- a}: rotation, one temp.
        let a = Var::new(0);
        let b = Var::new(1);
        let c = Var::new(2);
        let t = Var::new(3);
        let (seq, temps) = sequentialize_parallel_copy(&[(a, b), (b, c), (c, a)], || t);
        assert_eq!(temps, 1);
        let mut env = [1, 2, 3, 0];
        for (d, s) in &seq {
            env[d.index()] = env[s.index()];
        }
        assert_eq!(&env[0..3], &[2, 3, 1]);
    }

    #[test]
    fn out_of_ssa_output_has_same_observable_liveness_shape() {
        // After destruction, the function still validates, has no φs, and
        // the φ result is now defined by copies in both predecessors.
        let mut f = diamond_with_phi();
        let w_uses_before = f.terminator(BlockId::new(3)).uses().len();
        destruct_ssa(&mut f);
        assert!(ssa::is_ssa(&f) || f.num_copies() == 2);
        let live = Liveness::compute(&f);
        // w is defined on both sides, so it is live into the join block now.
        let w = f.terminator(BlockId::new(3)).uses()[0];
        assert!(live.is_live_in(BlockId::new(3), w));
        assert_eq!(w_uses_before, 1);
    }
}
