//! Spilling passes.
//!
//! The two-phase register allocators the paper discusses (Appel–George,
//! Hack et al.) first spill enough variables to bring `Maxlive` down to the
//! number of registers `k`, and only then color/coalesce.  This module
//! provides the simple *spill-everywhere* strategy used by the evaluation
//! harness: a spilled variable lives in memory and is reloaded into a fresh
//! short-lived temporary right before every use, so its contribution to the
//! register pressure shrinks to single program points.
//!
//! The spill-candidate choice is Chaitin-style and loop-aware: among the
//! variables live at an over-pressured point, it picks the one with the
//! lowest *spill cost per freed program point*, where the cost of spilling
//! a variable is the `10^loop_depth`-weighted count of the stores and
//! reloads the rewrite would insert (the same dynamic-execution-count
//! estimate that weights affinities and move costs).  A value that idles
//! across a hot loop is spilled long before one that is rewritten inside
//! it.
//!
//! The pass is **incremental end to end and sublinear per victim**: after
//! the up-front setup, accepting a victim costs time proportional to the
//! victim's own footprint (the blocks it contributes live points to plus
//! the blocks its rewrite touches), not to the whole function:
//!
//! * liveness is solved once and then patched in place after each rewrite
//!   ([`Liveness::apply_spill_rewrite`]) — a spilled variable is live at no
//!   block boundary afterwards, and the only reload temporaries that cross
//!   a boundary are the φ-argument ones;
//! * the per-block candidate statistics (precise per-block `Maxlive`,
//!   per-variable live-point counts, over-pressure membership) are cached
//!   in [`BlockSpillStats`] and recomputed only for the blocks a rewrite
//!   actually touched or the victim contributed live points to — the
//!   latter set comes from an inverted index (variable → contributing
//!   blocks) maintained alongside the statistics, so no global liveness
//!   scan is needed to find it;
//! * the global `Maxlive` is maintained as a bucket count over the cached
//!   per-block pressures (`pressure_count[m]` = number of blocks whose
//!   precise `Maxlive` is `m`): a retract/fold of one block moves one unit
//!   between buckets, and the loop head re-finds the maximum by scanning
//!   the top bucket pointer downwards — monotone over the whole pass, so
//!   O(1) amortized instead of an O(blocks) rescan per iteration;
//! * the affected-block set itself is collected through an epoch-stamped
//!   scratch array, so no per-victim `vec![false; num_blocks]` allocation
//!   remains;
//! * spill costs never change for a variable that was not itself rewritten,
//!   so they are computed once up front.
//!
//! On the E15 `fp-loopnest` instance (2110 blocks, 647 victims) the whole
//! spilling phase runs in ≈ 0.25 s release — ≈ 0.4 ms per victim, against
//! the ≈ 2.1 ms/victim (≈ 3.1 s for ≈ 1480 victims on the larger
//! pre-flat-IR instance) recorded when the incremental pass landed.  The
//! remaining per-victim cost is proportional to the victim's footprint
//! (the statistics of every block it contributes live points to are
//! rebuilt), which dominates the two global scans this revision removed;
//! see the README for the measured numbers.
//!
//! The module also hosts the [`SpillerKind`] strategy zoo: the loop-aware
//! incremental spiller above, the naive spill-everywhere baseline
//! ([`spill_all_candidates`]), and the Belady `MIN` spiller of
//! [`crate::belady`].

use crate::function::{BlockId, Function, Instr, InstrView, Terminator, Var};
use crate::liveness::Liveness;
use std::collections::{BTreeMap, BTreeSet};

/// Largest loop depth that still gets its own `10^depth` weight.
///
/// `10^19` is the largest power of ten a `u64` can hold, so the old
/// `10u64.saturating_pow(depth)` collapsed every depth ≥ 20 onto
/// `u64::MAX`: all victims defined that deep compared *equal* on cost and
/// the choice silently fell to the tie-break order.  Clamping the exponent
/// at 18 keeps the weight an exact power of ten with headroom for the
/// per-access `saturating_add` accumulation; depths beyond the cap share
/// one (finite, documented) weight instead of a saturated sentinel.
pub const MAX_WEIGHT_DEPTH: u32 = 18;

/// The `10^depth` dynamic-execution-count weight of a block at loop depth
/// `depth`, with the exponent clamped at [`MAX_WEIGHT_DEPTH`].
///
/// Distinct depths up to the cap map to strictly increasing weights (the
/// regression test pins this); depths past the cap all weigh `10^18`.
pub fn loop_weight(depth: u32) -> u64 {
    10u64.pow(depth.min(MAX_WEIGHT_DEPTH))
}

/// Result of a spilling pass.
#[derive(Debug, Clone, Default)]
pub struct SpillResult {
    /// Variables that were spilled (original, pre-rewrite names).
    pub spilled: Vec<Var>,
    /// Number of reload temporaries introduced.
    pub reloads: usize,
}

/// What one [`spill_everywhere`] rewrite did to the function, in the terms
/// the incremental bookkeeping needs.
#[derive(Debug, Clone, Default)]
pub struct SpillRewrite {
    /// φ-argument reloads as `(predecessor, reload)` pairs — the only
    /// reload temporaries whose live range crosses a block boundary,
    /// which is exactly what [`Liveness::apply_spill_rewrite`] consumes.
    pub phi_pred_reloads: Vec<(BlockId, Var)>,
    /// Blocks whose instruction list or terminator changed (may contain
    /// duplicates).
    pub modified_blocks: Vec<BlockId>,
}

/// Per-block spill-candidate statistics, derived from one backward walk of
/// the block's live points:
///
/// * `contributions[(v, c)]` — variable `v` is live at `c` program points
///   of this block (the pressure-reduction benefit of spilling it);
/// * `candidates` — variables live at at least one point of this block
///   whose pressure exceeds the target `k`;
/// * `maxlive` — the precise per-block `Maxlive` (dead definitions and
///   simultaneously live φ results included).
///
/// The walk tracks liveness *segments* instead of materialising per-point
/// sets: a variable's live points inside a block are contiguous runs
/// delimited by its definition and last use, so one insert/remove event
/// pair yields the whole count, and over-pressure membership reduces to
/// comparing the segment against the latest over-pressured point index.
#[derive(Debug, Clone, Default)]
struct BlockSpillStats {
    contributions: Vec<(Var, u64)>,
    candidates: Vec<Var>,
    maxlive: usize,
}

/// Computes the [`BlockSpillStats`] of one block against the current
/// liveness solution.  `birth` is a scratch array of at least `num_vars`
/// entries (contents irrelevant between calls).
fn block_spill_stats(
    f: &Function,
    liveness: &Liveness,
    b: BlockId,
    k: usize,
    birth: &mut Vec<u32>,
) -> BlockSpillStats {
    let n = f.num_instrs(b);
    if birth.len() < f.num_vars() {
        birth.resize(f.num_vars(), 0);
    }
    let mut stats = BlockSpillStats::default();
    // The walk starts at point n: live-out plus the terminator's uses.
    let mut live = liveness.live_out(b).clone();
    for u in f.terminator(b).uses() {
        live.insert(u);
    }
    for v in live.iter() {
        birth[v.index()] = n as u32;
    }
    stats.maxlive = live.len();
    // Index of the lowest (most recently seen, walking backwards)
    // over-pressured point; `u32::MAX` while none was seen.
    let mut min_over = if live.len() > k { n as u32 } else { u32::MAX };
    for (i, instr) in f.block_instrs(b).enumerate().rev() {
        if let Some(d) = instr.def() {
            // Pressure of the definition point: the set after the
            // instruction plus the defined value if it is dead there (a
            // dead definition still occupies a register — this keeps
            // Maxlive equal to ω of the SSA interference graph, Thm 1).
            if !instr.is_phi() {
                stats.maxlive = stats
                    .maxlive
                    .max(live.len() + usize::from(!live.contains(d)));
            }
            if live.remove(d) {
                // Close the segment: d was live at points i+1 ..= birth.
                let first = birth[d.index()];
                stats.contributions.push((d, u64::from(first) - i as u64));
                if min_over <= first {
                    stats.candidates.push(d);
                }
            }
        }
        for &u in instr.local_uses() {
            if live.insert(u) {
                birth[u.index()] = i as u32;
            }
        }
        stats.maxlive = stats.maxlive.max(live.len());
        if live.len() > k {
            min_over = i as u32;
        }
    }
    // Flush the segments still open at the block entry (live-in).
    for v in live.iter() {
        let first = birth[v.index()];
        stats.contributions.push((v, u64::from(first) + 1));
        if min_over <= first {
            stats.candidates.push(v);
        }
    }
    // φ results are all simultaneously live at the block entry together
    // with the live-in set.
    let phi_defs = f.phis(b).filter_map(|p| p.def()).count();
    if phi_defs > 0 {
        stats.maxlive = stats.maxlive.max(liveness.live_in(b).len() + phi_defs);
    }
    stats
}

/// Spills variables of `f` until `Maxlive ≤ k` (or no candidate remains),
/// using a spill-everywhere rewrite.  Returns the list of spilled variables
/// and rewrites `f` in place.
///
/// Variables that are already "short-lived" (live at only one point, e.g.
/// reload temporaries) are never selected, which guarantees termination.
pub fn spill_to_pressure(f: &mut Function, k: usize) -> SpillResult {
    let _span = coalesce_stats::span!("ir/spill/pressure");
    let mut result = SpillResult::default();
    let mut not_spillable: BTreeSet<Var> = BTreeSet::new();
    // One full fixpoint up front; every later iteration patches it in
    // place via `apply_spill_rewrite` (the patch is exact, see its docs).
    let mut liveness = Liveness::compute(f);
    // Spill costs only change for rewritten variables, and those are never
    // reconsidered (`not_spillable`), so one up-front computation serves
    // every iteration.
    let spill_cost = spill_costs(f);
    // Block of each variable's definition (first definition for non-SSA
    // inputs): the one block whose statistics a rewrite can change even
    // when the victim is live at none of its boundaries.
    let mut def_block: Vec<Option<BlockId>> = vec![None; f.num_vars()];
    for (b, _, instr) in f.instructions() {
        if let Some(d) = instr.def() {
            def_block[d.index()].get_or_insert(b);
        }
    }
    // Per-block candidate statistics plus the global aggregates derived
    // from them: per-variable point counts, and the candidate set with a
    // per-variable reference count (how many blocks currently list it).
    //
    // Two extra indices make accepting a victim sublinear:
    //
    // * `pressure_count[m]` counts the blocks whose cached precise Maxlive
    //   is `m`, and `cur_max` points at the top non-empty bucket (it only
    //   ever needs correcting downwards at the loop head, so the whole
    //   pass scans each bucket level at most once);
    // * `blocks_of[v]` is the inverted contribution index: the blocks
    //   whose statistics currently mention `v`, with a reference count per
    //   block (a non-SSA input can close several segments of one variable
    //   in one block).  For a victim it is exactly the set of blocks whose
    //   statistics its removal can change, which replaces the old
    //   O(blocks) boundary-liveness scan.
    let mut birth: Vec<u32> = Vec::new();
    let mut occurrences: Vec<u64> = vec![0; f.num_vars()];
    let mut candidate_refs: Vec<u32> = vec![0; f.num_vars()];
    let mut candidates: BTreeSet<Var> = BTreeSet::new();
    let mut blocks_of: Vec<BTreeMap<u32, u32>> = vec![BTreeMap::new(); f.num_vars()];
    let mut pressure_count: Vec<u32> = Vec::new();
    let mut cur_max: usize = 0;
    let mut stats: Vec<BlockSpillStats> = Vec::with_capacity(f.num_blocks());
    for b in f.block_ids() {
        let s = block_spill_stats(f, &liveness, b, k, &mut birth);
        for &(v, c) in &s.contributions {
            occurrences[v.index()] += c;
            *blocks_of[v.index()].entry(b.index() as u32).or_insert(0) += 1;
        }
        for &v in &s.candidates {
            candidate_refs[v.index()] += 1;
            if candidate_refs[v.index()] == 1 {
                candidates.insert(v);
            }
        }
        if s.maxlive >= pressure_count.len() {
            pressure_count.resize(s.maxlive + 1, 0);
        }
        pressure_count[s.maxlive] += 1;
        cur_max = cur_max.max(s.maxlive);
        stats.push(s);
    }
    // Epoch-stamped scratch replacing the per-victim `vec![false; blocks]`
    // allocation: a block is in the current victim's affected set iff its
    // stamp equals the current epoch.
    let mut affected_stamp: Vec<u32> = vec![0; f.num_blocks()];
    let mut affected_epoch: u32 = 0;
    let mut affected: Vec<usize> = Vec::new();
    // Pass totals, reported once on exit: accepted victims and how many
    // block statistics their rewrites forced us to rebuild.
    let mut victims: u64 = 0;
    let mut blocks_rebuilt: u64 = 0;

    loop {
        // Re-find the global Maxlive: per-block pressures retracted since
        // the last iteration can only have emptied buckets at or below
        // `cur_max`, so walking the pointer down is exact.
        while cur_max > 0 && pressure_count[cur_max] == 0 {
            cur_max -= 1;
        }
        if cur_max <= k {
            break;
        }
        // Pick the candidate minimizing cost/benefit (compared by cross
        // multiplication to stay in integers); ties fall to the higher
        // benefit, then to the lower variable index, so the choice is
        // deterministic.
        let candidate = candidates
            .iter()
            .copied()
            .filter(|v| !not_spillable.contains(v))
            .min_by(|&a, &b| {
                let (ca, cb) = (spill_cost[a.index()], spill_cost[b.index()]);
                let (oa, ob) = (occurrences[a.index()], occurrences[b.index()]);
                (u128::from(ca) * u128::from(ob))
                    .cmp(&(u128::from(cb) * u128::from(oa)))
                    .then(ob.cmp(&oa))
                    .then(a.cmp(&b))
            });
        let Some(victim) = candidate else { break };
        if occurrences[victim.index()] <= 2 {
            // Already as short-lived as a reload temp; spilling it cannot
            // reduce pressure.  Mark and retry with another candidate.
            not_spillable.insert(victim);
            continue;
        }
        // Blocks whose statistics the rewrite can change: the ones the
        // victim contributes live points to (the inverted index — a
        // superset of the blocks it is boundary-live through), its
        // definition block, and every block the rewrite touches (collected
        // below).  Recomputation is idempotent, so a superset of the truly
        // changed blocks is safe and yields identical statistics.
        affected_epoch += 1;
        affected.clear();
        for &bi in blocks_of[victim.index()].keys() {
            let bi = bi as usize;
            if affected_stamp[bi] != affected_epoch {
                affected_stamp[bi] = affected_epoch;
                affected.push(bi);
            }
        }
        if let Some(b) = def_block[victim.index()] {
            if affected_stamp[b.index()] != affected_epoch {
                affected_stamp[b.index()] = affected_epoch;
                affected.push(b.index());
            }
        }
        let vars_before = f.num_vars();
        let rewrite = spill_everywhere(f, victim, &mut result);
        liveness.apply_spill_rewrite(victim, &rewrite.phi_pred_reloads);
        for &b in &rewrite.modified_blocks {
            if affected_stamp[b.index()] != affected_epoch {
                affected_stamp[b.index()] = affected_epoch;
                affected.push(b.index());
            }
        }
        occurrences.resize(f.num_vars(), 0);
        candidate_refs.resize(f.num_vars(), 0);
        blocks_of.resize(f.num_vars(), BTreeMap::new());
        // Retract the affected blocks' old statistics and fold in the
        // recomputed ones; everything else is untouched by construction.
        // The retract/fold pairs commute across blocks, but sort anyway so
        // the recomputation order is deterministic.
        affected.sort_unstable();
        for &bi in &affected {
            let b = BlockId::new(bi);
            let old = std::mem::take(&mut stats[bi]);
            for (v, c) in old.contributions {
                occurrences[v.index()] -= c;
                let refs = blocks_of[v.index()]
                    .get_mut(&(bi as u32))
                    .expect("inverted index out of sync with block statistics");
                *refs -= 1;
                if *refs == 0 {
                    blocks_of[v.index()].remove(&(bi as u32));
                }
            }
            for v in old.candidates {
                candidate_refs[v.index()] -= 1;
                if candidate_refs[v.index()] == 0 {
                    candidates.remove(&v);
                }
            }
            pressure_count[old.maxlive] -= 1;
            let s = block_spill_stats(f, &liveness, b, k, &mut birth);
            for &(v, c) in &s.contributions {
                occurrences[v.index()] += c;
                *blocks_of[v.index()].entry(bi as u32).or_insert(0) += 1;
            }
            for &v in &s.candidates {
                candidate_refs[v.index()] += 1;
                if candidate_refs[v.index()] == 1 {
                    candidates.insert(v);
                }
            }
            if s.maxlive >= pressure_count.len() {
                pressure_count.resize(s.maxlive + 1, 0);
            }
            pressure_count[s.maxlive] += 1;
            cur_max = cur_max.max(s.maxlive);
            stats[bi] = s;
        }
        // Never re-spill a reload temporary (or the victim itself): reload
        // temps of early spills can grow long again as later reloads are
        // inserted between them and their use, and re-spilling them would
        // loop forever without lowering the pressure.
        not_spillable.insert(victim);
        not_spillable.extend((vars_before..f.num_vars()).map(Var::new));
        result.spilled.push(victim);
        victims += 1;
        blocks_rebuilt += affected.len() as u64;
    }
    coalesce_stats::counter!("spill.victims", victims);
    coalesce_stats::counter!("spill.blocks_rebuilt", blocks_rebuilt);
    result
}

/// Estimated dynamic cost of spilling each variable, indexed by variable:
/// one store at the definition plus one reload per use, each weighted by
/// [`loop_weight`] of the block the access happens in (φ arguments are
/// reloaded at the end of the corresponding predecessor, so they count at
/// the predecessor's depth).  The weight's exponent is clamped at
/// [`MAX_WEIGHT_DEPTH`] so distinct depths up to the cap stay strictly
/// ordered instead of saturating to a shared `u64::MAX`.
pub fn spill_costs(f: &Function) -> Vec<u64> {
    let mut cost = vec![0u64; f.num_vars()];
    for b in f.block_ids() {
        let weight = loop_weight(f.loop_depth(b));
        for instr in f.block_instrs(b) {
            if let Some(d) = instr.def() {
                cost[d.index()] = cost[d.index()].saturating_add(weight);
            }
            match instr {
                InstrView::Phi { args, .. } => {
                    for a in args {
                        let w = loop_weight(f.loop_depth(a.pred));
                        cost[a.value.index()] = cost[a.value.index()].saturating_add(w);
                    }
                }
                _ => {
                    for &u in instr.local_uses() {
                        cost[u.index()] = cost[u.index()].saturating_add(weight);
                    }
                }
            }
        }
        for u in f.terminator(b).uses() {
            cost[u.index()] = cost[u.index()].saturating_add(weight);
        }
    }
    cost
}

/// The spilling strategies the evaluation harness can compare (E17).
///
/// All three lower register pressure by rewriting spilled variables into
/// short-lived reload temporaries; they differ in *which* variables they
/// pick and in how finely they split live ranges:
///
/// * [`SpillerKind::Everywhere`] — the naive baseline: every over-pressure
///   candidate is spilled outright, round after round, until the pressure
///   target is met or nothing spillable remains;
/// * [`SpillerKind::PressureGreedy`] — the loop-aware incremental spiller
///   of [`spill_to_pressure`], picking one victim at a time by
///   cost/benefit;
/// * [`SpillerKind::Belady`] — the Braun–Hack-style Belady `MIN` spiller
///   of [`crate::belady`], ranking values by next-use distance and
///   splitting live ranges at block boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpillerKind {
    /// Spill every over-pressure candidate outright (naive baseline).
    Everywhere,
    /// Loop-aware incremental cost/benefit spiller ([`spill_to_pressure`]).
    PressureGreedy,
    /// Braun–Hack Belady `MIN` with next-use distances ([`crate::belady`]).
    Belady,
}

impl SpillerKind {
    /// All strategies, in comparison order.
    pub const ALL: [SpillerKind; 3] = [
        SpillerKind::Everywhere,
        SpillerKind::PressureGreedy,
        SpillerKind::Belady,
    ];

    /// Stable human-readable name (used in reports and CLI output).
    pub fn name(self) -> &'static str {
        match self {
            SpillerKind::Everywhere => "everywhere",
            SpillerKind::PressureGreedy => "pressure-greedy",
            SpillerKind::Belady => "belady",
        }
    }

    /// Runs this strategy on `f`, spilling towards `Maxlive ≤ k`.
    pub fn run(self, f: &mut Function, k: usize) -> SpillResult {
        match self {
            SpillerKind::Everywhere => spill_all_candidates(f, k),
            SpillerKind::PressureGreedy => spill_to_pressure(f, k),
            SpillerKind::Belady => crate::belady::spill_belady(f, k),
        }
    }
}

/// The naive *spill-everywhere* baseline strategy: in each round, every
/// variable live through an over-pressured point (and long enough to be
/// worth spilling) is spilled, and rounds repeat until `Maxlive ≤ k` or no
/// spillable candidate remains.
///
/// This deliberately recomputes liveness from scratch each round and makes
/// no cost/benefit choice — it is the strawman the loop-aware incremental
/// spiller and the Belady spiller are measured against in E17.
pub fn spill_all_candidates(f: &mut Function, k: usize) -> SpillResult {
    let _span = coalesce_stats::span!("ir/spill/everywhere");
    let mut result = SpillResult::default();
    let mut not_spillable: BTreeSet<Var> = BTreeSet::new();
    let mut birth: Vec<u32> = Vec::new();
    loop {
        let liveness = Liveness::compute(f);
        let mut occurrences = vec![0u64; f.num_vars()];
        let mut candidates: BTreeSet<Var> = BTreeSet::new();
        let mut maxlive = 0usize;
        for b in f.block_ids() {
            let s = block_spill_stats(f, &liveness, b, k, &mut birth);
            for &(v, c) in &s.contributions {
                occurrences[v.index()] += c;
            }
            candidates.extend(s.candidates.iter().copied());
            maxlive = maxlive.max(s.maxlive);
        }
        if maxlive <= k {
            break;
        }
        // Same spillability rules as the incremental spiller: never touch
        // reload temporaries or anything as short-lived as one.
        let victims: Vec<Var> = candidates
            .into_iter()
            .filter(|v| !not_spillable.contains(v) && occurrences[v.index()] > 2)
            .collect();
        if victims.is_empty() {
            break;
        }
        coalesce_stats::counter!("spill.victims", victims.len() as u64);
        for victim in victims {
            let vars_before = f.num_vars();
            spill_everywhere(f, victim, &mut result);
            not_spillable.insert(victim);
            not_spillable.extend((vars_before..f.num_vars()).map(Var::new));
            result.spilled.push(victim);
        }
    }
    result
}

/// Rewrites `f` so that `victim` is reloaded into a fresh temporary before
/// every use (spill-everywhere).  The original definition of `victim` is
/// kept (it represents the value being stored to memory) but the variable
/// itself dies immediately after its definition.
///
/// Returns the [`SpillRewrite`] describing what changed: the φ-argument
/// reloads (the only reload temporaries whose live range crosses a block
/// boundary — what [`Liveness::apply_spill_rewrite`] consumes) and the
/// blocks whose code was touched (what the incremental candidate
/// bookkeeping of [`spill_to_pressure`] consumes).
pub fn spill_everywhere(f: &mut Function, victim: Var, result: &mut SpillResult) -> SpillRewrite {
    let mut rewrite = SpillRewrite::default();
    let block_ids: Vec<BlockId> = f.block_ids().collect();
    for b in block_ids {
        // Rewrite φ arguments: reload at the end of the predecessor.
        let mut pending_pred_reloads: Vec<(BlockId, Var)> = Vec::new();
        {
            let nb = f.num_instrs(b);
            for i in 0..nb {
                // Copy out the argument list only when this φ mentions the
                // victim; the view borrow ends before the rewrite below.
                let rewrite_phi = match f.instr(b, i) {
                    InstrView::Phi { dst, args } if args.iter().any(|a| a.value == victim) => {
                        Some((
                            dst,
                            args.iter().map(|a| (a.pred, a.value)).collect::<Vec<_>>(),
                        ))
                    }
                    _ => None,
                };
                if let Some((dst, mut args)) = rewrite_phi {
                    for (p, v) in args.iter_mut() {
                        if *v == victim {
                            let reload = f.derive_var(victim, "_reload");
                            pending_pred_reloads.push((*p, reload));
                            *v = reload;
                        }
                    }
                    f.replace_instr(b, i, Instr::Phi { dst, args });
                    rewrite.modified_blocks.push(b);
                }
            }
        }
        for (pred, reload) in pending_pred_reloads {
            f.emit_op(pred, Some(reload), &[]);
            result.reloads += 1;
            rewrite.modified_blocks.push(pred);
            rewrite.phi_pred_reloads.push((pred, reload));
        }

        // Rewrite ordinary uses inside the block.
        let mut i = 0;
        while i < f.num_instrs(b) {
            let uses_victim = match f.instr(b, i) {
                InstrView::Op { uses, .. } => uses.contains(&victim),
                InstrView::Copy { src, .. } => src == victim,
                InstrView::Phi { .. } => false,
            };
            if uses_victim {
                rewrite.modified_blocks.push(b);
                let reload = f.derive_var(victim, "_reload");
                let new_instr = match f.instr(b, i).to_instr() {
                    Instr::Op { dst, uses } => Instr::Op {
                        dst,
                        uses: uses
                            .into_iter()
                            .map(|u| if u == victim { reload } else { u })
                            .collect(),
                    },
                    Instr::Copy { dst, .. } => Instr::Copy { dst, src: reload },
                    phi @ Instr::Phi { .. } => phi,
                };
                f.replace_instr(b, i, new_instr);
                f.insert_instr(
                    b,
                    i,
                    Instr::Op {
                        dst: Some(reload),
                        uses: Vec::new(),
                    },
                );
                result.reloads += 1;
                i += 2;
            } else {
                i += 1;
            }
        }

        // Rewrite terminator uses.
        let term_uses_victim = f.terminator(b).uses().contains(&victim);
        if term_uses_victim {
            rewrite.modified_blocks.push(b);
            let reload = f.derive_var(victim, "_reload");
            let new_term = match f.terminator(b).clone() {
                Terminator::Branch {
                    cond,
                    then_block,
                    else_block,
                } => Terminator::Branch {
                    cond: if cond == victim { reload } else { cond },
                    then_block,
                    else_block,
                },
                Terminator::Return { uses } => Terminator::Return {
                    uses: uses
                        .into_iter()
                        .map(|u| if u == victim { reload } else { u })
                        .collect(),
                },
                t @ Terminator::Jump(_) => t,
            };
            *f.terminator_mut(b) = new_term;
            f.emit_op(b, Some(reload), &[]);
            result.reloads += 1;
        }
    }
    debug_assert!(f.validate().is_ok());
    rewrite
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionBuilder;

    /// A straight-line block with `n` values all live at the same point.
    fn high_pressure(n: usize) -> Function {
        let mut b = FunctionBuilder::new("pressure");
        let entry = b.entry_block();
        let vars: Vec<Var> = (0..n).map(|i| b.def(entry, format!("v{i}"))).collect();
        let _sum = b.op(entry, "sum", &vars);
        b.ret(entry, &[]);
        b.finish()
    }

    #[test]
    fn no_spill_needed_below_threshold() {
        let mut f = high_pressure(3);
        let live = Liveness::compute(&f);
        assert_eq!(live.maxlive_precise(&f), 3);
        let result = spill_to_pressure(&mut f, 4);
        assert!(result.spilled.is_empty());
    }

    #[test]
    fn spilling_reduces_maxlive() {
        let mut f = high_pressure(6);
        let before = Liveness::compute(&f).maxlive_precise(&f);
        assert_eq!(before, 6);
        let result = spill_to_pressure(&mut f, 6);
        assert!(result.spilled.is_empty());
        // Note: with all six operands feeding a single instruction, every
        // reload is live at the use, so pressure at that point cannot drop
        // below 6; ask for 6 and we are already there.
        assert!(Liveness::compute(&f).maxlive_precise(&f) <= 6);
    }

    #[test]
    fn spilling_long_live_range_helps() {
        // x is live across a long chain; spilling it removes the overlap.
        let mut b = FunctionBuilder::new("long");
        let entry = b.entry_block();
        let x = b.def(entry, "x");
        let mut prev = b.def(entry, "a0");
        for i in 1..5usize {
            prev = b.op(entry, format!("a{i}"), &[prev]);
        }
        let last = b.op(entry, "use_x", &[x, prev]);
        b.ret(entry, &[last]);
        let mut f = b.finish();
        let before = Liveness::compute(&f).maxlive_precise(&f);
        assert_eq!(before, 2);
        let result = spill_to_pressure(&mut f, 1);
        // x (or the chain variable) gets spilled; pressure can only go so
        // low because the final op uses two operands at once.
        assert!(!result.spilled.is_empty() || before <= 1);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn spill_everywhere_rewrites_uses() {
        let mut b = FunctionBuilder::new("f");
        let entry = b.entry_block();
        let x = b.def(entry, "x");
        let y = b.op(entry, "y", &[x]);
        let z = b.op(entry, "z", &[x, y]);
        b.ret(entry, &[z, x]);
        let mut f = b.finish();
        let mut result = SpillResult::default();
        spill_everywhere(&mut f, x, &mut result);
        assert_eq!(result.reloads, 3);
        // x itself no longer appears as a use anywhere.
        for (_, _, instr) in f.instructions() {
            assert!(!instr.local_uses().contains(&x));
        }
        for bid in f.block_ids() {
            assert!(!f.terminator(bid).uses().contains(&x));
        }
    }

    #[test]
    fn spill_costs_weight_uses_by_loop_depth() {
        // x is used inside a depth-2 loop body, y only outside it.
        let mut b = FunctionBuilder::new("cost");
        let entry = b.entry_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.set_loop_depth(body, 2);
        let x = b.def(entry, "x");
        let y = b.def(entry, "y");
        let c = b.def(entry, "c");
        b.jump(entry, body);
        b.effect(body, &[x]);
        b.branch(body, c, body, exit);
        b.ret(exit, &[y]);
        let f = b.finish();
        let costs = spill_costs(&f);
        assert_eq!(costs[x.index()], 1 + 100); // store + loop-body use
        assert_eq!(costs[y.index()], 1 + 1); // store + use at exit
        assert_eq!(costs[c.index()], 1 + 100); // store + loop-body branch
    }

    #[test]
    fn loop_weights_stay_strictly_ordered_up_to_the_depth_cap() {
        // The old `10u64.saturating_pow(depth)` collapsed every depth ≥ 20
        // onto `u64::MAX`, so victims at distinct very deep nests compared
        // equal on cost.  The clamped weight keeps all depths up to the
        // cap strictly ordered and finite.
        for d in 0..MAX_WEIGHT_DEPTH {
            assert!(
                loop_weight(d) < loop_weight(d + 1),
                "weights for depths {d} and {} must stay ordered",
                d + 1
            );
        }
        // Past the cap the weight pins at the exact power 10^18 — not the
        // saturated sentinel the old code produced.
        assert_eq!(loop_weight(MAX_WEIGHT_DEPTH), 10u64.pow(18));
        assert_eq!(loop_weight(MAX_WEIGHT_DEPTH + 1), 10u64.pow(18));
        assert_eq!(loop_weight(u32::MAX), 10u64.pow(18));
        assert!(loop_weight(u32::MAX) < u64::MAX);
    }

    #[test]
    fn spill_costs_order_victims_across_very_deep_nests() {
        // Two values used at depths 17 and 18 of a deep nest: their costs
        // must differ (the old saturating weights kept them ordered too,
        // but depths 20 vs 25 collapsed — exercise the cap boundary).
        let mut b = FunctionBuilder::new("deep");
        let entry = b.entry_block();
        let d17 = b.new_block();
        let d18 = b.new_block();
        let d25 = b.new_block();
        let d30 = b.new_block();
        b.set_loop_depth(d17, 17);
        b.set_loop_depth(d18, 18);
        b.set_loop_depth(d25, 25);
        b.set_loop_depth(d30, 30);
        let x = b.def(entry, "x");
        let y = b.def(entry, "y");
        let p = b.def(entry, "p");
        let q = b.def(entry, "q");
        b.jump(entry, d17);
        b.effect(d17, &[x]);
        b.jump(d17, d18);
        b.effect(d18, &[y]);
        b.jump(d18, d25);
        b.effect(d25, &[p]);
        b.jump(d25, d30);
        b.effect(d30, &[q]);
        b.ret(d30, &[]);
        let f = b.finish();
        let costs = spill_costs(&f);
        // Below the cap: strictly ordered by depth.
        assert!(costs[x.index()] < costs[y.index()]);
        // At and past the cap: equal by design (documented), but finite.
        assert_eq!(costs[p.index()], costs[q.index()]);
        assert!(costs[q.index()] < u64::MAX / 2);
    }

    #[test]
    fn spill_all_candidates_lowers_pressure_like_the_greedy_spiller() {
        // Five values defined together and used one by one: all of them
        // overlap at the definition cluster, and all are long-lived, so
        // the naive baseline spills every one of them in a single round.
        let mut b = FunctionBuilder::new("baseline");
        let entry = b.entry_block();
        let vars: Vec<Var> = (0..5).map(|i| b.def(entry, format!("x{i}"))).collect();
        for &v in &vars {
            b.effect(entry, &[v]);
        }
        b.ret(entry, &[]);
        let mut f = b.finish();
        let before = Liveness::compute(&f).maxlive_precise(&f);
        assert_eq!(before, 5);
        let result = spill_all_candidates(&mut f, 2);
        assert!(f.validate().is_ok());
        assert_eq!(result.spilled.len(), 5);
        assert!(Liveness::compute(&f).maxlive_precise(&f) <= 2);
    }

    #[test]
    fn loop_aware_choice_spills_the_value_idle_across_the_loop() {
        // Both `hot` and `idle` are live through a loop body that is over
        // pressure, but only `hot` is used inside it; the loop-aware cost
        // must pick `idle` even though both free the same pressure points.
        let mut b = FunctionBuilder::new("loop_spill");
        let entry = b.entry_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.set_loop_depth(body, 1);
        let idle = b.def(entry, "idle");
        let hot = b.def(entry, "hot");
        let c = b.def(entry, "c");
        b.jump(entry, body);
        let t = b.op(body, "t", &[hot]);
        b.effect(body, &[t, hot]);
        b.branch(body, c, body, exit);
        b.effect(exit, &[idle, hot]);
        b.ret(exit, &[]);
        let mut f = b.finish();
        let result = spill_to_pressure(&mut f, 3);
        assert!(
            result.spilled.contains(&idle),
            "expected `idle` to be spilled, got {:?}",
            result.spilled
        );
        assert!(!result.spilled.contains(&hot));
        assert!(f.validate().is_ok());
    }

    #[test]
    fn spill_terminates_when_target_unreachable() {
        // Asking for pressure 0 can never fully succeed; the pass must not
        // loop forever.
        let mut f = high_pressure(3);
        let _ = spill_to_pressure(&mut f, 0);
        assert!(f.validate().is_ok());
    }
}
